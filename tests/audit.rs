//! Differential + audit acceptance over the shipped testdata specs.
//!
//! Two independent engines answer every constraint in every
//! `testdata/*.spec`: the production checker (BDD ladder) and the naive
//! first-order interpreter that powers the brute-force rung
//! ([`relcheck::logic::eval::eval_sentence`]). Their verdicts must agree.
//! On top of that, every verdict's certificate must survive the
//! independent audit re-check — the ISSUE's acceptance criterion that
//! `relcheck audit verify` validates every `Violated` verdict the
//! differential suites produce.

use relcheck::core_::certify::{bundle_to_json, emit_certificates, parse_bundle, verify_bundle};
use relcheck::core_::checker::{Checker, CheckerOptions, Verdict};
use relcheck::core_::registry::ConstraintRegistry;
use relcheck::logic::eval::eval_sentence;
use relcheck::logic::Formula;
use relcheck::relstore::Database;
use relcheck::spec::parse_spec;
use std::path::{Path, PathBuf};

fn testdata_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("testdata")
}

/// (spec file name, named constraints, loaded database).
type LoadedSpec = (String, Vec<(String, Formula)>, Database);

/// Every `.spec` file under `testdata/`, loaded with its CSV tables —
/// the same loading path the CLI uses.
fn load_specs() -> Vec<LoadedSpec> {
    let dir = testdata_dir();
    let mut specs = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "spec"))
        .collect();
    entries.sort();
    assert!(
        !entries.is_empty(),
        "no .spec files under {}",
        dir.display()
    );
    for path in entries {
        let text = std::fs::read_to_string(&path).unwrap();
        let spec = parse_spec(&text).unwrap();
        let mut db = Database::new();
        for t in &spec.tables {
            let csv = std::fs::read(dir.join(&t.path)).unwrap();
            let columns: Vec<(&str, &str)> = t
                .columns
                .iter()
                .map(|(c, k)| (c.as_str(), k.as_str()))
                .collect();
            db.create_relation_from_csv_bytes(&t.name, &columns, &csv, t.has_header)
                .unwrap();
        }
        let constraints = spec
            .constraints
            .iter()
            .map(|c| (c.name.clone(), c.formula.clone()))
            .collect();
        specs.push((
            path.file_name().unwrap().to_string_lossy().into_owned(),
            constraints,
            db,
        ));
    }
    specs
}

/// Satellite: the naive interpreter (the brute-force rung's engine) and
/// the full BDD ladder agree on every constraint of every testdata spec.
#[test]
fn naive_eval_agrees_with_ladder_on_every_testdata_spec() {
    for (spec_name, constraints, db) in load_specs() {
        let mut checker = Checker::new(db.clone(), CheckerOptions::default());
        for (name, f) in &constraints {
            let report = checker.check(f).unwrap();
            assert!(
                report.verdict.is_decided(),
                "{spec_name}/{name}: fault-free check must decide"
            );
            let naive = eval_sentence(&db, f).unwrap();
            assert_eq!(
                report.verdict,
                if naive {
                    Verdict::Holds
                } else {
                    Verdict::Violated
                },
                "{spec_name}/{name}: ladder ({:?} via {:?}) disagrees with the naive interpreter",
                report.verdict,
                report.method
            );
        }
    }
}

/// Acceptance: every verdict across the testdata specs emits a
/// certificate that independently re-verifies — through the JSON bundle
/// round-trip, exactly as `relcheck audit verify` would consume it.
#[test]
fn every_testdata_verdict_certifies_and_audits() {
    for (spec_name, constraints, db) in load_specs() {
        let mut checker = Checker::new(db.clone(), CheckerOptions::default());
        let mut registry = ConstraintRegistry::new();
        for (n, f) in &constraints {
            assert!(registry.register(n, f.clone()), "{spec_name}: dup {n}");
        }
        let reports = registry.validate_all(&mut checker).unwrap();
        let certs = emit_certificates(&mut checker, &constraints, &reports, 10).unwrap();
        let bundle = bundle_to_json(&certs);
        let parsed = parse_bundle(&bundle).unwrap();
        assert_eq!(parsed, certs, "{spec_name}: bundle round-trip");
        let mut violated = 0usize;
        for (name, res) in verify_bundle(&db, &constraints, &parsed) {
            let outcome = res.unwrap_or_else(|e| panic!("{spec_name}/{name}: {e}"));
            if outcome.verdict == Verdict::Violated {
                violated += 1;
            }
        }
        assert!(
            violated > 0,
            "{spec_name}: fixture should exercise the violated path"
        );
    }
}
