//! Integration tests for the extension features: the spec-file pipeline,
//! registry-driven re-validation, EXPLAIN, BDD drill-down, and index
//! persistence — each exercised end to end through the public facade.

use relcheck::bdd::{BddManager, ExportedBdd};
use relcheck::core_::checker::{Checker, CheckerOptions};
use relcheck::core_::registry::{ConstraintRegistry, Verdict};
use relcheck::relstore::{Database, Raw};
use relcheck::spec::parse_spec;

const SPEC: &str = r#"
table CUSTOMERS from customers.csv header with
    city:city, areacode:areacode, state:state
table CITY_STATE from reference.csv with city:city, state:state

constraint toronto-prefixes:
    forall c, a, s. CUSTOMERS(c, a, s) & c = "Toronto" -> a in {416, 647, 905}
constraint reference-agrees:
    forall c, a, s, s2. CUSTOMERS(c, a, s) & CITY_STATE(c, s2) -> s = s2
"#;

const CUSTOMERS_CSV: &str = "\
city,areacode,state
Toronto,416,ON
Toronto,212,ON
Newark,973,NJ
Newark,973,NY
";

const REFERENCE_CSV: &str = "Toronto,ON\nNewark,NJ\n";

/// Build the database the way the CLI does: spec + CSV text.
fn spec_db() -> (Vec<(String, relcheck::logic::Formula)>, Database) {
    let spec = parse_spec(SPEC).unwrap();
    let mut db = Database::new();
    for t in &spec.tables {
        let csv = match t.path.as_str() {
            "customers.csv" => CUSTOMERS_CSV,
            "reference.csv" => REFERENCE_CSV,
            other => panic!("unexpected table path {other}"),
        };
        let columns: Vec<(&str, &str)> = t
            .columns
            .iter()
            .map(|(c, k)| (c.as_str(), k.as_str()))
            .collect();
        db.create_relation_from_csv(&t.name, &columns, csv, t.has_header)
            .unwrap();
    }
    let constraints = spec
        .constraints
        .into_iter()
        .map(|c| (c.name, c.formula))
        .collect();
    (constraints, db)
}

#[test]
fn spec_pipeline_end_to_end() {
    let (constraints, db) = spec_db();
    let mut ck = Checker::new(db, CheckerOptions::default());
    let reports = ck.check_all(&constraints).unwrap();
    let verdicts: Vec<(String, bool)> = reports.into_iter().map(|(n, r)| (n, r.holds)).collect();
    assert_eq!(
        verdicts,
        vec![
            ("toronto-prefixes".to_owned(), false), // 212 row
            ("reference-agrees".to_owned(), false), // Newark/NY row
        ]
    );
    // Drill into the first violation and decode it.
    let (rows, cols) = ck.find_violations(&constraints[0].1).unwrap();
    assert_eq!(rows.len(), 1);
    let ia = cols.iter().position(|c| c == "a").unwrap();
    let decoded = ck.logical_db().db().decode_row(&rows, &rows.row(0));
    assert_eq!(decoded[ia], Raw::Int(212));
}

#[test]
fn bdd_and_sql_drilldowns_agree_on_spec_constraints() {
    let (constraints, db) = spec_db();
    let mut ck = Checker::new(db, CheckerOptions::default());
    for (name, f) in &constraints {
        let (names, mut bdd_rows) = ck
            .find_violations_bdd(f, 1000)
            .unwrap()
            .unwrap_or_else(|| panic!("{name} should be ∀-prefixed"));
        let (sql_rel, sql_cols) = ck.find_violations(f).unwrap();
        assert_eq!(bdd_rows.len(), sql_rel.len(), "{name}");
        let perm: Vec<usize> = sql_cols
            .iter()
            .map(|c| names.iter().position(|n| n == c).unwrap())
            .collect();
        for row in &mut bdd_rows {
            *row = perm.iter().map(|&i| row[i]).collect();
        }
        let mut sql_rows: Vec<Vec<u32>> = sql_rel.rows().collect();
        bdd_rows.sort();
        sql_rows.sort();
        assert_eq!(bdd_rows, sql_rows, "{name}");
    }
}

#[test]
fn explain_runs_for_spec_constraints() {
    let (constraints, db) = spec_db();
    let mut ck = Checker::new(db, CheckerOptions::default());
    for (name, f) in &constraints {
        let e = ck.explain(f).unwrap();
        assert!(e.stripped_leading > 0, "{name}");
        assert!(e.sql_plan.is_some(), "{name} is in the SQL class");
        assert!(!format!("{e}").is_empty());
    }
}

#[test]
fn registry_over_spec_constraints() {
    let (constraints, db) = spec_db();
    let mut ck = Checker::new(db, CheckerOptions::default());
    let mut reg = ConstraintRegistry::new();
    for (name, f) in &constraints {
        assert!(reg.register(name, f.clone()));
    }
    reg.validate_all(&mut ck).unwrap();
    // Touch only CITY_STATE: the customers-only constraint stays cached.
    let verdicts = reg.revalidate(&mut ck, &["CITY_STATE"]).unwrap();
    let by_name: std::collections::HashMap<_, _> = verdicts.into_iter().collect();
    assert!(matches!(
        by_name["toronto-prefixes"],
        Verdict::Cached { holds: false }
    ));
    assert!(matches!(
        by_name["reference-agrees"],
        Verdict::Checked { holds: false }
    ));
}

#[test]
fn index_persistence_round_trip() {
    // Build an index, export it, import into a fresh manager with the same
    // layout, and verify the function is intact — the save/restore story
    // for long-lived logical indices.
    let (_, db) = spec_db();
    let mut ck = Checker::new(db, CheckerOptions::default());
    ck.ensure_index("CUSTOMERS").unwrap();
    let idx = ck.logical_db().index("CUSTOMERS").unwrap().clone();
    let snapshot = ck.logical_db().manager().export(idx.root);
    let bytes = snapshot.to_bytes();

    // "Restart": rebuild the same domain layout in a fresh manager.
    let decoded = ExportedBdd::from_bytes(&bytes).unwrap();
    let mut m2 = BddManager::new();
    let mut doms2 = Vec::new();
    {
        let m1 = ck.logical_db().manager();
        // Recreate domains in declaration order with identical sizes.
        let mut infos: Vec<_> = (0..idx.domains.len())
            .map(|i| (idx.domains[i], m1.domain_info(idx.domains[i])))
            .collect();
        infos.sort_by_key(|&(_, info)| info.first_var);
        for (_, info) in &infos {
            doms2.push((m2.add_domain(info.size).unwrap(), info.first_var));
        }
    }
    let root2 = m2.import(&decoded, |v| v).unwrap();
    // Tuple counts agree.
    let schema_order: Vec<_> = {
        // match idx.domains (schema order) to the new manager's domains via
        // first_var ordering
        idx.domains
            .iter()
            .map(|&d| {
                let fv = ck.logical_db().manager().domain_info(d).first_var;
                doms2.iter().find(|&&(_, v)| v == fv).unwrap().0
            })
            .collect()
    };
    let n_old = {
        let mgr = ck.logical_db_mut().manager_mut();
        mgr.tuple_count(idx.root, &idx.domains).unwrap()
    };
    let n_new = m2.tuple_count(root2, &schema_order).unwrap();
    assert_eq!(n_old, n_new);
    assert_eq!(n_new, 4.0, "four distinct customer rows");
}

#[test]
fn level_profiles_reflect_ordering_quality() {
    // A structured relation under a good vs bad ordering: the profile
    // total (== size) must differ, and every profile sums to size.
    use relcheck::core_::ordering::OrderingStrategy;
    use relcheck::datagen::gen_kprod;
    use relcheck::relstore::Relation;
    let g = gen_kprod(4, 32, 2000, 1, 5);
    let sizes: Vec<usize> = [OrderingStrategy::ProbConverge, OrderingStrategy::Random(1)]
        .into_iter()
        .map(|strategy| {
            let mut db = Database::new();
            for (i, &s) in g.dom_sizes.iter().enumerate() {
                db.ensure_class_size(&format!("v{i}"), s);
            }
            let rel = Relation::from_rows(g.relation.schema().clone(), g.relation.rows()).unwrap();
            db.insert_relation("R", rel).unwrap();
            let opts = CheckerOptions {
                ordering: strategy,
                ..Default::default()
            };
            let mut ck = Checker::new(db, opts);
            ck.ensure_index("R").unwrap();
            let idx = ck.logical_db().index("R").unwrap().clone();
            let mgr = ck.logical_db().manager();
            let profile = mgr.level_profile(idx.root);
            let total: usize = profile.iter().map(|&(_, c)| c).sum();
            assert_eq!(total, mgr.size(idx.root));
            total
        })
        .collect();
    assert!(
        sizes[0] <= sizes[1],
        "Prob-Converge ({}) should not lose to random ({})",
        sizes[0],
        sizes[1]
    );
}

#[test]
fn cli_spec_in_repo_is_valid() {
    // The shipped demo spec must stay parseable and well-typed.
    let text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("testdata/phones.spec"),
    )
    .unwrap();
    let spec = parse_spec(&text).unwrap();
    assert_eq!(spec.tables.len(), 2);
    assert_eq!(spec.constraints.len(), 4);
    for c in &spec.constraints {
        assert!(c.formula.is_sentence(), "{} must be a sentence", c.name);
    }
}
