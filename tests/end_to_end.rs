//! End-to-end integration tests across all workspace crates: generated
//! data → logical indices → constraint checking on every evaluation path.

use relcheck::core_::checker::{Checker, CheckerOptions, Method};
use relcheck::core_::ordering::OrderingStrategy;
use relcheck::datagen::customer::{col, generate, CustomerConfig};
use relcheck::logic::eval::eval_sentence;
use relcheck::logic::parse;
use relcheck::relstore::{Database, Relation, Schema};

/// A small but realistic customer database with injected violations.
fn customer_db(violation_rate: f64) -> Database {
    let data = generate(&CustomerConfig {
        rows: 8_000,
        dom_sizes: [30, 50, 200, 15, 300],
        violation_rate,
        seed: 99,
    });
    let mut db = Database::new();
    db.ensure_class_size("areacode", 30);
    db.ensure_class_size("city", 200);
    db.ensure_class_size("state", 15);
    let ncs = Relation::from_rows(
        Schema::new(&[
            ("areacode", "areacode"),
            ("city", "city"),
            ("state", "state"),
        ]),
        data.relation
            .rows()
            .map(|r| vec![r[col::AREACODE], r[col::CITY], r[col::STATE]]),
    )
    .unwrap();
    db.insert_relation("CUST", ncs).unwrap();
    let cs: Vec<Vec<u32>> = (0..200u32)
        .map(|c| vec![c, data.city_state[c as usize]])
        .collect();
    db.insert_relation(
        "CITY_STATE",
        Relation::from_rows(Schema::new(&[("city", "city"), ("state", "state")]), cs).unwrap(),
    )
    .unwrap();
    db
}

const CONSTRAINTS: &[&str] = &[
    "forall a, c, s, s2. CUST(a, c, s) & CITY_STATE(c, s2) -> s = s2",
    "forall a1, c, s1, a2, s2. CUST(a1, c, s1) & CUST(a2, c, s2) -> s1 = s2",
    "forall c, s2. CITY_STATE(c, s2) -> exists a, s. CUST(a, c, s)",
    "exists a, c, s. CUST(a, c, s)",
    "forall a, c, s. CUST(a, c, s) -> exists s2. CITY_STATE(c, s2)",
];

#[test]
fn clean_data_satisfies_model_constraints() {
    let mut ck = Checker::new(customer_db(0.0), CheckerOptions::default());
    for src in CONSTRAINTS {
        let f = parse(src).unwrap();
        let r = ck.check(&f).unwrap();
        assert!(r.holds, "{src}");
        assert_eq!(r.method, Method::Bdd, "{src}");
    }
}

#[test]
fn dirty_data_violates_the_dependency_constraints() {
    let mut ck = Checker::new(customer_db(0.05), CheckerOptions::default());
    let reference = parse(CONSTRAINTS[0]).unwrap();
    let fd = parse(CONSTRAINTS[1]).unwrap();
    assert!(!ck.check(&reference).unwrap().holds);
    assert!(!ck.check(&fd).unwrap().holds);
    // But existence still holds.
    assert!(ck.check(&parse(CONSTRAINTS[3]).unwrap()).unwrap().holds);
}

#[test]
fn bdd_and_sql_paths_agree_on_every_constraint() {
    for rate in [0.0, 0.03] {
        let mut ck = Checker::new(customer_db(rate), CheckerOptions::default());
        for src in CONSTRAINTS {
            let f = parse(src).unwrap();
            let bdd = ck.check(&f).unwrap();
            let sql = ck.check_sql(&f).unwrap();
            assert_eq!(bdd.holds, sql.holds, "rate={rate}: {src}");
        }
    }
}

#[test]
fn all_orderings_give_the_same_answers() {
    for strategy in [
        OrderingStrategy::Schema,
        OrderingStrategy::Random(123),
        OrderingStrategy::MaxInfGain,
        OrderingStrategy::ProbConverge,
        OrderingStrategy::MinCondEntropy,
        OrderingStrategy::Sifted,
    ] {
        let opts = CheckerOptions {
            ordering: strategy,
            ..Default::default()
        };
        let mut ck = Checker::new(customer_db(0.02), opts);
        for src in CONSTRAINTS {
            let f = parse(src).unwrap();
            let got = ck.check(&f).unwrap().holds;
            let sql = ck.check_sql(&f).unwrap().holds;
            assert_eq!(got, sql, "{strategy:?}: {src}");
        }
    }
}

#[test]
fn tiny_node_budget_forces_fallback_but_stays_correct() {
    let opts = CheckerOptions {
        node_limit: Some(500),
        ..Default::default()
    };
    let mut ck = Checker::new(customer_db(0.02), opts);
    for src in CONSTRAINTS {
        let f = parse(src).unwrap();
        let constrained = ck.check(&f).unwrap();
        let sql = ck.check_sql(&f).unwrap();
        assert_eq!(constrained.holds, sql.holds, "{src}");
        assert_ne!(
            constrained.method,
            Method::Bdd,
            "500 nodes cannot index 8k rows"
        );
    }
}

#[test]
fn violations_count_matches_between_paths() {
    let mut ck = Checker::new(customer_db(0.05), CheckerOptions::default());
    let f = parse(CONSTRAINTS[0]).unwrap();
    assert!(!ck.check(&f).unwrap().holds);
    let (rows, cols) = ck.find_violations(&f).unwrap();
    assert!(!rows.is_empty());
    assert_eq!(cols.len(), rows.arity());
    // Every reported tuple really disagrees with the reference mapping.
    let ic = cols.iter().position(|c| c == "c").unwrap();
    let is = cols.iter().position(|c| c == "s").unwrap();
    let is2 = cols.iter().position(|c| c == "s2").unwrap();
    for i in 0..rows.len() {
        let r = rows.row(i);
        assert_ne!(r[is], r[is2], "row {i} should mismatch the reference");
        let _ = r[ic];
    }
}

#[test]
fn incremental_updates_flow_through_to_answers() {
    let mut ck = Checker::new(customer_db(0.0), CheckerOptions::default());
    let f = parse(CONSTRAINTS[1]).unwrap(); // city → state FD
    assert!(ck.check(&f).unwrap().holds);
    // Insert a row contradicting city 0's state.
    let state0 = {
        let rel = ck.logical_db().db().relation("CITY_STATE").unwrap();
        rel.col(1)[0]
    };
    let bad_state = (state0 + 1) % 15;
    ck.logical_db_mut()
        .insert_tuple("CUST", &[0, 0, bad_state])
        .unwrap();
    // The relation had city 0 rows with the right state (city 0 is the most
    // popular by the zipf weighting), so the FD now breaks.
    let r = ck.check(&f).unwrap();
    assert!(!r.holds, "inserted contradiction must violate the FD");
    assert_eq!(r.method, Method::Bdd);
    ck.logical_db_mut()
        .delete_tuple("CUST", &[0, 0, bad_state])
        .unwrap();
    assert!(ck.check(&f).unwrap().holds);
}

#[test]
fn checker_agrees_with_brute_force_oracle_on_small_db() {
    let mut db = Database::new();
    db.create_relation(
        "R",
        &[("x", "k"), ("y", "k")],
        (0..6)
            .map(|i| {
                vec![
                    relcheck::relstore::Raw::Int(i % 3),
                    relcheck::relstore::Raw::Int(i),
                ]
            })
            .collect(),
    )
    .unwrap();
    let sentences = [
        "forall x, y. R(x, y) -> x in {0, 1, 2}",
        "exists x, y. R(x, y) & x = y",
        "forall x, y1, y2. R(x, y1) & R(x, y2) -> y1 = y2",
        "!(exists x, y. R(x, y) & x = 5)",
    ];
    for src in sentences {
        let f = parse(src).unwrap();
        let expected = eval_sentence(&db, &f).unwrap();
        // Fresh checker per sentence keeps index state independent.
        let mut db2 = Database::new();
        db2.create_relation(
            "R",
            &[("x", "k"), ("y", "k")],
            (0..6)
                .map(|i| {
                    vec![
                        relcheck::relstore::Raw::Int(i % 3),
                        relcheck::relstore::Raw::Int(i),
                    ]
                })
                .collect(),
        )
        .unwrap();
        let mut ck = Checker::new(db2, CheckerOptions::default());
        assert_eq!(ck.check(&f).unwrap().holds, expected, "{src}");
    }
}

#[test]
fn fd_check_paths_agree_at_scale() {
    let mut ck = Checker::new(customer_db(0.02), CheckerOptions::default());
    for (lhs, rhs) in [
        (vec![0usize], vec![2usize]),
        (vec![1], vec![2]),
        (vec![2], vec![0]),
    ] {
        let bdd = ck.check_fd_bdd("CUST", &lhs, &rhs).unwrap();
        let sql = ck.check_fd_sql("CUST", &lhs, &rhs).unwrap();
        assert_eq!(bdd, sql, "FD {lhs:?} -> {rhs:?}");
    }
}
