//! Miniature regression versions of the paper's experimental claims: every
//! table/figure's *shape* is asserted at test-friendly scale, so a refactor
//! that silently breaks a reproduction shows up in `cargo test`.

use relcheck::bdd::{Bdd, BddError, BddManager, Op};
use relcheck::core_::ordering::{
    all_orderings, bdd_size_for_ordering, optimal_ordering, prob_converge,
};
use relcheck::datagen::{gen_kprod, gen_random};

/// Figure 2(a): ordering sensitivity decreases from 1-PROD to RANDOM.
#[test]
fn fig2a_ordering_sensitivity_decreases_with_structure() {
    let spread = |g: &relcheck::datagen::Generated| {
        let sizes: Vec<usize> = all_orderings(g.relation.arity())
            .iter()
            .map(|o| bdd_size_for_ordering(&g.relation, &g.dom_sizes, o).unwrap())
            .collect();
        *sizes.iter().max().unwrap() as f64 / *sizes.iter().min().unwrap() as f64
    };
    let one = spread(&gen_kprod(4, 32, 2_000, 1, 46));
    let random = spread(&gen_random(4, 16, 2_000, 46));
    assert!(
        one > 2.0 && random < 1.3 && one > random,
        "1-PROD spread {one:.2} should dominate RANDOM spread {random:.2}"
    );
}

/// Figure 3: Prob-Converge near-optimal on structured relations.
#[test]
fn fig3_prob_converge_near_optimal() {
    let mut worst: f64 = 1.0;
    for seed in 0..5 {
        let g = gen_kprod(5, 32, 3_000, 1, 500 + seed);
        let order = prob_converge(&g.relation, &g.dom_sizes);
        let size = bdd_size_for_ordering(&g.relation, &g.dom_sizes, &order).unwrap();
        let (_, opt) = optimal_ordering(&g.relation, &g.dom_sizes).unwrap();
        worst = worst.max(size as f64 / opt as f64);
    }
    assert!(
        worst < 2.0,
        "β stayed at {worst:.2} (paper: < 1.5 typically)"
    );
}

/// Figure 4(b): incremental updates are microsecond-scale.
#[test]
fn fig4b_updates_are_cheap() {
    let g = gen_random(3, 100, 20_000, 7);
    let mut m = BddManager::new();
    let doms: Vec<_> = (0..3)
        .map(|i| m.add_domain(g.dom_sizes[i]).unwrap())
        .collect();
    let rows: Vec<Vec<u64>> = g
        .relation
        .rows()
        .map(|r| r.iter().map(|&v| v as u64).collect())
        .collect();
    let mut root = m.relation_from_rows(&doms, &rows).unwrap();
    let t0 = std::time::Instant::now();
    let n = 500;
    for i in 0..n {
        let t = vec![
            i % g.dom_sizes[0],
            (i * 7) % g.dom_sizes[1],
            (i * 13) % g.dom_sizes[2],
        ];
        root = m.insert_row(root, &doms, &t).unwrap();
        root = m.delete_row(root, &doms, &t).unwrap();
    }
    let per_op = t0.elapsed() / (n as u32 * 2);
    assert!(
        per_op.as_micros() < 1_000,
        "updates should be far under a millisecond, got {per_op:?}"
    );
}

/// Figure 6(a): rename-based joins beat equality-cube joins.
#[test]
fn fig6a_rename_join_beats_equality_cubes() {
    let mut m = BddManager::new();
    let d1: Vec<_> = (0..2).map(|_| m.add_domain(1024).unwrap()).collect();
    let d2: Vec<_> = (0..2).map(|_| m.add_domain(1024).unwrap()).collect();
    let mk_rows = |seed: u64| {
        gen_random(2, 1024, 20_000, seed)
            .relation
            .rows()
            .map(|r| r.iter().map(|&v| v as u64).collect())
            .collect::<Vec<Vec<u64>>>()
    };
    let r1 = m.relation_from_rows(&d1, &mk_rows(1)).unwrap();
    let r2 = m.relation_from_rows(&d2, &mk_rows(2)).unwrap();
    let t0 = std::time::Instant::now();
    let renamed = {
        let moved = m.replace_domains(r2, &[(d2[0], d1[1])]).unwrap();
        m.and(r1, moved).unwrap()
    };
    let t_rename = t0.elapsed();
    m.gc(&[r1, r2, renamed]);
    let t0 = std::time::Instant::now();
    let naive = {
        let eq = m.domain_eq(d2[0], d1[1]).unwrap();
        let a = m.and(r1, r2).unwrap();
        let b = m.and(a, eq).unwrap();
        let vs = m.domain_varset(&[d2[0]]);
        m.exists(b, vs).unwrap()
    };
    let t_naive = t0.elapsed();
    assert_eq!(renamed, naive, "strategies must agree");
    assert!(
        t_rename < t_naive,
        "rename ({t_rename:?}) should beat equality cubes ({t_naive:?})"
    );
}

/// Rules 3/4 (Equations 3 and 4): the rewrite identities hold as BDDs.
#[test]
fn rewrite_identities_hold() {
    let mut m = BddManager::new();
    let x = m.add_domain(16).unwrap();
    let a = m.add_domain(16).unwrap();
    let mk = |m: &mut BddManager, seed: u64| {
        let rows: Vec<Vec<u64>> = (0..40u64)
            .map(|i| vec![(i * seed) % 16, (i * 3 + seed) % 16])
            .collect();
        m.relation_from_rows(&[x, a], &rows).unwrap()
    };
    let p = mk(&mut m, 5);
    let q = mk(&mut m, 11);
    let vs = m.domain_varset(&[x]);
    // ∃x P ∨ ∃x Q == ∃x (P ∨ Q)
    let lhs = {
        let ep = m.exists(p, vs).unwrap();
        let eq = m.exists(q, vs).unwrap();
        m.or(ep, eq).unwrap()
    };
    assert_eq!(lhs, m.app_exists(Op::Or, p, q, vs).unwrap());
    // ∀x P ∧ ∀x Q == ∀x (P ∧ Q)
    let lhs = {
        let ap = m.forall(p, vs).unwrap();
        let aq = m.forall(q, vs).unwrap();
        m.and(ap, aq).unwrap()
    };
    assert_eq!(lhs, m.app_forall(Op::And, p, q, vs).unwrap());
}

/// §4/§5.2: the node threshold aborts construction and the manager
/// recovers — the mechanism behind the SQL fallback.
#[test]
fn threshold_aborts_and_recovers() {
    let mut m = BddManager::new();
    let doms: Vec<_> = (0..4).map(|_| m.add_domain(1000).unwrap()).collect();
    m.set_node_limit(Some(5_000));
    let rows: Vec<Vec<u64>> = (0..20_000u64)
        .map(|i| {
            vec![
                i.wrapping_mul(2654435761) % 1000,
                i.wrapping_mul(40503) % 1000,
                i.wrapping_mul(2246822519) % 1000,
                i % 1000,
            ]
        })
        .collect();
    let err = m.relation_from_rows(&doms, &rows);
    assert!(matches!(err, Err(BddError::NodeLimit { limit: 5_000, .. })));
    // Reclaim and continue with a smaller job.
    m.set_node_limit(None);
    m.gc(&[]);
    let small = m.relation_from_rows(&doms, &rows[..100]).unwrap();
    assert_eq!(m.tuple_count(small, &doms).unwrap(), 100.0);
    assert_ne!(small, Bdd::FALSE);
}

/// Section 2.2: Cartesian-product conjunction is additive in node count —
/// the property the whole logical-index idea leans on.
#[test]
fn product_conjunction_is_additive() {
    let mut m = BddManager::new();
    let da: Vec<_> = (0..2).map(|_| m.add_domain(256).unwrap()).collect();
    let db_: Vec<_> = (0..2).map(|_| m.add_domain(256).unwrap()).collect();
    let rows = |seed: u64| {
        gen_random(2, 256, 800, seed)
            .relation
            .rows()
            .map(|r| r.iter().map(|&v| v as u64).collect())
            .collect::<Vec<Vec<u64>>>()
    };
    let r1 = m.relation_from_rows(&da, &rows(3)).unwrap();
    let r2 = m.relation_from_rows(&db_, &rows(4)).unwrap();
    let prod = m.and(r1, r2).unwrap();
    assert_eq!(m.size(prod), m.size(r1) + m.size(r2));
}
