#!/usr/bin/env bash
# Regenerate the committed benchmark trajectory (BENCH_*.json).
#
# Each experiment binary runs its self-contained BENCH measurement and
# writes one schema-version-1 document to the repo root; the script then
# validates all three with `relcheck bench-check`. Numbers are honest
# wall-clock measurements on the current host — re-running on different
# hardware produces different timings (and identical non-timing fields,
# which is what the determinism test pins).
#
# Usage: scripts/bench.sh
#   TUPLES=N   Table 1 size            (default 100000)
#   ROWS=N     customer rows           (default 100000)
#   SAMPLES=N  timed passes per query  (default 5)

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

TUPLES="${TUPLES:-100000}"
ROWS="${ROWS:-100000}"
SAMPLES="${SAMPLES:-5}"

step() { echo; echo "==> $*"; }

step "build (release)"
cargo build --release -p relcheck-bench -p relcheck

step "table1: unshared+static vs shared+adaptive ($TUPLES tuples, $SAMPLES samples)"
cargo run --release --quiet -p relcheck-bench --bin table1 -- \
    --tuples "$TUPLES" --samples "$SAMPLES" --json BENCH_table1.json >/dev/null

step "par_scaling: serial vs 2/4 workers ($ROWS rows)"
cargo run --release --quiet -p relcheck-bench --bin par_scaling -- \
    --rows "$ROWS" --samples 1 --json BENCH_par_scaling.json >/dev/null

step "dynamic: SQL vs BDD vs BDD+registry re-validation ($ROWS rows)"
cargo run --release --quiet -p relcheck-bench --bin dynamic -- \
    --rows "$ROWS" --batches 20 --batch-size 100 --json BENCH_dynamic.json >/dev/null

step "validate"
cargo run --release --quiet --bin relcheck -- \
    bench-check BENCH_table1.json BENCH_par_scaling.json BENCH_dynamic.json

echo
echo "bench.sh: trajectory regenerated"
