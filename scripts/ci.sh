#!/usr/bin/env bash
# Offline CI gate for the relcheck workspace.
#
# Runs the tier-1 verification (release build + root test suite) plus the
# full workspace tests, formatting, and lint checks. Everything here works
# without network access: the workspace has no external dependencies and
# CARGO_NET_OFFLINE is forced below as a belt-and-braces guard.
#
# Usage: scripts/ci.sh [--quick]
#   --quick   skip the full workspace test pass (tier-1 + fmt + clippy only)

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

QUICK=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

step() { echo; echo "==> $*"; }

step "tier-1: release build"
cargo build --release

step "tier-1: root test suite"
cargo test -q

if [ "$QUICK" -eq 0 ]; then
    step "full workspace tests"
    cargo test -q --workspace
fi

step "metrics smoke: relcheck run --metrics on testdata/ + schema validation"
# phones.spec contains deliberate violations, so `run` exits 1 (violations
# found). Exit 2 is an operational error and must fail CI.
METRICS_OUT="$(mktemp /tmp/relcheck-metrics.XXXXXX.json)"
trap 'rm -f "$METRICS_OUT"' EXIT
set +e
cargo run --release --quiet --bin relcheck -- \
    run testdata/phones.spec --threads 4 --metrics "$METRICS_OUT"
rc=$?
set -e
if [ "$rc" -ge 2 ]; then
    echo "relcheck run failed operationally (exit $rc)" >&2
    exit 1
fi
cargo run --release --quiet --bin relcheck -- metrics-check "$METRICS_OUT"

step "plan smoke: relcheck plan on the example suite + determinism"
# Two planning runs over the same spec must emit byte-identical output
# (fingerprints included) — the property the plan cache keys on.
PLAN_A="$(mktemp /tmp/relcheck-plan-a.XXXXXX.txt)"
PLAN_B="$(mktemp /tmp/relcheck-plan-b.XXXXXX.txt)"
trap 'rm -f "$METRICS_OUT" "$PLAN_A" "$PLAN_B"' EXIT
cargo run --release --quiet --bin relcheck -- plan testdata/phones.spec > "$PLAN_A"
cargo run --release --quiet --bin relcheck -- plan testdata/phones.spec > "$PLAN_B"
cmp "$PLAN_A" "$PLAN_B"
for want in "passes:" "bdd step:" "sql step:" "ladder: bdd"; do
    if ! grep -q "$want" "$PLAN_A"; then
        echo "plan output missing '$want'" >&2
        exit 1
    fi
done
# A serial run goes through the registry's fingerprinted plan cache and
# must report its counters in the schema-v4 metrics document.
set +e
cargo run --release --quiet --bin relcheck -- \
    run testdata/phones.spec --threads 1 --metrics "$METRICS_OUT" >/dev/null
rc=$?
set -e
if [ "$rc" -ge 2 ]; then
    echo "serial relcheck run failed operationally (exit $rc)" >&2
    exit 1
fi
cargo run --release --quiet --bin relcheck -- metrics-check "$METRICS_OUT"
if ! grep -q '"plan_cache":{"hits":' "$METRICS_OUT"; then
    echo "serial run metrics carry no plan_cache counters" >&2
    exit 1
fi

step "fault-injection smoke: each failpoint site, fixed seed"
# Fire every site at probability 1 with a fixed seed; the run must still
# terminate cleanly (exit 0 — injected faults are reported as DEGRADED/
# ERRORED, not as violations — or exit 1 when the surviving constraints
# include the fixture's genuine violations), the metrics document must
# stay schema-valid, and the degradation section must record the firing.
for site in index-build snapshot-decode lane-spawn apply sql-fallback; do
    spec="$site=1"
    # The sql-fallback site only fires once the ladder actually reaches the
    # SQL rung, so knock out the BDD rung alongside it.
    if [ "$site" = sql-fallback ]; then spec="apply=1,sql-fallback=1"; fi
    set +e
    cargo run --release --quiet --bin relcheck -- \
        run testdata/phones.spec --threads 2 \
        --fail-spec "$spec" --fail-seed 20070415 \
        --metrics "$METRICS_OUT" >/dev/null
    rc=$?
    set -e
    if [ "$rc" -ge 2 ]; then
        echo "fault-injection run for site $site failed operationally (exit $rc)" >&2
        exit 1
    fi
    cargo run --release --quiet --bin relcheck -- metrics-check "$METRICS_OUT"
    if ! grep -q "\"failpoints\":{\"seed\":\"20070415\"" "$METRICS_OUT"; then
        echo "metrics for site $site missing the armed failpoint seed" >&2
        exit 1
    fi
    if ! grep -q "{\"site\":\"$site\",\"count\":[1-9]" "$METRICS_OUT"; then
        echo "metrics for site $site record no firing at that site" >&2
        exit 1
    fi
done

step "crash-recovery smoke: index cache warm starts, kills, and recovery"
# The warm-start differential: a second run against the same cache must
# hit every segment and produce byte-identical verdict lines; a run whose
# cache was torn apart by failpoint kills must auto-rebuild (recorded in
# the metrics index_cache section) and still produce the cold verdicts.
CACHE_DIR="$(mktemp -d /tmp/relcheck-cache.XXXXXX)"
COLD_OUT="$(mktemp /tmp/relcheck-cold.XXXXXX.txt)"
WARM_OUT="$(mktemp /tmp/relcheck-warm.XXXXXX.txt)"
trap 'rm -rf "$METRICS_OUT" "$PLAN_A" "$PLAN_B" "$CACHE_DIR" "$COLD_OUT" "$WARM_OUT"' EXIT

run_cached() { # run_cached <outfile> [extra args...]
    local out="$1"; shift
    set +e
    cargo run --release --quiet --bin relcheck -- \
        run testdata/phones.spec --index-cache "$CACHE_DIR" \
        --metrics "$METRICS_OUT" "$@" >"$out"
    rc=$?
    set -e
    if [ "$rc" -ge 2 ]; then
        echo "cached run failed operationally (exit $rc)" >&2
        exit 1
    fi
    cargo run --release --quiet --bin relcheck -- metrics-check "$METRICS_OUT"
}

# Cold run populates the cache; keep only the verdict lines for diffing.
run_cached "$COLD_OUT"
cold_rc=$rc
grep " via " "$COLD_OUT" | awk '{print $1, $2, $4}' > "$COLD_OUT.verdicts"

# Warm run: every relation must hit, verdicts must be byte-identical.
run_cached "$WARM_OUT"
if [ "$rc" -ne "$cold_rc" ]; then
    echo "warm run exit code $rc differs from cold $cold_rc" >&2
    exit 1
fi
grep " via " "$WARM_OUT" | awk '{print $1, $2, $4}' > "$WARM_OUT.verdicts"
diff "$COLD_OUT.verdicts" "$WARM_OUT.verdicts"
if ! grep -q '"index_cache":{"hits":2,"misses":0,"rebuilds":0' "$METRICS_OUT"; then
    echo "warm run did not hit both cached segments" >&2
    exit 1
fi

# Kill mid-segment-write: `index build` under an armed segment-write
# failpoint leaves torn segments that the manifest already references.
# The next cached run must detect both, rebuild, and match cold verdicts.
rm -rf "$CACHE_DIR"; mkdir -p "$CACHE_DIR"
set +e
cargo run --release --quiet --bin relcheck -- \
    index build testdata/phones.spec --index-cache "$CACHE_DIR" \
    --fail-spec segment-write=1 --fail-seed 20070415 >/dev/null
set -e
run_cached "$WARM_OUT"
grep " via " "$WARM_OUT" | awk '{print $1, $2, $4}' > "$WARM_OUT.verdicts"
diff "$COLD_OUT.verdicts" "$WARM_OUT.verdicts"
if ! grep -q '"rebuilds":2' "$METRICS_OUT"; then
    echo "torn segments were not rebuilt" >&2
    exit 1
fi
if ! grep -q '"reason":"segment_corrupt"' "$METRICS_OUT"; then
    echo "metrics record no segment_corrupt recovery" >&2
    exit 1
fi

# Kill mid-journal-append: `index apply` dies half-way through the record
# (the delta is not acknowledged). Recovery truncates the torn tail and
# the cached run converges on the original cold verdicts.
set +e
cargo run --release --quiet --bin relcheck -- \
    index apply testdata/phones.spec --index-cache "$CACHE_DIR" \
    '+CUSTOMERS:Oshawa,905,ON' \
    --fail-spec journal-append=1 --fail-seed 20070415 >/dev/null
rc=$?
set -e
if [ "$rc" -ne 2 ]; then
    echo "torn journal append should report an operational error (got $rc)" >&2
    exit 1
fi
run_cached "$WARM_OUT"
grep " via " "$WARM_OUT" | awk '{print $1, $2, $4}' > "$WARM_OUT.verdicts"
diff "$COLD_OUT.verdicts" "$WARM_OUT.verdicts"
if ! grep -q '"reason":"journal_torn"' "$METRICS_OUT"; then
    echo "metrics record no journal_torn recovery" >&2
    exit 1
fi

# A healthy apply folds deltas durably: verify reports every relation ok.
# (The tuple is NOT in the base data, so insert-then-delete is net zero;
# deltas touching existing rows would genuinely change the database.)
cargo run --release --quiet --bin relcheck -- \
    index apply testdata/phones.spec --index-cache "$CACHE_DIR" \
    '+CUSTOMERS:Oshawa,416,ON' '-CUSTOMERS:Oshawa,416,ON' >/dev/null
cargo run --release --quiet --bin relcheck -- \
    index verify testdata/phones.spec --index-cache "$CACHE_DIR" >/dev/null
run_cached "$WARM_OUT"
grep " via " "$WARM_OUT" | awk '{print $1, $2, $4}' > "$WARM_OUT.verdicts"
diff "$COLD_OUT.verdicts" "$WARM_OUT.verdicts"

step "serve smoke: scripted incremental session vs batch recheck"
# A scripted session: one delta dirties CITY_STATE, so the check must
# re-verify only the two constraints reading it and answer the two
# CUSTOMERS-only constraints from cache. The session's verdicts (name +
# status) must match a batch `relcheck run` over the same cache — the
# journaled delta makes the batch run see the session's final state.
SERVE_DIR="$(mktemp -d /tmp/relcheck-serve.XXXXXX)"
SERVE_OUT="$(mktemp /tmp/relcheck-serve.XXXXXX.txt)"
BATCH_OUT="$(mktemp /tmp/relcheck-batch.XXXXXX.txt)"
trap 'rm -rf "$METRICS_OUT" "$PLAN_A" "$PLAN_B" "$CACHE_DIR" "$COLD_OUT" "$WARM_OUT" "$SERVE_DIR" "$SERVE_OUT" "$BATCH_OUT"' EXIT
set +e
printf '+CITY_STATE:Selkirk,MB\ncheck\nstats\nquit\n' | \
    cargo run --release --quiet --bin relcheck -- \
    serve testdata/phones.spec --index-cache "$SERVE_DIR" \
    --metrics "$METRICS_OUT" >"$SERVE_OUT"
rc=$?
set -e
if [ "$rc" -ge 2 ]; then
    echo "relcheck serve failed operationally (exit $rc)" >&2
    exit 1
fi
cargo run --release --quiet --bin relcheck -- metrics-check "$METRICS_OUT"
if ! grep -q '"serve":{"requests":4,"deltas":1,"checks":1,"constraints_checked":2,"constraints_skipped":2' "$METRICS_OUT"; then
    echo "serve metrics missing the expected session counters" >&2
    exit 1
fi
if ! grep -q 'ok check checked=2 skipped=2 dirty=1' "$SERVE_OUT"; then
    echo "serve session did not skip the read-set-disjoint constraints" >&2
    exit 1
fi
grep ' (checked)\| (cached)' "$SERVE_OUT" | awk '{print $1, $2}' | sort > "$SERVE_OUT.verdicts"
set +e
cargo run --release --quiet --bin relcheck -- \
    run testdata/phones.spec --index-cache "$SERVE_DIR" >"$BATCH_OUT"
rc=$?
set -e
if [ "$rc" -ge 2 ]; then
    echo "batch recheck of the serve cache failed operationally (exit $rc)" >&2
    exit 1
fi
grep " via " "$BATCH_OUT" | awk '{print $1, $2}' | sort > "$BATCH_OUT.verdicts"
diff "$SERVE_OUT.verdicts" "$BATCH_OUT.verdicts"
rm -f "$SERVE_OUT.verdicts" "$BATCH_OUT.verdicts"

step "overload smoke: 8 concurrent socket clients vs a depth-1 queue"
# A deliberately starved server: queue depth 1, shed threshold 0 (every
# admitted request runs on the exact SQL rung), 8 clients hammering it
# with certify/check traffic. The server must shed and reject under the
# load, keep every decided verdict correct, drain gracefully on quit,
# and emit a schema-v7 metrics document whose overload counters validate.
OVER_DIR="$(mktemp -d /tmp/relcheck-overload.XXXXXX)"
trap 'rm -rf "$METRICS_OUT" "$PLAN_A" "$PLAN_B" "$CACHE_DIR" "$COLD_OUT" "$WARM_OUT" "$SERVE_DIR" "$SERVE_OUT" "$BATCH_OUT" "$OVER_DIR"' EXIT
SOCK="$OVER_DIR/relcheck.sock"
BIN=./target/release/relcheck
"$BIN" serve testdata/phones.spec --socket "$SOCK" \
    --queue-depth 1 --shed-threshold-ms 0 --max-sessions 8 \
    --idle-timeout-ms 10000 --metrics "$OVER_DIR/metrics.json" \
    >"$OVER_DIR/server.out" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 200); do
    [ -S "$SOCK" ] && break
    sleep 0.05
done
if [ ! -S "$SOCK" ]; then
    echo "overload server never opened its socket" >&2
    cat "$OVER_DIR/server.out" >&2
    exit 1
fi
# Stale-socket guard: a second server against the *live* socket must
# refuse with a typed operational error, not steal the path.
set +e
"$BIN" serve testdata/phones.spec --socket "$SOCK" </dev/null \
    >"$OVER_DIR/second.out" 2>&1
rc=$?
set -e
if [ "$rc" -lt 2 ] || ! grep -q "already serving" "$OVER_DIR/second.out"; then
    echo "second server did not refuse the live socket (exit $rc)" >&2
    exit 1
fi
if [ ! -S "$SOCK" ]; then
    echo "refused server unlinked the live socket" >&2
    exit 1
fi
CLIENT_PIDS=""
for i in $(seq 1 8); do
    printf 'certify\ncheck\ncertify\ncheck\ncertify\ncheck\ncertify\ncheck\ncertify\ncheck\ncertify\ncheck\n' | \
        "$BIN" connect "$SOCK" >"$OVER_DIR/client$i.out" 2>&1 &
    CLIENT_PIDS="$CLIENT_PIDS $!"
done
# shellcheck disable=SC2086 # word-splitting the pid list is intended
wait $CLIENT_PIDS
# Quiet final client: its decided verdicts are the endpoint to diff.
printf 'check\nquit\n' | "$BIN" connect "$SOCK" >"$OVER_DIR/final.out"
set +e
wait "$SERVER_PID"
rc=$?
set -e
if [ "$rc" -ne 1 ]; then
    # phones.spec plants violations: a graceful drain exits 1.
    echo "overloaded server should drain and exit 1 (got $rc)" >&2
    cat "$OVER_DIR/server.out" >&2
    exit 1
fi
cargo run --release --quiet --bin relcheck -- metrics-check "$OVER_DIR/metrics.json"
if ! grep -Eq '"overload":\{"admitted":[1-9]' "$OVER_DIR/metrics.json"; then
    echo "overload metrics block missing or empty" >&2
    exit 1
fi
if ! grep -Eq '"shed":[1-9]' "$OVER_DIR/metrics.json"; then
    echo "starved server never shed a request" >&2
    exit 1
fi
if ! grep -Eq '"rejected":[1-9]' "$OVER_DIR/metrics.json"; then
    echo "starved server never rejected a request" >&2
    exit 1
fi
# Under all that shedding, the decided verdicts must match a batch run.
grep ' (checked)\| (cached)' "$OVER_DIR/final.out" | awk '{print $1, $2}' | sort \
    > "$OVER_DIR/final.verdicts"
set +e
"$BIN" run testdata/phones.spec >"$OVER_DIR/batch.out"
rc=$?
set -e
if [ "$rc" -ge 2 ]; then
    echo "overload batch reference failed operationally (exit $rc)" >&2
    exit 1
fi
grep " via " "$OVER_DIR/batch.out" | awk '{print $1, $2}' | sort \
    > "$OVER_DIR/batch.verdicts"
diff "$OVER_DIR/final.verdicts" "$OVER_DIR/batch.verdicts"

# Fault-armed stdin regression: a journal that tears on every append
# exhausts the retry budget, degrades the delta to rows-only — reply
# marked `durable=false` — and the session still answers exactly (the
# dirtied relation re-checks on the SQL rung, the rest stay cached).
# The reply bytes and retry count are deterministic.
set +e
printf '+CITY_STATE:Selkirk,MB\ncheck\nquit\n' | \
    "$BIN" serve testdata/phones.spec --index-cache "$OVER_DIR/fault-cache" \
    --fail-spec journal-append=1 --fail-seed 20070415 \
    --metrics "$OVER_DIR/fault.json" >"$OVER_DIR/fault.out"
rc=$?
set -e
if [ "$rc" -ne 1 ]; then
    echo "fault-armed serve should exit 1 on the violation fixture (got $rc)" >&2
    exit 1
fi
cargo run --release --quiet --bin relcheck -- metrics-check "$OVER_DIR/fault.json"
if ! grep -q 'ok delta +CITY_STATE applied=true dirty=1 durable=false' "$OVER_DIR/fault.out"; then
    echo "retry-exhausted delta reply missing the durable=false marker" >&2
    exit 1
fi
if ! grep -q 'ok check checked=2 skipped=2 dirty=1' "$OVER_DIR/fault.out"; then
    echo "fault-armed session lost read-set-driven skipping" >&2
    exit 1
fi
if ! grep -Eq '"overload":\{"admitted":3,"shed":0,"rejected":0,"retries":3' "$OVER_DIR/fault.json"; then
    echo "fault-armed session metrics missing the absorbed retries" >&2
    exit 1
fi

step "audit smoke: run → certify → verify → tamper → expect rejection"
# The trust-but-verify loop end to end: a certified run writes a bundle
# whose every decided certificate passes the independent re-check; a
# single-character tamper of a witness value must be rejected (exit 1
# from `audit verify`, with the typed error on the offending line).
BUNDLE="$(mktemp /tmp/relcheck-bundle.XXXXXX.json)"
TAMPERED="$(mktemp /tmp/relcheck-tampered.XXXXXX.json)"
AUDIT_OUT="$(mktemp /tmp/relcheck-audit.XXXXXX.txt)"
trap 'rm -rf "$METRICS_OUT" "$PLAN_A" "$PLAN_B" "$CACHE_DIR" "$COLD_OUT" "$WARM_OUT" "$SERVE_DIR" "$SERVE_OUT" "$BATCH_OUT" "$BUNDLE" "$TAMPERED" "$AUDIT_OUT"' EXIT
set +e
cargo run --release --quiet --bin relcheck -- \
    run testdata/phones.spec --certify "$BUNDLE" --metrics "$METRICS_OUT" >/dev/null
rc=$?
set -e
if [ "$rc" -ne 1 ]; then
    # phones.spec plants violations: exit 1 is the certified-violations
    # outcome; 0 would mean the fixture lost them, >=2 an operational or
    # self-verification failure.
    echo "certified run should exit 1 on the violation fixture (got $rc)" >&2
    exit 1
fi
cargo run --release --quiet --bin relcheck -- metrics-check "$METRICS_OUT"
if ! grep -q '"audit":{"emitted":4,"verified":4,"failed":0' "$METRICS_OUT"; then
    echo "run metrics missing the schema-v6 audit block" >&2
    exit 1
fi
cargo run --release --quiet --bin relcheck -- \
    audit verify testdata/phones.spec "$BUNDLE" >"$AUDIT_OUT"
if ! grep -q '4 verified, 0 unauditable, 0 failed' "$AUDIT_OUT"; then
    echo "audit verify did not validate every certificate" >&2
    exit 1
fi
# `audit emit` must reproduce a bundle that verifies identically.
cargo run --release --quiet --bin relcheck -- \
    audit emit testdata/phones.spec "$TAMPERED" >/dev/null
cargo run --release --quiet --bin relcheck -- \
    audit verify testdata/phones.spec "$TAMPERED" >/dev/null
# Tamper one witness value (the 212 prefix violation becomes 213, a
# value outside the areacode domain) and expect the typed rejection.
sed 's/{"int":212}/{"int":213}/' "$BUNDLE" > "$TAMPERED"
if cmp -s "$BUNDLE" "$TAMPERED"; then
    echo "tamper sed matched nothing; fixture witnesses changed?" >&2
    exit 1
fi
set +e
cargo run --release --quiet --bin relcheck -- \
    audit verify testdata/phones.spec "$TAMPERED" >"$AUDIT_OUT"
rc=$?
set -e
if [ "$rc" -ne 1 ]; then
    echo "tampered bundle must fail audit verify with exit 1 (got $rc)" >&2
    exit 1
fi
if ! grep -q 'FAILED' "$AUDIT_OUT"; then
    echo "tampered bundle rejection missing the FAILED line" >&2
    exit 1
fi

step "advise smoke: record workload → advise → --route auto differential"
# Record a workload profile into a fresh cache dir, then: the advise
# report must be byte-identical across two runs (the determinism the
# tooling pins), `--route auto` must produce exactly the static run's
# verdict lines, and both metrics documents must carry a schema-v8
# policy block that validates.
ADVISE_DIR="$(mktemp -d /tmp/relcheck-advise.XXXXXX)"
ADVISE_A="$(mktemp /tmp/relcheck-advise-a.XXXXXX.txt)"
ADVISE_B="$(mktemp /tmp/relcheck-advise-b.XXXXXX.txt)"
ROUTE_STATIC="$(mktemp /tmp/relcheck-route-static.XXXXXX.txt)"
ROUTE_AUTO="$(mktemp /tmp/relcheck-route-auto.XXXXXX.txt)"
trap 'rm -rf "$METRICS_OUT" "$PLAN_A" "$PLAN_B" "$CACHE_DIR" "$COLD_OUT" "$WARM_OUT" "$SERVE_DIR" "$SERVE_OUT" "$BATCH_OUT" "$BUNDLE" "$TAMPERED" "$AUDIT_OUT" "$ADVISE_DIR" "$ADVISE_A" "$ADVISE_B" "$ROUTE_STATIC" "$ROUTE_AUTO"' EXIT
set +e
cargo run --release --quiet --bin relcheck -- \
    run testdata/phones.spec --index-cache "$ADVISE_DIR" \
    --metrics "$METRICS_OUT" >"$ROUTE_STATIC"
rc=$?
set -e
if [ "$rc" -ne 1 ]; then
    echo "profile-recording run should exit 1 on the violation fixture (got $rc)" >&2
    exit 1
fi
if [ ! -f "$ADVISE_DIR/workload.profile" ]; then
    echo "run did not persist the workload profile next to the index cache" >&2
    exit 1
fi
# Two advise passes over the same recorded workload: byte-identical.
cargo run --release --quiet --bin relcheck -- \
    advise testdata/phones.spec --index-cache "$ADVISE_DIR" >"$ADVISE_A"
cargo run --release --quiet --bin relcheck -- \
    advise testdata/phones.spec --index-cache "$ADVISE_DIR" >"$ADVISE_B"
cmp "$ADVISE_A" "$ADVISE_B"
# Auto-routed run: verdict lines byte-identical to the static run, and
# the metrics document gains a validating policy block.
set +e
cargo run --release --quiet --bin relcheck -- \
    run testdata/phones.spec --index-cache "$ADVISE_DIR" --route auto \
    --metrics "$METRICS_OUT" >"$ROUTE_AUTO"
rc=$?
set -e
if [ "$rc" -ne 1 ]; then
    echo "--route auto changed the run exit code (got $rc, want 1)" >&2
    exit 1
fi
grep " via " "$ROUTE_STATIC" | awk '{print $1, $2}' > "$ROUTE_STATIC.verdicts"
grep " via " "$ROUTE_AUTO" | awk '{print $1, $2}' > "$ROUTE_AUTO.verdicts"
diff "$ROUTE_STATIC.verdicts" "$ROUTE_AUTO.verdicts"
cargo run --release --quiet --bin relcheck -- metrics-check "$METRICS_OUT"
if ! grep -q '"schema_version":8' "$METRICS_OUT"; then
    echo "auto-routed run metrics is not schema v8" >&2
    exit 1
fi
if ! grep -q '"policy":{' "$METRICS_OUT"; then
    echo "auto-routed run metrics missing the policy block" >&2
    exit 1
fi

if [ "$QUICK" -eq 0 ]; then
    step "chaos soak: serve-mode fault injection + certificate audits (~10 s)"
    RELCHECK_CHAOS_SOAK_MS="${RELCHECK_CHAOS_SOAK_MS:-10000}" \
        cargo test --release -q -p relcheck-core --test chaos -- --ignored
fi

step "bench smoke: small BENCH_table1.json emission + schema validation"
# A small-size run of the table1 BENCH emitter must produce a document
# that bench-check accepts, and the committed trajectory files (when
# present) must stay schema-valid too.
BENCH_OUT="$(mktemp /tmp/relcheck-bench.XXXXXX.json)"
trap 'rm -rf "$METRICS_OUT" "$PLAN_A" "$PLAN_B" "$CACHE_DIR" "$COLD_OUT" "$WARM_OUT" "$SERVE_DIR" "$SERVE_OUT" "$BATCH_OUT" "$BENCH_OUT"' EXIT
cargo run --release --quiet -p relcheck-bench --bin table1 -- \
    --tuples 2000 --samples 1 --json "$BENCH_OUT" >/dev/null
cargo run --release --quiet --bin relcheck -- bench-check "$BENCH_OUT"
committed=""
for f in BENCH_table1.json BENCH_par_scaling.json BENCH_dynamic.json; do
    [ -f "$f" ] && committed="$committed $f"
done
if [ -n "$committed" ]; then
    # shellcheck disable=SC2086 # word-splitting the file list is intended
    cargo run --release --quiet --bin relcheck -- bench-check $committed
fi

step "formatting (cargo fmt --check)"
cargo fmt --all --check

step "lints (cargo clippy -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo
echo "ci.sh: all checks passed"
