#!/usr/bin/env bash
# Offline CI gate for the relcheck workspace.
#
# Runs the tier-1 verification (release build + root test suite) plus the
# full workspace tests, formatting, and lint checks. Everything here works
# without network access: the workspace has no external dependencies and
# CARGO_NET_OFFLINE is forced below as a belt-and-braces guard.
#
# Usage: scripts/ci.sh [--quick]
#   --quick   skip the full workspace test pass (tier-1 + fmt + clippy only)

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

QUICK=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

step() { echo; echo "==> $*"; }

step "tier-1: release build"
cargo build --release

step "tier-1: root test suite"
cargo test -q

if [ "$QUICK" -eq 0 ]; then
    step "full workspace tests"
    cargo test -q --workspace
fi

step "metrics smoke: relcheck run --metrics on testdata/ + schema validation"
# phones.spec contains deliberate violations, so `run` exits 1 (violations
# found). Exit 2 is an operational error and must fail CI.
METRICS_OUT="$(mktemp /tmp/relcheck-metrics.XXXXXX.json)"
trap 'rm -f "$METRICS_OUT"' EXIT
set +e
cargo run --release --quiet --bin relcheck -- \
    run testdata/phones.spec --threads 4 --metrics "$METRICS_OUT"
rc=$?
set -e
if [ "$rc" -ge 2 ]; then
    echo "relcheck run failed operationally (exit $rc)" >&2
    exit 1
fi
cargo run --release --quiet --bin relcheck -- metrics-check "$METRICS_OUT"

step "fault-injection smoke: each failpoint site, fixed seed"
# Fire every site at probability 1 with a fixed seed; the run must still
# terminate cleanly (exit 0 — injected faults are reported as DEGRADED/
# ERRORED, not as violations — or exit 1 when the surviving constraints
# include the fixture's genuine violations), the metrics document must
# stay schema-valid, and the degradation section must record the firing.
for site in index-build snapshot-decode lane-spawn apply sql-fallback; do
    spec="$site=1"
    # The sql-fallback site only fires once the ladder actually reaches the
    # SQL rung, so knock out the BDD rung alongside it.
    if [ "$site" = sql-fallback ]; then spec="apply=1,sql-fallback=1"; fi
    set +e
    cargo run --release --quiet --bin relcheck -- \
        run testdata/phones.spec --threads 2 \
        --fail-spec "$spec" --fail-seed 20070415 \
        --metrics "$METRICS_OUT" >/dev/null
    rc=$?
    set -e
    if [ "$rc" -ge 2 ]; then
        echo "fault-injection run for site $site failed operationally (exit $rc)" >&2
        exit 1
    fi
    cargo run --release --quiet --bin relcheck -- metrics-check "$METRICS_OUT"
    if ! grep -q "\"failpoints\":{\"seed\":\"20070415\"" "$METRICS_OUT"; then
        echo "metrics for site $site missing the armed failpoint seed" >&2
        exit 1
    fi
    if ! grep -q "{\"site\":\"$site\",\"count\":[1-9]" "$METRICS_OUT"; then
        echo "metrics for site $site record no firing at that site" >&2
        exit 1
    fi
done

step "formatting (cargo fmt --check)"
cargo fmt --all --check

step "lints (cargo clippy -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo
echo "ci.sh: all checks passed"
