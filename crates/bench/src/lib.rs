#![warn(missing_docs)]

//! # relcheck-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (Section 5):
//!
//! | target      | reproduces                                                    |
//! |-------------|---------------------------------------------------------------|
//! | `fig2`      | Fig 2(a) ordering effect; 2(b,c) heuristic rankings           |
//! | `fig3`      | Fig 3(a,b) α/β histograms; 3(c) accuracy comparison           |
//! | `fig4`      | Fig 4(a,b,c) index build time / update time / node count      |
//! | `fig5`      | Fig 5(a) join & implication constraints; 5(b) FD check        |
//! | `fig6`      | Fig 6(a) join rewrite; 6(b) ∃ pull-up; 6(c) ∀ push-down       |
//! | `table1`    | Table 1: Q1–Q5, SQL vs BDD-random vs BDD-optimized            |
//! | `threshold` | §5.2 node-buffer fill times (10³ … 10⁷ nodes)                 |
//! | `dynamic`   | update-stream re-validation: SQL vs BDD vs BDD+registry       |
//! | `par_scaling` | serial vs parallel constraint checking at 1/2/4/8 workers   |
//!
//! Run with `cargo run -p relcheck-bench --release --bin <target> [-- args]`.
//! Each binary accepts `--tuples N` (and prints its defaults) so the
//! paper-scale experiment and a quick smoke run are both one command away.
//! Self-timed micro-benchmarks (`benches/microbench.rs`) cover the same
//! rewrite ablations; `cargo bench -p relcheck-bench` runs them.

pub mod queries;
pub mod report;
pub mod runs;

use std::time::{Duration, Instant};

/// Time a closure once, returning (result, wall-clock duration).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Milliseconds with one decimal, for table cells.
pub fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

/// Seconds with two decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Parse `--flag value` style integer arguments, with a default.
pub fn arg_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Is a bare flag present?
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Parse `--flag value` style string arguments (e.g. `--metrics out.json`).
pub fn arg_str(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// First free-standing (non `--` prefixed, non-value) argument, e.g. the
/// subfigure selector `a` / `b` / `c`.
pub fn arg_selector() -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a.starts_with("--") {
            skip_next = true;
            continue;
        }
        return Some(a);
    }
    None
}

/// Fixed-width text table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: vec![],
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
    }

    /// Render to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("  {}", parts.join("  "));
        };
        line(&self.headers);
        println!(
            "  {}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            line(row);
        }
    }
}

/// Simple text histogram: counts per bin over [lo, hi) with an overflow
/// bin, matching the paper's Figure 3 binning (threshold at `hi`).
pub fn histogram(values: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<(String, usize)> {
    let width = (hi - lo) / bins as f64;
    let mut counts = vec![0usize; bins + 1];
    for &v in values {
        if v >= hi {
            counts[bins] += 1;
        } else if v >= lo {
            counts[((v - lo) / width) as usize] += 1;
        }
    }
    let mut out = Vec::new();
    for (i, &c) in counts.iter().enumerate().take(bins) {
        let a = lo + i as f64 * width;
        out.push((format!("[{:.2},{:.2})", a, a + width), c));
    }
    out.push((format!("≥{hi:.2}"), counts[bins]));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_and_overflow() {
        let h = histogram(&[1.0, 1.1, 1.4, 2.4, 9.0], 1.0, 2.5, 3);
        assert_eq!(h.len(), 4);
        let total: usize = h.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 5);
        assert_eq!(h[3].1, 1, "9.0 lands in the overflow bin");
        assert_eq!(h[0].1, 3, "1.0, 1.1, 1.4 in the first bin");
    }

    #[test]
    fn table_accepts_matching_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        t.print();
    }

    #[test]
    fn timed_measures_something() {
        let (v, d) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}
