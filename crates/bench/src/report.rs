//! Machine-readable benchmark documents — the committed `BENCH_*.json`
//! trajectory files.
//!
//! Each experiment binary can emit one schema-version-1 document (see
//! `DESIGN.md` §"BENCH schema") recording, per measured configuration:
//! wall time in nanoseconds, the manager's arena high-water mark, the
//! operation-cache hit rate, and the variable ordering that was actually
//! used. A document additionally carries `comparisons` — honest
//! before/after pairs measured in the same process on the same host, the
//! trajectory CI validates with `relcheck bench-check` (the validator
//! itself lives in `relcheck_core::telemetry::validate_bench_json`, next
//! to the metrics-schema validator).
//!
//! Timing fields (`wall_ns`, `*_before`/`*_after` wall pairs) vary run to
//! run; every other field is a pure function of the workload seed, which
//! is what the same-seed determinism test pins.

/// One measured configuration (a query under a variant, a worker count,
/// an update-stream strategy, …).
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// What was measured (e.g. `"Q3"`, `"workers-4"`, `"bdd-recheck"`).
    pub name: String,
    /// The engine configuration it ran under (e.g. `"shared-adaptive"`).
    pub variant: String,
    /// Wall-clock time, nanoseconds. The only non-deterministic field.
    pub wall_ns: u64,
    /// Manager arena high-water mark after the measurement.
    pub peak_nodes: u64,
    /// Operation-cache hit rate over the measured window, in `[0, 1]`
    /// (`0` when the window performed no cache lookups).
    pub cache_hit_rate: f64,
    /// The ordering in effect: an `OrderingStrategy::name()`, an
    /// `"adaptive:<candidate>"` pick, or `"n/a"` for non-BDD paths.
    pub ordering: String,
}

/// An honest before/after pair: both sides measured in this run.
#[derive(Debug, Clone)]
pub struct BenchComparison {
    /// What the comparison is about (e.g. `"table1-total"`).
    pub name: String,
    /// The variant measured as "before".
    pub baseline: String,
    /// The variant measured as "after".
    pub candidate: String,
    /// Baseline wall time, nanoseconds.
    pub wall_ns_before: u64,
    /// Candidate wall time, nanoseconds.
    pub wall_ns_after: u64,
    /// Baseline arena high-water mark.
    pub peak_nodes_before: u64,
    /// Candidate arena high-water mark.
    pub peak_nodes_after: u64,
}

/// A full benchmark document for one experiment binary.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Which experiment: `"table1"`, `"par_scaling"`, or `"dynamic"`.
    pub bench: String,
    /// The knobs the run was invoked with, in document order.
    pub config: Vec<(String, u64)>,
    /// Per-configuration measurements.
    pub entries: Vec<BenchEntry>,
    /// Before/after pairs measured in this run.
    pub comparisons: Vec<BenchComparison>,
}

/// Current BENCH document schema version.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl BenchReport {
    /// Serialize to the schema-version-1 JSON document (pretty-printed,
    /// one entry per line, trailing newline — diff-friendly for a
    /// committed file).
    pub fn to_json(&self) -> String {
        let mut o = String::new();
        o.push_str("{\n");
        o.push_str(&format!(
            "  \"schema_version\": {BENCH_SCHEMA_VERSION},\n  \"kind\": \"bench\",\n"
        ));
        o.push_str(&format!("  \"bench\": \"{}\",\n", esc(&self.bench)));
        o.push_str("  \"config\": {");
        for (i, (k, v)) in self.config.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            o.push_str(&format!("\"{}\": {v}", esc(k)));
        }
        o.push_str("},\n  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            o.push_str(&format!(
                "    {{\"name\": \"{}\", \"variant\": \"{}\", \"wall_ns\": {}, \
                 \"peak_nodes\": {}, \"cache_hit_rate\": {:.4}, \"ordering\": \"{}\"}}{}\n",
                esc(&e.name),
                esc(&e.variant),
                e.wall_ns,
                e.peak_nodes,
                e.cache_hit_rate,
                esc(&e.ordering),
                if i + 1 < self.entries.len() { "," } else { "" },
            ));
        }
        o.push_str("  ],\n  \"comparisons\": [\n");
        for (i, c) in self.comparisons.iter().enumerate() {
            o.push_str(&format!(
                "    {{\"name\": \"{}\", \"baseline\": \"{}\", \"candidate\": \"{}\", \
                 \"wall_ns_before\": {}, \"wall_ns_after\": {}, \
                 \"peak_nodes_before\": {}, \"peak_nodes_after\": {}}}{}\n",
                esc(&c.name),
                esc(&c.baseline),
                esc(&c.candidate),
                c.wall_ns_before,
                c.wall_ns_after,
                c.peak_nodes_before,
                c.peak_nodes_after,
                if i + 1 < self.comparisons.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        o.push_str("  ]\n}\n");
        o
    }
}

/// Cache hit rate of a [`relcheck_bdd::StatsDelta`] window, `0.0` when the
/// window saw no lookups.
pub fn hit_rate(d: &relcheck_bdd::StatsDelta) -> f64 {
    let total = d.cache_hits + d.cache_misses;
    if total == 0 {
        0.0
    } else {
        d.cache_hits as f64 / total as f64
    }
}
