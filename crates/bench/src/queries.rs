//! Q1–Q5: the Table 1 constraint workload.
//!
//! The paper omits its five queries ("detailed description omitted due to
//! space limitations"); we define five representative constraints spanning
//! the paper's motif set, over a structured synthetic relation `R1`
//! (1-PROD, 5 attributes, |dom| = 100 — where variable ordering matters), a
//! companion relation `R2`, and the introduction's curriculum schema:
//!
//! * **Q1** — set-membership implication:
//!   `∀v̄. R1(v̄) ∧ v0 ∈ S → v1 ∈ T` (the `city → areacode-set` motif);
//! * **Q2** — two-column implication: `∀v̄. R1(v̄) ∧ v0 = c → v2 = d`
//!   (the `city='Toronto' → state='Ontario'` motif);
//! * **Q3** — functional dependency as a self-join:
//!   `∀… R1(a, b, …) ∧ R1(a, b', …) → b = b'`;
//! * **Q4** — inclusion dependency with ∃:
//!   `∀v̄. R1(v̄) → ∃u. R2(v0, v1, u)`;
//! * **Q5** — the paper's Formula 1 (three-relation ∀∃ policy):
//!   CS students must take a Programming course.

use relcheck_datagen::curriculum::{populate, CurriculumConfig};
use relcheck_datagen::gen_kprod;
use relcheck_logic::{parse, Formula};
use relcheck_relstore::{Database, Relation, Schema};

/// The five queries, parsed.
pub fn queries() -> Vec<(&'static str, Formula)> {
    vec![
        (
            "Q1",
            parse(
                "forall v0, v1, v2, v3, v4.
                   R1(v0, v1, v2, v3, v4) & v0 in {0, 1, 2, 3, 4, 5, 6, 7} ->
                   v1 in {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}",
            )
            .unwrap(),
        ),
        (
            "Q2",
            parse(
                "forall v0, v1, v2, v3, v4.
                   R1(v0, v1, v2, v3, v4) & v0 = 1 -> v2 = 1",
            )
            .unwrap(),
        ),
        (
            "Q3",
            parse(
                "forall v0, v1, v2, v3, v4, w1, w2, w3, w4.
                   R1(v0, v1, v2, v3, v4) & R1(v0, w1, w2, w3, w4) -> v1 = w1",
            )
            .unwrap(),
        ),
        (
            "Q4",
            parse(
                "forall v0, v1, v2, v3, v4.
                   R1(v0, v1, v2, v3, v4) -> exists u. R2(v0, v1, u)",
            )
            .unwrap(),
        ),
        (
            "Q5",
            parse(
                r#"forall s, z. STUDENT(s, "CS", z) ->
                     exists k. (COURSE(k, "Programming") & TAKES(s, k))"#,
            )
            .unwrap(),
        ),
    ]
}

/// Build the full Table 1 database (R1, R2, STUDENT/COURSE/TAKES).
pub fn build(tuples: usize, seed: u64) -> Database {
    let mut db = Database::new();
    let g1 = gen_kprod(5, 100, tuples, 1, seed);
    for i in 0..5 {
        db.ensure_class_size(&format!("a{i}"), 100);
    }
    let r1 = Relation::from_rows(
        Schema::new(&[
            ("v0", "a0"),
            ("v1", "a1"),
            ("v2", "a2"),
            ("v3", "a3"),
            ("v4", "a4"),
        ]),
        g1.relation.rows(),
    )
    .unwrap();
    // R2(v0, v1, u): the projection of R1 on (v0, v1) crossed with a small
    // u column — so Q4's inclusion dependency is satisfied by construction.
    db.ensure_class_size("u", 16);
    let mut r2_rows = Vec::new();
    for row in g1.relation.rows() {
        for u in 0..2u32 {
            r2_rows.push(vec![row[0], row[1], u]);
        }
    }
    let r2 = Relation::from_rows(
        Schema::new(&[("v0", "a0"), ("v1", "a1"), ("u", "u")]),
        r2_rows,
    )
    .unwrap();
    db.insert_relation("R1", r1).unwrap();
    db.insert_relation("R2", r2).unwrap();
    populate(
        &mut db,
        &CurriculumConfig {
            students: (tuples / 20).max(100),
            violating_students: 3,
            ..Default::default()
        },
    );
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcheck_core::checker::{Checker, CheckerOptions};

    #[test]
    fn queries_run_on_the_database() {
        let db = build(3_000, 5);
        let mut ck = Checker::new(db, CheckerOptions::default());
        for (name, q) in queries() {
            let r = ck.check(&q).unwrap();
            match name {
                // Q4 holds by construction; Q5 violated (3 injected).
                "Q4" => assert!(r.holds, "{name}"),
                "Q5" => assert!(!r.holds, "{name}"),
                _ => {} // data-dependent
            }
        }
    }

    #[test]
    fn q5_detects_exactly_injected_violators() {
        let db = build(2_000, 9);
        let mut ck = Checker::new(db, CheckerOptions::default());
        let q5 = &queries()[4].1;
        assert!(!ck.check(q5).unwrap().holds);
        let (viol, _) = ck.find_violations(q5).unwrap();
        assert_eq!(viol.len(), 3, "three violating students injected");
    }
}
