//! Table 1 — variable-ordering gain on end-to-end constraint checking.
//!
//! For Q1–Q5 (see `relcheck_bench::queries`), compare:
//!
//! * **SQL** — the translated relational plan (paper's baseline);
//! * **BDD: random** — logical indices built under a random attribute
//!   ordering;
//! * **BDD: optimized** — indices built with `Prob-Converge`;
//! * **BDD: no rewrites** — the optimized ordering with the planner's
//!   rewrite passes disabled (`PlanOptions::from_flags(false, true)`), the
//!   paper's "straight-forward evaluation" ablation.
//!
//! Index construction is done up-front (indices are persistent); the table
//! reports per-query checking time, as in the paper. Expected shape:
//! random ordering gains up to ~2x over SQL; the optimized ordering pushes
//! the overall gain to 4–6x.
//!
//! Flags: `--tuples N` (default 100000), `--metrics PATH` (write the
//! schema-version-1 metrics JSON of a telemetry-enabled serial pass over
//! Q1–Q5 under the optimized ordering — the same document
//! `relcheck run --metrics` emits), `--json PATH` (run the before/after
//! BENCH measurement — unshared+static vs shared+adaptive — and write the
//! `BENCH_table1.json` trajectory document; validate with `relcheck
//! bench-check`).

use relcheck_bench::{arg_str, arg_usize, ms, queries, timed, Table};
use relcheck_core::checker::{Checker, CheckerOptions, Method};
use relcheck_core::ordering::OrderingStrategy;
use relcheck_core::telemetry::{validate_metrics_json, RunMetrics};
use relcheck_core::PlanOptions;

fn main() {
    let tuples = arg_usize("--tuples", 100_000);
    println!("Table 1: SQL vs BDD(random ordering) vs BDD(Prob-Converge), {tuples} tuples\n");
    let qs = queries::queries();
    let mut rows: Vec<Vec<String>> = vec![
        vec!["SQL".to_owned()],
        vec!["BDD: random".to_owned()],
        vec!["BDD: optimized".to_owned()],
        vec!["BDD: no rewrites".to_owned()],
        vec!["index sizes (nodes)".to_owned()],
    ];
    // SQL baseline.
    {
        let mut ck = Checker::new(queries::build(tuples, 77), CheckerOptions::default());
        for (_, q) in &qs {
            let (r, t) = timed(|| ck.check_sql(q).unwrap());
            assert_ne!(r.method, Method::Bdd);
            rows[0].push(ms(t));
        }
    }
    // BDD paths: the two orderings, plus a rewrite-ablation row (the
    // optimized ordering with the pass pipeline switched off — the
    // "straight-forward evaluation" the paper improves upon).
    for (row_idx, strategy, plan) in [
        (1, OrderingStrategy::Random(3), PlanOptions::default()),
        (2, OrderingStrategy::ProbConverge, PlanOptions::default()),
        (
            3,
            OrderingStrategy::ProbConverge,
            PlanOptions::from_flags(false, true),
        ),
    ] {
        let opts = CheckerOptions {
            ordering: strategy,
            plan,
            ..Default::default()
        };
        let mut ck = Checker::new(queries::build(tuples, 77), opts);
        // Pre-build indices (they are the persistent logical index).
        for rel in ["R1", "R2", "STUDENT", "COURSE", "TAKES"] {
            ck.ensure_index(rel).unwrap();
        }
        let mut sizes = String::new();
        for (name, q) in &qs {
            let (r, t) = timed(|| ck.check(q).unwrap());
            let cell = if r.method == Method::Bdd {
                ms(t)
            } else {
                format!("{} (fallback)", ms(t))
            };
            rows[row_idx].push(cell);
            let _ = name;
        }
        sizes.push_str(&ck.logical_db().index_size().to_string());
        if row_idx == 1 {
            rows[4].push(format!("random: {sizes}"));
        } else if row_idx == 2 {
            rows[4].push(format!("optimized: {sizes}"));
        }
        while rows[4].len() < qs.len() + 1 {
            rows[4].push(String::new());
        }
    }
    let mut t = Table::new(&["Approach", "Q1", "Q2", "Q3", "Q4", "Q5"]);
    for row in rows.iter().take(4) {
        t.row(row);
    }
    t.print();
    println!("\n(time in milliseconds)");
    println!("{}", rows[4].join("  "));
    println!(
        "\nPaper expectation (Table 1): SQL slowest; BDD with random ordering ~2x faster;\n\
         BDD with the Prob-Converge ordering 4-6x faster than SQL. Index under random\n\
         ordering is up to ~5x larger than under the optimized ordering."
    );

    // Optional: emit the machine-readable metrics of a telemetry-enabled
    // serial pass under the optimized ordering (same schema as
    // `relcheck run --metrics`).
    if let Some(path) = arg_str("--metrics") {
        let opts = CheckerOptions {
            ordering: OrderingStrategy::ProbConverge,
            telemetry: true,
            ..Default::default()
        };
        let mut ck = Checker::new(queries::build(tuples, 77), opts);
        let battery: Vec<(String, relcheck_logic::Formula)> = qs
            .iter()
            .map(|(n, q)| ((*n).to_owned(), q.clone()))
            .collect();
        let (reports, fleet) = ck.check_all_parallel_telemetry(&battery, 1).unwrap();
        let doc = RunMetrics::from_reports(&reports, Some(fleet), 1).to_json();
        validate_metrics_json(&doc).expect("emitted metrics must be schema-valid");
        std::fs::write(&path, doc).expect("write metrics file");
        println!("\nmetrics written to {path}");
    }

    // Optional: emit the BENCH trajectory document (a separate, self-
    // contained before/after measurement of the sharing + adaptive-
    // ordering configuration against the per-constraint static one).
    if let Some(path) = arg_str("--json") {
        let samples = arg_usize("--samples", 3);
        let doc = relcheck_bench::runs::table1(tuples, samples).to_json();
        relcheck_core::telemetry::validate_bench_json(&doc)
            .expect("emitted bench document must be schema-valid");
        std::fs::write(&path, doc).expect("write bench file");
        println!("bench document written to {path}");
    }
}
