//! Figure 5 — BDD vs SQL constraint checking on customer data.
//!
//! * Fig 5(a): constraints of the form `if city='X' then areacode ∈ S`
//!   held in a 10,000-row `CONSTRAINTS(city, areacode)` relation, and
//!   `if city='X' then state='Y'` in `CITY_STATE(city, state)`. The BDD
//!   approach encodes the constraint relation on the fly and conjoins with
//!   the base-relation index; the SQL approach joins base × constraints.
//! * Fig 5(b): the functional dependency `areacode → state`, BDD projection
//!   + model counting vs SQL group-by.
//!
//! Flags: `--max N` (default 400000), `--step N` (default 50000),
//! `--constraints N` (default 10000).

use relcheck_bench::{arg_usize, ms, timed, Table};
use relcheck_core::checker::{Checker, CheckerOptions, Method};
use relcheck_datagen::customer::{generate, CustomerConfig, CustomerData};
use relcheck_datagen::rng::SplitMix64;
use relcheck_logic::parse;
use relcheck_relstore::{Database, Relation, Schema};

/// Build the experiment database with `n` customer rows plus the two
/// constraint relations derived from the generating model.
fn build_db(data: &CustomerData, n: usize, n_constraints: usize, seed: u64) -> Database {
    let mut db = Database::new();
    // The paper's logical index for these constraints is `ncs` on
    // (areacode, city, state) (§5.2): the base relation enters the checker
    // as that projection of the first n customer rows.
    let sub = Relation::from_rows(
        Schema::new(&[
            ("areacode", "areacode"),
            ("city", "city"),
            ("state", "state"),
        ]),
        (0..n.min(data.relation.len())).map(|i| {
            let r = data.relation.row(i);
            vec![r[0], r[2], r[3]]
        }),
    )
    .unwrap();
    // Dense integer dictionaries so codes equal model values.
    for (class, size) in [
        ("areacode", data.dom_sizes[0]),
        ("city", data.dom_sizes[2]),
        ("state", data.dom_sizes[3]),
    ] {
        db.ensure_class_size(class, size);
    }
    db.insert_relation("CUST", sub).unwrap();

    // CONSTRAINTS(city, areacode): the allowed pairs for a sample of
    // cities — by construction every customer tuple satisfies them.
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut pairs = Vec::with_capacity(n_constraints);
    while pairs.len() < n_constraints {
        let city = rng.gen_range(0..data.dom_sizes[2]) as u32;
        let state = data.city_state[city as usize];
        // Whole city groups only: a truncated group would wrongly forbid
        // some of the city's legitimate area codes.
        for &ac in &data.state_areacodes[state as usize] {
            pairs.push(vec![city, ac]);
        }
    }
    let constraints = Relation::from_rows(
        Schema::new(&[("city", "city"), ("areacode", "areacode")]),
        pairs,
    )
    .unwrap();
    db.insert_relation("CONSTRAINTS", constraints).unwrap();

    // CITY_STATE(city, state): model mapping for a sample of cities.
    let cs_rows: Vec<Vec<u32>> = (0..data.dom_sizes[2] as u32)
        .map(|city| vec![city, data.city_state[city as usize]])
        .collect();
    let city_state = Relation::from_rows(
        Schema::new(&[("city", "city"), ("state", "state")]),
        cs_rows,
    )
    .unwrap();
    db.insert_relation("CITY_STATE", city_state).unwrap();
    db
}

fn main() {
    let max = arg_usize("--max", 400_000);
    let step = arg_usize("--step", 50_000);
    let n_constraints = arg_usize("--constraints", 10_000);
    let data = generate(&CustomerConfig {
        rows: max,
        ..Default::default()
    });

    let membership = parse(
        "forall a, c, s, a2.
           CUST(a, c, s) & CONSTRAINTS(c, a2) -> CONSTRAINTS(c, a)",
    )
    .unwrap();
    let implication = parse(
        "forall a, c, s, s2.
           CUST(a, c, s) & CITY_STATE(c, s2) -> s = s2",
    )
    .unwrap();

    println!("Figure 5(a): BDD vs SQL, membership and implication constraints");
    println!("({n_constraints} constraints; BDD time includes on-the-fly constraint encoding)\n");
    let mut ta = Table::new(&[
        "base rows",
        "c-ac sql (ms)",
        "c-ac bdd (ms)",
        "c-ac bdd warm (ms)",
        "c-st sql (ms)",
        "c-st bdd (ms)",
        "c-st bdd warm (ms)",
    ]);
    let mut tb = Table::new(&[
        "rows",
        "areacode->state sql (ms)",
        "areacode->state bdd (ms)",
    ]);
    let mut sizes: Vec<usize> = (step..=max).step_by(step).collect();
    if sizes.is_empty() {
        sizes.push(max);
    }
    for n in sizes {
        let mut row_a = vec![n.to_string()];
        let mut row_b = vec![n.to_string()];
        for f in [&membership, &implication] {
            // SQL baseline.
            let mut ck = Checker::new(
                build_db(&data, n, n_constraints, 42),
                CheckerOptions::default(),
            );
            let (sql_rep, sql_t) = timed(|| ck.check_sql(f).unwrap());
            assert!(sql_rep.holds, "model-derived constraints are satisfied");
            // BDD path: the base-relation index is the persistent logical
            // index (prebuilt); the constraint relation is encoded during
            // the first check, like the paper's on-the-fly encoding. GC
            // runs outside the timed region (it is bookkeeping between
            // constraints, not evaluation work).
            let opts = CheckerOptions {
                gc_between_checks: false,
                ..Default::default()
            };
            let mut ck = Checker::new(build_db(&data, n, n_constraints, 42), opts);
            ck.ensure_index("CUST").unwrap();
            let (bdd_rep, bdd_t) = timed(|| ck.check(f).unwrap());
            assert!(bdd_rep.holds);
            assert_eq!(bdd_rep.method, Method::Bdd, "must stay on the BDD path");
            // Warm: a repeated validation pass over the same (now shared)
            // structures — the steady state when the same constraints are
            // re-validated after updates.
            let (_, warm_t) = timed(|| ck.check(f).unwrap());
            row_a.push(ms(sql_t));
            row_a.push(ms(bdd_t));
            row_a.push(ms(warm_t));
        }
        ta.row(&row_a);

        // Fig 5(b): FD areacode → state.
        let opts = CheckerOptions {
            gc_between_checks: false,
            ..Default::default()
        };
        let mut ck = Checker::new(build_db(&data, n, n_constraints, 42), opts);
        let (fd_sql, t_sql) = timed(|| ck.check_fd_sql("CUST", &[0], &[2]).unwrap());
        ck.ensure_index("CUST").unwrap();
        let (fd_bdd, t_bdd) = timed(|| ck.check_fd_bdd("CUST", &[0], &[2]).unwrap());
        assert_eq!(fd_sql, fd_bdd, "both FD paths must agree");
        row_b.push(ms(t_sql));
        row_b.push(ms(t_bdd));
        tb.row(&row_b);
    }
    ta.print();
    println!("\nFigure 5(b): FD areacode -> state, SQL group-by vs BDD projection\n");
    tb.print();
    println!(
        "\nPaper expectation: the BDD approach wins by significant margins on 5(a) and\n\
         by a factor of 6-8 on the FD check (5(b)), with SQL cost growing linearly in rows."
    );
}
