//! Update-stream re-validation — the paper's motivating scenario, measured.
//!
//! "Databases however are primarily dynamic… Being able to identify
//! constraints that are violated within and across tables is highly
//! important." This binary quantifies the full workflow the paper argues
//! for: a constraint battery is re-validated after every batch of updates,
//! comparing
//!
//! * **SQL recheck** — run every constraint's violation query per batch
//!   (the traditional approach);
//! * **BDD recheck** — incremental index maintenance + full BDD
//!   re-identification per batch;
//! * **BDD + registry** — ditto, but only constraints reading an updated
//!   relation are re-checked (cached verdicts otherwise).
//!
//! Flags: `--rows N` (customer rows, default 200000), `--batches N`
//! (default 20), `--batch-size N` (updates per batch, default 100),
//! `--json PATH` (run the BENCH measurement and write the
//! `BENCH_dynamic.json` trajectory document).

use relcheck_bench::{arg_str, arg_usize, ms, Table};
use relcheck_core::checker::{Checker, CheckerOptions};
use relcheck_core::registry::ConstraintRegistry;
use relcheck_datagen::customer::{generate, CustomerConfig};
use relcheck_datagen::rng::SplitMix64;
use relcheck_logic::{parse, Formula};
use relcheck_relstore::{Database, Relation, Schema};
use std::time::{Duration, Instant};

fn build_db(rows: usize) -> (Database, Vec<u64>) {
    let data = generate(&CustomerConfig {
        rows,
        dom_sizes: [100, 889, 2000, 40, 3000],
        violation_rate: 0.0,
        seed: 11,
    });
    let mut db = Database::new();
    for (class, size) in [
        ("areacode", data.dom_sizes[0]),
        ("city", data.dom_sizes[2]),
        ("state", data.dom_sizes[3]),
    ] {
        db.ensure_class_size(class, size);
    }
    let ncs = Relation::from_rows(
        Schema::new(&[
            ("areacode", "areacode"),
            ("city", "city"),
            ("state", "state"),
        ]),
        data.relation.rows().map(|r| vec![r[0], r[2], r[3]]),
    )
    .unwrap();
    db.insert_relation("CUST", ncs).unwrap();
    let cs: Vec<Vec<u32>> = (0..data.dom_sizes[2] as u32)
        .map(|c| vec![c, data.city_state[c as usize]])
        .collect();
    db.insert_relation(
        "CITY_STATE",
        Relation::from_rows(Schema::new(&[("city", "city"), ("state", "state")]), cs).unwrap(),
    )
    .unwrap();
    (
        db,
        vec![data.dom_sizes[0], data.dom_sizes[2], data.dom_sizes[3]],
    )
}

fn constraints() -> Vec<(String, Formula)> {
    [
        (
            "reference-agrees",
            "forall a, c, s, s2. CUST(a, c, s) & CITY_STATE(c, s2) -> s = s2",
        ),
        (
            "city-determines-state",
            "forall a1, c, s1, a2, s2. CUST(a1, c, s1) & CUST(a2, c, s2) -> s1 = s2",
        ),
        (
            "areacode-determines-state",
            "forall a, c1, s1, c2, s2. CUST(a, c1, s1) & CUST(a, c2, s2) -> s1 = s2",
        ),
        (
            "cities-are-known",
            "forall a, c, s. CUST(a, c, s) -> exists s2. CITY_STATE(c, s2)",
        ),
        // Reads only the (static) reference table: a registry cache hit on
        // every batch.
        (
            "reference-is-functional",
            "forall c, s1, s2. CITY_STATE(c, s1) & CITY_STATE(c, s2) -> s1 = s2",
        ),
    ]
    .into_iter()
    .map(|(n, s)| (n.to_owned(), parse(s).unwrap()))
    .collect()
}

/// Random insert/delete pairs against CUST (restoring rows so the dataset
/// doesn't drift and all three runs see identical work).
fn apply_batch(ck: &mut Checker, rng: &mut SplitMix64, dom: &[u64], size: usize) {
    for _ in 0..size {
        let row = [
            rng.gen_range(0..dom[0]) as u32,
            rng.gen_range(0..dom[1]) as u32,
            rng.gen_range(0..dom[2]) as u32,
        ];
        let fresh = ck.logical_db_mut().insert_tuple("CUST", &row).unwrap();
        if fresh {
            ck.logical_db_mut().delete_tuple("CUST", &row).unwrap();
        }
    }
}

fn main() {
    let rows = arg_usize("--rows", 200_000);
    let batches = arg_usize("--batches", 20);
    let batch_size = arg_usize("--batch-size", 100);
    let cs = constraints();
    println!(
        "Dynamic re-validation: {} constraints, {batches} batches x {batch_size} updates, {rows} rows\n",
        cs.len()
    );

    let mut table = Table::new(&[
        "strategy",
        "maintain/batch (ms)",
        "validate/batch (ms)",
        "total (ms)",
    ]);
    // Verdicts per strategy; all three must agree batch-by-batch.
    let mut verdict_log: Vec<Vec<bool>> = Vec::new();

    // --- SQL recheck per batch ---
    {
        let (db, dom) = build_db(rows);
        let mut ck = Checker::new(db, CheckerOptions::default());
        let mut rng = SplitMix64::seed_from_u64(5);
        let (mut t_upd, mut t_val) = (Duration::ZERO, Duration::ZERO);
        for _ in 0..batches {
            let t0 = Instant::now();
            apply_batch(&mut ck, &mut rng, &dom, batch_size);
            t_upd += t0.elapsed();
            let t0 = Instant::now();
            let mut vs = Vec::new();
            for (_, f) in &cs {
                vs.push(ck.check_sql(f).unwrap().holds);
            }
            t_val += t0.elapsed();
            verdict_log.push(vs);
        }
        table.row(&[
            "SQL recheck".into(),
            ms(t_upd / batches as u32),
            ms(t_val / batches as u32),
            ms(t_upd + t_val),
        ]);
    }

    // --- BDD recheck per batch ---
    {
        let (db, dom) = build_db(rows);
        let opts = CheckerOptions {
            gc_between_checks: false,
            ..Default::default()
        };
        let mut ck = Checker::new(db, opts);
        for rel in ["CUST", "CITY_STATE"] {
            ck.ensure_index(rel).unwrap();
        }
        let mut rng = SplitMix64::seed_from_u64(5);
        let (mut t_upd, mut t_val) = (Duration::ZERO, Duration::ZERO);
        #[allow(clippy::needless_range_loop)] // batch indexes verdict_log and times
        for batch in 0..batches {
            let t0 = Instant::now();
            apply_batch(&mut ck, &mut rng, &dom, batch_size);
            t_upd += t0.elapsed();
            let t0 = Instant::now();
            let mut vs = Vec::new();
            for (_, f) in &cs {
                vs.push(ck.check(f).unwrap().holds);
            }
            t_val += t0.elapsed();
            assert_eq!(vs, verdict_log[batch], "BDD vs SQL verdicts");
            // Reclaim scratch occasionally; sweeping every batch would
            // throw away the operation cache that makes re-identification
            // cheap.
            if batch % 8 == 7 {
                ck.logical_db_mut().gc();
            }
        }
        table.row(&[
            "BDD recheck".into(),
            ms(t_upd / batches as u32),
            ms(t_val / batches as u32),
            ms(t_upd + t_val),
        ]);
    }

    // --- BDD + dependency registry ---
    {
        let (db, dom) = build_db(rows);
        let opts = CheckerOptions {
            gc_between_checks: false,
            ..Default::default()
        };
        let mut ck = Checker::new(db, opts);
        for rel in ["CUST", "CITY_STATE"] {
            ck.ensure_index(rel).unwrap();
        }
        let mut reg = ConstraintRegistry::new();
        for (n, f) in &cs {
            reg.register(n, f.clone());
        }
        reg.validate_all(&mut ck).unwrap();
        let mut rng = SplitMix64::seed_from_u64(5);
        let (mut t_upd, mut t_val) = (Duration::ZERO, Duration::ZERO);
        #[allow(clippy::needless_range_loop)] // batch indexes verdict_log and times
        for batch in 0..batches {
            let t0 = Instant::now();
            apply_batch(&mut ck, &mut rng, &dom, batch_size);
            t_upd += t0.elapsed();
            let t0 = Instant::now();
            let verdicts = reg.revalidate(&mut ck, &["CUST"]).unwrap();
            let vs: Vec<bool> = verdicts.iter().map(|(_, v)| v.holds()).collect();
            t_val += t0.elapsed();
            assert_eq!(vs, verdict_log[batch], "registry vs SQL verdicts");
            if batch % 8 == 7 {
                ck.logical_db_mut().gc();
            }
        }
        table.row(&[
            "BDD + registry".into(),
            ms(t_upd / batches as u32),
            ms(t_val / batches as u32),
            ms(t_upd + t_val),
        ]);
        let pc = reg.plan_cache_stats();
        println!(
            "plan cache: {} hit(s), {} miss(es) across {} validation round(s)",
            pc.hits,
            pc.misses,
            batches + 1
        );
    }

    table.print();

    // Optional: emit the BENCH trajectory document.
    if let Some(path) = arg_str("--json") {
        let doc = relcheck_bench::runs::dynamic(rows, batches, batch_size).to_json();
        relcheck_core::telemetry::validate_bench_json(&doc)
            .expect("emitted bench document must be schema-valid");
        std::fs::write(&path, doc).expect("write bench file");
        println!("bench document written to {path}");
    }

    println!(
        "\nExpected shape: per-update maintenance is microseconds either way (SQL keeps a\n\
         hash index, the BDD updates incrementally); the validation column is where the\n\
         logical index pays — identification on warm canonical BDDs costs microseconds\n\
         per constraint while SQL re-joins the relation every batch, and the registry\n\
         additionally skips constraints whose relations did not change."
    );
}
