//! Figure 3 — accuracy of the ordering heuristics against the optimum.
//!
//! For each family (1-PROD, 4-PROD, 8-PROD, RANDOM) generate `--relations`
//! relations (paper: 20). For each, find the optimal BDD size by exhaustive
//! search over all 120 orderings and compute
//!
//! * `α = size(MaxInf-Gain ordering) / size(optimal)`   (Fig 3(a))
//! * `β = size(Prob-Converge ordering) / size(optimal)` (Fig 3(b))
//!
//! Histograms use the paper's 2.5 overflow threshold. Fig 3(c) prints the
//! fraction of runs at or below each accuracy level for both heuristics.
//!
//! Flags: `--tuples N` (default 40000; paper 400000), `--relations N`
//! (default 20).

use relcheck_bench::{arg_usize, histogram, Table};
use relcheck_core::ordering::{
    bdd_size_for_ordering, max_inf_gain, min_cond_entropy, optimal_ordering, prob_converge,
};
use relcheck_datagen::{gen_kprod, gen_random, Generated};

fn gen_family(name: &str, tuples: usize, seed: u64) -> Generated {
    match name {
        "1-PROD" => gen_kprod(5, 100, tuples, 1, seed),
        "4-PROD" => gen_kprod(5, 100, tuples, 4, seed),
        "8-PROD" => gen_kprod(5, 100, tuples, 8, seed),
        _ => gen_random(5, 100, tuples, seed),
    }
}

fn main() {
    let tuples = arg_usize("--tuples", 40_000);
    let relations = arg_usize("--relations", 20);
    println!(
        "Figure 3: heuristic accuracy over {relations} relations per family, {tuples} tuples each\n"
    );
    let mut comparison: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();
    for family in ["1-PROD", "4-PROD", "8-PROD", "RANDOM"] {
        let mut alphas = Vec::new();
        let mut betas = Vec::new();
        let mut gammas = Vec::new(); // our corrected MaxInf-Gain variant
        let mut worst_alpha = 1.0f64;
        let mut worst_beta = 1.0f64;
        for i in 0..relations {
            let g = gen_family(family, tuples, 1000 + i as u64);
            let (_, opt) = optimal_ordering(&g.relation, &g.dom_sizes).expect("in budget");
            let mig = max_inf_gain(&g.relation);
            let pc = prob_converge(&g.relation, &g.dom_sizes);
            let mce = min_cond_entropy(&g.relation);
            let a =
                bdd_size_for_ordering(&g.relation, &g.dom_sizes, &mig).unwrap() as f64 / opt as f64;
            let b =
                bdd_size_for_ordering(&g.relation, &g.dom_sizes, &pc).unwrap() as f64 / opt as f64;
            let c =
                bdd_size_for_ordering(&g.relation, &g.dom_sizes, &mce).unwrap() as f64 / opt as f64;
            worst_alpha = worst_alpha.max(a);
            worst_beta = worst_beta.max(b);
            alphas.push(a);
            betas.push(b);
            gammas.push(c);
        }
        println!("== {family} ==");
        println!("Fig 3(a) histogram of α (MaxInf-Gain / optimal), worst = {worst_alpha:.2}:");
        let mut t = Table::new(&["bin", "count"]);
        for (bin, c) in histogram(&alphas, 0.9, 2.5, 8) {
            t.row(&[bin, c.to_string()]);
        }
        t.print();
        println!("Fig 3(b) histogram of β (Prob-Converge / optimal), worst = {worst_beta:.2}:");
        let mut t = Table::new(&["bin", "count"]);
        for (bin, c) in histogram(&betas, 0.9, 2.5, 8) {
            t.row(&[bin, c.to_string()]);
        }
        t.print();
        let avg_gamma: f64 = gammas.iter().sum::<f64>() / gammas.len() as f64;
        println!(
            "Ablation (our corrected argmax-gain variant MinCondEntropy): avg ratio {avg_gamma:.2}"
        );
        println!();
        comparison.push((family.to_owned(), alphas, betas));
    }

    println!("Fig 3(c): fraction of runs with accuracy ≤ x");
    let mut t = Table::new(&["family", "x", "MaxInf-Gain %", "Prob-Converge %"]);
    for (family, alphas, betas) in &comparison {
        for x in [1.0, 1.1, 1.25, 1.5, 2.0, 2.5] {
            let pa = alphas.iter().filter(|&&v| v <= x).count() as f64 / alphas.len() as f64;
            let pb = betas.iter().filter(|&&v| v <= x).count() as f64 / betas.len() as f64;
            t.row(&[
                family.clone(),
                format!("{x:.2}"),
                format!("{:.0}", pa * 100.0),
                format!("{:.0}", pb * 100.0),
            ]);
        }
    }
    t.print();
    println!(
        "\nPaper expectation: β < 1.5 everywhere (Prob-Converge near-optimal on structured\n\
         relations); MaxInf-Gain has α > 2.5 tails on 1-PROD/4-PROD; on RANDOM both are ≈1."
    );
}
