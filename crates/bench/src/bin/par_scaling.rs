//! Parallel constraint-checking scaling: serial vs 1/2/4/8 workers.
//!
//! Runs the customer-workload constraint battery end to end (index
//! construction + identification of violated constraints) through the
//! serial [`Checker::check_all`] and through the parallel engine at
//! increasing worker counts, in both index-transfer modes:
//!
//! * **snapshot** — a coordinator builds each index once and ships it to
//!   workers as a manager-independent `ExportedRelation`;
//! * **rebuild**  — each worker rebuilds the indices its batch reads from
//!   its own clone of the dictionary-encoded data.
//!
//! Besides the human-readable table, the binary emits one machine-readable
//! JSON line (prefix `PAR_SCALING_JSON`) with the median timings and the
//! speedup at 4 workers, for CI trend tracking.
//!
//! Speedup is bounded by the machine: on a single-core host every "worker"
//! shares one CPU, so the parallel engine can only break even (the run
//! reports the honest number rather than a synthetic one). Verdict
//! equality with the serial pass is asserted on every configuration.
//!
//! The run also measures the cost of the telemetry switch itself: the
//! serial battery is re-timed with `CheckerOptions::telemetry` on, the
//! overhead is printed honestly, and a generous noise bound (1.5× plus a
//! 25 ms absolute allowance) is asserted — disabled-mode counters are
//! plain integers, so the two configurations should be indistinguishable
//! up to timing noise.
//!
//! Flags: `--rows N` (customer rows, default 100000), `--samples N`
//! (timed repetitions per configuration, default 3), `--metrics PATH`
//! (write the schema-version-1 metrics JSON of a 4-worker telemetry run,
//! the same document `relcheck run --metrics` emits), `--json PATH`
//! (run the BENCH measurement — serial vs 2/4-worker lanes in both
//! transfer modes — and write the `BENCH_par_scaling.json` trajectory
//! document).

use relcheck_bench::{arg_str, arg_usize, ms, Table};
use relcheck_core::checker::{Checker, CheckerOptions};
use relcheck_core::parallel::{IndexTransfer, ParallelChecker};
use relcheck_core::telemetry::{validate_bench_json, validate_metrics_json, RunMetrics};
use relcheck_datagen::customer::{generate, CustomerConfig};
use relcheck_logic::{parse, Formula};
use relcheck_relstore::{Database, Relation, Schema};
use std::time::{Duration, Instant};

fn build_db(rows: usize) -> Database {
    let data = generate(&CustomerConfig {
        rows,
        dom_sizes: [100, 889, 2000, 40, 3000],
        violation_rate: 0.001,
        seed: 11,
    });
    let mut db = Database::new();
    for (class, size) in [
        ("areacode", data.dom_sizes[0]),
        ("city", data.dom_sizes[2]),
        ("state", data.dom_sizes[3]),
    ] {
        db.ensure_class_size(class, size);
    }
    let cust = Relation::from_rows(
        Schema::new(&[
            ("areacode", "areacode"),
            ("city", "city"),
            ("state", "state"),
        ]),
        data.relation.rows().map(|r| vec![r[0], r[2], r[3]]),
    )
    .unwrap();
    db.insert_relation("CUST", cust).unwrap();
    let cs: Vec<Vec<u32>> = (0..data.dom_sizes[2] as u32)
        .map(|c| vec![c, data.city_state[c as usize]])
        .collect();
    db.insert_relation(
        "CITY_STATE",
        Relation::from_rows(Schema::new(&[("city", "city"), ("state", "state")]), cs).unwrap(),
    )
    .unwrap();
    db
}

fn constraints() -> Vec<(String, Formula)> {
    [
        (
            "reference-agrees",
            "forall a, c, s, s2. CUST(a, c, s) & CITY_STATE(c, s2) -> s = s2",
        ),
        (
            "city-determines-state",
            "forall a1, c, s1, a2, s2. CUST(a1, c, s1) & CUST(a2, c, s2) -> s1 = s2",
        ),
        (
            "areacode-determines-state",
            "forall a, c1, s1, c2, s2. CUST(a, c1, s1) & CUST(a, c2, s2) -> s1 = s2",
        ),
        (
            "cities-are-known",
            "forall a, c, s. CUST(a, c, s) -> exists s2. CITY_STATE(c, s2)",
        ),
        (
            "reference-is-functional",
            "forall c, s1, s2. CITY_STATE(c, s1) & CITY_STATE(c, s2) -> s1 = s2",
        ),
    ]
    .into_iter()
    .map(|(n, s)| (n.to_owned(), parse(s).unwrap()))
    .collect()
}

/// Median of `samples` timed runs of `f`.
fn median_time(samples: usize, mut f: impl FnMut()) -> Duration {
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn main() {
    let rows = arg_usize("--rows", 100_000);
    let samples = arg_usize("--samples", 3).max(1);
    let db = build_db(rows);
    let battery = constraints();
    println!(
        "Parallel scaling: {} constraints over {} customer rows ({samples} samples/config, median)\n",
        battery.len(),
        rows
    );

    let mut serial_verdicts: Vec<(String, bool)> = Vec::new();
    let t_serial = median_time(samples, || {
        let mut ck = Checker::new(db.clone(), CheckerOptions::default());
        let reports = ck.check_all(&battery).unwrap();
        serial_verdicts = reports.into_iter().map(|(n, r)| (n, r.holds)).collect();
    });

    let worker_counts = [1usize, 2, 4, 8];
    let mut t = Table::new(&["configuration", "time (ms)", "speedup vs serial"]);
    t.row(&["serial".to_owned(), ms(t_serial), "1.00".to_owned()]);
    let mut snapshot_ms = Vec::new();
    for &workers in &worker_counts {
        for transfer in [IndexTransfer::Snapshot, IndexTransfer::Rebuild] {
            let mut verdicts: Vec<(String, bool)> = Vec::new();
            let elapsed = median_time(samples, || {
                let pc = ParallelChecker::new(db.clone(), CheckerOptions::default(), workers)
                    .with_transfer(transfer);
                let reports = pc.check_all(&battery).unwrap();
                verdicts = reports.into_iter().map(|(n, r)| (n, r.holds)).collect();
            });
            assert_eq!(
                verdicts, serial_verdicts,
                "parallel run must match serial verdicts"
            );
            let label = format!(
                "{} workers ({})",
                workers,
                if transfer == IndexTransfer::Snapshot {
                    "snapshot"
                } else {
                    "rebuild"
                }
            );
            t.row(&[
                label,
                ms(elapsed),
                format!("{:.2}", t_serial.as_secs_f64() / elapsed.as_secs_f64()),
            ]);
            if transfer == IndexTransfer::Snapshot {
                snapshot_ms.push(elapsed.as_secs_f64() * 1e3);
            }
        }
    }
    t.print();

    let speedup4 = t_serial.as_secs_f64() * 1e3 / snapshot_ms[2];
    println!(
        "\nPAR_SCALING_JSON {{\"rows\":{rows},\"constraints\":{},\"serial_ms\":{:.1},\
         \"snapshot_ms\":{{\"1\":{:.1},\"2\":{:.1},\"4\":{:.1},\"8\":{:.1}}},\
         \"speedup4\":{speedup4:.2}}}",
        battery.len(),
        t_serial.as_secs_f64() * 1e3,
        snapshot_ms[0],
        snapshot_ms[1],
        snapshot_ms[2],
        snapshot_ms[3],
    );
    println!(
        "\nNote: wall-clock speedup tops out at the number of physical cores; on a\n\
         single-core host the parallel engine can only break even, and the verdict-\n\
         equality assertion (not the speedup) is the correctness signal."
    );

    // Telemetry-switch overhead: the same serial battery with per-check
    // traces captured. Counters tick unconditionally either way; the
    // switch only adds clock reads and trace allocation, so the medians
    // should agree up to timing noise.
    let telemetry_opts = CheckerOptions {
        telemetry: true,
        ..Default::default()
    };
    let t_telemetry = median_time(samples, || {
        let mut ck = Checker::new(db.clone(), telemetry_opts);
        let reports = ck.check_all(&battery).unwrap();
        assert!(reports.iter().all(|(_, r)| r.metrics.is_some()));
    });
    println!(
        "\nTelemetry overhead (serial battery): off {} ms, on {} ms ({:+.1}%)",
        ms(t_serial),
        ms(t_telemetry),
        (t_telemetry.as_secs_f64() / t_serial.as_secs_f64() - 1.0) * 100.0
    );
    assert!(
        t_telemetry <= t_serial.mul_f64(1.5) + Duration::from_millis(25),
        "telemetry overhead beyond noise bounds: on={t_telemetry:?} off={t_serial:?}"
    );

    // Optional: emit the machine-readable metrics document of a 4-worker
    // telemetry run — the same schema `relcheck run --metrics` writes.
    if let Some(path) = arg_str("--metrics") {
        let pc = ParallelChecker::new(db.clone(), telemetry_opts, 4);
        let (reports, fleet) = pc.check_all_telemetry(&battery).unwrap();
        let doc = RunMetrics::from_reports(&reports, Some(fleet), 4).to_json();
        validate_metrics_json(&doc).expect("emitted metrics must be schema-valid");
        std::fs::write(&path, doc).expect("write metrics file");
        println!("metrics written to {path}");
    }

    // Optional: emit the BENCH trajectory document.
    if let Some(path) = arg_str("--json") {
        let doc = relcheck_bench::runs::par_scaling(rows).to_json();
        validate_bench_json(&doc).expect("emitted bench document must be schema-valid");
        std::fs::write(&path, doc).expect("write bench file");
        println!("bench document written to {path}");
    }
}
