//! Figure 4 — logical-index construction, maintenance, and memory.
//!
//! On the synthetic customer database (the paper's schema and active-domain
//! sizes), build the paper's two indices per relation size:
//!
//! * `ncs` on (areacode, city, state) — 29 boolean variables,
//! * `csz` on (city, state, zipcode) — 35 boolean variables,
//!
//! reporting (a) construction time, (b) average per-update (insert +
//! delete) time over `--updates` random tuples, and (c) BDD node count
//! (with bytes at the paper's 20 B/node and our actual node size).
//!
//! Flags: `--max N` (largest relation size; default 400000, paper 400000),
//! `--step N` (default 50000), `--updates N` (default 2000).

use relcheck_bdd::{Bdd, BddManager, DomainId};
use relcheck_bench::{arg_usize, secs, timed, Table};
use relcheck_datagen::customer::{col, generate, CustomerConfig};
use relcheck_datagen::rng::SplitMix64;
use relcheck_relstore::Relation;

/// Build one index over the chosen columns; returns (manager, domains, root).
fn build_index(
    rel: &Relation,
    dom_sizes: &[u64; 5],
    cols: &[usize],
) -> (BddManager, Vec<DomainId>, Bdd) {
    let mut m = BddManager::new();
    let domains: Vec<DomainId> = cols
        .iter()
        .map(|&c| m.add_domain(dom_sizes[c]).unwrap())
        .collect();
    let rows: Vec<Vec<u64>> = rel
        .rows()
        .map(|r| cols.iter().map(|&c| r[c] as u64).collect())
        .collect();
    let root = m.relation_from_rows(&domains, &rows).unwrap();
    (m, domains, root)
}

fn main() {
    let max = arg_usize("--max", 400_000);
    let step = arg_usize("--step", 50_000);
    let updates = arg_usize("--updates", 2_000);
    let indices: [(&str, Vec<usize>); 2] = [
        ("ncs: 29", vec![col::AREACODE, col::CITY, col::STATE]),
        ("csz: 35", vec![col::CITY, col::STATE, col::ZIPCODE]),
    ];
    println!("Figure 4: BDD index construction / maintenance / memory on customer data");
    println!("(schema (areacode, number, city, state, zipcode), active domains (281, 889, 10894, 50, 17557))\n");
    let mut t = Table::new(&[
        "rows",
        "index",
        "build (s)",
        "update (us)",
        "nodes",
        "paper-bytes (20B)",
        "our-bytes (12B)",
    ]);
    let full = generate(&CustomerConfig {
        rows: max,
        ..Default::default()
    });
    let mut rng = SplitMix64::seed_from_u64(7);
    let mut sizes: Vec<usize> = (step..=max).step_by(step).collect();
    if sizes.is_empty() {
        sizes.push(max);
    }
    for n in sizes {
        // Prefix of the full dataset, deduplicated by Relation semantics.
        let sub = Relation::from_rows(
            full.relation.schema().clone(),
            (0..n.min(full.relation.len())).map(|i| full.relation.row(i)),
        )
        .unwrap();
        for (name, cols) in &indices {
            let ((mut m, domains, root), build_time) =
                timed(|| build_index(&sub, &full.dom_sizes, cols));
            // Figure 4(b): average insert+delete pair time.
            let tuples: Vec<Vec<u64>> = (0..updates)
                .map(|_| {
                    cols.iter()
                        .map(|&c| rng.gen_range(0..full.dom_sizes[c]))
                        .collect()
                })
                .collect();
            let (_, update_time) = timed(|| {
                let mut r = root;
                for tup in &tuples {
                    r = m.insert_row(r, &domains, tup).unwrap();
                    r = m.delete_row(r, &domains, tup).unwrap();
                }
                r
            });
            let per_update_us = update_time.as_secs_f64() * 1e6 / (updates as f64 * 2.0);
            let nodes = m.size(root);
            t.row(&[
                sub.len().to_string(),
                (*name).to_owned(),
                secs(build_time),
                format!("{per_update_us:.1}"),
                nodes.to_string(),
                (nodes * 20).to_string(),
                (nodes * relcheck_bdd::NODE_BYTES).to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "\nPaper expectation: build time grows roughly linearly to a few seconds at 400k;\n\
         updates stay in the tens-of-microseconds range; node counts flatten as the\n\
         index saturates the attribute-combination space (Fig 4(c))."
    );
}
