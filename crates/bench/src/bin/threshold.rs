//! §5.2 threshold table — time to fill a node buffer of a given size.
//!
//! The paper's fallback strategy aborts BDD construction once the live node
//! count crosses a threshold and reruns the constraint through SQL. The
//! overhead of that strategy is the time wasted filling the buffer before
//! the abort. This binary reproduces the paper's measurement: grow a BDD
//! from adversarial (uniformly random, structure-free) tuples until each
//! threshold is crossed, and report the elapsed time.
//!
//! Paper's numbers: 10³ → 2.0 s, 10⁵ → 2.2 s, 10⁶ → 3.5 s, 10⁷ → 17 s
//! (their constants include fixed per-constraint SQL setup; ours are pure
//! BDD fill time, so the small thresholds are far cheaper — the shape to
//! compare is the growth from 10⁶ to 10⁷).
//!
//! Flags: `--batch N` (tuples per insertion batch, default 20000).

use relcheck_bdd::{BddError, BddManager};
use relcheck_bench::{arg_usize, secs, Table};
use relcheck_datagen::rng::SplitMix64;
use std::time::Instant;

fn main() {
    let batch = arg_usize("--batch", 20_000);
    let thresholds: [usize; 4] = [1_000, 100_000, 1_000_000, 10_000_000];
    let paper = ["2.0", "2.2", "3.5", "17"];
    println!("Threshold table (§5.2): time to fill a BDD node buffer from adversarial input\n");
    let mut t = Table::new(&[
        "Space threshold",
        "time (s)",
        "paper (s)",
        "tuples inserted",
    ]);
    for (&limit, paper_s) in thresholds.iter().zip(paper) {
        let mut m = BddManager::with_capacity(1 << 20);
        m.set_node_limit(Some(limit));
        // Wide random layout: 6 attributes of |dom| = 1000 (~60 bits) keeps
        // the tuple space effectively unbounded, so the BDD has no sharing
        // to exploit — the worst case the threshold exists for.
        let domains: Vec<_> = (0..6).map(|_| m.add_domain(1000).unwrap()).collect();
        let mut rng = SplitMix64::seed_from_u64(99);
        let mut acc = relcheck_bdd::Bdd::FALSE;
        let mut inserted = 0usize;
        let start = Instant::now();
        let elapsed = loop {
            let rows: Vec<Vec<u64>> = (0..batch)
                .map(|_| (0..6).map(|_| rng.gen_range(0..1000u64)).collect())
                .collect();
            // OR a fresh batch into the accumulator; the node limit aborts
            // the operation once the buffer is full.
            let result = m
                .relation_from_rows(&domains, &rows)
                .and_then(|b| m.or(acc, b));
            match result {
                Ok(b) => {
                    acc = b;
                    inserted += batch;
                }
                Err(BddError::NodeLimit { .. }) => break start.elapsed(),
                Err(e) => panic!("unexpected error: {e}"),
            }
        };
        t.row(&[
            format!("{limit}"),
            secs(elapsed),
            paper_s.to_owned(),
            inserted.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nAfter the abort the checker defaults to SQL; the paper picks 10^6 nodes as the\n\
         sweet spot (a few seconds of bounded overhead, 1-3% of the 100-250 s the\n\
         corresponding SQL queries take on threshold-busting constraints)."
    );
}
