//! Figure 6 — the query-rewrite micro-comparisons, on raw BDD operations.
//!
//! * `fig6 a` (Fig 6(a)): equi-join `R1 ⋈ R2`, naive strategy
//!   (`BDD(R1) ∧ BDD(R2) ∧ ⋀ BDD([xᵢ = yᵢ])`) vs the optimized rename
//!   (`BDD(R1) ∧ BDD(R2[x/y])`), with one and two join attributes, varying
//!   ‖BDD(R1)‖ at fixed ‖BDD(R2)‖.
//! * `fig6 b` (Fig 6(b)): `∃x P ∨ ∃x Q` evaluated unfused vs as
//!   `∃x (P ∨ Q)` with the fused `app_exists` (quantifier pull-up, Rule 3).
//! * `fig6 c` (Fig 6(c)): `∀x (P ∧ Q)` evaluated as one big conjunction
//!   with `app_forall` vs pushed-down `∀x P ∧ ∀x Q` (Rule 5).
//!
//! Flags: `--steps N` (number of sizes, default 6), `--base N` (tuples per
//! step, default 20000).

use relcheck_bdd::{Bdd, BddManager, DomainId, Op};
use relcheck_bench::{arg_selector, arg_usize, ms, timed, Table};
use relcheck_datagen::gen_random;
use relcheck_datagen::rng::SplitMix64;

/// Build a relation BDD over `k` fresh domains of size `dom` from `n`
/// random tuples.
fn random_bdd(m: &mut BddManager, k: usize, dom: u64, n: usize, seed: u64) -> (Vec<DomainId>, Bdd) {
    let g = gen_random(k, dom, n, seed);
    let domains: Vec<DomainId> = (0..k).map(|_| m.add_domain(dom).unwrap()).collect();
    let rows: Vec<Vec<u64>> = g
        .relation
        .rows()
        .map(|r| r.iter().map(|&v| v as u64).collect())
        .collect();
    let root = m.relation_from_rows(&domains, &rows).unwrap();
    (domains, root)
}

fn fig6a(steps: usize, base: usize) {
    println!("Figure 6(a): equi-join — naive equality cubes vs rename");
    println!("(|dom| = 1000 per attribute; R2 fixed; R1 grows)\n");
    let mut t = Table::new(&[
        "R1 nodes",
        "naive 1-attr (ms)",
        "rename 1-attr (ms)",
        "naive 2-attr (ms)",
        "rename 2-attr (ms)",
    ]);
    for step in 1..=steps {
        let mut row = Vec::new();
        let mut sizes = Vec::new();
        for attrs in [1usize, 2] {
            let mut m = BddManager::with_capacity(1 << 20);
            // R1(a, b, c), R2(d, e, f): join on (b=d) or (b=d, c=e).
            let (d1, r1) = random_bdd(&mut m, 3, 1000, base * step, 11 + step as u64);
            let (d2, r2) = random_bdd(&mut m, 3, 1000, base, 999);
            sizes.push(m.size(r1));
            let pairs: Vec<(DomainId, DomainId)> = match attrs {
                1 => vec![(d2[0], d1[1])],
                _ => vec![(d2[0], d1[1]), (d2[1], d1[2])],
            };
            // Naive: conjoin equality BDDs, then drop R2's join columns.
            let (naive, naive_t) = timed(|| {
                let mut acc = m.and(r1, r2).unwrap();
                for &(from, to) in &pairs {
                    let eq = m.domain_eq(from, to).unwrap();
                    acc = m.and(acc, eq).unwrap();
                }
                let drop: Vec<DomainId> = pairs.iter().map(|&(from, _)| from).collect();
                let vs = m.domain_varset(&drop);
                m.exists(acc, vs).unwrap()
            });
            // Optimized: rename R2's join columns onto R1's, then conjoin.
            let (renamed, rename_t) = timed(|| {
                let moved = m.replace_domains(r2, &pairs).unwrap();
                m.and(r1, moved).unwrap()
            });
            assert_eq!(naive, renamed, "both strategies compute the same join");
            row.push(ms(naive_t));
            row.push(ms(rename_t));
        }
        t.row(&[
            sizes[0].to_string(),
            row[0].clone(),
            row[1].clone(),
            row[2].clone(),
            row[3].clone(),
        ]);
    }
    t.print();
    println!("\nPaper expectation: rename is 2-3x faster than the naive strategy.");
}

fn fig6b(steps: usize, base: usize) {
    println!("Figure 6(b): Ex(P) OR Ex(Q)  vs  Ex(P OR Q) with app_exists\n");
    println!("(P, Q: random relations over the same three attributes; x quantified)\n");
    let mut t = Table::new(&["P nodes", "separate (ms)", "fused appex (ms)"]);
    for step in 1..=steps {
        let mut m = BddManager::with_capacity(1 << 20);
        let dom = 1000u64;
        let doms: Vec<DomainId> = (0..3).map(|_| m.add_domain(dom).unwrap()).collect();
        let x = doms[0];
        let build = |m: &mut BddManager, n: usize, seed: u64| {
            let g = gen_random(3, dom, n, seed);
            let rows: Vec<Vec<u64>> = g
                .relation
                .rows()
                .map(|r| r.iter().map(|&v| v as u64).collect())
                .collect();
            m.relation_from_rows(&doms, &rows).unwrap()
        };
        let p = build(&mut m, base * step, 21 + step as u64);
        let q = build(&mut m, base, 2999);
        let p_nodes = m.size(p);
        let vs = m.domain_varset(&[x]);
        let (sep, sep_t) = timed(|| {
            let ep = m.exists(p, vs).unwrap();
            let eq = m.exists(q, vs).unwrap();
            m.or(ep, eq).unwrap()
        });
        m.gc(&[p, q, sep]);
        let (fused, fused_t) = timed(|| m.app_exists(Op::Or, p, q, vs).unwrap());
        assert_eq!(sep, fused);
        t.row(&[p_nodes.to_string(), ms(sep_t), ms(fused_t)]);
    }
    t.print();
    println!(
        "\nPaper expectation: the fused pull-up form (app_exists) wins — ∃x φ is not\n\
         much smaller than φ, so fusing avoids materializing the disjunction (Rule 3)."
    );
}

fn fig6c(steps: usize, base: usize) {
    println!("Figure 6(c): FAx(P) AND FAx(Q)  vs  FAx(P AND Q) with app_forall\n");
    println!("(P, Q: implication-shaped constraint matrices R_i -> C_i, the form ∀ is");
    println!(" actually applied to during checking; x is the deepest attribute)\n");
    let mut t = Table::new(&["P nodes", "pushed-down (ms)", "fused appall (ms)"]);
    for step in 1..=steps {
        let mut m = BddManager::with_capacity(1 << 20);
        let dom = 1000u64;
        let a = m.add_domain(dom).unwrap();
        let b = m.add_domain(dom).unwrap();
        let x = m.add_domain(dom).unwrap(); // deepest block
        let doms = vec![a, x, b];
        let build = |m: &mut BddManager, n: usize, seed: u64, concl: DomainId| {
            // Uniform rows over the full 0..dom range so the premise is not
            // accidentally contained in the conclusion set.
            let mut rng = SplitMix64::seed_from_u64(seed);
            let rows: Vec<Vec<u64>> = (0..n)
                .map(|_| (0..3).map(|_| rng.gen_range(0..dom)).collect())
                .collect();
            let r = m.relation_from_rows(&doms, &rows).unwrap();
            let s = m
                .value_set(concl, &(0..(dom * 9 / 10)).collect::<Vec<_>>())
                .unwrap();
            m.imp(r, s).unwrap()
        };
        let p = build(&mut m, base * step, 31 + step as u64, b);
        let q = build(&mut m, base, 3999, a);
        let p_nodes = m.size(p);
        let vs = m.domain_varset(&[x]);
        let (pushed, pushed_t) = timed(|| {
            let ap = m.forall(p, vs).unwrap();
            let aq = m.forall(q, vs).unwrap();
            m.and(ap, aq).unwrap()
        });
        m.gc(&[p, q, pushed]);
        let (fused, fused_t) = timed(|| m.app_forall(Op::And, p, q, vs).unwrap());
        assert_eq!(pushed, fused);
        t.row(&[p_nodes.to_string(), ms(pushed_t), ms(fused_t)]);
    }
    t.print();
    println!(
        "\nPaper expectation: the pushed-down form wins, because ∀x φ is much smaller\n\
         than φ, making the outer conjunction cheap (Rule 5). The advantage holds for\n\
         implication-shaped (dense) operands; for sparse relation BDDs the fused form\n\
         can win — see the criterion `quant` group for the ablation."
    );
}

fn main() {
    let steps = arg_usize("--steps", 6);
    let base = arg_usize("--base", 20_000);
    match arg_selector().as_deref() {
        Some("a") => fig6a(steps, base),
        Some("b") => fig6b(steps, base),
        Some("c") => fig6c(steps, base),
        _ => {
            fig6a(steps, base);
            println!();
            fig6b(steps, base);
            println!();
            fig6c(steps, base);
        }
    }
}
