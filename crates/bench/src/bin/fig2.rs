//! Figure 2 — effect and ranking of variable orderings.
//!
//! * `fig2 a` (Fig 2(a)): for each relation family (1-PROD, 4-PROD, 8-PROD,
//!   RANDOM; 5 attributes, |dom| ≤ 100), build the BDD under **all 120**
//!   attribute orderings and report the size curve best→worst plus the
//!   best/worst ratio (paper: 71.29 / 6.29 / 2.26 / 1.02).
//! * `fig2 b` (Fig 2(b)): rank the 120 orderings by the `MaxInf-Gain` score
//!   and print the actual BDD size at each rank, next to the true ranking.
//! * `fig2 c` (Fig 2(c)): the same for `Prob-Converge`.
//!
//! Flags: `--tuples N` (default 100000; the paper used 400000).

use relcheck_bench::{arg_selector, arg_usize, Table};
use relcheck_core::ordering::{all_orderings, bdd_size_for_ordering};
use relcheck_datagen::{gen_kprod, gen_random, Generated};
use relcheck_relstore::stats;

fn gen_family(name: &str, tuples: usize, seed: u64) -> Generated {
    match name {
        "1-PROD" => gen_kprod(5, 100, tuples, 1, seed),
        "4-PROD" => gen_kprod(5, 100, tuples, 4, seed),
        "8-PROD" => gen_kprod(5, 100, tuples, 8, seed),
        _ => gen_random(5, 100, tuples, seed),
    }
}

/// All-ordering BDD sizes, sorted ascending (best first).
fn ordering_sizes(g: &Generated) -> Vec<(Vec<usize>, usize)> {
    all_orderings(5)
        .into_iter()
        .map(|o| {
            let s = bdd_size_for_ordering(&g.relation, &g.dom_sizes, &o).expect("in budget");
            (o, s)
        })
        .collect()
}

fn fig2a(tuples: usize, relations: usize) {
    println!("Figure 2(a): average BDD node count across all 120 variable orderings");
    println!("(5 attributes, |dom| ≤ 100, {tuples} tuples, averaged over {relations} relations)\n");
    let mut ratio_table = Table::new(&["Dataset", "best", "worst", "Ratio", "paper"]);
    let paper_ratios = [
        ("1-PROD", 71.29),
        ("4-PROD", 6.29),
        ("8-PROD", 2.26),
        ("RANDOM", 1.02),
    ];
    for name in ["1-PROD", "4-PROD", "8-PROD", "RANDOM"] {
        // Rank-wise average over several relation instances, like the
        // paper's averaged curves.
        let mut avg = vec![0.0f64; 120];
        for i in 0..relations {
            let g = gen_family(name, tuples, 101 + i as u64 * 13);
            let mut sizes: Vec<usize> = ordering_sizes(&g).into_iter().map(|(_, s)| s).collect();
            sizes.sort_unstable();
            for (a, s) in avg.iter_mut().zip(&sizes) {
                *a += *s as f64 / relations as f64;
            }
        }
        let curve: Vec<String> = avg
            .iter()
            .step_by(10)
            .chain(std::iter::once(avg.last().unwrap()))
            .map(|s| format!("{s:.0}"))
            .collect();
        println!(
            "{name}: avg sizes best→worst (every 10th): {}",
            curve.join(" ")
        );
        let ratio = avg.last().unwrap() / avg[0];
        let paper = paper_ratios.iter().find(|&&(n, _)| n == name).unwrap().1;
        ratio_table.row(&[
            name.to_owned(),
            format!("{:.0}", avg[0]),
            format!("{:.0}", avg.last().unwrap()),
            format!("{ratio:.2}"),
            format!("{paper:.2}"),
        ]);
    }
    println!("\nBest/worst node-count ratio per family (paper's table, §5.1):");
    ratio_table.print();
}

/// Whole-ordering `MaxInf-Gain` score: Figure 1 greedily minimizes
/// `H(v*(0))` and then `I(v*(i); prefix)` at each step, so an ordering's
/// score is the sum of those per-step objectives (lower = preferred by the
/// measure).
fn mig_score(g: &Generated, order: &[usize]) -> f64 {
    let mut score = stats::entropy(&g.relation, &order[..1]);
    for i in 1..order.len() {
        let v = order[i];
        let h_v = stats::entropy(&g.relation, &[v]);
        let mut all = order[..i].to_vec();
        all.push(v);
        let h_joint = stats::entropy(&g.relation, &all);
        // I(v; prefix) = H(v) − H(prefix|v) = 2·H(v) − H(prefix ∪ v) + H(prefix) − H(prefix)
        // computed via the chain rule: H(prefix|v) = H(prefix ∪ v) − H(v).
        score += h_v - (h_joint - h_v);
    }
    score
}

/// Whole-ordering `Prob-Converge` score: the paper asks for Φ(prefix_i) to
/// "converge as rapidly as possible to 0", which is the area under the Φ
/// curve (lower = better).
fn pc_score(g: &Generated, order: &[usize]) -> f64 {
    (1..=order.len())
        .map(|i| stats::phi_measure(&g.relation, &order[..i], &g.dom_sizes))
        .sum()
}

type Scorer = fn(&Generated, &[usize]) -> f64;

fn fig2bc(tuples: usize, which: char) {
    let (title, scorer): (&str, Scorer) = match which {
        'b' => (
            "Figure 2(b): orderings ranked by MaxInf-Gain (1-PROD)",
            mig_score,
        ),
        _ => (
            "Figure 2(c): orderings ranked by Prob-Converge (1-PROD)",
            pc_score,
        ),
    };
    println!("{title}\n");
    let g = gen_family("1-PROD", tuples, 101);
    let mut entries = ordering_sizes(&g);
    // True ranking.
    entries.sort_by_key(|&(_, s)| s);
    let true_rank: std::collections::HashMap<Vec<usize>, usize> = entries
        .iter()
        .enumerate()
        .map(|(r, (o, _))| (o.clone(), r))
        .collect();
    // Measure ranking: area under the measure curve, ascending.
    let mut scored: Vec<(Vec<usize>, usize, f64)> = entries
        .iter()
        .map(|(o, s)| (o.clone(), *s, scorer(&g, o)))
        .collect();
    scored.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
    let mut t = Table::new(&["measure-rank", "ordering", "score", "BDD size", "true-rank"]);
    for (r, (o, s, score)) in scored.iter().enumerate() {
        if r < 15 || r % 10 == 0 || r == scored.len() - 1 {
            t.row(&[
                r.to_string(),
                format!("{o:?}"),
                format!("{score:.3}"),
                s.to_string(),
                true_rank[o].to_string(),
            ]);
        }
    }
    t.print();
    // Rank correlation (Spearman) between measure rank and true rank.
    let n = scored.len() as f64;
    let d2: f64 = scored
        .iter()
        .enumerate()
        .map(|(r, (o, _, _))| {
            let d = r as f64 - true_rank[o] as f64;
            d * d
        })
        .sum();
    let rho = 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
    println!("\nSpearman rank correlation vs true ranking: {rho:.3}");
    let top10: Vec<usize> = scored
        .iter()
        .take(10)
        .map(|(o, _, _)| true_rank[o])
        .collect();
    println!("true ranks of the measure's top-10: {top10:?}");
    // Where does the greedy heuristic itself land? (The greedy optimizes
    // the measure step-wise, which is what the checker actually runs.)
    let greedy = match which {
        'b' => relcheck_core::ordering::max_inf_gain(&g.relation),
        _ => relcheck_core::ordering::prob_converge(&g.relation, &g.dom_sizes),
    };
    println!(
        "greedy heuristic's ordering {greedy:?} has true rank #{} of 120",
        true_rank[&greedy]
    );
}

fn main() {
    let tuples = arg_usize("--tuples", 100_000);
    let relations = arg_usize("--relations", 5);
    match arg_selector().as_deref() {
        Some("b") => fig2bc(tuples, 'b'),
        Some("c") => fig2bc(tuples, 'c'),
        Some("a") => fig2a(tuples, relations),
        _ => {
            fig2a(tuples, relations);
            println!();
            fig2bc(tuples, 'b');
            println!();
            fig2bc(tuples, 'c');
        }
    }
}
