//! Measured runners behind the `--json` flag of the experiment binaries.
//!
//! Each runner performs its own, self-contained measurement (separate from
//! the human-readable tables the binaries print) and returns a
//! [`BenchReport`] ready to serialize. Keeping the runners in the library
//! lets the test suite pin the same-seed determinism contract: everything
//! but the wall-clock fields is a pure function of the workload seed.

use crate::queries;
use crate::report::{hit_rate, BenchComparison, BenchEntry, BenchReport};
use relcheck_core::checker::{CheckReport, Checker, CheckerOptions};
use relcheck_core::ordering::OrderingStrategy;
use relcheck_core::parallel::{IndexTransfer, ParallelChecker};
use relcheck_core::policy::{advise, apply_advice, WorkloadProfile};
use relcheck_core::registry::ConstraintRegistry;
use relcheck_datagen::customer::{generate, CustomerConfig};
use relcheck_datagen::rng::SplitMix64;
use relcheck_logic::{parse, Formula};
use relcheck_relstore::{Database, Relation, Schema};
use std::time::Instant;

const TABLE1_RELATIONS: [&str; 5] = ["R1", "R2", "STUDENT", "COURSE", "TAKES"];

/// The relation whose index dominates each Table 1 query, for the
/// "ordering chosen" column.
fn primary_relation(query: &str) -> &'static str {
    if query == "Q5" {
        "STUDENT"
    } else {
        "R1"
    }
}

/// Table 1 before/after: the engine as configured before this line of
/// work (per-constraint atom compilation, static Prob-Converge ordering)
/// against the shared-subgraph manager with workload-adaptive ordering,
/// and against the workload-advised configuration (the adaptive engine
/// with its apply cache sized from a recorded profile of the same
/// battery — what `--route auto` does with a persisted profile).
/// All variants run the identical warm-up + rebuild + timed-pass
/// protocol so the comparison isolates the configuration, not cache
/// warmth. Per-query wall time is the minimum over `samples` timed
/// passes (sub-millisecond checks need it on a noisy host); the cache
/// hit rate is taken from the first pass so it stays deterministic.
pub fn table1(tuples: usize, samples: usize) -> BenchReport {
    let samples = samples.max(1);
    let qs = queries::queries();
    let constraints: Vec<(String, Formula)> = qs
        .iter()
        .map(|(n, q)| ((*n).to_owned(), q.clone()))
        .collect();
    // Profiling pass: the shared-adaptive configuration runs the battery
    // once and records a workload profile — exactly what a prior
    // `relcheck run --index-cache` would have persisted for this
    // workload. The advised variant consumes it.
    let profile = {
        let mut ck = Checker::new(
            queries::build(tuples, 77),
            CheckerOptions {
                share_subgraphs: true,
                ordering: OrderingStrategy::Adaptive,
                ..Default::default()
            },
        );
        for rel in TABLE1_RELATIONS {
            ck.ensure_index(rel).unwrap();
        }
        let reports: Vec<(String, CheckReport)> = constraints
            .iter()
            .map(|(n, q)| (n.clone(), ck.check(q).unwrap()))
            .collect();
        WorkloadProfile::record(&ck, &constraints, &reports)
    };
    let variants: [(&str, CheckerOptions); 3] = [
        (
            "unshared-static",
            CheckerOptions {
                share_subgraphs: false,
                ordering: OrderingStrategy::ProbConverge,
                ..Default::default()
            },
        ),
        (
            "shared-adaptive",
            CheckerOptions {
                share_subgraphs: true,
                ordering: OrderingStrategy::Adaptive,
                ..Default::default()
            },
        ),
        (
            "shared-advised",
            CheckerOptions {
                share_subgraphs: true,
                ordering: OrderingStrategy::Adaptive,
                apply_cache_slots: Some(profile.cache_slots()),
                ..Default::default()
            },
        ),
    ];
    let mut entries = Vec::new();
    let mut totals = Vec::new();
    for (variant, opts) in variants {
        let mut ck = Checker::new(queries::build(tuples, 77), opts);
        for rel in TABLE1_RELATIONS {
            ck.ensure_index(rel).unwrap();
        }
        if variant == "shared-advised" {
            // Apply the recorded advice before the warm-up: seeds the
            // profiled column weights (so the rebuild below scores
            // against the recorded workload, not just the warm-up's)
            // and applies any route changes, exactly like `--route auto`.
            let advice = advise(&profile, &mut ck, &constraints);
            apply_advice(&mut ck, &advice).unwrap();
        }
        // Warm-up pass: records the column workload (which the adaptive
        // variants' rebuild consumes) and warms caches identically for
        // all variants.
        for (_, q) in &qs {
            ck.check(q).unwrap();
        }
        for rel in TABLE1_RELATIONS {
            ck.rebuild_index(rel).unwrap();
        }
        ck.logical_db_mut().gc();
        let mut total_ns = 0u64;
        for (name, q) in &qs {
            let before = ck.logical_db().manager().stats();
            let t0 = Instant::now();
            ck.check(q).unwrap();
            let mut wall_ns = t0.elapsed().as_nanos() as u64;
            let stats = ck.logical_db().manager().stats();
            for _ in 1..samples {
                let t0 = Instant::now();
                ck.check(q).unwrap();
                wall_ns = wall_ns.min(t0.elapsed().as_nanos() as u64);
            }
            let ordering = match ck.logical_db().adaptive_pick(primary_relation(name)) {
                Some(pick) => format!("adaptive:{pick}"),
                None => opts.ordering.name().to_owned(),
            };
            total_ns += wall_ns;
            entries.push(BenchEntry {
                name: (*name).to_owned(),
                variant: variant.to_owned(),
                wall_ns,
                peak_nodes: stats.peak_nodes as u64,
                cache_hit_rate: hit_rate(&stats.delta_since(&before)),
                ordering,
            });
        }
        totals.push((
            total_ns,
            ck.logical_db().manager().stats().peak_nodes as u64,
        ));
    }
    BenchReport {
        bench: "table1".to_owned(),
        config: vec![
            ("tuples".to_owned(), tuples as u64),
            ("samples".to_owned(), samples as u64),
            ("seed".to_owned(), 77),
        ],
        entries,
        comparisons: vec![
            BenchComparison {
                name: "table1-total".to_owned(),
                baseline: "unshared-static".to_owned(),
                candidate: "shared-adaptive".to_owned(),
                wall_ns_before: totals[0].0,
                wall_ns_after: totals[1].0,
                peak_nodes_before: totals[0].1,
                peak_nodes_after: totals[1].1,
            },
            // The workload-advised engine against the static default it
            // replaces: advice bundles subgraph sharing, adaptive ordering,
            // and a profile-sized apply cache (ROADMAP item 1's sizing rung).
            BenchComparison {
                name: "table1-advised".to_owned(),
                baseline: "unshared-static".to_owned(),
                candidate: "shared-advised".to_owned(),
                wall_ns_before: totals[0].0,
                wall_ns_after: totals[2].0,
                peak_nodes_before: totals[0].1,
                peak_nodes_after: totals[2].1,
            },
            // Cache sizing isolated: the same shared-adaptive engine with
            // only the apply-cache slots changed by the advisor. Kept even
            // when the delta is noise-level so the trajectory stays honest.
            BenchComparison {
                name: "table1-advised-cache".to_owned(),
                baseline: "shared-adaptive".to_owned(),
                candidate: "shared-advised".to_owned(),
                wall_ns_before: totals[1].0,
                wall_ns_after: totals[2].0,
                peak_nodes_before: totals[1].1,
                peak_nodes_after: totals[2].1,
            },
        ],
    }
}

fn customer_db(rows: usize, violation_rate: f64) -> Database {
    let data = generate(&CustomerConfig {
        rows,
        dom_sizes: [100, 889, 2000, 40, 3000],
        violation_rate,
        seed: 11,
    });
    let mut db = Database::new();
    for (class, size) in [
        ("areacode", data.dom_sizes[0]),
        ("city", data.dom_sizes[2]),
        ("state", data.dom_sizes[3]),
    ] {
        db.ensure_class_size(class, size);
    }
    let cust = Relation::from_rows(
        Schema::new(&[
            ("areacode", "areacode"),
            ("city", "city"),
            ("state", "state"),
        ]),
        data.relation.rows().map(|r| vec![r[0], r[2], r[3]]),
    )
    .unwrap();
    db.insert_relation("CUST", cust).unwrap();
    let cs: Vec<Vec<u32>> = (0..data.dom_sizes[2] as u32)
        .map(|c| vec![c, data.city_state[c as usize]])
        .collect();
    db.insert_relation(
        "CITY_STATE",
        Relation::from_rows(Schema::new(&[("city", "city"), ("state", "state")]), cs).unwrap(),
    )
    .unwrap();
    db
}

fn customer_battery() -> Vec<(String, Formula)> {
    [
        (
            "reference-agrees",
            "forall a, c, s, s2. CUST(a, c, s) & CITY_STATE(c, s2) -> s = s2",
        ),
        (
            "city-determines-state",
            "forall a1, c, s1, a2, s2. CUST(a1, c, s1) & CUST(a2, c, s2) -> s1 = s2",
        ),
        (
            "areacode-determines-state",
            "forall a, c1, s1, c2, s2. CUST(a, c1, s1) & CUST(a, c2, s2) -> s1 = s2",
        ),
        (
            "cities-are-known",
            "forall a, c, s. CUST(a, c, s) -> exists s2. CITY_STATE(c, s2)",
        ),
        (
            "reference-is-functional",
            "forall c, s1, s2. CITY_STATE(c, s1) & CITY_STATE(c, s2) -> s1 = s2",
        ),
    ]
    .into_iter()
    .map(|(n, s)| (n.to_owned(), parse(s).unwrap()))
    .collect()
}

/// Parallel scaling: the serial engine against the parallel engine at 2
/// and 4 workers in both index-transfer modes. The per-lane arena
/// high-water mark (the largest any one lane's manager grew) is the
/// `peak_nodes` of a parallel entry; the before/after pair contrasts the
/// serial manager's peak with that sharded worst case.
pub fn par_scaling(rows: usize) -> BenchReport {
    let db = customer_db(rows, 0.001);
    let battery = customer_battery();
    let ordering = CheckerOptions::default().ordering.name().to_owned();
    let mut entries = Vec::new();

    let mut ck = Checker::new(db.clone(), CheckerOptions::default());
    let t0 = Instant::now();
    let serial_reports = ck.check_all(&battery).unwrap();
    let serial_wall = t0.elapsed().as_nanos() as u64;
    let serial_stats = ck.logical_db().manager().stats();
    let serial_peak = serial_stats.peak_nodes as u64;
    entries.push(BenchEntry {
        name: "serial".to_owned(),
        variant: "serial".to_owned(),
        wall_ns: serial_wall,
        peak_nodes: serial_peak,
        cache_hit_rate: hit_rate(&serial_stats.delta_since(&Default::default())),
        ordering: ordering.clone(),
    });

    let mut snapshot4 = (0u64, 0u64);
    for workers in [2usize, 4] {
        for transfer in [IndexTransfer::Snapshot, IndexTransfer::Rebuild] {
            let pc = ParallelChecker::new(db.clone(), CheckerOptions::default(), workers)
                .with_transfer(transfer);
            let t0 = Instant::now();
            let (reports, fleet) = pc.check_all_telemetry(&battery).unwrap();
            let wall_ns = t0.elapsed().as_nanos() as u64;
            for ((wn, w), (gn, g)) in serial_reports.iter().zip(&reports) {
                assert_eq!(wn, gn);
                assert_eq!(w.holds, g.holds, "{wn}: parallel diverged from serial");
            }
            let peak_nodes = fleet.workers.iter().map(|w| w.peak_nodes).max().unwrap() as u64;
            let variant = match transfer {
                IndexTransfer::Snapshot => "snapshot",
                IndexTransfer::Rebuild => "rebuild",
            };
            if workers == 4 && transfer == IndexTransfer::Snapshot {
                snapshot4 = (wall_ns, peak_nodes);
            }
            entries.push(BenchEntry {
                name: format!("workers-{workers}"),
                variant: variant.to_owned(),
                wall_ns,
                peak_nodes,
                cache_hit_rate: hit_rate(&fleet.total),
                ordering: ordering.clone(),
            });
        }
    }
    BenchReport {
        bench: "par_scaling".to_owned(),
        config: vec![("rows".to_owned(), rows as u64), ("seed".to_owned(), 11)],
        entries,
        comparisons: vec![BenchComparison {
            name: "serial-vs-4-workers".to_owned(),
            baseline: "serial".to_owned(),
            candidate: "snapshot-4".to_owned(),
            wall_ns_before: serial_wall,
            wall_ns_after: snapshot4.0,
            peak_nodes_before: serial_peak,
            peak_nodes_after: snapshot4.1,
        }],
    }
}

/// Update-stream re-validation: per-batch SQL recheck vs full BDD recheck
/// vs registry-filtered BDD recheck. `wall_ns` is the total validation
/// time across all batches (maintenance excluded — it is identical work
/// for the BDD strategies and near-free for SQL).
pub fn dynamic(rows: usize, batches: usize, batch_size: usize) -> BenchReport {
    let cs = customer_battery();
    let dom = [100u64, 2000, 40];
    let apply_batch = |ck: &mut Checker, rng: &mut SplitMix64| {
        for _ in 0..batch_size {
            let row = [
                rng.gen_range(0..dom[0]) as u32,
                rng.gen_range(0..dom[1]) as u32,
                rng.gen_range(0..dom[2]) as u32,
            ];
            let fresh = ck.logical_db_mut().insert_tuple("CUST", &row).unwrap();
            if fresh {
                ck.logical_db_mut().delete_tuple("CUST", &row).unwrap();
            }
        }
    };
    let mut entries = Vec::new();
    let mut verdict_log: Vec<Vec<bool>> = Vec::new();

    // SQL recheck — no logical index, no BDD work.
    {
        let mut ck = Checker::new(customer_db(rows, 0.0), CheckerOptions::default());
        let mut rng = SplitMix64::seed_from_u64(5);
        let mut wall_ns = 0u64;
        for _ in 0..batches {
            apply_batch(&mut ck, &mut rng);
            let t0 = Instant::now();
            let vs: Vec<bool> = cs
                .iter()
                .map(|(_, f)| ck.check_sql(f).unwrap().holds)
                .collect();
            wall_ns += t0.elapsed().as_nanos() as u64;
            verdict_log.push(vs);
        }
        entries.push(BenchEntry {
            name: "sql-recheck".to_owned(),
            variant: "per-batch-validate".to_owned(),
            wall_ns,
            peak_nodes: 0,
            cache_hit_rate: 0.0,
            ordering: "n/a".to_owned(),
        });
    }

    // The two BDD strategies share options and index warm-up.
    let opts = CheckerOptions {
        gc_between_checks: false,
        ..Default::default()
    };
    let bdd_measure = |registry: bool| -> (u64, u64, f64, Vec<Vec<bool>>) {
        let mut ck = Checker::new(customer_db(rows, 0.0), opts);
        for rel in ["CUST", "CITY_STATE"] {
            ck.ensure_index(rel).unwrap();
        }
        let mut reg = ConstraintRegistry::new();
        if registry {
            for (n, f) in &cs {
                reg.register(n, f.clone());
            }
            reg.validate_all(&mut ck).unwrap();
        }
        let before = ck.logical_db().manager().stats();
        let mut rng = SplitMix64::seed_from_u64(5);
        let mut wall_ns = 0u64;
        let mut log = Vec::new();
        for batch in 0..batches {
            apply_batch(&mut ck, &mut rng);
            let t0 = Instant::now();
            let vs: Vec<bool> = if registry {
                reg.revalidate(&mut ck, &["CUST"])
                    .unwrap()
                    .iter()
                    .map(|(_, v)| v.holds())
                    .collect()
            } else {
                cs.iter().map(|(_, f)| ck.check(f).unwrap().holds).collect()
            };
            wall_ns += t0.elapsed().as_nanos() as u64;
            log.push(vs);
            if batch % 8 == 7 {
                ck.logical_db_mut().gc();
            }
        }
        let stats = ck.logical_db().manager().stats();
        (
            wall_ns,
            stats.peak_nodes as u64,
            hit_rate(&stats.delta_since(&before)),
            log,
        )
    };
    let ordering = opts.ordering.name().to_owned();
    let mut comparison_sides = Vec::new();
    for (name, registry) in [("bdd-recheck", false), ("bdd-registry", true)] {
        let (wall_ns, peak_nodes, rate, log) = bdd_measure(registry);
        assert_eq!(log, verdict_log, "{name}: verdicts diverged from SQL");
        comparison_sides.push((wall_ns, peak_nodes));
        entries.push(BenchEntry {
            name: name.to_owned(),
            variant: "per-batch-validate".to_owned(),
            wall_ns,
            peak_nodes,
            cache_hit_rate: rate,
            ordering: ordering.clone(),
        });
    }
    BenchReport {
        bench: "dynamic".to_owned(),
        config: vec![
            ("rows".to_owned(), rows as u64),
            ("batches".to_owned(), batches as u64),
            ("batch_size".to_owned(), batch_size as u64),
            ("seed".to_owned(), 5),
        ],
        entries,
        comparisons: vec![BenchComparison {
            name: "full-recheck-vs-registry".to_owned(),
            baseline: "bdd-recheck".to_owned(),
            candidate: "bdd-registry".to_owned(),
            wall_ns_before: comparison_sides[0].0,
            wall_ns_after: comparison_sides[1].0,
            peak_nodes_before: comparison_sides[0].1,
            peak_nodes_after: comparison_sides[1].1,
        }],
    }
}
