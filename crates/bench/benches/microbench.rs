//! Criterion micro-benchmarks for the BDD engine and the rewrite-rule
//! ablations (DESIGN.md decisions D2–D4).
//!
//! Groups:
//! * `build`     — sorted-tuple direct construction vs OR-folding (D2);
//! * `apply`     — conjunction of two relation BDDs;
//! * `join`      — rename-based vs equality-cube equi-join (D4, Fig 6(a));
//! * `quant`     — fused `app_exists`/`app_forall` vs unfused (D3, Fig 6(b,c));
//! * `maintain`  — single-tuple insert/delete on an index (Fig 4(b));
//! * `ordering`  — the two ordering heuristics' own cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relcheck_bdd::{Bdd, BddManager, DomainId, Op};
use relcheck_core::ordering::{max_inf_gain, prob_converge};
use relcheck_datagen::{gen_kprod, gen_random};
use std::hint::black_box;

const DOM: u64 = 100;

fn rows_u64(rel: &relcheck_relstore::Relation) -> Vec<Vec<u64>> {
    rel.rows().map(|r| r.iter().map(|&v| v as u64).collect()).collect()
}

fn setup(attrs: usize, tuples: usize, seed: u64) -> (BddManager, Vec<DomainId>, Vec<Vec<u64>>) {
    let g = gen_random(attrs, DOM, tuples, seed);
    let mut m = BddManager::new();
    let doms: Vec<DomainId> = (0..attrs).map(|_| m.add_domain(DOM).unwrap()).collect();
    let rows = rows_u64(&g.relation);
    (m, doms, rows)
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build");
    group.sample_size(15);
    for &n in &[1_000usize, 10_000, 50_000] {
        let (mut m, doms, rows) = setup(4, n, 1);
        group.bench_with_input(BenchmarkId::new("sorted", n), &n, |b, _| {
            b.iter(|| {
                let r = m.relation_from_rows_sorted(&doms, black_box(&rows)).unwrap();
                m.gc(&[]);
                r
            })
        });
        let (mut m2, doms2, rows2) = setup(4, n, 1);
        group.bench_with_input(BenchmarkId::new("or_fold", n), &n, |b, _| {
            b.iter(|| {
                let r = m2.relation_from_rows_or_fold(&doms2, black_box(&rows2)).unwrap();
                m2.gc(&[]);
                r
            })
        });
    }
    group.finish();
}

fn bench_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("apply");
    group.sample_size(15);
    for &n in &[10_000usize, 50_000] {
        let g1 = gen_kprod(4, DOM, n, 2, 3);
        let g2 = gen_kprod(4, DOM, n, 2, 4);
        let mut m = BddManager::new();
        let doms: Vec<DomainId> = (0..4).map(|_| m.add_domain(DOM).unwrap()).collect();
        let r1 = m.relation_from_rows(&doms, &rows_u64(&g1.relation)).unwrap();
        let r2 = m.relation_from_rows(&doms, &rows_u64(&g2.relation)).unwrap();
        group.bench_with_input(BenchmarkId::new("and", n), &n, |b, _| {
            b.iter(|| {
                let x = m.and(black_box(r1), black_box(r2)).unwrap();
                m.gc(&[r1, r2]);
                x
            })
        });
    }
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("join");
    group.sample_size(15);
    for &n in &[10_000usize, 40_000] {
        let mut m = BddManager::new();
        let d1: Vec<DomainId> = (0..3).map(|_| m.add_domain(1000).unwrap()).collect();
        let d2: Vec<DomainId> = (0..3).map(|_| m.add_domain(1000).unwrap()).collect();
        let g1 = gen_random(3, 1000, n, 5);
        let g2 = gen_random(3, 1000, n / 2, 6);
        let r1 = m.relation_from_rows(&d1, &rows_u64(&g1.relation)).unwrap();
        let r2 = m.relation_from_rows(&d2, &rows_u64(&g2.relation)).unwrap();
        group.bench_with_input(BenchmarkId::new("rename", n), &n, |b, _| {
            b.iter(|| {
                let moved = m.replace_domains(r2, &[(d2[0], d1[1])]).unwrap();
                let x = m.and(r1, moved).unwrap();
                m.gc(&[r1, r2]);
                x
            })
        });
        group.bench_with_input(BenchmarkId::new("equality_cube", n), &n, |b, _| {
            b.iter(|| {
                let eq = m.domain_eq(d2[0], d1[1]).unwrap();
                let t = m.and(r1, r2).unwrap();
                let t = m.and(t, eq).unwrap();
                let vs = m.domain_varset(&[d2[0]]);
                let x = m.exists(t, vs).unwrap();
                m.gc(&[r1, r2]);
                x
            })
        });
    }
    group.finish();
}

fn bench_quant(c: &mut Criterion) {
    let mut group = c.benchmark_group("quant");
    group.sample_size(15);
    let n = 40_000usize;
    let mut m = BddManager::new();
    let x = m.add_domain(1000).unwrap();
    let build = |m: &mut BddManager, seed: u64, x: DomainId| -> Bdd {
        let g = gen_random(3, 1000, n, seed);
        let o1 = m.add_domain(1000).unwrap();
        let o2 = m.add_domain(1000).unwrap();
        m.relation_from_rows(&[x, o1, o2], &rows_u64(&g.relation)).unwrap()
    };
    let p = build(&mut m, 7, x);
    let q = build(&mut m, 8, x);
    let vs = m.domain_varset(&[x]);
    group.bench_function("exists_fused_appex", |b| {
        b.iter(|| {
            let r = m.app_exists(Op::Or, p, q, vs).unwrap();
            m.gc(&[p, q]);
            r
        })
    });
    group.bench_function("exists_unfused", |b| {
        b.iter(|| {
            let ep = m.exists(p, vs).unwrap();
            let eq = m.exists(q, vs).unwrap();
            let r = m.or(ep, eq).unwrap();
            m.gc(&[p, q]);
            r
        })
    });
    group.bench_function("forall_fused_appall", |b| {
        b.iter(|| {
            let r = m.app_forall(Op::And, p, q, vs).unwrap();
            m.gc(&[p, q]);
            r
        })
    });
    group.bench_function("forall_pushed_down", |b| {
        b.iter(|| {
            let ap = m.forall(p, vs).unwrap();
            let aq = m.forall(q, vs).unwrap();
            let r = m.and(ap, aq).unwrap();
            m.gc(&[p, q]);
            r
        })
    });
    group.finish();
}

fn bench_maintain(c: &mut Criterion) {
    let mut group = c.benchmark_group("maintain");
    group.sample_size(30);
    let (mut m, doms, rows) = setup(5, 50_000, 9);
    let root = m.relation_from_rows(&doms, &rows).unwrap();
    let tuple: Vec<u64> = vec![7, 7, 7, 7, 7];
    group.bench_function("insert_delete_pair", |b| {
        b.iter(|| {
            let r = m.insert_row(root, &doms, black_box(&tuple)).unwrap();
            m.delete_row(r, &doms, &tuple).unwrap()
        })
    });
    group.finish();
}

fn bench_ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("ordering");
    group.sample_size(10);
    let g = gen_kprod(5, DOM, 50_000, 2, 10);
    group.bench_function("max_inf_gain", |b| {
        b.iter(|| max_inf_gain(black_box(&g.relation)))
    });
    group.bench_function("prob_converge", |b| {
        b.iter(|| prob_converge(black_box(&g.relation), &g.dom_sizes))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_apply,
    bench_join,
    bench_quant,
    bench_maintain,
    bench_ordering
);
criterion_main!(benches);
