//! Micro-benchmarks for the BDD engine and the rewrite-rule ablations
//! (DESIGN.md decisions D2–D4), self-timed with `std::time` so the bench
//! target builds with no external harness (the workspace is offline).
//!
//! Groups:
//! * `build`     — sorted-tuple direct construction vs OR-folding (D2);
//! * `apply`     — conjunction of two relation BDDs;
//! * `join`      — rename-based vs equality-cube equi-join (D4, Fig 6(a));
//! * `quant`     — fused `app_exists`/`app_forall` vs unfused (D3, Fig 6(b,c));
//! * `maintain`  — single-tuple insert/delete on an index (Fig 4(b));
//! * `ordering`  — the two ordering heuristics' own cost.
//!
//! Run with `cargo bench -p relcheck-bench`. Each case runs a warm-up pass
//! and then `SAMPLES` timed iterations; the median is reported (robust to
//! scheduler noise on small machines).

use relcheck_bdd::{Bdd, BddManager, DomainId, Op};
use relcheck_core::ordering::{max_inf_gain, prob_converge};
use relcheck_datagen::{gen_kprod, gen_random};
use std::hint::black_box;
use std::time::{Duration, Instant};

const DOM: u64 = 100;
const SAMPLES: usize = 11;

/// Run `f` once to warm caches, then `SAMPLES` timed iterations; print the
/// median and the spread.
fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    black_box(f());
    let mut times: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed()
        })
        .collect();
    times.sort_unstable();
    let median = times[times.len() / 2];
    let (lo, hi) = (times[0], times[times.len() - 1]);
    println!(
        "  {name:<42} {:>12.3} ms   [{:.3} .. {:.3}]",
        median.as_secs_f64() * 1e3,
        lo.as_secs_f64() * 1e3,
        hi.as_secs_f64() * 1e3,
    );
}

fn group(name: &str) {
    println!("\n{name}");
}

fn rows_u64(rel: &relcheck_relstore::Relation) -> Vec<Vec<u64>> {
    rel.rows()
        .map(|r| r.iter().map(|&v| v as u64).collect())
        .collect()
}

fn setup(attrs: usize, tuples: usize, seed: u64) -> (BddManager, Vec<DomainId>, Vec<Vec<u64>>) {
    let g = gen_random(attrs, DOM, tuples, seed);
    let mut m = BddManager::new();
    let doms: Vec<DomainId> = (0..attrs).map(|_| m.add_domain(DOM).unwrap()).collect();
    let rows = rows_u64(&g.relation);
    (m, doms, rows)
}

fn bench_build() {
    group("build (D2: sorted-tuple construction vs OR-folding)");
    for &n in &[1_000usize, 10_000, 50_000] {
        let (mut m, doms, rows) = setup(4, n, 1);
        bench(&format!("sorted/{n}"), || {
            let r = m
                .relation_from_rows_sorted(&doms, black_box(&rows))
                .unwrap();
            m.gc(&[]);
            r
        });
        let (mut m2, doms2, rows2) = setup(4, n, 1);
        bench(&format!("or_fold/{n}"), || {
            let r = m2
                .relation_from_rows_or_fold(&doms2, black_box(&rows2))
                .unwrap();
            m2.gc(&[]);
            r
        });
    }
}

fn bench_apply() {
    group("apply (conjunction of two relation BDDs)");
    for &n in &[10_000usize, 50_000] {
        let g1 = gen_kprod(4, DOM, n, 2, 3);
        let g2 = gen_kprod(4, DOM, n, 2, 4);
        let mut m = BddManager::new();
        let doms: Vec<DomainId> = (0..4).map(|_| m.add_domain(DOM).unwrap()).collect();
        let r1 = m
            .relation_from_rows(&doms, &rows_u64(&g1.relation))
            .unwrap();
        let r2 = m
            .relation_from_rows(&doms, &rows_u64(&g2.relation))
            .unwrap();
        bench(&format!("and/{n}"), || {
            let x = m.and(black_box(r1), black_box(r2)).unwrap();
            m.gc(&[r1, r2]);
            x
        });
    }
}

fn bench_join() {
    group("join (D4: rename vs equality cubes, Fig 6(a))");
    for &n in &[10_000usize, 40_000] {
        let mut m = BddManager::new();
        let d1: Vec<DomainId> = (0..3).map(|_| m.add_domain(1000).unwrap()).collect();
        let d2: Vec<DomainId> = (0..3).map(|_| m.add_domain(1000).unwrap()).collect();
        let g1 = gen_random(3, 1000, n, 5);
        let g2 = gen_random(3, 1000, n / 2, 6);
        let r1 = m.relation_from_rows(&d1, &rows_u64(&g1.relation)).unwrap();
        let r2 = m.relation_from_rows(&d2, &rows_u64(&g2.relation)).unwrap();
        bench(&format!("rename/{n}"), || {
            let moved = m.replace_domains(r2, &[(d2[0], d1[1])]).unwrap();
            let x = m.and(r1, moved).unwrap();
            m.gc(&[r1, r2]);
            x
        });
        bench(&format!("equality_cube/{n}"), || {
            let eq = m.domain_eq(d2[0], d1[1]).unwrap();
            let t = m.and(r1, r2).unwrap();
            let t = m.and(t, eq).unwrap();
            let vs = m.domain_varset(&[d2[0]]);
            let x = m.exists(t, vs).unwrap();
            m.gc(&[r1, r2]);
            x
        });
    }
}

fn bench_quant() {
    group("quant (D3: fused appex/appall vs unfused, Fig 6(b,c))");
    let n = 40_000usize;
    let mut m = BddManager::new();
    let x = m.add_domain(1000).unwrap();
    let build = |m: &mut BddManager, seed: u64, x: DomainId| -> Bdd {
        let g = gen_random(3, 1000, n, seed);
        let o1 = m.add_domain(1000).unwrap();
        let o2 = m.add_domain(1000).unwrap();
        m.relation_from_rows(&[x, o1, o2], &rows_u64(&g.relation))
            .unwrap()
    };
    let p = build(&mut m, 7, x);
    let q = build(&mut m, 8, x);
    let vs = m.domain_varset(&[x]);
    bench("exists_fused_appex", || {
        let r = m.app_exists(Op::Or, p, q, vs).unwrap();
        m.gc(&[p, q]);
        r
    });
    bench("exists_unfused", || {
        let ep = m.exists(p, vs).unwrap();
        let eq = m.exists(q, vs).unwrap();
        let r = m.or(ep, eq).unwrap();
        m.gc(&[p, q]);
        r
    });
    bench("forall_fused_appall", || {
        let r = m.app_forall(Op::And, p, q, vs).unwrap();
        m.gc(&[p, q]);
        r
    });
    bench("forall_pushed_down", || {
        let ap = m.forall(p, vs).unwrap();
        let aq = m.forall(q, vs).unwrap();
        let r = m.and(ap, aq).unwrap();
        m.gc(&[p, q]);
        r
    });
}

fn bench_maintain() {
    group("maintain (single-tuple insert/delete, Fig 4(b))");
    let (mut m, doms, rows) = setup(5, 50_000, 9);
    let root = m.relation_from_rows(&doms, &rows).unwrap();
    let tuple: Vec<u64> = vec![7, 7, 7, 7, 7];
    bench("insert_delete_pair", || {
        let r = m.insert_row(root, &doms, black_box(&tuple)).unwrap();
        m.delete_row(r, &doms, &tuple).unwrap()
    });
}

fn bench_ordering() {
    group("ordering (heuristic cost)");
    let g = gen_kprod(5, DOM, 50_000, 2, 10);
    bench("max_inf_gain", || max_inf_gain(black_box(&g.relation)));
    bench("prob_converge", || {
        prob_converge(black_box(&g.relation), &g.dom_sizes)
    });
}

fn main() {
    println!("relcheck micro-benchmarks ({SAMPLES} samples/case, median [min .. max])");
    bench_build();
    bench_apply();
    bench_join();
    bench_quant();
    bench_maintain();
    bench_ordering();
}
