//! BENCH trajectory documents: schema validity and same-seed determinism.
//!
//! The committed `BENCH_*.json` files are only trustworthy if (a) the
//! emitters always produce schema-valid documents, (b) everything except
//! wall-clock fields is a pure function of the workload seed (so a diff
//! in a committed file means the engine changed, not the weather), and
//! (c) the validator actually rejects malformed documents.

use relcheck_bench::runs;
use relcheck_core::telemetry::{parse_json, validate_bench_json, Json};

/// Drop the wall-clock fields (the only legitimately non-deterministic
/// ones) from a parsed document, recursively.
fn strip_timing(v: &Json) -> Json {
    match v {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| {
                    !matches!(k.as_str(), "wall_ns" | "wall_ns_before" | "wall_ns_after")
                })
                .map(|(k, val)| (k.clone(), strip_timing(val)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(strip_timing).collect()),
        other => other.clone(),
    }
}

#[test]
fn table1_doc_is_valid_and_deterministic_modulo_timing() {
    let a = runs::table1(2_000, 1).to_json();
    let b = runs::table1(2_000, 1).to_json();
    validate_bench_json(&a).unwrap();
    validate_bench_json(&b).unwrap();
    assert_eq!(
        strip_timing(&parse_json(&a).unwrap()),
        strip_timing(&parse_json(&b).unwrap()),
        "same seed must reproduce every non-timing field"
    );
    // The honest before/after pair the trajectory is anchored on.
    let doc = parse_json(&a).unwrap();
    let comparisons = doc.get("comparisons").unwrap().as_arr().unwrap();
    assert!(!comparisons.is_empty());
    // The adaptive variant actually reports a pick, not the fallback.
    let entries = doc.get("entries").unwrap().as_arr().unwrap();
    assert!(entries
        .iter()
        .filter(|e| e.get("variant").unwrap().as_str() == Some("shared-adaptive"))
        .all(|e| e
            .get("ordering")
            .unwrap()
            .as_str()
            .unwrap()
            .starts_with("adaptive:")));
}

#[test]
fn dynamic_doc_is_valid_and_deterministic_modulo_timing() {
    let a = runs::dynamic(2_000, 3, 20).to_json();
    let b = runs::dynamic(2_000, 3, 20).to_json();
    validate_bench_json(&a).unwrap();
    validate_bench_json(&b).unwrap();
    assert_eq!(
        strip_timing(&parse_json(&a).unwrap()),
        strip_timing(&parse_json(&b).unwrap()),
    );
}

#[test]
fn par_scaling_doc_is_valid() {
    let doc = runs::par_scaling(2_000).to_json();
    validate_bench_json(&doc).unwrap();
    // Worker-lane peaks are per-lane arenas: each must stay at or below
    // the serial manager's peak on the same battery.
    let parsed = parse_json(&doc).unwrap();
    let entries = parsed.get("entries").unwrap().as_arr().unwrap();
    let serial_peak = entries[0].get("peak_nodes").unwrap().as_int().unwrap();
    for e in &entries[1..] {
        assert!(e.get("peak_nodes").unwrap().as_int().unwrap() <= serial_peak);
    }
}

#[test]
fn validator_rejects_malformed_documents() {
    let good = runs::table1(2_000, 1).to_json();
    validate_bench_json(&good).unwrap();
    for (label, bad) in [
        (
            "version",
            good.replace("\"schema_version\": 1", "\"schema_version\": 9"),
        ),
        (
            "kind",
            good.replace("\"kind\": \"bench\"", "\"kind\": \"metrics\""),
        ),
        (
            "bench name",
            good.replace("\"bench\": \"table1\"", "\"bench\": \"table9\""),
        ),
        (
            "ordering",
            good.replace(
                "\"ordering\": \"prob-converge\"",
                "\"ordering\": \"alphabetical\"",
            ),
        ),
        (
            "hit rate range",
            good.replace("\"cache_hit_rate\": 0.", "\"cache_hit_rate\": 7."),
        ),
        (
            "entry field",
            good.replace("\"peak_nodes\"", "\"peek_nodes\""),
        ),
        (
            "comparison required",
            good.replace("\"wall_ns_before\"", "\"wall_ns_befor\""),
        ),
    ] {
        assert!(bad != good, "{label}: tamper did not apply");
        assert!(
            validate_bench_json(&bad).is_err(),
            "{label}: validator accepted a malformed document"
        );
    }
    // table1 must carry at least one comparison.
    let stripped = {
        let start = good.find("\"comparisons\": [").unwrap();
        let end = good[start..].find(']').unwrap() + start;
        format!("{}\"comparisons\": [{}", &good[..start], &good[end..])
    };
    assert!(validate_bench_json(&stripped).is_err());
}
