//! Synthetic customer database — stand-in for the paper's AT&T data.
//!
//! The paper's real dataset: 406,769 customers with schema
//! `(areacode, number, city, state, zipcode)` and active-domain sizes
//! `(281, 889, 10894, 50, 17557)`. That data is proprietary, so we generate
//! a synthetic population with the same schema, the same active-domain
//! sizes, and the correlation structure such phone data actually has:
//!
//! * every city belongs to one state (`city → state`, modulo injected
//!   violations);
//! * every area code belongs to one state (`areacode → state`);
//! * every zipcode belongs to one city (`zipcode → city`);
//! * city populations follow a heavy-tailed (zipf-like) distribution;
//! * phone `number` prefixes are uniform.
//!
//! The BDD experiments (Figures 4 and 5) depend only on these domain sizes
//! and correlations, which is why the substitution preserves the paper's
//! behaviour (see DESIGN.md).

use crate::rng::SplitMix64;
use relcheck_relstore::{Relation, Schema};

/// Generator configuration. Defaults mirror the paper.
#[derive(Debug, Clone)]
pub struct CustomerConfig {
    /// Number of customer rows to generate (pre-dedup).
    pub rows: usize,
    /// Active-domain sizes, in schema order
    /// `(areacode, number, city, state, zipcode)`.
    pub dom_sizes: [u64; 5],
    /// Fraction of rows whose `state` is scrambled (breaks `city → state`
    /// and `areacode → state`). 0.0 = clean data.
    pub violation_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CustomerConfig {
    fn default() -> Self {
        CustomerConfig {
            rows: 406_769,
            dom_sizes: [281, 889, 10894, 50, 17557],
            violation_rate: 0.0,
            seed: 0xC0FFEE,
        }
    }
}

/// The generated customer database plus its generating model (needed to
/// derive *satisfied* constraints for the Figure 5 experiments).
#[derive(Debug, Clone)]
pub struct CustomerData {
    /// The customer relation `(areacode, number, city, state, zipcode)`;
    /// column classes are `areacode`, `number`, `city`, `state`, `zipcode`.
    pub relation: Relation,
    /// Active-domain sizes in schema order.
    pub dom_sizes: [u64; 5],
    /// `state(city)` from the generating model.
    pub city_state: Vec<u32>,
    /// `state(areacode)` from the generating model.
    pub areacode_state: Vec<u32>,
    /// `city(zipcode)` from the generating model.
    pub zipcode_city: Vec<u32>,
    /// Area codes serving each state.
    pub state_areacodes: Vec<Vec<u32>>,
}

/// Column indices of the customer schema.
pub mod col {
    /// areacode
    pub const AREACODE: usize = 0;
    /// number (prefix)
    pub const NUMBER: usize = 1;
    /// city
    pub const CITY: usize = 2;
    /// state
    pub const STATE: usize = 3;
    /// zipcode
    pub const ZIPCODE: usize = 4;
}

/// Generate the synthetic customer database.
pub fn generate(cfg: &CustomerConfig) -> CustomerData {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed);
    let [n_area, n_number, n_city, n_state, n_zip] = cfg.dom_sizes;

    // Model: assign each city and each area code to a state; each zipcode
    // to a city. Round-robin with shuffle-free random assignment keeps all
    // domains fully active.
    let city_state: Vec<u32> = (0..n_city)
        .map(|_| rng.gen_range(0..n_state) as u32)
        .collect();
    let areacode_state: Vec<u32> = (0..n_area)
        .map(|_| rng.gen_range(0..n_state) as u32)
        .collect();
    // Give every city at least one zipcode (when there are enough zips) so
    // the model FD `zipcode → city` holds with every city active; remaining
    // zips spread randomly.
    let zipcode_city: Vec<u32> = (0..n_zip)
        .map(|z| {
            if z < n_city {
                z as u32
            } else {
                rng.gen_range(0..n_city) as u32
            }
        })
        .collect();

    let mut state_areacodes: Vec<Vec<u32>> = vec![Vec::new(); n_state as usize];
    for (ac, &st) in areacode_state.iter().enumerate() {
        state_areacodes[st as usize].push(ac as u32);
    }
    // Guarantee every state has at least one area code.
    for acs in state_areacodes.iter_mut() {
        if acs.is_empty() {
            acs.push(rng.gen_range(0..n_area) as u32);
        }
    }
    let mut city_zips: Vec<Vec<u32>> = vec![Vec::new(); n_city as usize];
    for (z, &c) in zipcode_city.iter().enumerate() {
        city_zips[c as usize].push(z as u32);
    }

    // Zipf-ish city weights: weight(rank) ∝ 1/(rank+1).
    let weights: Vec<f64> = (0..n_city).map(|i| 1.0 / (i + 1) as f64).collect();
    let total_weight: f64 = weights.iter().sum();
    // Cumulative distribution for sampling.
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total_weight;
        cdf.push(acc);
    }

    let mut rows = Vec::with_capacity(cfg.rows);
    for _ in 0..cfg.rows {
        let u: f64 = rng.gen_f64();
        let city = cdf.partition_point(|&c| c < u).min(n_city as usize - 1) as u32;
        let mut state = city_state[city as usize];
        if cfg.violation_rate > 0.0 && rng.gen_bool(cfg.violation_rate) {
            state = rng.gen_range(0..n_state) as u32;
        }
        let acs = &state_areacodes[state as usize];
        let areacode = acs[rng.gen_range(0..acs.len())];
        let zips = &city_zips[city as usize];
        let zipcode = if zips.is_empty() {
            rng.gen_range(0..n_zip) as u32
        } else {
            zips[rng.gen_range(0..zips.len())]
        };
        let number = rng.gen_range(0..n_number) as u32;
        rows.push(vec![areacode, number, city, state, zipcode]);
    }

    let schema = Schema::new(&[
        ("areacode", "areacode"),
        ("number", "number"),
        ("city", "city"),
        ("state", "state"),
        ("zipcode", "zipcode"),
    ]);
    CustomerData {
        relation: Relation::from_rows(schema, rows).expect("fixed arity"),
        dom_sizes: cfg.dom_sizes,
        city_state,
        areacode_state,
        zipcode_city,
        state_areacodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcheck_relstore::algebra;

    fn small_cfg() -> CustomerConfig {
        CustomerConfig {
            rows: 20_000,
            dom_sizes: [40, 100, 500, 20, 800],
            violation_rate: 0.0,
            seed: 1,
        }
    }

    #[test]
    fn clean_data_satisfies_model_fds() {
        let d = generate(&small_cfg());
        // city → state holds on clean data.
        assert!(algebra::fd_holds(&d.relation, &[col::CITY], &[col::STATE]).unwrap());
        // zipcode → city holds.
        assert!(algebra::fd_holds(&d.relation, &[col::ZIPCODE], &[col::CITY]).unwrap());
    }

    #[test]
    fn areacode_state_consistent_with_model() {
        let d = generate(&small_cfg());
        for row in d.relation.rows() {
            let ac = row[col::AREACODE] as usize;
            let st = row[col::STATE];
            assert!(
                d.state_areacodes[st as usize].contains(&(ac as u32)),
                "area code {ac} not registered for state {st}"
            );
        }
    }

    #[test]
    fn violations_injected_at_requested_rate() {
        let mut cfg = small_cfg();
        cfg.violation_rate = 0.10;
        let d = generate(&cfg);
        let v = algebra::fd_violations(&d.relation, &[col::CITY], &[col::STATE]).unwrap();
        assert!(!v.is_empty(), "10% scrambling must break city → state");
    }

    #[test]
    fn domains_within_bounds() {
        let d = generate(&small_cfg());
        for (c, &size) in d.dom_sizes.iter().enumerate() {
            assert!(
                d.relation.col(c).iter().all(|&v| (v as u64) < size),
                "column {c}"
            );
        }
    }

    #[test]
    fn city_distribution_is_heavy_tailed() {
        let d = generate(&small_cfg());
        let counts = {
            let mut c = vec![0usize; 500];
            for &city in d.relation.col(col::CITY) {
                c[city as usize] += 1;
            }
            c
        };
        let max = *counts.iter().max().unwrap();
        let avg = d.relation.len() / 500;
        assert!(
            max > 10 * avg,
            "top city should dominate: max={max}, avg={avg}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small_cfg());
        let b = generate(&small_cfg());
        assert_eq!(a.relation.len(), b.relation.len());
        assert_eq!(a.city_state, b.city_state);
    }
}
