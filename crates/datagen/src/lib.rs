#![warn(missing_docs)]

//! # relcheck-datagen — synthetic workloads for the ICDE 2007 experiments
//!
//! Three generator families, mirroring Section 5 of the paper:
//!
//! * [`prod`] — the structured relation families **1-PROD** (a Cartesian
//!   product of smaller random relations), **k-PROD** (a union of `k` such
//!   products over random attribute partitions) and **RANDOM** (uniform
//!   random tuples). These drive the variable-ordering experiments
//!   (Figures 2 and 3).
//! * [`customer`] — a synthetic stand-in for the paper's proprietary AT&T
//!   customer database: schema `(areacode, number, city, state, zipcode)`
//!   with the paper's active-domain sizes `(281, 889, 10894, 50, 17557)` and
//!   embedded correlations (`city → state`, `areacode → state`,
//!   `zipcode → city`) plus controllable violation injection. Drives the
//!   index-maintenance and constraint-checking experiments (Figures 4, 5).
//! * [`curriculum`] — the STUDENT / COURSE / TAKES schema from the paper's
//!   introduction, with a controllable fraction of students violating the
//!   "CS students take a Programming course" policy (Formula 1).
//!
//! All randomness comes from the in-crate [`rng::SplitMix64`] generator, so
//! the workspace builds hermetically (no external dependencies) and the same
//! seed yields the same dataset on every platform.

pub mod curriculum;
pub mod customer;
pub mod prod;
pub mod rng;

pub use customer::{CustomerConfig, CustomerData};
pub use prod::{gen_kprod, gen_random, Generated};
pub use rng::SplitMix64;
