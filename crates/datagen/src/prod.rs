//! The structured relation families of Section 5.1: 1-PROD, k-PROD, RANDOM.
//!
//! A **1-PROD** relation is `R = R₁ × R₂ × …` where the `Rᵢ` are small
//! random relations over a random partition of the attributes. A **k-PROD**
//! relation is the union of `k` independent 1-PROD relations (each with its
//! own random partition). **RANDOM** relations are uniform random tuple
//! sets. The paper uses 5 attributes with active domains ≤ 100 and 400,000
//! tuples; all parameters are configurable here.

use crate::rng::SplitMix64;
use relcheck_relstore::{Relation, Schema};
use std::collections::HashSet;

/// A generated relation together with the attribute-domain sizes used (the
/// codes of column `i` are `0..dom_sizes[i]`).
#[derive(Debug, Clone)]
pub struct Generated {
    /// The relation (set semantics, coded columns).
    pub relation: Relation,
    /// `|dom|` per column — what sizes the BDD finite-domain blocks.
    pub dom_sizes: Vec<u64>,
}

fn schema(attrs: usize) -> Schema {
    let names: Vec<(String, String)> = (0..attrs)
        .map(|i| (format!("v{i}"), format!("v{i}")))
        .collect();
    let refs: Vec<(&str, &str)> = names
        .iter()
        .map(|(n, c)| (n.as_str(), c.as_str()))
        .collect();
    Schema::new(&refs)
}

/// Per-attribute active-domain sizes. The paper's synthetic schema has
/// "active domain size at most 100" — i.e. *heterogeneous* sizes, which is
/// what separates the two ordering heuristics (with equal sizes the greedy
/// steps of `MaxInf-Gain` and `Prob-Converge` coincide analytically). We
/// draw each size uniformly in `[max/4, max]`.
fn attr_sizes(rng: &mut SplitMix64, attrs: usize, max: u64) -> Vec<u64> {
    let lo = (max / 4).max(2);
    (0..attrs).map(|_| rng.gen_range(lo..=max)).collect()
}

/// Uniform random relation: `tuples` distinct rows over `attrs` attributes
/// with per-attribute active domains of size at most `dom`.
pub fn gen_random(attrs: usize, dom: u64, tuples: usize, seed: u64) -> Generated {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let dom_sizes = attr_sizes(&mut rng, attrs, dom);
    let capacity: f64 = dom_sizes.iter().map(|&s| s as f64).product();
    assert!(
        (tuples as f64) <= capacity,
        "cannot draw {tuples} distinct tuples from a space of {capacity}"
    );
    let mut seen: HashSet<Vec<u32>> = HashSet::with_capacity(tuples);
    while seen.len() < tuples {
        let row: Vec<u32> = dom_sizes
            .iter()
            .map(|&s| rng.gen_range(0..s) as u32)
            .collect();
        seen.insert(row);
    }
    Generated {
        relation: Relation::from_rows(schema(attrs), seen).expect("schema arity matches"),
        dom_sizes,
    }
}

/// A k-PROD relation: the union of `k` products of small random relations
/// over random attribute partitions, targeting `tuples` rows in total.
///
/// `k = 1` gives the most structured (1-PROD) family. Panics if `k == 0`
/// (use [`gen_random`] for unstructured relations).
pub fn gen_kprod(attrs: usize, dom: u64, tuples: usize, k: usize, seed: u64) -> Generated {
    assert!(k >= 1, "k-PROD requires k ≥ 1");
    assert!(attrs >= 2, "a product needs at least two attributes");
    let mut rng = SplitMix64::seed_from_u64(seed);
    let dom_sizes = attr_sizes(&mut rng, attrs, dom);
    let per_product = (tuples / k).max(1);
    let mut rows: HashSet<Vec<u32>> = HashSet::with_capacity(tuples);
    for _ in 0..k {
        for row in gen_one_product(&mut rng, attrs, &dom_sizes, per_product) {
            rows.insert(row);
        }
    }
    Generated {
        relation: Relation::from_rows(schema(attrs), rows).expect("schema arity matches"),
        dom_sizes,
    }
}

/// One product `R₁ × R₂ × …` over a random partition of the attributes,
/// targeting roughly `target` tuples. Returns materialized rows.
fn gen_one_product(
    rng: &mut SplitMix64,
    attrs: usize,
    dom_sizes: &[u64],
    target: usize,
) -> Vec<Vec<u32>> {
    // Random partition into 2..=min(attrs, 3) groups: few groups keeps each
    // factor's cardinality manageable while still giving product structure.
    let groups = rng.gen_range(2..=attrs.min(3));
    let mut perm: Vec<usize> = (0..attrs).collect();
    rng.shuffle(&mut perm);
    // Random split points.
    let mut cuts: Vec<usize> = (1..attrs).collect();
    rng.shuffle(&mut cuts);
    let mut cuts: Vec<usize> = cuts[..groups - 1].to_vec();
    cuts.sort_unstable();
    let mut parts: Vec<Vec<usize>> = Vec::with_capacity(groups);
    let mut prev = 0;
    for &c in cuts.iter().chain(std::iter::once(&attrs)) {
        parts.push(perm[prev..c].to_vec());
        prev = c;
    }
    // Factor cardinalities: distribute `target` multiplicatively, capped by
    // each factor's tuple-space capacity.
    let mut remaining = target as f64;
    let mut factors: Vec<(Vec<usize>, Vec<Vec<u32>>)> = Vec::with_capacity(parts.len());
    for (gi, part) in parts.iter().enumerate() {
        let left = parts.len() - gi;
        let capacity: f64 = part.iter().map(|&c| dom_sizes[c] as f64).product();
        let want = remaining.powf(1.0 / left as f64).round().max(1.0);
        let size = want.min(capacity) as usize;
        remaining = (remaining / size as f64).max(1.0);
        let mut tuples: HashSet<Vec<u32>> = HashSet::with_capacity(size);
        while tuples.len() < size {
            let t: Vec<u32> = part
                .iter()
                .map(|&c| rng.gen_range(0..dom_sizes[c]) as u32)
                .collect();
            tuples.insert(t);
        }
        factors.push((part.clone(), tuples.into_iter().collect()));
    }
    // Materialize the product.
    let mut rows = vec![vec![0u32; attrs]];
    for (part, tuples) in &factors {
        let mut next = Vec::with_capacity(rows.len() * tuples.len());
        for row in &rows {
            for t in tuples {
                let mut r = row.clone();
                for (&col, &v) in part.iter().zip(t) {
                    r[col] = v;
                }
                next.push(r);
            }
        }
        rows = next;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcheck_relstore::stats;

    #[test]
    fn random_has_exact_cardinality() {
        let g = gen_random(5, 100, 2000, 1);
        assert_eq!(g.relation.len(), 2000);
        assert_eq!(g.relation.arity(), 5);
        assert_eq!(g.dom_sizes.len(), 5);
        for (c, &size) in g.dom_sizes.iter().enumerate() {
            assert!(
                (25..=100).contains(&size),
                "heterogeneous sizes in [max/4, max]"
            );
            assert!(g.relation.col(c).iter().all(|&v| (v as u64) < size));
        }
    }

    #[test]
    fn domain_sizes_are_heterogeneous() {
        // The paper's "active domain size at most 100": different
        // attributes get different sizes (this is what separates the two
        // ordering heuristics).
        let g = gen_kprod(5, 100, 5000, 1, 3);
        let distinct: HashSet<u64> = g.dom_sizes.iter().copied().collect();
        assert!(distinct.len() > 1, "sizes {:?} should differ", g.dom_sizes);
    }

    #[test]
    fn random_is_reproducible() {
        let a = gen_random(4, 50, 500, 7);
        let b = gen_random(4, 50, 500, 7);
        let ra: HashSet<Vec<u32>> = a.relation.rows().collect();
        let rb: HashSet<Vec<u32>> = b.relation.rows().collect();
        assert_eq!(ra, rb);
        let c = gen_random(4, 50, 500, 8);
        let rc: HashSet<Vec<u32>> = c.relation.rows().collect();
        assert_ne!(ra, rc);
    }

    #[test]
    fn one_prod_has_product_structure() {
        // In a 1-PROD relation some attribute split (A|B) satisfies
        // H(A,B) = H(A) + H(B)... only for the generating partition. We
        // check a weaker, robust signature: the relation is much more
        // compressible than random — its joint entropy is well below
        // log2(len) only if duplicates... relations are sets, so instead
        // check that *some* single attribute has few distinct values
        // relative to the tuple count (the product factors repeat values).
        let g = gen_kprod(5, 100, 4000, 1, 3);
        assert!(g.relation.len() >= 1000, "got {}", g.relation.len());
        let min_distinct = (0..5).map(|c| g.relation.distinct(c)).min().unwrap();
        assert!(
            min_distinct < g.relation.len() / 4,
            "product structure should repeat attribute values heavily"
        );
    }

    #[test]
    fn kprod_row_count_near_target() {
        for k in [1usize, 4, 8] {
            let g = gen_kprod(5, 100, 4000, k, 11 + k as u64);
            // Unions and rounding make this inexact; demand within 2x.
            assert!(
                g.relation.len() >= 2000 && g.relation.len() <= 8000,
                "k={k}: {} rows",
                g.relation.len()
            );
        }
    }

    #[test]
    fn prod_entropy_structure_vs_random() {
        // Structured relations have lower joint entropy growth along the
        // generating groups than a same-size random relation on average.
        // Just assert both compute without pathologies.
        let s = gen_kprod(5, 20, 2000, 1, 5);
        let r = gen_random(5, 20, s.relation.len(), 5);
        let hs = stats::entropy(&s.relation, &[0, 1, 2, 3, 4]);
        let hr = stats::entropy(&r.relation, &[0, 1, 2, 3, 4]);
        // Both are sets: joint entropy = log2(n) exactly.
        assert!((hs - (s.relation.len() as f64).log2()).abs() < 1e-9);
        assert!((hr - (r.relation.len() as f64).log2()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn random_rejects_impossible_cardinality() {
        gen_random(2, 3, 100, 0);
    }
}
