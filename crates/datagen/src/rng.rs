//! A small, self-contained PRNG so the workspace has no external
//! dependencies (the tier-1 verify must build with no network access).
//!
//! [`SplitMix64`] is Steele, Lea & Flood's 64-bit mixer (the same generator
//! Java's `SplittableRandom` and xoshiro's seeding routine use). It is not
//! cryptographic, but it passes BigCrush and is more than adequate for
//! synthetic-workload generation. The API deliberately mirrors the subset of
//! `rand` the generators used before the cut-over — `seed_from_u64`,
//! `gen_range` over half-open and inclusive ranges, `gen_f64`, `gen_bool`,
//! `shuffle` — so call sites read the same.
//!
//! Determinism contract: the same seed always yields the same stream, on
//! every platform, forever. Generated datasets are part of test baselines,
//! so **do not change the mixing constants or the sampling algorithms**
//! without re-baselining every statistical test in the workspace.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 pseudo-random generator. `Copy` is deliberately not derived:
/// accidentally forking the stream by copying the state is a footgun.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator. Mirrors `rand::SeedableRng::seed_from_u64`.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)` without modulo bias (Lemire's
    /// multiply-shift rejection method).
    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty sampling range");
        // 2^64 mod n: values of x*n whose low word falls below this would
        // land in a partially-covered bucket, so reject them.
        let threshold = n.wrapping_neg() % n;
        loop {
            let m = (self.next_u64() as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform draw from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(2..=5)`. Panics on an empty range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.gen_f64() < p
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// Range types accepted by [`SplitMix64::gen_range`].
pub trait SampleRange {
    /// Element type produced by sampling.
    type Output;
    /// Draw uniformly from the range.
    fn sample(self, rng: &mut SplitMix64) -> Self::Output;
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut SplitMix64) -> u64 {
        assert!(self.start < self.end, "empty range {self:?}");
        self.start + rng.below(self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<u64> {
    type Output = u64;
    fn sample(self, rng: &mut SplitMix64) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {self:?}");
        match hi.checked_sub(lo).and_then(|s| s.checked_add(1)) {
            Some(span) => lo + rng.below(span),
            // lo..=u64::MAX with lo == 0: the full 64-bit range.
            None => rng.next_u64(),
        }
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SplitMix64) -> usize {
        assert!(self.start < self.end, "empty range {self:?}");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SplitMix64) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {self:?}");
        lo + rng.below((hi - lo) as u64 + 1) as usize
    }
}

impl SampleRange for Range<u32> {
    type Output = u32;
    fn sample(self, rng: &mut SplitMix64) -> u32 {
        assert!(self.start < self.end, "empty range {self:?}");
        self.start + rng.below((self.end - self.start) as u64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        let mut c = SplitMix64::seed_from_u64(8);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn known_answer_vector() {
        // Reference outputs for seed 0 from the published SplitMix64
        // algorithm; pins the stream across refactors.
        let mut r = SplitMix64::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(5u64..17);
            assert!((5..17).contains(&x));
            let y = r.gen_range(2usize..=5);
            assert!((2..=5).contains(&y));
            let z = r.gen_range(0u64..=0);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = SplitMix64::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn f64_in_unit_interval_with_spread() {
        let mut r = SplitMix64::seed_from_u64(11);
        let draws: Vec<f64> = (0..10_000).map(|_| r.gen_f64()).collect();
        assert!(draws.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn bool_tracks_probability() {
        let mut r = SplitMix64::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::seed_from_u64(17);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SplitMix64::seed_from_u64(0).gen_range(3u64..3);
    }
}
