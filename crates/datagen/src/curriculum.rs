//! The STUDENT / COURSE / TAKES example from the paper's introduction.
//!
//! Policy (Formula 1): every student in the "CS" department must take some
//! course in the "Programming" area. The generator controls how many CS
//! students violate it, so both the satisfied and the violated paths of the
//! checker get exercised.

use crate::rng::SplitMix64;
use relcheck_relstore::{Database, Raw};

/// Generator configuration for the curriculum database.
#[derive(Debug, Clone)]
pub struct CurriculumConfig {
    /// Number of students.
    pub students: usize,
    /// Number of courses.
    pub courses: usize,
    /// Departments (the first is "CS").
    pub departments: usize,
    /// Course areas (the first is "Programming").
    pub areas: usize,
    /// Courses taken per student.
    pub courses_per_student: usize,
    /// Number of CS students who take **no** Programming course.
    pub violating_students: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CurriculumConfig {
    fn default() -> Self {
        CurriculumConfig {
            students: 2000,
            courses: 200,
            departments: 8,
            areas: 10,
            courses_per_student: 4,
            violating_students: 0,
            seed: 42,
        }
    }
}

fn dept_name(i: usize) -> String {
    if i == 0 {
        "CS".to_owned()
    } else {
        format!("dept{i}")
    }
}

fn area_name(i: usize) -> String {
    if i == 0 {
        "Programming".to_owned()
    } else {
        format!("area{i}")
    }
}

/// Populate `db` with STUDENT(student_id, department, contact),
/// COURSE(course_id, area) and TAKES(student_id, course_id).
///
/// Returns the ids of the injected violating students.
pub fn populate(db: &mut Database, cfg: &CurriculumConfig) -> Vec<i64> {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed);

    // Courses: area assigned round-robin so every area (incl. Programming)
    // has courses.
    let course_area: Vec<usize> = (0..cfg.courses).map(|c| c % cfg.areas).collect();
    let programming_courses: Vec<usize> =
        (0..cfg.courses).filter(|&c| course_area[c] == 0).collect();
    assert!(
        !programming_courses.is_empty(),
        "need at least one Programming course"
    );

    let mut students = Vec::with_capacity(cfg.students);
    let mut takes = Vec::new();
    let mut violators = Vec::new();
    for s in 0..cfg.students {
        let dept = rng.gen_range(0..cfg.departments);
        let is_cs = dept == 0;
        let make_violator = is_cs && violators.len() < cfg.violating_students;
        students.push(vec![
            Raw::Int(s as i64),
            Raw::str(dept_name(dept)),
            Raw::str(format!("contact{s}")),
        ]);
        let mut enrolled = std::collections::HashSet::new();
        while enrolled.len() < cfg.courses_per_student.min(cfg.courses) {
            let c = rng.gen_range(0..cfg.courses);
            if make_violator && course_area[c] == 0 {
                continue; // violators avoid Programming courses
            }
            enrolled.insert(c);
        }
        if is_cs && !make_violator {
            // Guarantee compliance: ensure one Programming course.
            if !enrolled.iter().any(|&c| course_area[c] == 0) {
                let c = programming_courses[rng.gen_range(0..programming_courses.len())];
                enrolled.insert(c);
            }
        }
        if make_violator {
            violators.push(s as i64);
        }
        for c in enrolled {
            takes.push(vec![Raw::Int(s as i64), Raw::Int(c as i64)]);
        }
    }
    let courses: Vec<Vec<Raw>> = (0..cfg.courses)
        .map(|c| vec![Raw::Int(c as i64), Raw::str(area_name(course_area[c]))])
        .collect();

    db.create_relation(
        "STUDENT",
        &[
            ("student_id", "student_id"),
            ("department", "department"),
            ("contact", "contact"),
        ],
        students,
    )
    .expect("fresh db");
    db.create_relation(
        "COURSE",
        &[("course_id", "course_id"), ("area", "area")],
        courses,
    )
    .expect("fresh db");
    db.create_relation(
        "TAKES",
        &[("student_id", "student_id"), ("course_id", "course_id")],
        takes,
    )
    .expect("fresh db");
    violators
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcheck_relstore::{
        algebra,
        plan::{execute, Plan},
    };

    fn check_violators(db: &Database) -> usize {
        // SQL formulation from the paper's introduction: CS students with no
        // Programming TAKES partner.
        let cs_students = Plan::scan("STUDENT")
            .select_eq(1, Raw::str("CS"))
            .project(vec![0]);
        let programming_takes = Plan::scan("TAKES")
            .join(
                Plan::scan("COURSE").select_eq(1, Raw::str("Programming")),
                vec![(1, 0)],
            )
            .project(vec![0]);
        let violations = cs_students.anti_join(programming_takes, vec![(0, 0)]);
        execute(db, &violations).unwrap().len()
    }

    #[test]
    fn clean_database_satisfies_policy() {
        let mut db = Database::new();
        let v = populate(&mut db, &CurriculumConfig::default());
        assert!(v.is_empty());
        assert_eq!(check_violators(&db), 0);
    }

    #[test]
    fn injected_violators_are_found() {
        let mut db = Database::new();
        let cfg = CurriculumConfig {
            violating_students: 7,
            ..Default::default()
        };
        let v = populate(&mut db, &cfg);
        assert_eq!(v.len(), 7);
        assert_eq!(check_violators(&db), 7);
    }

    #[test]
    fn relations_have_expected_shapes() {
        let mut db = Database::new();
        let cfg = CurriculumConfig {
            students: 100,
            ..Default::default()
        };
        populate(&mut db, &cfg);
        assert_eq!(db.relation("STUDENT").unwrap().len(), 100);
        assert_eq!(db.relation("COURSE").unwrap().len(), cfg.courses);
        let takes = db.relation("TAKES").unwrap();
        assert!(takes.len() >= 100 * cfg.courses_per_student / 2);
        // Student ids in TAKES are a subset of STUDENT ids.
        let student_ids = algebra::project(db.relation("STUDENT").unwrap(), &[0]).unwrap();
        let dangling = algebra::anti_join(takes, &student_ids, &[(0, 0)]).unwrap();
        assert!(dangling.is_empty());
    }
}
