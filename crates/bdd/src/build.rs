//! Bulk construction of relation BDDs.
//!
//! Two strategies are provided (DESIGN.md decision D2):
//!
//! * [`BddManager::relation_from_rows`] — the fast path: encode every row as
//!   a packed bit string ordered by variable level, sort, deduplicate, and
//!   build the BDD bottom-up with a divide-and-conquer over the sorted set.
//!   No `apply` calls, no operation-cache traffic; node sharing falls out of
//!   the unique table. Requires the layout to fit in 64 bits (the paper's
//!   widest index is 35).
//! * [`BddManager::relation_from_rows_or_fold`] — the textbook construction
//!   `⋁ᵢ cube(tᵢ)` via size-balanced OR folding; works for any width and
//!   cross-checks the fast path in tests.

use crate::error::{BddError, Result};
use crate::fdd::DomainId;
use crate::manager::{Bdd, BddManager, Var};

impl BddManager {
    /// Build the characteristic-function BDD of a relation given as rows of
    /// domain values. Rows are deduplicated (set semantics). Picks the
    /// sorted-tuple fast path when the layout fits 64 bits, else falls back
    /// to OR folding.
    pub fn relation_from_rows(&mut self, domains: &[DomainId], rows: &[Vec<u64>]) -> Result<Bdd> {
        let total_bits: usize = domains.iter().map(|&d| self.domain_vars(d).len()).sum();
        if total_bits <= 64 {
            self.relation_from_rows_sorted(domains, rows)
        } else {
            self.relation_from_rows_or_fold(domains, rows)
        }
    }

    /// The sorted-tuple direct construction (strategy D2, fast path).
    ///
    /// # Errors
    /// [`BddError::TupleTooWide`] if the layout exceeds 64 bits;
    /// [`BddError::DuplicateDomain`] if a domain appears twice.
    pub fn relation_from_rows_sorted(
        &mut self,
        domains: &[DomainId],
        rows: &[Vec<u64>],
    ) -> Result<Bdd> {
        let layout = self.layout(domains)?;
        if layout.levels.len() > 64 {
            return Err(BddError::TupleTooWide {
                bits: layout.levels.len() as u32,
            });
        }
        let mut keys = Vec::with_capacity(rows.len());
        for row in rows {
            keys.push(self.encode_row(&layout, domains, row)?);
        }
        keys.sort_unstable();
        keys.dedup();
        self.build_sorted(&layout.levels, &keys, 0)
    }

    /// The OR-folding construction (strategy D2, baseline/ablation path).
    pub fn relation_from_rows_or_fold(
        &mut self,
        domains: &[DomainId],
        rows: &[Vec<u64>],
    ) -> Result<Bdd> {
        // Balanced folding keeps intermediate BDDs small compared to a
        // left-to-right fold.
        let mut layer: Vec<Bdd> = Vec::with_capacity(rows.len());
        for row in rows {
            layer.push(self.row_cube(domains, row)?);
        }
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 {
                    self.or(pair[0], pair[1])?
                } else {
                    pair[0]
                });
            }
            layer = next;
        }
        Ok(layer.pop().unwrap_or(Bdd::FALSE))
    }

    /// Recursive divide-and-conquer over a sorted, deduplicated key slice.
    /// `depth` indexes into `levels`; the bit for that level sits at
    /// position `levels.len() - 1 - depth` (MSB = first-decided level).
    fn build_sorted(&mut self, levels: &[Var], keys: &[u64], depth: usize) -> Result<Bdd> {
        if keys.is_empty() {
            return Ok(Bdd::FALSE);
        }
        if depth == levels.len() {
            return Ok(Bdd::TRUE);
        }
        let bit = 1u64 << (levels.len() - 1 - depth);
        // keys are sorted, so all bit=0 keys precede bit=1 keys.
        let split = keys.partition_point(|&k| k & bit == 0);
        let low = self.build_sorted(levels, &keys[..split], depth + 1)?;
        let high = self.build_sorted(levels, &keys[split..], depth + 1)?;
        self.mk(levels[depth], low, high)
    }

    fn layout(&self, domains: &[DomainId]) -> Result<Layout> {
        // Collect (level, domain index, significance) for every variable of
        // every domain, sorted by level — the decision order of the BDD.
        let mut entries: Vec<(Var, usize, u32)> = Vec::new();
        for (di, &d) in domains.iter().enumerate() {
            let vars = self.domain_vars(d);
            let k = vars.len() as u32;
            for (j, &v) in vars.iter().enumerate() {
                entries.push((v, di, k - 1 - j as u32));
            }
        }
        entries.sort_unstable_by_key(|&(v, _, _)| v);
        for w in entries.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(BddError::DuplicateDomain);
            }
        }
        Ok(Layout {
            levels: entries.iter().map(|&(v, _, _)| v).collect(),
            sources: entries.iter().map(|&(_, di, bit)| (di, bit)).collect(),
        })
    }

    fn encode_row(&self, layout: &Layout, domains: &[DomainId], row: &[u64]) -> Result<u64> {
        if row.len() != domains.len() {
            return Err(BddError::ArityMismatch {
                expected: domains.len(),
                got: row.len(),
            });
        }
        for (&d, &v) in domains.iter().zip(row) {
            let size = self.domain_info(d).size;
            if v >= size {
                return Err(BddError::ValueOutOfDomain {
                    value: v,
                    domain_size: size,
                });
            }
        }
        let n = layout.levels.len();
        let mut key = 0u64;
        for (i, &(di, bit)) in layout.sources.iter().enumerate() {
            if row[di] >> bit & 1 == 1 {
                key |= 1 << (n - 1 - i);
            }
        }
        Ok(key)
    }
}

struct Layout {
    /// Variable levels in ascending (decision) order.
    levels: Vec<Var>,
    /// For each level: (index of source domain in the layout list, bit
    /// significance within the domain's value).
    sources: Vec<(usize, u32)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_rows(n: usize, doms: &[u64], seed: u64) -> Vec<Vec<u64>> {
        // Tiny deterministic LCG — keeps the unit test dependency-free.
        let mut state = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|_| doms.iter().map(|&s| next() % s).collect())
            .collect()
    }

    #[test]
    fn sorted_build_matches_or_fold() {
        let sizes = [7u64, 13, 4];
        let rows = rand_rows(500, &sizes, 42);
        let mut m1 = BddManager::new();
        let doms1: Vec<DomainId> = sizes.iter().map(|&s| m1.add_domain(s).unwrap()).collect();
        let fast = m1.relation_from_rows_sorted(&doms1, &rows).unwrap();
        let fold = m1.relation_from_rows_or_fold(&doms1, &rows).unwrap();
        assert_eq!(fast, fold, "both strategies yield the canonical BDD");
    }

    #[test]
    fn membership_agrees_with_input_set() {
        let sizes = [9u64, 5];
        let rows = rand_rows(60, &sizes, 7);
        let mut m = BddManager::new();
        let doms: Vec<DomainId> = sizes.iter().map(|&s| m.add_domain(s).unwrap()).collect();
        let r = m.relation_from_rows(&doms, &rows).unwrap();
        let set: std::collections::HashSet<&Vec<u64>> = rows.iter().collect();
        for a in 0..sizes[0] {
            for b in 0..sizes[1] {
                let t = vec![a, b];
                assert_eq!(
                    m.contains(r, &doms, &t).unwrap(),
                    set.contains(&t),
                    "tuple {t:?}"
                );
            }
        }
    }

    #[test]
    fn duplicate_rows_deduplicated() {
        let mut m = BddManager::new();
        let d = m.add_domain(10).unwrap();
        let rows = vec![vec![3], vec![3], vec![3], vec![7]];
        let r = m.relation_from_rows(&[d], &rows).unwrap();
        assert_eq!(m.tuple_count(r, &[d]).unwrap(), 2.0);
    }

    #[test]
    fn empty_relation_is_false() {
        let mut m = BddManager::new();
        let d = m.add_domain(10).unwrap();
        assert_eq!(m.relation_from_rows(&[d], &[]).unwrap(), Bdd::FALSE);
        assert_eq!(m.relation_from_rows_or_fold(&[d], &[]).unwrap(), Bdd::FALSE);
    }

    #[test]
    fn full_relation_is_range_product() {
        let mut m = BddManager::new();
        let d1 = m.add_domain(4).unwrap();
        let d2 = m.add_domain(4).unwrap();
        let rows: Vec<Vec<u64>> = (0..4)
            .flat_map(|a| (0..4).map(move |b| vec![a, b]))
            .collect();
        let r = m.relation_from_rows(&[d1, d2], &rows).unwrap();
        // Every bit pattern is valid (size 4 = 2 bits exactly) → TRUE.
        assert_eq!(r, Bdd::TRUE);
    }

    #[test]
    fn bad_rows_rejected() {
        let mut m = BddManager::new();
        let d1 = m.add_domain(5).unwrap();
        let d2 = m.add_domain(5).unwrap();
        assert!(matches!(
            m.relation_from_rows(&[d1, d2], &[vec![1]]),
            Err(BddError::ArityMismatch { .. })
        ));
        assert!(matches!(
            m.relation_from_rows(&[d1, d2], &[vec![1, 9]]),
            Err(BddError::ValueOutOfDomain { .. })
        ));
        assert!(matches!(
            m.relation_from_rows_sorted(&[d1, d1], &[vec![1, 2]]),
            Err(BddError::DuplicateDomain)
        ));
    }

    #[test]
    fn interleaved_domain_declaration_order() {
        // Declare domains, then list them to the builder in a different
        // order than declaration: layout must still follow variable levels.
        let mut m = BddManager::new();
        let d1 = m.add_domain(8).unwrap();
        let d2 = m.add_domain(8).unwrap();
        let rows = vec![vec![5u64, 2], vec![1, 7]];
        // Build with layout [d2, d1]: row values swap accordingly.
        let swapped: Vec<Vec<u64>> = rows.iter().map(|r| vec![r[1], r[0]]).collect();
        let ra = m.relation_from_rows(&[d1, d2], &rows).unwrap();
        let rb = m.relation_from_rows(&[d2, d1], &swapped).unwrap();
        assert_eq!(
            ra, rb,
            "layout order is presentational; semantics follow domains"
        );
    }

    #[test]
    fn product_relation_size_is_additive() {
        // The motivating Section 2.2 example: R = R1 × R2 gives
        // ‖BDD(R)‖ = ‖BDD(R1)‖ + ‖BDD(R2)‖ (with the right ordering).
        let sizes1 = [32u64, 32];
        let sizes2 = [32u64, 32, 32];
        let rows1 = rand_rows(40, &sizes1, 1);
        let rows2 = rand_rows(40, &sizes2, 2);
        let mut m = BddManager::new();
        let da: Vec<DomainId> = sizes1.iter().map(|&s| m.add_domain(s).unwrap()).collect();
        let db: Vec<DomainId> = sizes2.iter().map(|&s| m.add_domain(s).unwrap()).collect();
        let r1 = m.relation_from_rows(&da, &rows1).unwrap();
        let r2 = m.relation_from_rows(&db, &rows2).unwrap();
        let product = m.and(r1, r2).unwrap();
        assert_eq!(m.size(product), m.size(r1) + m.size(r2));
        // And the tuple count multiplies.
        let all: Vec<DomainId> = da.iter().chain(&db).copied().collect();
        let n1 = m.tuple_count(r1, &da).unwrap();
        let n2 = m.tuple_count(r2, &db).unwrap();
        assert_eq!(m.tuple_count(product, &all).unwrap(), n1 * n2);
    }
}
