//! Finite-domain blocks — BuDDy's `fdd_*` interface.
//!
//! A relational attribute with active domain `{0, …, n-1}` is encoded as a
//! block of `⌈log₂ n⌉` consecutive boolean variables, most-significant bit
//! first (Section 2.1 of the paper: "finite domain blocks"). Declaring
//! domains in a chosen order *is* choosing the attribute-level variable
//! ordering that the paper's `MaxInf-Gain` / `Prob-Converge` heuristics
//! produce: callers create one manager per candidate ordering and declare the
//! attribute domains in that order.

use crate::error::{BddError, Result};
use crate::manager::{Bdd, BddManager, Var};
use crate::quant::VarSet;
use crate::replace::ReplaceMap;

/// Handle to a finite domain (a block of boolean variables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub(crate) u32);

impl DomainId {
    /// The domain's declaration index in its manager — stable for the
    /// manager's lifetime, usable as a compact cache/report key.
    pub fn index(self) -> u32 {
        self.0
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Domain {
    pub(crate) size: u64,
    /// MSB first; consecutive, ascending levels.
    pub(crate) vars: Vec<Var>,
}

/// Public metadata about a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainInfo {
    /// Number of values (`0..size` are valid).
    pub size: u64,
    /// Bit width of the block (`⌈log₂ size⌉`, minimum 1).
    pub bits: u32,
    /// Level of the block's most significant variable.
    pub first_var: Var,
}

/// Bit width needed for a domain of `size` values.
pub fn bits_for(size: u64) -> u32 {
    if size <= 1 {
        1
    } else {
        64 - (size - 1).leading_zeros()
    }
}

impl BddManager {
    /// Declare a new finite domain of `size` values. The block's variables
    /// are appended after all existing variables, so declaration order fixes
    /// the attribute ordering.
    pub fn add_domain(&mut self, size: u64) -> Result<DomainId> {
        if size == 0 {
            return Err(BddError::EmptyDomain);
        }
        let bits = bits_for(size);
        let vars: Vec<Var> = (0..bits).map(|_| self.new_var()).collect();
        let id = DomainId(self.domains.len() as u32);
        self.domains.push(Domain { size, vars });
        Ok(id)
    }

    /// Metadata for a domain.
    pub fn domain_info(&self, d: DomainId) -> DomainInfo {
        let dom = &self.domains[d.0 as usize];
        DomainInfo {
            size: dom.size,
            bits: dom.vars.len() as u32,
            first_var: dom.vars[0],
        }
    }

    /// The block's variables, most significant first.
    pub fn domain_vars(&self, d: DomainId) -> &[Var] {
        &self.domains[d.0 as usize].vars
    }

    /// Number of declared domains.
    pub fn num_domains(&self) -> usize {
        self.domains.len()
    }

    /// The literal assignment `(var, bit)` pairs encoding `value` in domain
    /// `d`, MSB first.
    pub(crate) fn value_literals(&self, d: DomainId, value: u64) -> Result<Vec<(Var, bool)>> {
        let dom = &self.domains[d.0 as usize];
        if value >= dom.size {
            return Err(BddError::ValueOutOfDomain {
                value,
                domain_size: dom.size,
            });
        }
        let k = dom.vars.len();
        Ok(dom
            .vars
            .iter()
            .enumerate()
            .map(|(j, &v)| (v, value >> (k - 1 - j) & 1 == 1))
            .collect())
    }

    /// Literal assignment for a whole tuple over `domains`.
    pub(crate) fn tuple_assignment(
        &self,
        domains: &[DomainId],
        values: &[u64],
    ) -> Result<Vec<(Var, bool)>> {
        if domains.len() != values.len() {
            return Err(BddError::ArityMismatch {
                expected: domains.len(),
                got: values.len(),
            });
        }
        let mut lits = Vec::with_capacity(domains.len() * 4);
        for (&d, &v) in domains.iter().zip(values) {
            lits.extend(self.value_literals(d, v)?);
        }
        Ok(lits)
    }

    /// The cube `x_d = value` (BuDDy's `fdd_ithvar`).
    pub fn value_cube(&mut self, d: DomainId, value: u64) -> Result<Bdd> {
        let lits = self.value_literals(d, value)?;
        self.cube(&lits)
    }

    /// The cube encoding a whole row over `domains`.
    pub fn row_cube(&mut self, domains: &[DomainId], values: &[u64]) -> Result<Bdd> {
        let lits = self.tuple_assignment(domains, values)?;
        self.cube(&lits)
    }

    /// The set-membership predicate `x_d ∈ values` as a BDD.
    pub fn value_set(&mut self, d: DomainId, values: &[u64]) -> Result<Bdd> {
        let mut cubes = Vec::with_capacity(values.len());
        for &v in values {
            cubes.push(self.value_cube(d, v)?);
        }
        self.or_many(&cubes)
    }

    /// The predicate `x_{d1} = x_{d2}` (BuDDy's `fdd_equals`). Domains of
    /// unequal width are compared on their low bits, with the wider block's
    /// extra high bits required to be zero.
    pub fn domain_eq(&mut self, d1: DomainId, d2: DomainId) -> Result<Bdd> {
        let v1 = self.domains[d1.0 as usize].vars.clone();
        let v2 = self.domains[d2.0 as usize].vars.clone();
        let common = v1.len().min(v2.len());
        let mut parts = Vec::new();
        // Extra MSBs of the wider domain must be 0 for equality to hold.
        for &v in v1[..v1.len() - common]
            .iter()
            .chain(v2[..v2.len() - common].iter())
        {
            parts.push(self.nvar(v)?);
        }
        for (&a, &b) in v1[v1.len() - common..].iter().zip(&v2[v2.len() - common..]) {
            let xa = self.var(a)?;
            let xb = self.var(b)?;
            parts.push(self.biimp(xa, xb)?);
        }
        self.and_many(&parts)
    }

    /// The range constraint `x_d < size(d)` — needed when quantifier results
    /// must be re-confined to valid attribute values.
    pub fn domain_range(&mut self, d: DomainId) -> Result<Bdd> {
        let dom = &self.domains[d.0 as usize];
        let max = dom.size - 1;
        let k = dom.vars.len();
        let vars = dom.vars.clone();
        // Build "value ≤ max" bottom-up, LSB to MSB.
        let mut acc = Bdd::TRUE;
        for j in (0..k).rev() {
            let bit = max >> (k - 1 - j) & 1 == 1;
            acc = if bit {
                // choosing 0 here makes the rest unconstrained
                self.mk(vars[j], Bdd::TRUE, acc)?
            } else {
                self.mk(vars[j], acc, Bdd::FALSE)?
            };
        }
        Ok(acc)
    }

    /// Varset covering the variables of the listed domains (for
    /// quantification and counting).
    pub fn domain_varset(&mut self, domains: &[DomainId]) -> VarSet {
        let mut vars = Vec::new();
        for &d in domains {
            vars.extend_from_slice(&self.domains[d.0 as usize].vars);
        }
        self.varset(&vars)
    }

    /// A [`ReplaceMap`] renaming each `from` block to the paired `to` block
    /// (BuDDy's `fdd_setpairs`). Blocks must have equal widths.
    pub fn domain_replace_map(&mut self, pairs: &[(DomainId, DomainId)]) -> Result<ReplaceMap> {
        let mut var_pairs = Vec::new();
        for &(from, to) in pairs {
            let fv = self.domains[from.0 as usize].vars.clone();
            let tv = self.domains[to.0 as usize].vars.clone();
            if fv.len() != tv.len() {
                return Err(BddError::DomainWidthMismatch {
                    from_bits: fv.len() as u32,
                    to_bits: tv.len() as u32,
                });
            }
            var_pairs.extend(fv.into_iter().zip(tv));
        }
        Ok(self.replace_map(&var_pairs))
    }

    /// Rename domains in one call: `f[from₁/to₁, …]`.
    pub fn replace_domains(&mut self, f: Bdd, pairs: &[(DomainId, DomainId)]) -> Result<Bdd> {
        let map = self.domain_replace_map(pairs)?;
        self.replace(f, map)
    }

    /// Number of tuples in the relation `f` over the given layout. Requires
    /// `support(f)` within the layout's variables.
    pub fn tuple_count(&mut self, f: Bdd, domains: &[DomainId]) -> Result<f64> {
        let vs = self.domain_varset(domains);
        Ok(self.sat_count(f, vs))
    }

    /// Add one tuple to a relation BDD. Average cost is the paper's
    /// "incremental maintenance" operation (Figure 4(b)).
    pub fn insert_row(&mut self, f: Bdd, domains: &[DomainId], values: &[u64]) -> Result<Bdd> {
        let cube = self.row_cube(domains, values)?;
        self.or(f, cube)
    }

    /// Remove one tuple from a relation BDD.
    pub fn delete_row(&mut self, f: Bdd, domains: &[DomainId], values: &[u64]) -> Result<Bdd> {
        let cube = self.row_cube(domains, values)?;
        self.diff(f, cube)
    }

    /// Decode up to `limit` tuples of the relation `f` over `domains` —
    /// the capped variant of [`BddManager::rows`] for potentially huge
    /// violation sets.
    pub fn rows_limited(
        &mut self,
        f: Bdd,
        domains: &[DomainId],
        limit: usize,
    ) -> Result<Vec<Vec<u64>>> {
        let mut out = self.rows_inner(f, domains, Some(limit))?;
        out.truncate(limit);
        Ok(out)
    }

    /// Decode every tuple of the relation `f` over `domains`. Assignments
    /// decoding to values outside a domain's size (possible only for
    /// functions built with complements/quantifiers, never for indexed
    /// relations) are filtered out.
    pub fn rows(&mut self, f: Bdd, domains: &[DomainId]) -> Result<Vec<Vec<u64>>> {
        self.rows_inner(f, domains, None)
    }

    fn rows_inner(
        &mut self,
        f: Bdd,
        domains: &[DomainId],
        limit: Option<usize>,
    ) -> Result<Vec<Vec<u64>>> {
        let vs = self.domain_varset(domains);
        let vars = self.varset_vars(vs).to_vec();
        // Position of each variable inside the sorted varset.
        let pos_of = |v: Var| vars.binary_search(&v).expect("domain var in varset");
        // Precompute decode plans: per domain, the positions of its bits.
        let plans: Vec<(u64, Vec<usize>)> = domains
            .iter()
            .map(|&d| {
                let dom = &self.domains[d.0 as usize];
                (dom.size, dom.vars.iter().map(|&v| pos_of(v)).collect())
            })
            .collect();
        let mut out = Vec::new();
        'outer: for bits in self.sat_assignments(f, vs) {
            let mut row = Vec::with_capacity(domains.len());
            for (size, positions) in &plans {
                let mut v = 0u64;
                for &p in positions {
                    v = v << 1 | bits[p] as u64;
                }
                if v >= *size {
                    continue 'outer;
                }
                row.push(v);
            }
            out.push(row);
            if limit.is_some_and(|l| out.len() >= l) {
                break;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_sizes() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(281), 9);
        assert_eq!(bits_for(10894), 14);
        assert_eq!(bits_for(50), 6);
        assert_eq!(bits_for(17557), 15);
        assert_eq!(bits_for(889), 10);
    }

    #[test]
    fn paper_index_widths() {
        // Paper §5.2: (areacode, city, state) needs 9+14+6 = 29 boolean
        // variables; (city, state, zipcode) needs 14+6+15 = 35.
        assert_eq!(bits_for(281) + bits_for(10894) + bits_for(50), 29);
        assert_eq!(bits_for(10894) + bits_for(50) + bits_for(17557), 35);
    }

    #[test]
    fn add_domain_allocates_consecutive_vars() {
        let mut m = BddManager::new();
        let d1 = m.add_domain(10).unwrap();
        let d2 = m.add_domain(4).unwrap();
        assert_eq!(m.domain_vars(d1), &[0, 1, 2, 3]);
        assert_eq!(m.domain_vars(d2), &[4, 5]);
        assert_eq!(m.domain_info(d1).bits, 4);
        assert_eq!(m.domain_info(d2).size, 4);
        assert_eq!(m.num_domains(), 2);
    }

    #[test]
    fn zero_sized_domain_rejected() {
        let mut m = BddManager::new();
        assert_eq!(m.add_domain(0), Err(BddError::EmptyDomain));
    }

    #[test]
    fn value_cube_encodes_msb_first() {
        let mut m = BddManager::new();
        let d = m.add_domain(8).unwrap(); // 3 bits
        let c = m.value_cube(d, 5).unwrap(); // 101
                                             // MSB (var 0) = 1, var 1 = 0, var 2 = 1
        assert!(m.eval(c, |v| v == 0 || v == 2));
        assert!(!m.eval(c, |v| v == 0 || v == 1));
    }

    #[test]
    fn value_out_of_domain_rejected() {
        let mut m = BddManager::new();
        let d = m.add_domain(5).unwrap();
        assert!(matches!(
            m.value_cube(d, 5),
            Err(BddError::ValueOutOfDomain {
                value: 5,
                domain_size: 5
            })
        ));
    }

    #[test]
    fn value_cubes_are_disjoint_and_cover() {
        let mut m = BddManager::new();
        let d = m.add_domain(6).unwrap();
        let cubes: Vec<Bdd> = (0..6).map(|v| m.value_cube(d, v).unwrap()).collect();
        for i in 0..6 {
            for j in 0..6 {
                let both = m.and(cubes[i], cubes[j]).unwrap();
                if i == j {
                    assert_ne!(both, Bdd::FALSE);
                } else {
                    assert_eq!(both, Bdd::FALSE);
                }
            }
        }
        let any = m.or_many(&cubes).unwrap();
        let range = m.domain_range(d).unwrap();
        assert_eq!(
            any, range,
            "union of value cubes is exactly the range constraint"
        );
    }

    #[test]
    fn value_set_membership() {
        let mut m = BddManager::new();
        let d = m.add_domain(16).unwrap();
        let s = m.value_set(d, &[3, 9, 12]).unwrap();
        for v in 0..16u64 {
            let c = m.value_cube(d, v).unwrap();
            let hit = m.and(s, c).unwrap() != Bdd::FALSE;
            assert_eq!(hit, [3, 9, 12].contains(&v), "value {v}");
        }
    }

    #[test]
    fn domain_eq_same_width() {
        let mut m = BddManager::new();
        let d1 = m.add_domain(8).unwrap();
        let d2 = m.add_domain(8).unwrap();
        let eq = m.domain_eq(d1, d2).unwrap();
        for a in 0..8u64 {
            for b in 0..8u64 {
                let ca = m.value_cube(d1, a).unwrap();
                let cb = m.value_cube(d2, b).unwrap();
                let t = m.and(ca, cb).unwrap();
                let sat = m.and(eq, t).unwrap() != Bdd::FALSE;
                assert_eq!(sat, a == b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn domain_eq_mixed_width() {
        let mut m = BddManager::new();
        let d1 = m.add_domain(4).unwrap(); // 2 bits
        let d2 = m.add_domain(16).unwrap(); // 4 bits
        let eq = m.domain_eq(d1, d2).unwrap();
        for a in 0..4u64 {
            for b in 0..16u64 {
                let ca = m.value_cube(d1, a).unwrap();
                let cb = m.value_cube(d2, b).unwrap();
                let t = m.and(ca, cb).unwrap();
                let sat = m.and(eq, t).unwrap() != Bdd::FALSE;
                assert_eq!(sat, a == b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn domain_range_counts_exactly_size() {
        let mut m = BddManager::new();
        for size in [1u64, 2, 3, 5, 7, 8, 100, 281] {
            let d = m.add_domain(size).unwrap();
            let r = m.domain_range(d).unwrap();
            let vs = m.domain_varset(&[d]);
            assert_eq!(m.sat_count(r, vs), size as f64, "size {size}");
        }
    }

    #[test]
    fn replace_domains_moves_function() {
        let mut m = BddManager::new();
        let d1 = m.add_domain(10).unwrap();
        let d2 = m.add_domain(10).unwrap();
        let f = m.value_cube(d1, 7).unwrap();
        let g = m.replace_domains(f, &[(d1, d2)]).unwrap();
        let expected = m.value_cube(d2, 7).unwrap();
        assert_eq!(g, expected);
    }

    #[test]
    fn replace_domains_width_mismatch_rejected() {
        let mut m = BddManager::new();
        let d1 = m.add_domain(10).unwrap();
        let d2 = m.add_domain(100).unwrap();
        assert!(matches!(
            m.domain_replace_map(&[(d1, d2)]),
            Err(BddError::DomainWidthMismatch { .. })
        ));
    }

    #[test]
    fn insert_delete_round_trip() {
        let mut m = BddManager::new();
        let d1 = m.add_domain(20).unwrap();
        let d2 = m.add_domain(20).unwrap();
        let doms = [d1, d2];
        let mut r = Bdd::FALSE;
        r = m.insert_row(r, &doms, &[3, 4]).unwrap();
        r = m.insert_row(r, &doms, &[5, 6]).unwrap();
        assert_eq!(m.tuple_count(r, &doms).unwrap(), 2.0);
        assert!(m.contains(r, &doms, &[3, 4]).unwrap());
        // Re-inserting is idempotent.
        let r2 = m.insert_row(r, &doms, &[3, 4]).unwrap();
        assert_eq!(r, r2);
        // Delete restores.
        let r3 = m.delete_row(r2, &doms, &[5, 6]).unwrap();
        assert!(!m.contains(r3, &doms, &[5, 6]).unwrap());
        assert_eq!(m.tuple_count(r3, &doms).unwrap(), 1.0);
        // Deleting a non-member is a no-op.
        let r4 = m.delete_row(r3, &doms, &[10, 10]).unwrap();
        assert_eq!(r3, r4);
    }

    #[test]
    fn rows_decodes_tuples() {
        let mut m = BddManager::new();
        let d1 = m.add_domain(5).unwrap();
        let d2 = m.add_domain(3).unwrap();
        let doms = [d1, d2];
        let mut r = Bdd::FALSE;
        for t in [[4u64, 2], [0, 0], [2, 1]] {
            r = m.insert_row(r, &doms, &t).unwrap();
        }
        let mut rows = m.rows(r, &doms).unwrap();
        rows.sort();
        assert_eq!(rows, vec![vec![0, 0], vec![2, 1], vec![4, 2]]);
    }

    #[test]
    fn rows_filters_out_of_range_values() {
        let mut m = BddManager::new();
        let d = m.add_domain(5).unwrap(); // 3 bits: raw values 5,6,7 invalid
                                          // TRUE over the block decodes 8 assignments but only 5 valid values.
        let rows = m.rows(Bdd::TRUE, &[d]).unwrap();
        assert_eq!(rows.len(), 5);
    }
}
