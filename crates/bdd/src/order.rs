//! Workload-scored candidate variable orderings.
//!
//! Pure column-order arithmetic — no manager access, no statistics over
//! tuples — so the core checker, benches, and offline tools can all score
//! candidates from *recorded workload features* (how often each column was
//! pinned or joined by past checks) without touching a relation.
//!
//! The model: a relation's index is a stack of attribute blocks; ops on a
//! column pay for every bit *above* it in the order (descents traverse the
//! prefix before reaching the block). So the cost of an ordering under a
//! workload is the weighted prefix depth — heavy columns want to sit high.
//! Three candidate shapes are scored (the classic choices for relational
//! encodings):
//!
//! * **concatenated** — schema order, untouched. The static baseline and
//!   the deterministic tie-winner, so an empty workload changes nothing.
//! * **frequency** — columns sorted by descending observed weight: the
//!   greedy optimum for the prefix-depth cost model.
//! * **interleaved** — heavy and light columns woven alternately. On
//!   join-dominated workloads where two columns are co-accessed, weaving
//!   keeps co-accessed blocks adjacent instead of pushing all light
//!   columns to the bottom.
//!
//! [`choose`] returns the cheapest candidate plus its name (for
//! telemetry/bench reporting). Verdict safety does not depend on the pick —
//! the ordering-invariance suite pins that any permutation yields the same
//! verdicts — so this module only has to be *deterministic*, never right.

/// `⌈log₂ size⌉` block width of a finite domain, matching
/// [`crate::BddManager::add_domain`]'s allocation (minimum 1 bit).
pub fn block_bits(size: u64) -> u32 {
    crate::fdd::bits_for(size)
}

/// Weighted prefix-depth cost of a candidate ordering: for each column,
/// its workload weight times the number of bits declared before its block.
/// Lower is better. `order` must be a permutation of `0..weights.len()`;
/// `bits[c]` is column `c`'s block width.
pub fn score(order: &[usize], weights: &[u64], bits: &[u32]) -> u128 {
    debug_assert_eq!(order.len(), weights.len());
    debug_assert_eq!(order.len(), bits.len());
    let mut cost: u128 = 0;
    let mut prefix_bits: u128 = 0;
    for &col in order {
        cost += u128::from(weights[col]) * prefix_bits;
        prefix_bits += u128::from(bits[col]);
    }
    cost
}

/// The three candidate orderings for a workload, in tie-break priority
/// order (earlier wins ties): concatenated, frequency, interleaved.
pub fn candidates(weights: &[u64]) -> Vec<(&'static str, Vec<usize>)> {
    let n = weights.len();
    let concatenated: Vec<usize> = (0..n).collect();
    // Descending weight, ties towards the lower column index.
    let mut by_weight: Vec<usize> = (0..n).collect();
    by_weight.sort_by_key(|&c| (std::cmp::Reverse(weights[c]), c));
    // Weave the heavy half with the light half: h0 l0 h1 l1 …
    let mut interleaved = Vec::with_capacity(n);
    let (heavy, light) = by_weight.split_at(n.div_ceil(2));
    for (i, &h) in heavy.iter().enumerate() {
        interleaved.push(h);
        if let Some(&l) = light.get(i) {
            interleaved.push(l);
        }
    }
    vec![
        ("concatenated", concatenated),
        ("frequency", by_weight),
        ("interleaved", interleaved),
    ]
}

/// Score every candidate under the workload and return the cheapest as
/// `(name, ordering)`. Ties break towards the earlier candidate, so a flat
/// (or empty) workload always picks the concatenated/schema order — the
/// static escape hatch costs nothing to keep.
pub fn choose(weights: &[u64], bits: &[u32]) -> (&'static str, Vec<usize>) {
    let mut best: Option<(&'static str, Vec<usize>, u128)> = None;
    for (name, cand) in candidates(weights) {
        let s = score(&cand, weights, bits);
        if best.as_ref().is_none_or(|(_, _, bs)| s < *bs) {
            best = Some((name, cand, s));
        }
    }
    let (name, cand, _) = best.expect("at least one candidate");
    (name, cand)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_workload_keeps_schema_order() {
        let (name, order) = choose(&[0, 0, 0], &[3, 3, 3]);
        assert_eq!(name, "concatenated");
        assert_eq!(order, vec![0, 1, 2]);
        let (name, order) = choose(&[5, 5, 5, 5], &[2, 2, 2, 2]);
        assert_eq!(name, "concatenated");
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn skewed_workload_hoists_the_hot_column() {
        // Column 2 dominates: any winner must place it first.
        let (_, order) = choose(&[1, 1, 100, 1], &[4, 4, 4, 4]);
        assert_eq!(order[0], 2);
    }

    #[test]
    fn candidates_are_permutations() {
        for weights in [vec![3u64, 1, 4, 1, 5], vec![0; 7], vec![9, 9]] {
            let bits = vec![2u32; weights.len()];
            for (_, cand) in candidates(&weights) {
                let mut sorted = cand.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..weights.len()).collect::<Vec<_>>());
                let _ = score(&cand, &weights, &bits);
            }
        }
    }

    #[test]
    fn score_prefers_heavy_first_and_is_width_aware() {
        let weights = [10u64, 1];
        let bits = [8u32, 8];
        assert!(score(&[0, 1], &weights, &bits) < score(&[1, 0], &weights, &bits));
        // A wide cold block above a hot one is worse than a narrow one.
        let widths_wide = [16u32, 4];
        let widths_narrow = [2u32, 4];
        let w = [1u64, 50];
        assert!(score(&[0, 1], &w, &widths_narrow) < score(&[0, 1], &w, &widths_wide));
    }

    #[test]
    fn choose_is_deterministic() {
        let weights = [7u64, 3, 3, 9, 0, 2];
        let bits = [3u32, 5, 2, 4, 1, 6];
        let a = choose(&weights, &bits);
        let b = choose(&weights, &bits);
        assert_eq!(a, b);
    }
}
