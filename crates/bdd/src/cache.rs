//! Direct-mapped operation cache (BuDDy-style).
//!
//! Every recursive BDD algorithm is memoized through a single fixed-size,
//! direct-mapped cache: a hash of the operation code and its (up to three)
//! operands selects a slot, and a colliding insert simply overwrites. This
//! trades a small amount of recomputation for O(1) lookup with no
//! allocation on the hot path — the standard design in production BDD
//! packages. The cache must be invalidated whenever node indices are
//! recycled (i.e. after garbage collection).

use crate::hash::mix3;

/// Operation codes for cache keys. Binary connectives use the low bits of
/// their [`crate::Op`] discriminant offset into the `APPLY` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpCode {
    /// `apply(op, f, g)`; the connective is encoded in the code itself.
    Apply(u8),
    /// `not(f)`.
    Not,
    /// `ite(f, g, h)`.
    Ite,
    /// `exists(f, varset)`.
    Exists,
    /// `forall(f, varset)`.
    Forall,
    /// `app_exists(op, f, g, varset)`.
    AppExists(u8),
    /// `app_forall(op, f, g, varset)`.
    AppForall(u8),
    /// `replace(f, map)`.
    Replace,
    /// `restrict(f, cube)`.
    Restrict,
    /// `constrain(f, care)` — Coudert–Madre generalized cofactor.
    Constrain,
}

impl OpCode {
    #[inline]
    fn encode(self) -> u32 {
        match self {
            OpCode::Apply(op) => 0x100 | op as u32,
            OpCode::Not => 0x200,
            OpCode::Ite => 0x300,
            OpCode::Exists => 0x400,
            OpCode::Forall => 0x500,
            OpCode::AppExists(op) => 0x600 | op as u32,
            OpCode::AppForall(op) => 0x700 | op as u32,
            OpCode::Replace => 0x800,
            OpCode::Restrict => 0x900,
            OpCode::Constrain => 0xA00,
        }
    }

    /// The telemetry bucket this code falls into (binary connectives of one
    /// family share a bucket regardless of the concrete connective).
    #[inline]
    pub(crate) fn kind(self) -> OpKind {
        match self {
            OpCode::Apply(_) => OpKind::Apply,
            OpCode::Not => OpKind::Not,
            OpCode::Ite => OpKind::Ite,
            OpCode::Exists => OpKind::Exists,
            OpCode::Forall => OpKind::Forall,
            OpCode::AppExists(_) => OpKind::AppExists,
            OpCode::AppForall(_) => OpKind::AppForall,
            OpCode::Replace => OpKind::Replace,
            OpCode::Restrict => OpKind::Restrict,
            OpCode::Constrain => OpKind::Constrain,
        }
    }
}

/// The kinds of memoized BDD operations, as reported by
/// [`crate::ManagerStats`]. Each kind aggregates one recursive algorithm:
/// `Apply` covers every binary connective, `AppExists`/`AppForall` the fused
/// apply-quantify operators, and so on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Binary connectives (`and`, `or`, `imp`, …) via `apply`.
    Apply,
    /// Negation.
    Not,
    /// If-then-else.
    Ite,
    /// Existential quantification.
    Exists,
    /// Universal quantification.
    Forall,
    /// Fused `∃x̄ (f op g)` (BuDDy `bdd_appex`).
    AppExists,
    /// Fused `∀x̄ (f op g)` (BuDDy `bdd_appall`).
    AppForall,
    /// Variable renaming.
    Replace,
    /// Restriction by a cube.
    Restrict,
    /// Coudert–Madre generalized cofactor.
    Constrain,
}

/// Number of [`OpKind`] variants (array-table size).
pub const OP_KINDS: usize = 10;

impl OpKind {
    /// Every kind, in stable (serialization) order.
    pub const ALL: [OpKind; OP_KINDS] = [
        OpKind::Apply,
        OpKind::Not,
        OpKind::Ite,
        OpKind::Exists,
        OpKind::Forall,
        OpKind::AppExists,
        OpKind::AppForall,
        OpKind::Replace,
        OpKind::Restrict,
        OpKind::Constrain,
    ];

    /// Stable machine-readable name (used in metrics schemas).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Apply => "apply",
            OpKind::Not => "not",
            OpKind::Ite => "ite",
            OpKind::Exists => "exists",
            OpKind::Forall => "forall",
            OpKind::AppExists => "app_exists",
            OpKind::AppForall => "app_forall",
            OpKind::Replace => "replace",
            OpKind::Restrict => "restrict",
            OpKind::Constrain => "constrain",
        }
    }

    /// Index into per-kind tables (`0..OP_KINDS`, order of [`OpKind::ALL`]).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

#[derive(Clone, Copy)]
struct Entry {
    op: u32,
    a: u32,
    b: u32,
    c: u32,
    result: u32,
}

const EMPTY: Entry = Entry {
    op: 0,
    a: 0,
    b: 0,
    c: 0,
    result: u32::MAX,
};

/// The direct-mapped cache. `a`, `b` are operand node indices; `c` carries a
/// third operand (for `ite`), an interned varset id (quantification), or an
/// interned map id (`replace`).
pub(crate) struct OpCache {
    slots: Vec<Entry>,
    mask: u64,
    hits: [u64; OP_KINDS],
    misses: [u64; OP_KINDS],
}

impl OpCache {
    /// `capacity` is rounded up to the next power of two, minimum 1024.
    pub(crate) fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(1024);
        OpCache {
            slots: vec![EMPTY; cap],
            mask: (cap - 1) as u64,
            hits: [0; OP_KINDS],
            misses: [0; OP_KINDS],
        }
    }

    #[inline]
    fn index(&self, op: u32, a: u32, b: u32, c: u32) -> usize {
        ((mix3(a, b, c) ^ (op as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) & self.mask) as usize
    }

    #[inline]
    pub(crate) fn get(&mut self, op: OpCode, a: u32, b: u32, c: u32) -> Option<u32> {
        let kind = op.kind().index();
        let op = op.encode();
        let e = &self.slots[self.index(op, a, b, c)];
        if e.result != u32::MAX && e.op == op && e.a == a && e.b == b && e.c == c {
            self.hits[kind] += 1;
            Some(e.result)
        } else {
            self.misses[kind] += 1;
            None
        }
    }

    #[inline]
    pub(crate) fn put(&mut self, op: OpCode, a: u32, b: u32, c: u32, result: u32) {
        let op = op.encode();
        let idx = self.index(op, a, b, c);
        self.slots[idx] = Entry {
            op,
            a,
            b,
            c,
            result,
        };
    }

    /// Drop all entries. Must be called whenever node indices may be reused
    /// (after a GC sweep) — a stale hit would silently corrupt results.
    pub(crate) fn invalidate(&mut self) {
        self.slots.fill(EMPTY);
    }

    /// Total hits across all operation kinds.
    pub(crate) fn hits(&self) -> u64 {
        self.hits.iter().sum()
    }

    /// Total misses across all operation kinds.
    pub(crate) fn misses(&self) -> u64 {
        self.misses.iter().sum()
    }

    /// Hits for one operation kind.
    pub(crate) fn kind_hits(&self, kind: OpKind) -> u64 {
        self.hits[kind.index()]
    }

    /// Misses for one operation kind.
    pub(crate) fn kind_misses(&self, kind: OpKind) -> u64 {
        self.misses[kind.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut c = OpCache::new(1024);
        assert_eq!(c.get(OpCode::Apply(0), 5, 7, 0), None);
        c.put(OpCode::Apply(0), 5, 7, 0, 42);
        assert_eq!(c.get(OpCode::Apply(0), 5, 7, 0), Some(42));
    }

    #[test]
    fn distinguishes_op_codes() {
        let mut c = OpCache::new(1024);
        c.put(OpCode::Apply(0), 5, 7, 0, 42);
        // Same operands, different op: must not hit (it may have been
        // overwritten, but it must never return 42 for the wrong op).
        assert_ne!(c.get(OpCode::Apply(1), 5, 7, 0), Some(42));
        assert_ne!(c.get(OpCode::Exists, 5, 7, 0), Some(42));
    }

    #[test]
    fn distinguishes_third_operand() {
        let mut c = OpCache::new(1024);
        c.put(OpCode::Ite, 5, 7, 9, 42);
        assert_ne!(c.get(OpCode::Ite, 5, 7, 10), Some(42));
    }

    #[test]
    fn invalidate_clears_everything() {
        let mut c = OpCache::new(1024);
        for i in 0..500u32 {
            c.put(OpCode::Not, i, 0, 0, i + 1);
        }
        c.invalidate();
        for i in 0..500u32 {
            assert_eq!(c.get(OpCode::Not, i, 0, 0), None);
        }
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let c = OpCache::new(1000);
        assert_eq!(c.slots.len(), 1024);
        let c = OpCache::new(0);
        assert_eq!(c.slots.len(), 1024);
    }

    #[test]
    fn counts_hits_and_misses() {
        let mut c = OpCache::new(1024);
        c.get(OpCode::Not, 1, 0, 0);
        c.put(OpCode::Not, 1, 0, 0, 9);
        c.get(OpCode::Not, 1, 0, 0);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }
}
