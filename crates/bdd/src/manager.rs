//! The BDD manager: shared node store, unique table, GC, and node limits.
//!
//! All BDDs live inside one [`BddManager`]; a [`Bdd`] handle is just an index
//! into the manager's node arena. Handles are `Copy` and cheap, but they are
//! only valid for the manager that produced them, and they do **not** keep
//! nodes alive across [`BddManager::gc`] — callers pass the set of roots they
//! still care about to `gc` explicitly. This mirrors how the constraint
//! checker uses the engine: it knows exactly which relation indices and
//! intermediate results are live at any point.

use crate::cache::{OpCache, OpKind, OP_KINDS};
use crate::error::{BddError, Result};
use crate::fdd::Domain;
use crate::hash::FxHashMap;
use crate::quant::VarSetData;

/// A boolean variable, identified by its level in the (fixed) global order.
/// Variable `0` is tested first (nearest the root).
pub type Var = u32;

/// Size in bytes of one BDD node in this implementation (the paper's BuDDy
/// build used 20 bytes per node; ours packs into 12 — three `u32` lanes of
/// the struct-of-arrays arena).
pub const NODE_BYTES: usize = 3 * std::mem::size_of::<u32>();

/// Sentinel level for the two terminal nodes.
pub(crate) const LEVEL_TERMINAL: u32 = u32::MAX;

/// A handle to a BDD node (and thereby to the boolean function rooted
/// there). `Copy`-able; valid only within the manager that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// The constant-false BDD (empty relation).
    pub const FALSE: Bdd = Bdd(0);
    /// The constant-true BDD (full relation).
    pub const TRUE: Bdd = Bdd(1);

    /// Is this the constant `false`?
    #[inline]
    pub fn is_false(self) -> bool {
        self.0 == 0
    }

    /// Is this the constant `true`?
    #[inline]
    pub fn is_true(self) -> bool {
        self.0 == 1
    }

    /// Is this either terminal?
    #[inline]
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// Raw index, exposed for diagnostics and cache keys.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    pub(crate) level: u32,
    pub(crate) low: u32,
    pub(crate) high: u32,
}

/// The node store, laid out struct-of-arrays: three parallel `u32` vectors
/// instead of one `Vec<Node>`. The hot loops of `apply`/`quant` spend most
/// of their reads on *levels alone* (the top-variable comparison that
/// steers the simultaneous descent), so giving levels their own contiguous
/// array triples the number of nodes whose steering data fits in one cache
/// line; lows and highs are only touched on the cofactor that is actually
/// taken.
#[derive(Debug, Default)]
pub(crate) struct NodeArena {
    levels: Vec<u32>,
    lows: Vec<u32>,
    highs: Vec<u32>,
}

impl NodeArena {
    /// Arena with the two terminals pre-seeded at slots 0 and 1.
    fn with_terminals() -> NodeArena {
        NodeArena {
            levels: vec![LEVEL_TERMINAL, LEVEL_TERMINAL],
            lows: vec![0, 1],
            highs: vec![0, 1],
        }
    }

    /// Total slots, terminals included.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.levels.len()
    }

    /// The level lane alone — the only field the descent steering reads.
    #[inline]
    pub(crate) fn level(&self, i: u32) -> u32 {
        self.levels[i as usize]
    }

    /// Materialize one slot as a [`Node`] (gathers all three lanes).
    #[inline]
    pub(crate) fn get(&self, i: u32) -> Node {
        let i = i as usize;
        Node {
            level: self.levels[i],
            low: self.lows[i],
            high: self.highs[i],
        }
    }

    /// Overwrite one slot.
    #[inline]
    fn set(&mut self, i: u32, level: u32, low: u32, high: u32) {
        let i = i as usize;
        self.levels[i] = level;
        self.lows[i] = low;
        self.highs[i] = high;
    }

    /// Append a slot, returning its index.
    #[inline]
    fn push(&mut self, level: u32, low: u32, high: u32) -> u32 {
        let i = self.levels.len() as u32;
        self.levels.push(level);
        self.lows.push(low);
        self.highs.push(high);
        i
    }

    /// Drop every slot at index `new_len` and beyond.
    fn truncate(&mut self, new_len: usize) {
        self.levels.truncate(new_len);
        self.lows.truncate(new_len);
        self.highs.truncate(new_len);
    }
}

/// A resource budget for BDD operations: the node limit (the paper's
/// size-threshold fallback trigger) plus an optional wall-clock deadline,
/// enforced cooperatively at every memoized recursion boundary. Exceeding
/// the node limit aborts with [`BddError::NodeLimit`]; passing the deadline
/// aborts with [`BddError::Deadline`]. Either way the in-flight operation
/// unwinds cleanly through its `Result` chain and the manager stays usable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Maximum live nodes before allocating operations abort.
    pub node_limit: Option<usize>,
    /// Wall-clock instant after which in-flight operations abort.
    pub deadline: Option<std::time::Instant>,
}

/// How many budget steps pass between wall-clock reads: recursion
/// boundaries are hit every few hundred nanoseconds, so probing the clock
/// on every step would dominate; a stride of 256 bounds deadline overshoot
/// to well under a millisecond while keeping `Instant::now` off the
/// hot path.
const DEADLINE_STRIDE: u64 = 256;

/// Statistics returned by [`BddManager::gc`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Nodes reclaimed by this sweep.
    pub freed: usize,
    /// Live nodes after the sweep.
    pub live: usize,
}

/// Statistics returned by [`BddManager::compact`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Live nodes after compaction (equals the arena occupancy: the free
    /// list is empty once compaction finishes).
    pub live: usize,
    /// Arena slots released back to the allocator (dead nodes plus the
    /// free-list holes that compaction squeezed out).
    pub reclaimed_slots: usize,
    /// Live nodes that changed index (and therefore had their unique-table
    /// entries rewritten).
    pub relocated: usize,
}

/// Per-operation-kind counters: how often one recursive algorithm consulted
/// the operation cache, and with what outcome. By construction every counted
/// call performs exactly one cache probe, so the conservation law
/// `calls == cache_hits + cache_misses` holds per kind (constant-operand
/// shortcuts return before the call is counted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Memoized (cache-probing) invocations of this operation kind.
    pub calls: u64,
    /// Cache probes that found a memoized result.
    pub cache_hits: u64,
    /// Cache probes that missed and forced recomputation.
    pub cache_misses: u64,
}

/// Cumulative manager statistics (see [`BddManager::stats`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ManagerStats {
    /// Nodes currently live (excluding the two terminals).
    pub live_nodes: usize,
    /// High-water mark of live nodes.
    pub peak_nodes: usize,
    /// Total nodes ever created (counting re-creations after GC).
    pub created_nodes: u64,
    /// Operation-cache hits.
    pub cache_hits: u64,
    /// Operation-cache misses.
    pub cache_misses: u64,
    /// Number of GC sweeps performed.
    pub gc_runs: u64,
    /// Number of boolean variables allocated.
    pub num_vars: u32,
    /// High-water mark of recursion depth across all operations.
    pub depth_hwm: u32,
    /// Per-kind breakdown, indexed by [`OpKind::index`] in [`OpKind::ALL`]
    /// order.
    pub ops: [OpStats; OP_KINDS],
}

impl ManagerStats {
    /// The difference between this snapshot and an earlier one, covering
    /// only the monotone counters (peaks and high-water marks are left out
    /// because they do not subtract or sum meaningfully).
    pub fn delta_since(&self, before: &ManagerStats) -> StatsDelta {
        let mut ops = [OpStats::default(); OP_KINDS];
        for (i, d) in ops.iter_mut().enumerate() {
            d.calls = self.ops[i].calls - before.ops[i].calls;
            d.cache_hits = self.ops[i].cache_hits - before.ops[i].cache_hits;
            d.cache_misses = self.ops[i].cache_misses - before.ops[i].cache_misses;
        }
        StatsDelta {
            created_nodes: self.created_nodes - before.created_nodes,
            cache_hits: self.cache_hits - before.cache_hits,
            cache_misses: self.cache_misses - before.cache_misses,
            gc_runs: self.gc_runs - before.gc_runs,
            ops,
        }
    }
}

/// Monotone-counter difference between two [`ManagerStats`] snapshots.
/// Deltas are additive: the delta of work A followed by work B equals
/// `delta(A) + delta(B)` exactly, which the telemetry test suite asserts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsDelta {
    /// Nodes created during the window.
    pub created_nodes: u64,
    /// Operation-cache hits during the window.
    pub cache_hits: u64,
    /// Operation-cache misses during the window.
    pub cache_misses: u64,
    /// GC sweeps during the window.
    pub gc_runs: u64,
    /// Per-kind call/hit/miss deltas, indexed like [`ManagerStats::ops`].
    pub ops: [OpStats; OP_KINDS],
}

impl std::ops::Add for StatsDelta {
    type Output = StatsDelta;
    fn add(self, rhs: StatsDelta) -> StatsDelta {
        let mut out = self;
        out += rhs;
        out
    }
}

impl std::ops::AddAssign for StatsDelta {
    fn add_assign(&mut self, rhs: StatsDelta) {
        self.created_nodes += rhs.created_nodes;
        self.cache_hits += rhs.cache_hits;
        self.cache_misses += rhs.cache_misses;
        self.gc_runs += rhs.gc_runs;
        for (a, b) in self.ops.iter_mut().zip(rhs.ops.iter()) {
            a.calls += b.calls;
            a.cache_hits += b.cache_hits;
            a.cache_misses += b.cache_misses;
        }
    }
}

/// The shared-node BDD store. See the [crate-level docs](crate) for an
/// overview and the paper mapping.
pub struct BddManager {
    pub(crate) arena: NodeArena,
    unique: FxHashMap<(u32, u32, u32), u32>,
    free: Vec<u32>,
    pub(crate) cache: OpCache,
    num_vars: u32,
    node_limit: Option<usize>,
    deadline: Option<std::time::Instant>,
    /// Monotone count of budget probes (one per memoized recursive call).
    /// Doubles as the deterministic key for the `apply` failpoint site.
    budget_steps: u64,
    pub(crate) domains: Vec<Domain>,
    pub(crate) varsets: Vec<VarSetData>,
    pub(crate) varset_lookup: FxHashMap<Vec<Var>, u32>,
    pub(crate) replace_maps: Vec<Vec<Var>>,
    pub(crate) replace_lookup: FxHashMap<Vec<Var>, u32>,
    peak_nodes: usize,
    created_nodes: u64,
    gc_runs: u64,
    op_calls: [u64; OP_KINDS],
    cur_depth: u32,
    depth_hwm: u32,
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Create a manager with default cache size (2¹⁸ slots).
    pub fn new() -> Self {
        Self::with_capacity(1 << 18)
    }

    /// Create a manager with a caller-chosen operation-cache size (slots,
    /// rounded up to a power of two).
    pub fn with_capacity(cache_slots: usize) -> Self {
        BddManager {
            arena: NodeArena::with_terminals(),
            unique: FxHashMap::default(),
            free: Vec::new(),
            cache: OpCache::new(cache_slots),
            num_vars: 0,
            node_limit: None,
            deadline: None,
            budget_steps: 0,
            domains: Vec::new(),
            varsets: Vec::new(),
            varset_lookup: FxHashMap::default(),
            replace_maps: Vec::new(),
            replace_lookup: FxHashMap::default(),
            peak_nodes: 0,
            created_nodes: 0,
            gc_runs: 0,
            op_calls: [0; OP_KINDS],
            cur_depth: 0,
            depth_hwm: 0,
        }
    }

    /// Count one memoized invocation of `kind`. Call sites place this
    /// immediately before the cache probe so the per-kind conservation law
    /// `calls == hits + misses` holds exactly.
    #[inline]
    pub(crate) fn count_op(&mut self, kind: OpKind) {
        self.op_calls[kind.index()] += 1;
    }

    /// Enter one recursion level; updates the depth high-water mark.
    #[inline]
    pub(crate) fn depth_enter(&mut self) {
        self.cur_depth += 1;
        if self.cur_depth > self.depth_hwm {
            self.depth_hwm = self.cur_depth;
        }
    }

    /// Leave one recursion level. Must run even on error paths (call sites
    /// capture the recursive result before `?`).
    #[inline]
    pub(crate) fn depth_exit(&mut self) {
        self.cur_depth -= 1;
    }

    /// Set (or clear) the live-node limit. When the limit is exceeded the
    /// in-flight operation aborts with [`BddError::NodeLimit`] — the paper's
    /// size-threshold strategy for falling back to SQL.
    pub fn set_node_limit(&mut self, limit: Option<usize>) {
        self.node_limit = limit;
    }

    /// The configured live-node limit, if any.
    pub fn node_limit(&self) -> Option<usize> {
        self.node_limit
    }

    /// Arm (or clear) the cooperative wall-clock deadline. Once the instant
    /// passes, any in-flight memoized operation aborts with
    /// [`BddError::Deadline`] at its next recursion boundary (checked every
    /// [`DEADLINE_STRIDE`] steps, so overshoot is bounded and small).
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
    }

    /// The armed deadline, if any.
    pub fn deadline(&self) -> Option<std::time::Instant> {
        self.deadline
    }

    /// Set node limit and deadline together.
    pub fn set_budget(&mut self, budget: Budget) {
        self.node_limit = budget.node_limit;
        self.deadline = budget.deadline;
    }

    /// The budget currently in force.
    pub fn budget(&self) -> Budget {
        Budget {
            node_limit: self.node_limit,
            deadline: self.deadline,
        }
    }

    /// Total budget probes so far (one per memoized recursive call).
    pub fn budget_steps(&self) -> u64 {
        self.budget_steps
    }

    /// The cooperative cancellation probe, called at every memoized
    /// recursion boundary *before* the call is counted (so an abort never
    /// breaks the `calls == hits + misses` conservation law). Checks the
    /// `apply` failpoint site (keyed by the monotone step counter) and,
    /// every [`DEADLINE_STRIDE`] steps, the wall-clock deadline.
    #[inline]
    pub(crate) fn budget_check(&mut self) -> Result<()> {
        self.budget_steps += 1;
        if crate::failpoint::enabled()
            && crate::failpoint::should_fail(crate::failpoint::APPLY, self.budget_steps)
        {
            return Err(BddError::FaultInjected {
                site: crate::failpoint::APPLY,
            });
        }
        if let Some(deadline) = self.deadline {
            if self.budget_steps.is_multiple_of(DEADLINE_STRIDE)
                && std::time::Instant::now() >= deadline
            {
                return Err(BddError::Deadline {
                    steps: self.budget_steps,
                });
            }
        }
        Ok(())
    }

    /// Number of live (reachable-or-not, but unreclaimed) nodes, excluding
    /// the two terminals.
    #[inline]
    pub fn live_nodes(&self) -> usize {
        self.arena.len() - 2 - self.free.len()
    }

    /// Total arena slots currently allocated, excluding the two terminals
    /// (live nodes plus free-list holes). [`ManagerStats::peak_nodes`] is
    /// the monotone high-water mark of this value.
    #[inline]
    pub fn arena_slots(&self) -> usize {
        self.arena.len() - 2
    }

    /// Number of boolean variables allocated so far.
    #[inline]
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Allocate a fresh boolean variable at the next (deepest) level.
    pub fn new_var(&mut self) -> Var {
        let v = self.num_vars;
        self.num_vars += 1;
        v
    }

    /// The BDD of the literal `x_v` (true iff variable `v` is set).
    pub fn var(&mut self, v: Var) -> Result<Bdd> {
        debug_assert!(v < self.num_vars, "variable {v} not allocated");
        self.mk(v, Bdd::FALSE, Bdd::TRUE)
    }

    /// The BDD of the negative literal `¬x_v`.
    pub fn nvar(&mut self, v: Var) -> Result<Bdd> {
        debug_assert!(v < self.num_vars, "variable {v} not allocated");
        self.mk(v, Bdd::TRUE, Bdd::FALSE)
    }

    #[inline]
    pub(crate) fn node(&self, f: Bdd) -> Node {
        self.arena.get(f.0)
    }

    /// Level of the root node (`LEVEL_TERMINAL` for constants). Reads only
    /// the arena's level lane — this is the steering probe of every
    /// simultaneous descent, and the reason the arena is struct-of-arrays.
    #[inline]
    pub(crate) fn level(&self, f: Bdd) -> u32 {
        self.arena.level(f.0)
    }

    /// The variable tested at the root, if `f` is not a constant.
    pub fn root_var(&self, f: Bdd) -> Option<Var> {
        let l = self.level(f);
        (l != LEVEL_TERMINAL).then_some(l)
    }

    /// Low (else) and high (then) cofactors at the root. Constants cofactor
    /// to themselves.
    pub fn cofactors(&self, f: Bdd) -> (Bdd, Bdd) {
        let n = self.node(f);
        (Bdd(n.low), Bdd(n.high))
    }

    /// Hash-consing constructor: returns the canonical node for
    /// `(level, low, high)`, applying the ROBDD reduction rules.
    pub(crate) fn mk(&mut self, level: u32, low: Bdd, high: Bdd) -> Result<Bdd> {
        if low == high {
            return Ok(low);
        }
        debug_assert!(
            self.level(low) > level && self.level(high) > level,
            "mk would violate variable order: level {level}, children at {} and {}",
            self.level(low),
            self.level(high)
        );
        let key = (level, low.0, high.0);
        if let Some(&idx) = self.unique.get(&key) {
            return Ok(Bdd(idx));
        }
        if let Some(limit) = self.node_limit {
            if self.live_nodes() >= limit {
                return Err(BddError::NodeLimit {
                    limit,
                    live: self.live_nodes(),
                });
            }
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.arena.set(i, level, low.0, high.0);
                i
            }
            None => self.arena.push(level, low.0, high.0),
        };
        self.unique.insert(key, idx);
        self.created_nodes += 1;
        // Arena high-water mark, not the live count: compaction and GC can
        // shrink occupancy, but the peak must stay the honest footprint
        // ceiling (monotone, so telemetry snapshots never see it move
        // backwards mid-run).
        self.peak_nodes = self.peak_nodes.max(self.arena_slots());
        Ok(Bdd(idx))
    }

    /// Evaluate `f` under a total assignment given as a closure from
    /// variable to boolean. Allocation-free.
    pub fn eval(&self, f: Bdd, assignment: impl Fn(Var) -> bool) -> bool {
        let mut cur = f;
        loop {
            if cur.is_const() {
                return cur.is_true();
            }
            let n = self.node(cur);
            cur = if assignment(n.level) {
                Bdd(n.high)
            } else {
                Bdd(n.low)
            };
        }
    }

    /// Number of nodes in the (shared) graph rooted at `f`, excluding
    /// terminals. This is the "BDD size" the paper reports.
    pub fn size(&self, f: Bdd) -> usize {
        if f.is_const() {
            return 0;
        }
        let mut seen =
            std::collections::HashSet::with_hasher(crate::hash::FxBuildHasher::default());
        let mut stack = vec![f.0];
        while let Some(i) = stack.pop() {
            if i <= 1 || !seen.insert(i) {
                continue;
            }
            let n = self.arena.get(i);
            stack.push(n.low);
            stack.push(n.high);
        }
        seen.len()
    }

    /// Combined node count of several roots, counting shared nodes once —
    /// what an index set actually occupies.
    pub fn size_shared(&self, roots: &[Bdd]) -> usize {
        let mut seen =
            std::collections::HashSet::with_hasher(crate::hash::FxBuildHasher::default());
        let mut stack: Vec<u32> = roots.iter().map(|b| b.0).collect();
        while let Some(i) = stack.pop() {
            if i <= 1 || !seen.insert(i) {
                continue;
            }
            let n = self.arena.get(i);
            stack.push(n.low);
            stack.push(n.high);
        }
        seen.len()
    }

    /// The set of variables appearing in `f`, sorted ascending.
    pub fn support(&self, f: Bdd) -> Vec<Var> {
        let mut seen =
            std::collections::HashSet::with_hasher(crate::hash::FxBuildHasher::default());
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f.0];
        while let Some(i) = stack.pop() {
            if i <= 1 || !seen.insert(i) {
                continue;
            }
            let n = self.arena.get(i);
            vars.insert(n.level);
            stack.push(n.low);
            stack.push(n.high);
        }
        vars.into_iter().collect()
    }

    /// Mark-and-sweep garbage collection. Every node not reachable from
    /// `roots` is reclaimed onto the free list; the operation cache is
    /// invalidated (node indices may be recycled).
    pub fn gc(&mut self, roots: &[Bdd]) -> GcStats {
        let mut marked = self.mark(roots);
        // Nodes already on the free list must not be freed twice.
        for &i in &self.free {
            marked[i as usize] = true;
        }
        let mut freed = 0;
        for (i, &live) in marked.iter().enumerate().skip(2) {
            if !live {
                let n = self.arena.get(i as u32);
                self.unique.remove(&(n.level, n.low, n.high));
                // Poison the entry so stale handles fail fast in debug runs.
                self.arena.set(i as u32, LEVEL_TERMINAL - 1, 0, 0);
                self.free.push(i as u32);
                freed += 1;
            }
        }
        self.cache.invalidate();
        self.gc_runs += 1;
        GcStats {
            freed,
            live: self.live_nodes(),
        }
    }

    /// Reachability bitmap from `roots` (terminals always marked).
    fn mark(&self, roots: &[Bdd]) -> Vec<bool> {
        let mut marked = vec![false; self.arena.len()];
        marked[0] = true;
        marked[1] = true;
        let mut stack: Vec<u32> = roots.iter().map(|b| b.0).collect();
        while let Some(i) = stack.pop() {
            let i = i as usize;
            if marked[i] {
                continue;
            }
            marked[i] = true;
            let n = self.arena.get(i as u32);
            stack.push(n.low);
            stack.push(n.high);
        }
        marked
    }

    /// In-place arena compaction: slide every node reachable from `roots`
    /// down into the lowest-numbered slots (preserving relative order, so
    /// children keep lower indices than parents), rewrite all child
    /// pointers and unique-table entries, truncate the arena, and empty
    /// the free list. Unreachable nodes are reclaimed as a side effect —
    /// compaction subsumes a [`BddManager::gc`] sweep (and counts as one
    /// in [`ManagerStats::gc_runs`]).
    ///
    /// The handles in `roots` are **remapped in place**; every other
    /// outstanding [`Bdd`] handle is invalidated, exactly like handles not
    /// passed to `gc`. The operation cache is invalidated (indices moved),
    /// and [`ManagerStats::peak_nodes`] is untouched: it is the monotone
    /// arena high-water mark, not the post-compaction occupancy.
    pub fn compact(&mut self, roots: &mut [Bdd]) -> CompactStats {
        let marked = self.mark(roots);
        let slots_before = self.arena.len();
        // Destination of every live slot: live nodes keep their relative
        // order, so a node's children (always lower-indexed than their
        // parent — `mk` creates bottom-up) are remapped before it.
        let mut remap: Vec<u32> = vec![0; slots_before];
        let mut next: u32 = 2;
        let mut relocated = 0usize;
        remap[1] = 1;
        for i in 2..slots_before {
            if marked[i] {
                remap[i] = next;
                if next as usize != i {
                    relocated += 1;
                }
                next += 1;
            }
        }
        self.unique.clear();
        for i in 2..slots_before {
            if !marked[i] {
                continue;
            }
            let n = self.arena.get(i as u32);
            let (level, low, high) = (n.level, remap[n.low as usize], remap[n.high as usize]);
            self.arena.set(remap[i], level, low, high);
            self.unique.insert((level, low, high), remap[i]);
        }
        self.arena.truncate(next as usize);
        self.free.clear();
        for r in roots.iter_mut() {
            *r = Bdd(remap[r.0 as usize]);
        }
        self.cache.invalidate();
        self.gc_runs += 1;
        CompactStats {
            live: self.live_nodes(),
            reclaimed_slots: slots_before - next as usize,
            relocated,
        }
    }

    /// Snapshot of cumulative statistics.
    pub fn stats(&self) -> ManagerStats {
        let mut ops = [OpStats::default(); OP_KINDS];
        for (i, kind) in OpKind::ALL.iter().enumerate() {
            ops[i] = OpStats {
                calls: self.op_calls[i],
                cache_hits: self.cache.kind_hits(*kind),
                cache_misses: self.cache.kind_misses(*kind),
            };
        }
        ManagerStats {
            live_nodes: self.live_nodes(),
            peak_nodes: self.peak_nodes,
            created_nodes: self.created_nodes,
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            gc_runs: self.gc_runs,
            num_vars: self.num_vars,
            depth_hwm: self.depth_hwm,
            ops,
        }
    }

    /// Approximate heap footprint of the node store in bytes (the paper
    /// reports 20 bytes per BuDDy node; see [`NODE_BYTES`]).
    pub fn node_bytes(&self) -> usize {
        self.live_nodes() * NODE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_fixed() {
        let m = BddManager::new();
        assert!(Bdd::FALSE.is_false());
        assert!(Bdd::TRUE.is_true());
        assert!(Bdd::TRUE.is_const() && Bdd::FALSE.is_const());
        assert_eq!(m.live_nodes(), 0);
        assert_eq!(m.size(Bdd::TRUE), 0);
    }

    #[test]
    fn mk_reduces_equal_children() {
        let mut m = BddManager::new();
        let v = m.new_var();
        let f = m.mk(v, Bdd::TRUE, Bdd::TRUE).unwrap();
        assert_eq!(f, Bdd::TRUE);
        assert_eq!(m.live_nodes(), 0);
    }

    #[test]
    fn mk_is_hash_consed() {
        let mut m = BddManager::new();
        let v = m.new_var();
        let a = m.var(v).unwrap();
        let b = m.var(v).unwrap();
        assert_eq!(a, b);
        assert_eq!(m.live_nodes(), 1);
    }

    #[test]
    fn var_and_nvar_evaluate() {
        let mut m = BddManager::new();
        let v = m.new_var();
        let x = m.var(v).unwrap();
        let nx = m.nvar(v).unwrap();
        assert!(m.eval(x, |_| true));
        assert!(!m.eval(x, |_| false));
        assert!(!m.eval(nx, |_| true));
        assert!(m.eval(nx, |_| false));
    }

    #[test]
    fn node_limit_aborts_and_recovers() {
        let mut m = BddManager::new();
        for _ in 0..8 {
            m.new_var();
        }
        m.set_node_limit(Some(3));
        // Building x0 ∧ x1 ∧ ... eventually needs more than 3 nodes.
        let mut err = None;
        let mut acc = Bdd::TRUE;
        for v in 0..8 {
            let x = match m.var(v) {
                Ok(x) => x,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            };
            match m.and(acc, x) {
                Ok(f) => acc = f,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(BddError::NodeLimit { limit: 3, .. })));
        // Manager remains usable after raising the limit.
        m.set_node_limit(None);
        let x = m.var(7).unwrap();
        let y = m.var(6).unwrap();
        let f = m.and(x, y).unwrap();
        assert!(m.eval(f, |_| true));
    }

    #[test]
    fn gc_reclaims_unrooted_nodes() {
        let mut m = BddManager::new();
        let v0 = m.new_var();
        let v1 = m.new_var();
        let x = m.var(v0).unwrap();
        let y = m.var(v1).unwrap();
        let keep = m.and(x, y).unwrap();
        let _dead = m.or(x, y).unwrap();
        let before = m.live_nodes();
        let stats = m.gc(&[keep]);
        assert!(stats.freed > 0);
        assert_eq!(stats.live, before - stats.freed);
        // keep is still correct.
        assert!(m.eval(keep, |_| true));
        assert!(!m.eval(keep, |v| v == v0));
    }

    #[test]
    fn gc_reuses_freed_slots() {
        let mut m = BddManager::new();
        let v0 = m.new_var();
        let v1 = m.new_var();
        let x = m.var(v0).unwrap();
        let y = m.var(v1).unwrap();
        let _dead = m.and(x, y).unwrap();
        m.gc(&[x, y]);
        let arena_len = m.arena.len();
        // New allocation should reuse the freed slot, not grow the arena.
        let f = m.or(x, y).unwrap();
        assert_eq!(m.arena.len(), arena_len);
        assert!(m.eval(f, |v| v == v0));
    }

    #[test]
    fn compact_remaps_roots_and_preserves_semantics() {
        let mut m = BddManager::new();
        let v0 = m.new_var();
        let v1 = m.new_var();
        let v2 = m.new_var();
        let x = m.var(v0).unwrap();
        let y = m.var(v1).unwrap();
        let z = m.var(v2).unwrap();
        // Garbage first so live nodes end up at high indices.
        for _ in 0..4 {
            let j = m.xor(x, y).unwrap();
            let _ = m.and(j, z).unwrap();
        }
        m.gc(&[x, y, z]);
        let keep_a = m.and(x, y).unwrap();
        let keep_b = m.or(keep_a, z).unwrap();
        let size_a = m.size(keep_a);
        let size_b = m.size(keep_b);
        let mut roots = [keep_a, keep_b];
        let stats = m.compact(&mut roots);
        assert_eq!(stats.live, m.live_nodes());
        assert_eq!(stats.live + 2, m.arena.len(), "free list squeezed out");
        let (keep_a, keep_b) = (roots[0], roots[1]);
        // Same functions, same structure.
        assert_eq!(m.size(keep_a), size_a);
        assert_eq!(m.size(keep_b), size_b);
        for bits in 0..8u32 {
            let assign = |v: Var| bits >> v & 1 == 1;
            assert_eq!(m.eval(keep_a, assign), assign(v0) && assign(v1));
            assert_eq!(
                m.eval(keep_b, assign),
                (assign(v0) && assign(v1)) || assign(v2)
            );
        }
        // The compacted manager keeps hash-consing correctly: rebuilding a
        // kept function returns the (remapped) canonical node.
        let xa = m.var(v0).unwrap();
        let xb = m.var(v1).unwrap();
        let again = m.and(xa, xb).unwrap();
        assert_eq!(again, keep_a);
    }

    #[test]
    fn compact_is_idempotent_and_keeps_peak() {
        let mut m = BddManager::new();
        let d = {
            for _ in 0..6 {
                m.new_var();
            }
            let mut acc = Bdd::TRUE;
            for v in 0..6 {
                let x = m.var(v).unwrap();
                acc = m.and(acc, x).unwrap();
            }
            acc
        };
        let _junk = {
            let a = m.var(0).unwrap();
            let b = m.var(5).unwrap();
            m.xor(a, b).unwrap()
        };
        let peak_before = m.stats().peak_nodes;
        let mut roots = [d];
        let first = m.compact(&mut roots);
        assert!(first.reclaimed_slots > 0);
        let second = m.compact(&mut roots);
        assert_eq!(second.reclaimed_slots, 0, "second pass finds nothing");
        assert_eq!(second.relocated, 0);
        assert_eq!(m.stats().peak_nodes, peak_before, "peak is monotone");
        assert!(m.eval(roots[0], |_| true));
    }

    #[test]
    fn double_gc_does_not_double_free() {
        let mut m = BddManager::new();
        let v0 = m.new_var();
        let v1 = m.new_var();
        let x = m.var(v0).unwrap();
        let y = m.var(v1).unwrap();
        let _dead = m.and(x, y).unwrap();
        m.gc(&[x, y]);
        let free_after_first = m.free.len();
        m.gc(&[x, y]);
        assert_eq!(m.free.len(), free_after_first);
    }

    #[test]
    fn size_counts_distinct_nodes() {
        let mut m = BddManager::new();
        let v0 = m.new_var();
        let v1 = m.new_var();
        let x = m.var(v0).unwrap();
        let y = m.var(v1).unwrap();
        let f = m.and(x, y).unwrap();
        // x0 ∧ x1 is two internal nodes.
        assert_eq!(m.size(f), 2);
        assert_eq!(m.size_shared(&[f, y]), 2); // y is shared inside f
    }

    #[test]
    fn support_reports_used_vars() {
        let mut m = BddManager::new();
        let vars: Vec<Var> = (0..4).map(|_| m.new_var()).collect();
        let x0 = m.var(vars[0]).unwrap();
        let x2 = m.var(vars[2]).unwrap();
        let f = m.xor(x0, x2).unwrap();
        assert_eq!(m.support(f), vec![vars[0], vars[2]]);
        assert!(m.support(Bdd::TRUE).is_empty());
    }

    #[test]
    fn stats_track_peak_and_cache() {
        let mut m = BddManager::new();
        let v0 = m.new_var();
        let v1 = m.new_var();
        let x = m.var(v0).unwrap();
        let y = m.var(v1).unwrap();
        let _f = m.and(x, y).unwrap();
        let _g = m.and(x, y).unwrap(); // cache hit
        let s = m.stats();
        assert!(s.peak_nodes >= s.live_nodes);
        assert!(s.cache_hits >= 1);
        assert_eq!(s.num_vars, 2);
    }
}
