//! Structural analysis and don't-care minimization.
//!
//! [`BddManager::level_profile`] reports node counts per variable level —
//! the tool for *seeing* what a variable ordering does to an index (wide
//! levels are where an interleaved ordering pays). [`BddManager::constrain`]
//! is the Coudert–Madre generalized cofactor: minimize a function against a
//! care set, the classic way to shrink constraint BDDs when behaviour
//! outside the care set (e.g. outside the active-domain ranges) is
//! irrelevant.

use crate::cache::{OpCode, OpKind};
use crate::error::Result;
use crate::manager::{Bdd, BddManager, Var};

impl BddManager {
    /// Node count per level for the function rooted at `f`, as
    /// `(level, count)` pairs sorted by level. The sum equals
    /// [`BddManager::size`].
    pub fn level_profile(&self, f: Bdd) -> Vec<(Var, usize)> {
        let mut counts: std::collections::BTreeMap<Var, usize> = Default::default();
        let mut seen =
            std::collections::HashSet::with_hasher(crate::hash::FxBuildHasher::default());
        let mut stack = vec![f.index()];
        while let Some(i) = stack.pop() {
            if i <= 1 || !seen.insert(i) {
                continue;
            }
            let n = self.arena.get(i);
            *counts.entry(n.level).or_insert(0) += 1;
            stack.push(n.low);
            stack.push(n.high);
        }
        counts.into_iter().collect()
    }

    /// Coudert–Madre generalized cofactor `f ⇓ c` ("constrain"): a function
    /// that agrees with `f` everywhere `c` holds, chosen to have a small
    /// BDD. Satisfies `(f ⇓ c) ∧ c ≡ f ∧ c`. Useful for minimizing a
    /// constraint BDD against a care set (e.g. active-domain ranges).
    ///
    /// # Panics
    /// Debug-panics if `c` is the constant false (the care set must be
    /// non-empty).
    pub fn constrain(&mut self, f: Bdd, c: Bdd) -> Result<Bdd> {
        debug_assert!(!c.is_false(), "constrain needs a non-empty care set");
        if c.is_true() || f.is_const() {
            return Ok(f);
        }
        if f == c {
            return Ok(Bdd::TRUE);
        }
        self.count_op(OpKind::Constrain);
        if let Some(r) = self.cache.get(OpCode::Constrain, f.index(), c.index(), 0) {
            return Ok(Bdd(r));
        }
        self.depth_enter();
        let descended = self.constrain_descend(f, c);
        self.depth_exit();
        let r = descended?;
        self.cache
            .put(OpCode::Constrain, f.index(), c.index(), 0, r.index());
        Ok(r)
    }

    fn constrain_descend(&mut self, f: Bdd, c: Bdd) -> Result<Bdd> {
        let (lf, lc) = (self.level(f), self.level(c));
        let top = lf.min(lc);
        let (c0, c1) = if lc == top { self.cofactors(c) } else { (c, c) };
        if c0.is_false() {
            // The care set forces this variable to 1.
            let f1 = if lf == top { self.cofactors(f).1 } else { f };
            self.constrain(f1, c1)
        } else if c1.is_false() {
            let f0 = if lf == top { self.cofactors(f).0 } else { f };
            self.constrain(f0, c0)
        } else {
            let (f0, f1) = if lf == top { self.cofactors(f) } else { (f, f) };
            let low = self.constrain(f0, c0)?;
            let high = self.constrain(f1, c1)?;
            self.mk(top, low, high)
        }
    }

    /// Count the nodes a function spends on each finite-domain block —
    /// [`BddManager::level_profile`] aggregated by domain. Levels outside
    /// any declared domain are reported under `None`.
    pub fn domain_profile(&self, f: Bdd) -> Vec<(Option<crate::fdd::DomainId>, usize)> {
        let profile = self.level_profile(f);
        let mut out: std::collections::BTreeMap<Option<u32>, usize> = Default::default();
        for (level, count) in profile {
            let dom = self
                .domains
                .iter()
                .position(|d| d.vars.contains(&level))
                .map(|i| i as u32);
            *out.entry(dom).or_insert(0) += count;
        }
        out.into_iter()
            .map(|(d, c)| (d.map(crate::fdd::DomainId), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_profile_sums_to_size() {
        let mut m = BddManager::new();
        let vars: Vec<Var> = (0..5).map(|_| m.new_var()).collect();
        let mut f = Bdd::FALSE;
        for &v in &vars {
            let x = m.var(v).unwrap();
            f = m.xor(f, x).unwrap();
        }
        let profile = m.level_profile(f);
        let total: usize = profile.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, m.size(f));
        // Parity over 5 vars: 1 node at the top level, 2 at each below.
        assert_eq!(profile[0], (vars[0], 1));
        for &(_, c) in &profile[1..] {
            assert_eq!(c, 2);
        }
    }

    #[test]
    fn constrain_agrees_on_care_set() {
        let mut m = BddManager::new();
        let v: Vec<Var> = (0..4).map(|_| m.new_var()).collect();
        let x0 = m.var(v[0]).unwrap();
        let x1 = m.var(v[1]).unwrap();
        let x2 = m.var(v[2]).unwrap();
        let x3 = m.var(v[3]).unwrap();
        let t = m.xor(x0, x2).unwrap();
        let f = m.imp(t, x3).unwrap();
        let care = m.and(x1, x3).unwrap();
        let g = m.constrain(f, care).unwrap();
        // (f ⇓ c) ∧ c == f ∧ c — the defining identity.
        let lhs = m.and(g, care).unwrap();
        let rhs = m.and(f, care).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn constrain_exhaustive_identity() {
        // Check the defining identity over many (f, c) pairs built from a
        // small function space.
        let mut m = BddManager::new();
        let v: Vec<Var> = (0..3).map(|_| m.new_var()).collect();
        let x: Vec<Bdd> = v.iter().map(|&vv| m.var(vv).unwrap()).collect();
        let mut funcs = vec![x[0], x[1], x[2]];
        funcs.push(m.xor(x[0], x[1]).unwrap());
        funcs.push(m.and(x[1], x[2]).unwrap());
        funcs.push(m.or(x[0], x[2]).unwrap());
        let n0 = m.not(x[0]).unwrap();
        funcs.push(n0);
        for &f in &funcs {
            for &c in &funcs {
                if c.is_false() {
                    continue;
                }
                let g = m.constrain(f, c).unwrap();
                let lhs = m.and(g, c).unwrap();
                let rhs = m.and(f, c).unwrap();
                assert_eq!(lhs, rhs, "f={f:?} c={c:?}");
            }
        }
    }

    #[test]
    fn constrain_simplifies_against_cube_care_sets() {
        // Constraining by a cube is exactly restriction.
        let mut m = BddManager::new();
        let v: Vec<Var> = (0..3).map(|_| m.new_var()).collect();
        let x0 = m.var(v[0]).unwrap();
        let x1 = m.var(v[1]).unwrap();
        let f = m.and(x0, x1).unwrap();
        let cube = m.cube(&[(v[0], true)]).unwrap();
        let g = m.constrain(f, cube).unwrap();
        let r = m.restrict(f, cube).unwrap();
        assert_eq!(g, r);
        assert_eq!(g, x1);
    }

    #[test]
    fn domain_profile_attributes_nodes_to_blocks() {
        let mut m = BddManager::new();
        let d1 = m.add_domain(16).unwrap();
        let d2 = m.add_domain(16).unwrap();
        let rows: Vec<Vec<u64>> = (0..16u64).map(|i| vec![i, (i * 5) % 16]).collect();
        let r = m.relation_from_rows(&[d1, d2], &rows).unwrap();
        let profile = m.domain_profile(r);
        let total: usize = profile.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, m.size(r));
        // Both blocks carry nodes for this permutation relation.
        assert!(profile.iter().any(|&(d, c)| d == Some(d1) && c > 0));
        assert!(profile.iter().any(|&(d, c)| d == Some(d2) && c > 0));
    }
}
