//! Model counting and satisfying-assignment enumeration.
//!
//! `sat_count` computes the number of satisfying assignments over a given
//! variable set (tuple cardinality, once relations are encoded as
//! characteristic functions). [`SatAssignments`] enumerates complete
//! assignments over a variable set — the basis for extracting the actual
//! violating tuples once a constraint is known to be violated.

use crate::error::Result;
use crate::hash::FxHashMap;
use crate::manager::{Bdd, BddManager, Var, LEVEL_TERMINAL};
use crate::quant::VarSet;

impl BddManager {
    /// Number of satisfying assignments of `f` over the variables in `vs`.
    ///
    /// Requires `support(f) ⊆ vs`; variables in `vs` that `f` does not test
    /// contribute a factor of 2 each. Returns an `f64` because counts exceed
    /// `u64` quickly for wide variable sets.
    ///
    /// # Panics
    /// Panics (debug assertion) if `f` tests a variable outside `vs`.
    pub fn sat_count(&self, f: Bdd, vs: VarSet) -> f64 {
        let vars = &self.varsets[vs.0 as usize].vars;
        let mut memo: FxHashMap<u32, f64> = FxHashMap::default();
        self.sat_count_rec(f, vars, &mut memo)
    }

    fn sat_count_rec(&self, f: Bdd, vars: &[Var], memo: &mut FxHashMap<u32, f64>) -> f64 {
        // Count of assignments to the variables of `vars` strictly below
        // (deeper than or at) f's root level, then scale for skipped vars at
        // each call site.
        fn vars_at_or_below(vars: &[Var], level: u32) -> usize {
            // number of vars v with v >= level
            let idx = vars.partition_point(|&v| v < level);
            vars.len() - idx
        }
        fn rec(m: &BddManager, f: Bdd, vars: &[Var], memo: &mut FxHashMap<u32, f64>) -> f64 {
            if f.is_false() {
                return 0.0;
            }
            if f.is_true() {
                return 1.0;
            }
            if let Some(&c) = memo.get(&f.0) {
                return c;
            }
            let n = m.node(f);
            debug_assert!(
                vars.binary_search(&n.level).is_ok(),
                "sat_count: variable {} tested by f is not in the counting set",
                n.level
            );
            let below_here = vars_at_or_below(vars, n.level) as i32;
            let count_side = |m: &BddManager, child: Bdd, memo: &mut FxHashMap<u32, f64>| -> f64 {
                let c = rec(m, child, vars, memo);
                let child_level = m.level(child);
                let below_child = if child_level == LEVEL_TERMINAL {
                    0
                } else {
                    vars_at_or_below(vars, child_level) as i32
                };
                // Variables strictly between this node and the child are
                // unconstrained: each doubles the count.
                let skipped = below_here - 1 - below_child;
                c * (skipped as f64).exp2()
            };
            let total = count_side(m, Bdd(n.low), memo) + count_side(m, Bdd(n.high), memo);
            memo.insert(f.0, total);
            total
        }
        let c = rec(self, f, vars, memo);
        // Scale for variables above the root.
        let root_level = self.level(f);
        let above = if root_level == LEVEL_TERMINAL {
            vars.len()
        } else {
            vars.partition_point(|&v| v < root_level)
        };
        c * (above as f64).exp2()
    }

    /// One satisfying assignment of `f` restricted to the variables `f`
    /// actually tests (don't-cares omitted), or `None` if unsatisfiable.
    pub fn any_sat(&self, f: Bdd) -> Option<Vec<(Var, bool)>> {
        if f.is_false() {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = f;
        while !cur.is_const() {
            let n = self.node(cur);
            // Prefer a branch that can still reach TRUE; low first for
            // lexicographically small assignments.
            if n.low != 0 {
                path.push((n.level, false));
                cur = Bdd(n.low);
            } else {
                path.push((n.level, true));
                cur = Bdd(n.high);
            }
        }
        Some(path)
    }

    /// Iterate over **all** complete satisfying assignments of `f` with
    /// respect to the variable set `vs` (don't-care variables are expanded
    /// into both values). Requires `support(f) ⊆ vs`.
    pub fn sat_assignments(&self, f: Bdd, vs: VarSet) -> SatAssignments<'_> {
        let vars = self.varsets[vs.0 as usize].vars.clone();
        SatAssignments {
            mgr: self,
            vars,
            stack: if f.is_false() {
                vec![]
            } else {
                vec![(f, 0, Vec::new())]
            },
        }
    }

    /// Enumerate at most `limit` complete satisfying assignments of `f`
    /// over `vs` alongside the **exact** model count from [`sat_count`].
    ///
    /// The pair `(assignments, total)` lets callers report "first `k` of
    /// `n`" without walking the whole (possibly astronomically large)
    /// model set: `assignments.len() < limit` iff the enumeration is
    /// exhaustive, in which case `assignments.len() as f64 == total`.
    ///
    /// [`sat_count`]: BddManager::sat_count
    pub fn sat_assignments_limited(
        &self,
        f: Bdd,
        vs: VarSet,
        limit: usize,
    ) -> (Vec<Vec<bool>>, f64) {
        let total = self.sat_count(f, vs);
        let assignments = self.sat_assignments(f, vs).take(limit).collect();
        (assignments, total)
    }

    /// Does the relation/function `f` contain the given tuple of values for
    /// the listed domains? Allocation-free evaluation.
    pub fn contains(
        &self,
        f: Bdd,
        domains: &[crate::fdd::DomainId],
        values: &[u64],
    ) -> Result<bool> {
        let assignment = self.tuple_assignment(domains, values)?;
        Ok(self.eval(f, |v| assignment.iter().any(|&(av, ab)| av == v && ab)))
    }
}

/// Iterator over complete satisfying assignments (see
/// [`BddManager::sat_assignments`]). Yields each assignment as a vector of
/// booleans parallel to the varset's sorted variable list.
pub struct SatAssignments<'a> {
    mgr: &'a BddManager,
    vars: Vec<Var>,
    /// (node, index into vars, bits chosen so far)
    stack: Vec<(Bdd, usize, Vec<bool>)>,
}

impl Iterator for SatAssignments<'_> {
    type Item = Vec<bool>;

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((node, vi, bits)) = self.stack.pop() {
            if vi == self.vars.len() {
                debug_assert!(node.is_const(), "support(f) must be within the varset");
                if node.is_true() {
                    return Some(bits);
                }
                continue;
            }
            if node.is_false() {
                continue;
            }
            let level = self.mgr.level(node);
            let var = self.vars[vi];
            if !node.is_const() && level == var {
                let n = self.mgr.node(node);
                let mut b1 = bits.clone();
                b1.push(true);
                let mut b0 = bits;
                b0.push(false);
                // Push high first so low (lexicographically smaller) pops
                // first.
                self.stack.push((Bdd(n.high), vi + 1, b1));
                self.stack.push((Bdd(n.low), vi + 1, b0));
            } else {
                // Don't-care for this variable: expand both values.
                debug_assert!(node.is_const() || level > var, "variable outside varset");
                let mut b1 = bits.clone();
                b1.push(true);
                let mut b0 = bits;
                b0.push(false);
                self.stack.push((node, vi + 1, b1));
                self.stack.push((node, vi + 1, b0));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_count_simple() {
        let mut m = BddManager::new();
        let v: Vec<Var> = (0..3).map(|_| m.new_var()).collect();
        let x0 = m.var(v[0]).unwrap();
        let x1 = m.var(v[1]).unwrap();
        let f = m.and(x0, x1).unwrap();
        let vs = m.varset(&v);
        // x0 ∧ x1 over 3 vars: x2 free → 2 models.
        assert_eq!(m.sat_count(f, vs), 2.0);
        assert_eq!(m.sat_count(Bdd::TRUE, vs), 8.0);
        assert_eq!(m.sat_count(Bdd::FALSE, vs), 0.0);
    }

    #[test]
    fn sat_count_with_skipped_levels() {
        let mut m = BddManager::new();
        let v: Vec<Var> = (0..4).map(|_| m.new_var()).collect();
        let x0 = m.var(v[0]).unwrap();
        let x3 = m.var(v[3]).unwrap();
        let f = m.biimp(x0, x3).unwrap(); // skips vars 1,2
        let vs = m.varset(&v);
        // Half of 16 assignments satisfy x0 ⇔ x3.
        assert_eq!(m.sat_count(f, vs), 8.0);
    }

    #[test]
    fn sat_count_function_below_leading_vars() {
        let mut m = BddManager::new();
        let v: Vec<Var> = (0..3).map(|_| m.new_var()).collect();
        let x2 = m.var(v[2]).unwrap();
        let vs = m.varset(&v);
        // f = x2 over {x0,x1,x2}: 4 models.
        assert_eq!(m.sat_count(x2, vs), 4.0);
    }

    #[test]
    fn any_sat_returns_valid_assignment() {
        let mut m = BddManager::new();
        let v: Vec<Var> = (0..3).map(|_| m.new_var()).collect();
        let x0 = m.var(v[0]).unwrap();
        let x1 = m.var(v[1]).unwrap();
        let nx1 = m.not(x1).unwrap();
        let f = m.and(x0, nx1).unwrap();
        let sat = m.any_sat(f).unwrap();
        assert!(m.eval(f, |var| sat.iter().any(|&(sv, sb)| sv == var && sb)));
        assert!(m.any_sat(Bdd::FALSE).is_none());
        assert_eq!(m.any_sat(Bdd::TRUE), Some(vec![]));
    }

    #[test]
    fn sat_assignments_enumerates_all_models() {
        let mut m = BddManager::new();
        let v: Vec<Var> = (0..3).map(|_| m.new_var()).collect();
        let x0 = m.var(v[0]).unwrap();
        let x2 = m.var(v[2]).unwrap();
        let f = m.or(x0, x2).unwrap();
        let vs = m.varset(&v);
        let models: Vec<Vec<bool>> = m.sat_assignments(f, vs).collect();
        // |x0 ∨ x2| over 3 vars = 6 models.
        assert_eq!(models.len(), 6);
        assert_eq!(models.len() as f64, m.sat_count(f, vs));
        for bits in &models {
            assert!(m.eval(f, |var| bits[var as usize]));
        }
        // All distinct.
        let set: std::collections::HashSet<_> = models.iter().collect();
        assert_eq!(set.len(), 6);
    }

    /// SplitMix64 — deterministic, dependency-free randomness.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Property: on small random relations, every assignment enumerated by
    /// `sat_assignments_limited` is `contains`-accepted, the exact total
    /// matches `sat_count`, and the bounded prefix agrees with unbounded
    /// enumeration.
    #[test]
    fn sat_assignments_limited_matches_contains_and_count() {
        let mut seed = 0x5EED_0008_u64;
        for _case in 0..40 {
            let mut m = BddManager::new();
            // Power-of-two domain sizes: every bit pattern decodes to an
            // in-range value, so assignment count == tuple count exactly.
            let d0 = m.add_domain(8).unwrap();
            let d1 = m.add_domain(4).unwrap();
            let doms = [d0, d1];
            let mut f = Bdd::FALSE;
            let mut expect = std::collections::HashSet::new();
            for _ in 0..(splitmix(&mut seed) % 12) {
                let row = [splitmix(&mut seed) % 8, splitmix(&mut seed) % 4];
                f = m.insert_row(f, &doms, &row).unwrap();
                expect.insert(row.to_vec());
            }
            let vs = m.domain_varset(&doms);
            let (all, total) = m.sat_assignments_limited(f, vs, usize::MAX);
            assert_eq!(total, expect.len() as f64);
            assert_eq!(all.len() as f64, total);
            // Enumerated ⊆ contains: decode each assignment (MSB-first per
            // domain, matching value_literals) and probe the relation.
            let vars = m.varset_vars(vs).to_vec();
            for bits in &all {
                let mut values = Vec::new();
                for &d in &doms {
                    let mut v = 0u64;
                    for &var in m.domain_vars(d) {
                        let p = vars.binary_search(&var).unwrap();
                        v = v << 1 | bits[p] as u64;
                    }
                    values.push(v);
                }
                assert!(m.contains(f, &doms, &values).unwrap());
                assert!(expect.contains(&values));
            }
            // The bounded variant yields a prefix of the unbounded order.
            let limit = (splitmix(&mut seed) % 6) as usize;
            let (some, total2) = m.sat_assignments_limited(f, vs, limit);
            assert_eq!(total2, total);
            assert_eq!(some.len(), limit.min(all.len()));
            assert_eq!(some[..], all[..some.len()]);
        }
    }

    #[test]
    fn sat_assignments_of_constants() {
        let mut m = BddManager::new();
        let v: Vec<Var> = (0..2).map(|_| m.new_var()).collect();
        let vs = m.varset(&v);
        assert_eq!(m.sat_assignments(Bdd::FALSE, vs).count(), 0);
        assert_eq!(m.sat_assignments(Bdd::TRUE, vs).count(), 4);
    }
}
