//! Quantification: `exists`/`forall` over variable sets, and the fused
//! apply-quantify operators `app_exists` / `app_forall`.
//!
//! The fused operators are BuDDy's `bdd_appex` and `bdd_appall`: they
//! evaluate `∃x̄ (f op g)` / `∀x̄ (f op g)` in one traversal, without
//! materializing the potentially large intermediate `f op g`. The paper's
//! quantifier pull-up rule (∃ over ∨) exists precisely to expose calls of
//! this shape, and its push-down rule (∀ over ∧) exists because `∀x φᵢ`
//! results are usually far smaller than `φᵢ` (Section 4.3).

use crate::cache::OpCode;
use crate::error::Result;
use crate::manager::{Bdd, BddManager, Var, LEVEL_TERMINAL};
use crate::Op;

/// An interned, sorted set of variables to quantify over. Interning gives
/// the operation cache a compact id to key on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarSet(pub(crate) u32);

#[derive(Debug, Clone)]
pub(crate) struct VarSetData {
    /// Sorted ascending.
    pub(crate) vars: Vec<Var>,
    /// Largest member, for early exit (`LEVEL_TERMINAL` if empty).
    pub(crate) max: u32,
}

impl BddManager {
    /// Intern a set of variables for quantification. Duplicates are removed;
    /// order does not matter.
    pub fn varset(&mut self, vars: &[Var]) -> VarSet {
        let mut sorted: Vec<Var> = vars.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if let Some(&id) = self.varset_lookup.get(&sorted) {
            return VarSet(id);
        }
        let id = self.varsets.len() as u32;
        let max = sorted.last().copied().unwrap_or(LEVEL_TERMINAL);
        self.varsets.push(VarSetData {
            vars: sorted.clone(),
            max,
        });
        self.varset_lookup.insert(sorted, id);
        VarSet(id)
    }

    /// The members of an interned varset, sorted ascending.
    pub fn varset_vars(&self, vs: VarSet) -> &[Var] {
        &self.varsets[vs.0 as usize].vars
    }

    /// `∃ vars. f` — existential quantification.
    pub fn exists(&mut self, f: Bdd, vs: VarSet) -> Result<Bdd> {
        self.quant(f, vs, true)
    }

    /// `∀ vars. f` — universal quantification.
    pub fn forall(&mut self, f: Bdd, vs: VarSet) -> Result<Bdd> {
        self.quant(f, vs, false)
    }

    fn quant(&mut self, f: Bdd, vs: VarSet, is_exists: bool) -> Result<Bdd> {
        let data = &self.varsets[vs.0 as usize];
        if f.is_const() || data.vars.is_empty() || self.level(f) > data.max {
            // No quantified variable can occur in f below this point.
            return Ok(f);
        }
        let code = if is_exists {
            OpCode::Exists
        } else {
            OpCode::Forall
        };
        self.budget_check()?;
        self.count_op(code.kind());
        if let Some(r) = self.cache.get(code, f.0, vs.0, 0) {
            return Ok(Bdd(r));
        }
        self.depth_enter();
        let descended = self.quant_descend(f, vs, is_exists);
        self.depth_exit();
        let r = descended?;
        self.cache.put(code, f.0, vs.0, 0, r.0);
        Ok(r)
    }

    fn quant_descend(&mut self, f: Bdd, vs: VarSet, is_exists: bool) -> Result<Bdd> {
        let n = self.node(f);
        let low = self.quant(Bdd(n.low), vs, is_exists)?;
        let high = self.quant(Bdd(n.high), vs, is_exists)?;
        let in_set = self.varsets[vs.0 as usize]
            .vars
            .binary_search(&n.level)
            .is_ok();
        if in_set {
            if is_exists {
                self.or(low, high)
            } else {
                self.and(low, high)
            }
        } else {
            self.mk(n.level, low, high)
        }
    }

    /// Fused `∃ vars. (f op g)` — BuDDy's `bdd_appex`. Avoids building the
    /// intermediate `f op g`.
    pub fn app_exists(&mut self, op: Op, f: Bdd, g: Bdd, vs: VarSet) -> Result<Bdd> {
        self.app_quant(op, f, g, vs, true)
    }

    /// Fused `∀ vars. (f op g)` — BuDDy's `bdd_appall`.
    pub fn app_forall(&mut self, op: Op, f: Bdd, g: Bdd, vs: VarSet) -> Result<Bdd> {
        self.app_quant(op, f, g, vs, false)
    }

    fn app_quant(&mut self, op: Op, f: Bdd, g: Bdd, vs: VarSet, is_exists: bool) -> Result<Bdd> {
        // When both operands are below every quantified variable, this is a
        // plain apply.
        let data = &self.varsets[vs.0 as usize];
        let top = self.level(f).min(self.level(g));
        if data.vars.is_empty() || top > data.max {
            return self.apply(op, f, g);
        }
        if f.is_const() && g.is_const() {
            return Ok(if op.eval(f.is_true(), g.is_true()) {
                Bdd::TRUE
            } else {
                Bdd::FALSE
            });
        }
        let opc = op_discriminant(op);
        let code = if is_exists {
            OpCode::AppExists(opc)
        } else {
            OpCode::AppForall(opc)
        };
        self.budget_check()?;
        self.count_op(code.kind());
        if let Some(r) = self.cache.get(code, f.0, g.0, vs.0) {
            return Ok(Bdd(r));
        }
        self.depth_enter();
        let descended = self.app_quant_descend(op, f, g, vs, is_exists, top);
        self.depth_exit();
        let r = descended?;
        self.cache.put(code, f.0, g.0, vs.0, r.0);
        Ok(r)
    }

    fn app_quant_descend(
        &mut self,
        op: Op,
        f: Bdd,
        g: Bdd,
        vs: VarSet,
        is_exists: bool,
        top: u32,
    ) -> Result<Bdd> {
        let (lf, lg) = (self.level(f), self.level(g));
        let (f0, f1) = if lf == top { self.cofactors(f) } else { (f, f) };
        let (g0, g1) = if lg == top { self.cofactors(g) } else { (g, g) };
        let low = self.app_quant(op, f0, g0, vs, is_exists)?;
        let high = self.app_quant(op, f1, g1, vs, is_exists)?;
        let in_set = self.varsets[vs.0 as usize].vars.binary_search(&top).is_ok();
        if in_set {
            if is_exists {
                self.or(low, high)
            } else {
                self.and(low, high)
            }
        } else {
            self.mk(top, low, high)
        }
    }
}

#[inline]
fn op_discriminant(op: Op) -> u8 {
    match op {
        Op::And => 0,
        Op::Or => 1,
        Op::Xor => 2,
        Op::Nand => 3,
        Op::Nor => 4,
        Op::Imp => 5,
        Op::Biimp => 6,
        Op::Diff => 7,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (BddManager, Vec<Var>) {
        let mut m = BddManager::new();
        let vars = (0..4).map(|_| m.new_var()).collect();
        (m, vars)
    }

    #[test]
    fn varset_interning_dedupes_and_sorts() {
        let (mut m, v) = setup();
        let a = m.varset(&[v[2], v[0], v[2]]);
        let b = m.varset(&[v[0], v[2]]);
        assert_eq!(a, b);
        assert_eq!(m.varset_vars(a), &[v[0], v[2]]);
    }

    #[test]
    fn exists_drops_variable() {
        let (mut m, v) = setup();
        let x = m.var(v[0]).unwrap();
        let y = m.var(v[1]).unwrap();
        let f = m.and(x, y).unwrap();
        let vs = m.varset(&[v[0]]);
        let e = m.exists(f, vs).unwrap();
        // ∃x (x ∧ y) = y
        assert_eq!(e, y);
    }

    #[test]
    fn forall_of_conjunction() {
        let (mut m, v) = setup();
        let x = m.var(v[0]).unwrap();
        let y = m.var(v[1]).unwrap();
        let f = m.and(x, y).unwrap();
        let vs = m.varset(&[v[0]]);
        // ∀x (x ∧ y) = false (the x=0 branch kills it)
        assert_eq!(m.forall(f, vs).unwrap(), Bdd::FALSE);
        let g = m.or(x, y).unwrap();
        // ∀x (x ∨ y) = y
        assert_eq!(m.forall(g, vs).unwrap(), y);
    }

    #[test]
    fn quantifying_absent_variable_is_identity() {
        let (mut m, v) = setup();
        let y = m.var(v[1]).unwrap();
        let vs = m.varset(&[v[0], v[3]]);
        assert_eq!(m.exists(y, vs).unwrap(), y);
        assert_eq!(m.forall(y, vs).unwrap(), y);
    }

    #[test]
    fn exists_and_forall_are_dual() {
        let (mut m, v) = setup();
        let x = m.var(v[0]).unwrap();
        let y = m.var(v[1]).unwrap();
        let z = m.var(v[2]).unwrap();
        let xy = m.xor(x, y).unwrap();
        let f = m.or(xy, z).unwrap();
        let vs = m.varset(&[v[0], v[1]]);
        // ∀x̄ f == ¬∃x̄ ¬f
        let lhs = m.forall(f, vs).unwrap();
        let nf = m.not(f).unwrap();
        let e = m.exists(nf, vs).unwrap();
        let rhs = m.not(e).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn app_exists_matches_unfused() {
        let (mut m, v) = setup();
        let x = m.var(v[0]).unwrap();
        let y = m.var(v[1]).unwrap();
        let z = m.var(v[2]).unwrap();
        let f = m.biimp(x, z).unwrap();
        let g = m.xor(y, z).unwrap();
        let vs = m.varset(&[v[2]]);
        for op in [Op::And, Op::Or, Op::Xor, Op::Imp] {
            let fused = m.app_exists(op, f, g, vs).unwrap();
            let applied = m.apply(op, f, g).unwrap();
            let unfused = m.exists(applied, vs).unwrap();
            assert_eq!(fused, unfused, "op {op:?}");
        }
    }

    #[test]
    fn app_forall_matches_unfused() {
        let (mut m, v) = setup();
        let x = m.var(v[0]).unwrap();
        let y = m.var(v[1]).unwrap();
        let z = m.var(v[3]).unwrap();
        let f = m.or(x, z).unwrap();
        let g = m.imp(z, y).unwrap();
        let vs = m.varset(&[v[3]]);
        for op in [Op::And, Op::Or, Op::Biimp, Op::Diff] {
            let fused = m.app_forall(op, f, g, vs).unwrap();
            let applied = m.apply(op, f, g).unwrap();
            let unfused = m.forall(applied, vs).unwrap();
            assert_eq!(fused, unfused, "op {op:?}");
        }
    }

    #[test]
    fn app_quant_with_empty_varset_is_apply() {
        let (mut m, v) = setup();
        let x = m.var(v[0]).unwrap();
        let y = m.var(v[1]).unwrap();
        let vs = m.varset(&[]);
        let fused = m.app_exists(Op::And, x, y, vs).unwrap();
        let plain = m.and(x, y).unwrap();
        assert_eq!(fused, plain);
    }

    #[test]
    fn quantifier_pullup_identity_rule3() {
        // Equation 3 of the paper: ∃x φ1 ∨ ∃x φ2 ⇔ ∃x (φ1 ∨ φ2).
        let (mut m, v) = setup();
        let x = m.var(v[2]).unwrap();
        let a = m.var(v[0]).unwrap();
        let b = m.var(v[1]).unwrap();
        let phi1 = m.and(a, x).unwrap();
        let nx = m.not(x).unwrap();
        let phi2 = m.and(b, nx).unwrap();
        let vs = m.varset(&[v[2]]);
        let lhs = {
            let e1 = m.exists(phi1, vs).unwrap();
            let e2 = m.exists(phi2, vs).unwrap();
            m.or(e1, e2).unwrap()
        };
        let rhs = m.app_exists(Op::Or, phi1, phi2, vs).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn quantifier_pushdown_identity_rule4() {
        // Equation 4: ∀x φ1 ∧ ∀x φ2 ⇔ ∀x (φ1 ∧ φ2).
        let (mut m, v) = setup();
        let x = m.var(v[2]).unwrap();
        let a = m.var(v[0]).unwrap();
        let b = m.var(v[1]).unwrap();
        let phi1 = m.or(a, x).unwrap();
        let nx = m.not(x).unwrap();
        let phi2 = m.or(b, nx).unwrap();
        let vs = m.varset(&[v[2]]);
        let lhs = {
            let a1 = m.forall(phi1, vs).unwrap();
            let a2 = m.forall(phi2, vs).unwrap();
            m.and(a1, a2).unwrap()
        };
        let rhs = m.app_forall(Op::And, phi1, phi2, vs).unwrap();
        assert_eq!(lhs, rhs);
    }
}
