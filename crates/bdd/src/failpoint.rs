//! Deterministic fault injection for resilience testing.
//!
//! A *failpoint* is a named site in the engine or the checker where a fault
//! can be injected at runtime — no compile-time feature, no rebuild. The
//! registry is process-global and **off by default**: the only cost an
//! unconfigured production run pays is one relaxed atomic load per probe
//! ([`enabled`]), which is free next to the hash-consing work around it.
//!
//! Decisions are *stateless and keyed*: whether site `s` fires on its
//! `k`-th opportunity is a pure function of `(seed, s, k)` through the
//! SplitMix64 finalizer — the same mixer the workload generators use, so
//! the whole workspace shares one PRNG pedigree. Statelessness is the
//! point: the decision does not depend on thread interleaving or on how
//! many *other* sites probed in between, so a fault profile reproduces
//! bit-for-bit across serial and parallel runs, and a test can aim a fault
//! at exactly one parallel lane by keying on the lane index.
//!
//! Sites (see [`SITES`]): `index-build`, `snapshot-decode`, `lane-spawn`,
//! `apply`, `sql-fallback`, plus the persistent-index-store write path
//! (`segment-write`, `journal-append`, `manifest-write`). The CLI exposes
//! the registry as `relcheck run --fail-spec 'site=p[,site=p...]'
//! --fail-seed N`.
//!
//! Probes at `Result` sites return [`crate::BddError::FaultInjected`];
//! the `lane-spawn` site is probed by the parallel engine, which responds
//! by panicking inside the lane to exercise panic isolation. The store's
//! write-path sites simulate a kill -9 mid-syscall: the probing code
//! deliberately leaves a *torn* file (a partial write at the final path)
//! before erroring, so crash recovery is exercised against exactly the
//! artifacts a real crash would leave.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Failpoint site: logical-index construction (`LogicalDatabase::build_index`).
pub const INDEX_BUILD: &str = "index-build";
/// Failpoint site: importing an index snapshot into a worker manager.
pub const SNAPSHOT_DECODE: &str = "snapshot-decode";
/// Failpoint site: parallel lane startup — fires as a *panic* in the lane.
pub const LANE_SPAWN: &str = "lane-spawn";
/// Failpoint site: the BDD recursion budget probe (apply/ite/quantify).
pub const APPLY: &str = "apply";
/// Failpoint site: entry to the SQL fallback evaluator.
pub const SQL_FALLBACK: &str = "sql-fallback";
/// Failpoint site: writing an index segment file in the persistent store.
/// Fires as a torn write: half the bytes land at the final path.
pub const SEGMENT_WRITE: &str = "segment-write";
/// Failpoint site: appending a delta record to a tuple journal. Fires as a
/// torn append: a partial record lands at the journal tail.
pub const JOURNAL_APPEND: &str = "journal-append";
/// Failpoint site: committing the store manifest. Fires as a torn write at
/// the final manifest path, bypassing the write-temp/rename protocol.
pub const MANIFEST_WRITE: &str = "manifest-write";

/// Every site name the registry accepts, in catalog order.
pub const SITES: [&str; 8] = [
    INDEX_BUILD,
    SNAPSHOT_DECODE,
    LANE_SPAWN,
    APPLY,
    SQL_FALLBACK,
    SEGMENT_WRITE,
    JOURNAL_APPEND,
    MANIFEST_WRITE,
];

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

#[derive(Debug, Clone)]
struct Registry {
    seed: u64,
    /// `(site, probability)`, indexed parallel to [`SITES`]; absent sites
    /// carry probability 0.
    probs: [f64; SITES.len()],
    /// How often each site has actually fired since configuration.
    fired: [u64; SITES.len()],
}

fn site_index(site: &str) -> Option<usize> {
    SITES.iter().position(|&s| s == site)
}

/// SplitMix64 finalizer (Steele–Lea–Flood mixing constants, identical to
/// `datagen::rng`). Used as a keyed hash, not a sequential stream.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash an arbitrary string into a stable failpoint key — used to key
/// decisions on relation or constraint names.
pub fn key_str(s: &str) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    for chunk in s.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = mix(h ^ u64::from_le_bytes(word)).wrapping_add(chunk.len() as u64);
    }
    mix(h)
}

/// The pure decision function: does `site` fire on opportunity `key` under
/// `seed` with probability `p`? Exposed for tests; [`should_fail`] is the
/// probing entry point.
pub fn decide(seed: u64, site: &str, key: u64, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    let h = mix(mix(seed ^ key_str(site)) ^ key);
    // 53-bit uniform in [0,1), same construction as SplitMix64::gen_f64.
    let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    unit < p
}

/// Parse a `--fail-spec` string: comma-separated `site=probability` pairs,
/// e.g. `"lane-spawn=1"` or `"apply=0.01,sql-fallback=1"`. Site names must
/// come from [`SITES`]; probabilities must lie in `[0, 1]`.
pub fn parse_spec(spec: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (site, prob) = part
            .split_once('=')
            .ok_or_else(|| format!("fail-spec entry '{part}' is not of the form site=prob"))?;
        let site = site.trim();
        if site_index(site).is_none() {
            return Err(format!(
                "unknown failpoint site '{site}' (known: {})",
                SITES.join(", ")
            ));
        }
        let p: f64 = prob
            .trim()
            .parse()
            .map_err(|_| format!("fail-spec probability '{prob}' is not a number"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("fail-spec probability {p} outside [0, 1]"));
        }
        out.push((site.to_owned(), p));
    }
    if out.is_empty() {
        return Err("fail-spec configured no sites".to_owned());
    }
    Ok(out)
}

/// Arm the registry with a parsed profile and a seed. Replaces any previous
/// configuration and resets the fired counters.
pub fn configure(sites: &[(String, f64)], seed: u64) -> Result<(), String> {
    let mut probs = [0.0; SITES.len()];
    for (site, p) in sites {
        let i = site_index(site).ok_or_else(|| format!("unknown failpoint site '{site}'"))?;
        if !(0.0..=1.0).contains(p) {
            return Err(format!("fail-spec probability {p} outside [0, 1]"));
        }
        probs[i] = *p;
    }
    *REGISTRY.lock().unwrap() = Some(Registry {
        seed,
        probs,
        fired: [0; SITES.len()],
    });
    ENABLED.store(true, Ordering::SeqCst);
    Ok(())
}

/// Convenience: parse a `--fail-spec` string and arm the registry.
pub fn configure_spec(spec: &str, seed: u64) -> Result<(), String> {
    configure(&parse_spec(spec)?, seed)
}

/// Disarm the registry entirely. Fired counters are discarded.
pub fn clear() {
    ENABLED.store(false, Ordering::SeqCst);
    *REGISTRY.lock().unwrap() = None;
}

/// Is any fault profile armed? One relaxed atomic load — this is the hot
/// path's entire cost when fault injection is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Probe `site` with deterministic `key`. Returns `true` (and bumps the
/// site's fired counter) iff the armed profile fires here. Always `false`
/// when the registry is disarmed.
pub fn should_fail(site: &'static str, key: u64) -> bool {
    if !enabled() {
        return false;
    }
    let mut guard = REGISTRY.lock().unwrap();
    let Some(reg) = guard.as_mut() else {
        return false;
    };
    let Some(i) = site_index(site) else {
        return false;
    };
    if decide(reg.seed, site, key, reg.probs[i]) {
        reg.fired[i] += 1;
        true
    } else {
        false
    }
}

/// Snapshot of `(site, fired count)` for every catalog site under the
/// current configuration. Empty when disarmed. Feeds the telemetry
/// `degradation` section so CI can assert each site actually fired.
pub fn fired_counts() -> Vec<(&'static str, u64)> {
    let guard = REGISTRY.lock().unwrap();
    match guard.as_ref() {
        Some(reg) => SITES
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, reg.fired[i]))
            .collect(),
        None => Vec::new(),
    }
}

/// The armed seed, if any — recorded into emitted metrics for replay.
pub fn armed_seed() -> Option<u64> {
    REGISTRY.lock().unwrap().as_ref().map(|r| r.seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; tests that arm it must not overlap.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disarmed_registry_never_fires() {
        let _g = locked();
        clear();
        assert!(!enabled());
        for site in SITES {
            assert!(!should_fail(site, 0));
        }
        assert!(fired_counts().is_empty());
        assert_eq!(armed_seed(), None);
    }

    #[test]
    fn decisions_are_deterministic_and_keyed() {
        // Pure function: same inputs, same answer; different keys decorrelate.
        assert_eq!(decide(7, APPLY, 3, 0.5), decide(7, APPLY, 3, 0.5));
        assert!(decide(7, APPLY, 3, 1.0));
        assert!(!decide(7, APPLY, 3, 0.0));
        let hits = (0..10_000u64)
            .filter(|&k| decide(7, APPLY, k, 0.25))
            .count();
        assert!((2000..3000).contains(&hits), "p=0.25 fired {hits}/10000");
        // Site name participates in the hash.
        let a: Vec<bool> = (0..64).map(|k| decide(7, APPLY, k, 0.5)).collect();
        let b: Vec<bool> = (0..64).map(|k| decide(7, SQL_FALLBACK, k, 0.5)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn armed_registry_fires_and_counts() {
        let _g = locked();
        configure(&[(LANE_SPAWN.to_owned(), 1.0)], 42).unwrap();
        assert!(enabled());
        assert_eq!(armed_seed(), Some(42));
        assert!(should_fail(LANE_SPAWN, 1));
        assert!(should_fail(LANE_SPAWN, 2));
        assert!(!should_fail(APPLY, 1), "unlisted sites stay at p=0");
        let counts = fired_counts();
        let lane = counts.iter().find(|(s, _)| *s == LANE_SPAWN).unwrap();
        assert_eq!(lane.1, 2);
        clear();
        assert!(!should_fail(LANE_SPAWN, 3));
    }

    #[test]
    fn spec_parsing_round_trip_and_rejects() {
        let spec = parse_spec("lane-spawn=1, apply=0.25").unwrap();
        assert_eq!(spec.len(), 2);
        assert_eq!(spec[0], (LANE_SPAWN.to_owned(), 1.0));
        assert_eq!(spec[1], (APPLY.to_owned(), 0.25));
        assert!(parse_spec("bogus-site=1").is_err());
        assert!(parse_spec("apply=2.0").is_err());
        assert!(parse_spec("apply").is_err());
        assert!(parse_spec("apply=zzz").is_err());
        assert!(parse_spec("").is_err());
    }

    #[test]
    fn key_str_is_stable_and_spreads() {
        assert_eq!(key_str("CUSTOMERS"), key_str("CUSTOMERS"));
        assert_ne!(key_str("CUSTOMERS"), key_str("ORDERS"));
        assert_ne!(key_str("a"), key_str("aa"));
        // Padding must not collide a short name with its NUL-extension.
        assert_ne!(key_str("ab"), key_str("ab\0"));
    }
}
