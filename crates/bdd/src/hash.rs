//! A fast, non-cryptographic hasher for the unique table and caches.
//!
//! The unique table is the hottest structure in a BDD package: every `mk`
//! call probes it. SipHash (std's default) is measurably slow for the small
//! fixed-size keys we hash, so we use an FxHash-style multiply-xor hasher —
//! the same algorithm rustc uses for its internal tables. HashDoS is not a
//! concern: keys are internally generated node triples, not attacker input.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from FxHash (64-bit variant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style streaming hasher over machine words.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`], usable with `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Mix three 32-bit words into a single well-distributed 64-bit value.
///
/// Used for direct-mapped cache indexing where we want a one-shot hash
/// without constructing a `Hasher`.
#[inline]
pub fn mix3(a: u32, b: u32, c: u32) -> u64 {
    let mut h = (a as u64).wrapping_mul(SEED);
    h = (h.rotate_left(5) ^ b as u64).wrapping_mul(SEED);
    h = (h.rotate_left(5) ^ c as u64).wrapping_mul(SEED);
    // Final avalanche so that low bits (used for cache indexing) depend on
    // all inputs.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn hasher_is_deterministic() {
        let bh = FxBuildHasher::default();
        let h1 = bh.hash_one((3u32, 4u32, 5u32));
        let h2 = bh.hash_one((3u32, 4u32, 5u32));
        assert_eq!(h1, h2);
    }

    #[test]
    fn hasher_distinguishes_field_order() {
        let bh = FxBuildHasher::default();
        assert_ne!(bh.hash_one((1u32, 2u32)), bh.hash_one((2u32, 1u32)));
    }

    #[test]
    fn mix3_spreads_low_bits() {
        // Sequential inputs must not collide in the low bits that index the
        // direct-mapped cache.
        let mask = (1u64 << 16) - 1;
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u32 {
            seen.insert(mix3(i, 0, 0) & mask);
        }
        // With a good mix, nearly all 1000 values land in distinct slots.
        assert!(seen.len() > 900, "only {} distinct slots", seen.len());
    }

    #[test]
    fn mix3_differs_on_each_argument() {
        assert_ne!(mix3(1, 2, 3), mix3(3, 2, 1));
        assert_ne!(mix3(1, 2, 3), mix3(1, 3, 2));
        assert_ne!(mix3(0, 0, 1), mix3(0, 1, 0));
    }

    #[test]
    fn write_bytes_handles_partial_chunks() {
        let bh = FxBuildHasher::default();
        // Strings of different lengths sharing a prefix must hash apart.
        assert_ne!(bh.hash_one("abcdefghi"), bh.hash_one("abcdefgh"));
    }
}
