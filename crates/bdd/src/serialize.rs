//! Persistence and visualization for BDDs.
//!
//! Logical indices are long-lived (the whole point of the paper is to keep
//! them around between validation passes), so the engine can [`export`] a
//! function into a compact, manager-independent form and [`import`] it into
//! another manager — e.g. to persist an index across process restarts, or
//! to move it into a manager with a different variable layout via the
//! `var_map` hook. [`BddManager::to_dot`] renders a function in Graphviz
//! DOT for debugging and teaching.
//!
//! [`export`]: BddManager::export
//! [`import`]: BddManager::import

use crate::error::{BddError, Result};
use crate::fdd::{bits_for, DomainId};
use crate::hash::FxHashMap;
use crate::manager::{Bdd, BddManager, Var};

/// Why a byte-level snapshot decode was rejected. Decoding never panics on
/// hostile input — truncation, bit flips, and structural lies all surface
/// as a typed error naming the offending byte offset, so callers (snapshot
/// transfer between parallel lanes, index files read from disk) can report
/// the corruption and degrade instead of crashing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset at (or just past) which the input stopped making sense.
    pub offset: usize,
    /// Human-readable description of the structural violation.
    pub reason: &'static str,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "snapshot decode failed at byte {}: {}",
            self.offset, self.reason
        )
    }
}

impl std::error::Error for DecodeError {}

type DecodeResult<T> = std::result::Result<T, DecodeError>;

fn decode_err<T>(offset: usize, reason: &'static str) -> DecodeResult<T> {
    Err(DecodeError { offset, reason })
}

/// CRC-32 (IEEE 802.3, the `cksum`/zlib polynomial), table-driven. The
/// persistent index store checksums every segment, journal record, and
/// manifest with this; a hand-rolled implementation keeps the workspace
/// free of external crates.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Byte length of the fixed [`encode_frame`] header that precedes the meta
/// and payload sections: magic (4) + version (4) + meta length (4) +
/// payload length (8) + CRC-32 (4).
pub const FRAME_HEADER_LEN: usize = 24;

/// Wrap `meta ++ payload` in a checksummed, versioned frame:
/// `magic(4) | version(4, LE) | meta_len(4, LE) | payload_len(8, LE) |
/// crc32(meta ++ payload)(4, LE) | meta | payload`.
///
/// The persistent index store uses this for segment and manifest files:
/// `meta` holds small fixed headers (fingerprints, sequence numbers) that
/// must be readable without decoding the payload, and the CRC covers both
/// sections so a bit flip anywhere is detected by [`decode_frame`].
pub fn encode_frame(magic: [u8; 4], version: u32, meta: &[u8], payload: &[u8]) -> Vec<u8> {
    let mut crc_input = Vec::with_capacity(meta.len() + payload.len());
    crc_input.extend_from_slice(meta);
    crc_input.extend_from_slice(payload);
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + crc_input.len());
    out.extend_from_slice(&magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(meta.len() as u32).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&crc_input).to_le_bytes());
    out.extend_from_slice(&crc_input);
    out
}

/// Inverse of [`encode_frame`]: validate magic, version, section lengths,
/// and the CRC, returning `(meta, payload)` slices into `bytes`. Every
/// failure is a typed [`DecodeError`] with the offset where the input
/// stopped making sense — truncation, bit flips, wrong file type, and
/// future format versions are all distinguished, never panicked on.
pub fn decode_frame(bytes: &[u8], magic: [u8; 4], version: u32) -> DecodeResult<(&[u8], &[u8])> {
    if bytes.len() < FRAME_HEADER_LEN {
        return decode_err(bytes.len(), "frame header truncated");
    }
    if bytes[0..4] != magic {
        return decode_err(0, "bad magic (not this file type)");
    }
    let got_version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if got_version != version {
        return decode_err(4, "unsupported format version");
    }
    let meta_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let crc = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
    let body_len = (meta_len as u64).saturating_add(payload_len);
    if bytes.len() as u64 - FRAME_HEADER_LEN as u64 != body_len {
        return decode_err(bytes.len(), "frame body length disagrees with the header");
    }
    let body = &bytes[FRAME_HEADER_LEN..];
    if crc32(body) != crc {
        return decode_err(20, "frame checksum mismatch");
    }
    Ok((&body[..meta_len], &body[meta_len..]))
}

/// A manager-independent BDD snapshot: nodes in bottom-up topological
/// order. Entry `i` describes node `i + 2`; references `0` and `1` are the
/// terminals, references `r ≥ 2` point at entry `r - 2`. The root is the
/// last entry (or a terminal for constant functions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportedBdd {
    /// `(variable, low-ref, high-ref)` triples, children before parents.
    pub nodes: Vec<(Var, u32, u32)>,
    /// The root reference (0 = false, 1 = true, `r ≥ 2` = node `r - 2`).
    pub root: u32,
}

impl ExportedBdd {
    /// Number of internal nodes in the snapshot.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for constant functions.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Serialize into a byte buffer (little-endian u32 triples after an
    /// 8-byte header) — handy for writing an index to disk without pulling
    /// in a serialization framework.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.nodes.len() * 12);
        out.extend_from_slice(&(self.nodes.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.root.to_le_bytes());
        for &(v, lo, hi) in &self.nodes {
            out.extend_from_slice(&v.to_le_bytes());
            out.extend_from_slice(&lo.to_le_bytes());
            out.extend_from_slice(&hi.to_le_bytes());
        }
        out
    }

    /// Inverse of [`ExportedBdd::to_bytes`]. Returns `None` on malformed
    /// input (wrong length, out-of-range references); [`ExportedBdd::decode`]
    /// reports *why* the input was rejected.
    pub fn from_bytes(bytes: &[u8]) -> Option<ExportedBdd> {
        Self::decode(bytes).ok()
    }

    /// Inverse of [`ExportedBdd::to_bytes`] with a typed rejection reason.
    /// Every structural invariant of the format is validated — node count
    /// vs payload length, children-precede-parents topology, root range —
    /// so arbitrary bytes can never panic or produce an unsound snapshot.
    pub fn decode(bytes: &[u8]) -> DecodeResult<ExportedBdd> {
        if bytes.len() < 8 {
            return decode_err(bytes.len(), "header truncated (need 8 bytes)");
        }
        let n = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let root = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        let expect = (n as u64) * 12 + 8;
        if bytes.len() as u64 != expect {
            return decode_err(bytes.len(), "payload length disagrees with node count");
        }
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let off = 8 + i * 12;
            let v = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
            let lo = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
            let hi = u32::from_le_bytes(bytes[off + 8..off + 12].try_into().unwrap());
            // Children must precede parents.
            if (lo >= 2 && lo - 2 >= i as u32) || (hi >= 2 && hi - 2 >= i as u32) {
                return decode_err(off, "child reference at or after its parent");
            }
            nodes.push((v, lo, hi));
        }
        if root >= 2 && root - 2 >= n as u32 {
            return decode_err(4, "root reference outside the node table");
        }
        Ok(ExportedBdd { nodes, root })
    }
}

/// A manager-independent snapshot of a relation BDD *together with its
/// finite-domain layout*, so another manager — typically one owned by a
/// different worker thread — can rebuild both the domains and the function
/// without re-running tuple construction.
///
/// `blocks` lists the layout's domains in ascending source-variable order
/// (i.e. declaration order); `slots[i]` says which block the caller's `i`-th
/// domain became, so [`BddManager::import_relation`] can hand back domain
/// handles in the caller's original order. Everything here is plain owned
/// data (`Send + Sync`), which is what makes it a safe hand-off format
/// between per-worker BDD managers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportedRelation {
    /// The function, children before parents (see [`ExportedBdd`]).
    pub bdd: ExportedBdd,
    /// `(domain size, source variables MSB-first)` per block, ascending by
    /// source variable.
    pub blocks: Vec<(u64, Vec<Var>)>,
    /// For each input domain position, the index of its block in `blocks`.
    pub slots: Vec<usize>,
}

impl ExportedRelation {
    /// Serialize into a byte buffer: block table, slot table, then the
    /// [`ExportedBdd`] payload, all little-endian.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.blocks.len() as u32).to_le_bytes());
        for (size, vars) in &self.blocks {
            out.extend_from_slice(&size.to_le_bytes());
            out.extend_from_slice(&(vars.len() as u32).to_le_bytes());
            for &v in vars {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        for &s in &self.slots {
            out.extend_from_slice(&(s as u32).to_le_bytes());
        }
        out.extend_from_slice(&self.bdd.to_bytes());
        out
    }

    /// Inverse of [`ExportedRelation::to_bytes`]. Returns `None` on
    /// malformed input; [`ExportedRelation::decode`] reports *why*.
    pub fn from_bytes(bytes: &[u8]) -> Option<ExportedRelation> {
        Self::decode(bytes).ok()
    }

    /// Inverse of [`ExportedRelation::to_bytes`] with a typed rejection
    /// reason: truncated buffers, zero-sized domains, block widths that
    /// disagree with the domain size, non-ascending variables, or a slot
    /// table that is not a permutation of the blocks.
    pub fn decode(bytes: &[u8]) -> DecodeResult<ExportedRelation> {
        let mut off = 0usize;
        let take_u32 = |off: &mut usize| -> DecodeResult<u32> {
            match bytes.get(*off..*off + 4) {
                Some(w) => {
                    let v = u32::from_le_bytes(w.try_into().unwrap());
                    *off += 4;
                    Ok(v)
                }
                None => decode_err(*off, "buffer truncated inside a u32 field"),
            }
        };
        let take_u64 = |off: &mut usize| -> DecodeResult<u64> {
            match bytes.get(*off..*off + 8) {
                Some(w) => {
                    let v = u64::from_le_bytes(w.try_into().unwrap());
                    *off += 8;
                    Ok(v)
                }
                None => decode_err(*off, "buffer truncated inside a u64 field"),
            }
        };
        let nblocks = take_u32(&mut off)? as usize;
        let mut blocks = Vec::with_capacity(nblocks.min(1 << 16));
        let mut prev: Option<Var> = None;
        for _ in 0..nblocks {
            let size = take_u64(&mut off)?;
            if size == 0 {
                return decode_err(off - 8, "zero-sized domain block");
            }
            let nvars = take_u32(&mut off)? as usize;
            if nvars != bits_for(size) as usize {
                return decode_err(off - 4, "block width disagrees with domain size");
            }
            let mut vars = Vec::with_capacity(nvars);
            for _ in 0..nvars {
                let v = take_u32(&mut off)?;
                // The flattened variable sequence must ascend strictly —
                // that is what guarantees a monotone map on import.
                if prev.is_some_and(|p| p >= v) {
                    return decode_err(off - 4, "block variables not strictly ascending");
                }
                prev = Some(v);
                vars.push(v);
            }
            blocks.push((size, vars));
        }
        let mut slots = Vec::with_capacity(nblocks);
        let mut seen = vec![false; nblocks];
        for _ in 0..nblocks {
            let s = take_u32(&mut off)? as usize;
            if s >= nblocks || seen[s] {
                return decode_err(off - 4, "slot table is not a permutation of the blocks");
            }
            seen[s] = true;
            slots.push(s);
        }
        let bdd = ExportedBdd::decode(&bytes[off..]).map_err(|e| DecodeError {
            offset: off + e.offset,
            reason: e.reason,
        })?;
        Ok(ExportedRelation { bdd, blocks, slots })
    }
}

impl BddManager {
    /// Snapshot the function rooted at `f` into a manager-independent form.
    pub fn export(&self, f: Bdd) -> ExportedBdd {
        if f.is_const() {
            return ExportedBdd {
                nodes: vec![],
                root: f.index(),
            };
        }
        // Post-order traversal so children are emitted before parents.
        let mut refs: FxHashMap<u32, u32> = FxHashMap::default();
        refs.insert(0, 0);
        refs.insert(1, 1);
        let mut nodes = Vec::new();
        let mut stack = vec![(f.index(), false)];
        while let Some((idx, expanded)) = stack.pop() {
            if refs.contains_key(&idx) {
                continue;
            }
            let n = self.node(Bdd(idx));
            if expanded {
                let lo = refs[&n.low];
                let hi = refs[&n.high];
                refs.insert(idx, nodes.len() as u32 + 2);
                nodes.push((n.level, lo, hi));
            } else {
                stack.push((idx, true));
                stack.push((n.high, false));
                stack.push((n.low, false));
            }
        }
        ExportedBdd {
            nodes,
            root: refs[&f.index()],
        }
    }

    /// Rebuild an exported function in this manager. `var_map` translates
    /// the snapshot's variables into this manager's (identity is typical;
    /// any monotone map works directly, non-monotone maps are rejected by
    /// the ordering invariant).
    ///
    /// # Panics
    /// Debug-panics if `var_map` breaks the variable order (children at or
    /// above parents).
    pub fn import(&mut self, e: &ExportedBdd, var_map: impl Fn(Var) -> Var) -> Result<Bdd> {
        let mut built: Vec<Bdd> = Vec::with_capacity(e.nodes.len());
        let resolve = |r: u32, built: &[Bdd]| -> Bdd {
            match r {
                0 => Bdd::FALSE,
                1 => Bdd::TRUE,
                _ => built[(r - 2) as usize],
            }
        };
        for &(v, lo, hi) in &e.nodes {
            let low = resolve(lo, &built);
            let high = resolve(hi, &built);
            let node = self.mk(var_map(v), low, high)?;
            built.push(node);
        }
        Ok(resolve(e.root, &built))
    }

    /// Snapshot a relation BDD together with its finite-domain layout.
    /// `domains` is the relation's layout in schema order; the snapshot
    /// records enough metadata for [`BddManager::import_relation`] to
    /// re-declare equivalent domains in a *fresh* manager and rebuild the
    /// function there.
    pub fn export_relation(&self, f: Bdd, domains: &[DomainId]) -> Result<ExportedRelation> {
        // Order blocks by their position in the variable order (declaration
        // order); re-declaring them in that same order in the target manager
        // makes the variable map monotone, which `import` requires.
        let mut order: Vec<usize> = (0..domains.len()).collect();
        order.sort_by_key(|&i| self.domain_info(domains[i]).first_var);
        for w in order.windows(2) {
            if domains[w[0]] == domains[w[1]] {
                return Err(BddError::DuplicateDomain);
            }
        }
        let blocks: Vec<(u64, Vec<Var>)> = order
            .iter()
            .map(|&i| {
                let d = domains[i];
                (self.domain_info(d).size, self.domain_vars(d).to_vec())
            })
            .collect();
        let mut slots = vec![0usize; domains.len()];
        for (block_idx, &input_pos) in order.iter().enumerate() {
            slots[input_pos] = block_idx;
        }
        Ok(ExportedRelation {
            bdd: self.export(f),
            blocks,
            slots,
        })
    }

    /// Rebuild an exported relation in this manager: declare one fresh
    /// domain per block (appended after any existing variables) and import
    /// the function with the induced variable map. Returns the new domain
    /// handles in the *caller's original schema order* plus the rebuilt
    /// root.
    ///
    /// Fails with [`BddError::UnmappedVariable`] if the snapshot's function
    /// mentions a variable outside the exported layout.
    pub fn import_relation(&mut self, e: &ExportedRelation) -> Result<(Vec<DomainId>, Bdd)> {
        let mut var_map: FxHashMap<Var, Var> = FxHashMap::default();
        let mut new_doms = Vec::with_capacity(e.blocks.len());
        for (size, src_vars) in &e.blocks {
            let d = self.add_domain(*size)?;
            let dst_vars = self.domain_vars(d);
            if dst_vars.len() != src_vars.len() {
                return Err(BddError::DomainWidthMismatch {
                    from_bits: src_vars.len() as u32,
                    to_bits: dst_vars.len() as u32,
                });
            }
            for (&s, &t) in src_vars.iter().zip(dst_vars) {
                var_map.insert(s, t);
            }
            new_doms.push(d);
        }
        // Validate coverage up front: `import`'s var_map hook cannot fail.
        for &(v, _, _) in &e.bdd.nodes {
            if !var_map.contains_key(&v) {
                return Err(BddError::UnmappedVariable { var: v });
            }
        }
        let root = self.import(&e.bdd, |v| var_map[&v])?;
        let doms_in_schema_order = e.slots.iter().map(|&s| new_doms[s]).collect();
        Ok((doms_in_schema_order, root))
    }

    /// Render the function rooted at `f` as a Graphviz DOT digraph. Solid
    /// edges are `high` (variable = 1), dashed are `low`. The optional
    /// labeler maps variables to display names (e.g. `city.bit3`).
    pub fn to_dot(&self, f: Bdd, label: impl Fn(Var) -> String) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        out.push_str("  f [label=\"FALSE\", shape=box];\n");
        out.push_str("  t [label=\"TRUE\", shape=box];\n");
        let name = |idx: u32| -> String {
            match idx {
                0 => "f".to_owned(),
                1 => "t".to_owned(),
                _ => format!("n{idx}"),
            }
        };
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.index()];
        while let Some(idx) = stack.pop() {
            if idx <= 1 || !seen.insert(idx) {
                continue;
            }
            let n = self.node(Bdd(idx));
            let _ = writeln!(out, "  n{idx} [label=\"{}\"];", label(n.level));
            let _ = writeln!(out, "  n{idx} -> {} [style=dashed];", name(n.low));
            let _ = writeln!(out, "  n{idx} -> {};", name(n.high));
            stack.push(n.low);
            stack.push(n.high);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_relation(m: &mut BddManager) -> (Vec<crate::fdd::DomainId>, Bdd) {
        let d1 = m.add_domain(9).unwrap();
        let d2 = m.add_domain(5).unwrap();
        let rows: Vec<Vec<u64>> = (0..20u64).map(|i| vec![(i * 7) % 9, (i * 3) % 5]).collect();
        let r = m.relation_from_rows(&[d1, d2], &rows).unwrap();
        (vec![d1, d2], r)
    }

    #[test]
    fn export_import_round_trip_same_manager() {
        let mut m = BddManager::new();
        let (_, r) = sample_relation(&mut m);
        let e = m.export(r);
        assert_eq!(e.len(), m.size(r));
        let back = m.import(&e, |v| v).unwrap();
        assert_eq!(back, r, "canonicity: identical function, identical node");
    }

    #[test]
    fn export_import_across_managers() {
        let mut m1 = BddManager::new();
        let (doms, r) = sample_relation(&mut m1);
        let e = m1.export(r);
        let mut m2 = BddManager::new();
        let d1 = m2.add_domain(9).unwrap();
        let d2 = m2.add_domain(5).unwrap();
        let back = m2.import(&e, |v| v).unwrap();
        // Same tuples decodable in the new manager.
        let mut rows1 = m1.rows(r, &doms).unwrap();
        let mut rows2 = m2.rows(back, &[d1, d2]).unwrap();
        rows1.sort();
        rows2.sort();
        assert_eq!(rows1, rows2);
    }

    #[test]
    fn import_with_variable_shift() {
        let mut m1 = BddManager::new();
        let (_, r) = sample_relation(&mut m1);
        let e = m1.export(r);
        let mut m2 = BddManager::new();
        // Burn a leading block, then import shifted past it.
        let _pad = m2.add_domain(16).unwrap(); // 4 vars
        let d1 = m2.add_domain(9).unwrap();
        let d2 = m2.add_domain(5).unwrap();
        let back = m2.import(&e, |v| v + 4).unwrap();
        let count = m2.tuple_count(back, &[d1, d2]).unwrap();
        assert_eq!(count, 20.0);
    }

    #[test]
    fn constants_export_trivially() {
        let mut m = BddManager::new();
        for c in [Bdd::TRUE, Bdd::FALSE] {
            let e = m.export(c);
            assert!(e.is_empty());
            assert_eq!(m.import(&e, |v| v).unwrap(), c);
        }
    }

    #[test]
    fn byte_round_trip() {
        let mut m = BddManager::new();
        let (_, r) = sample_relation(&mut m);
        let e = m.export(r);
        let bytes = e.to_bytes();
        let decoded = ExportedBdd::from_bytes(&bytes).unwrap();
        assert_eq!(e, decoded);
    }

    #[test]
    fn from_bytes_rejects_malformed_input() {
        assert!(ExportedBdd::from_bytes(&[]).is_none());
        assert!(ExportedBdd::from_bytes(&[0; 7]).is_none());
        // Count says 1 node but no payload.
        let mut bad = Vec::new();
        bad.extend_from_slice(&1u32.to_le_bytes());
        bad.extend_from_slice(&2u32.to_le_bytes());
        assert!(ExportedBdd::from_bytes(&bad).is_none());
        // Forward reference (child at or after parent).
        let mut fwd = Vec::new();
        fwd.extend_from_slice(&1u32.to_le_bytes());
        fwd.extend_from_slice(&2u32.to_le_bytes());
        fwd.extend_from_slice(&0u32.to_le_bytes()); // var
        fwd.extend_from_slice(&2u32.to_le_bytes()); // low: self-reference
        fwd.extend_from_slice(&1u32.to_le_bytes());
        assert!(ExportedBdd::from_bytes(&fwd).is_none());
        // Root out of range.
        let mut bad_root = Vec::new();
        bad_root.extend_from_slice(&0u32.to_le_bytes());
        bad_root.extend_from_slice(&9u32.to_le_bytes());
        assert!(ExportedBdd::from_bytes(&bad_root).is_none());
    }

    #[test]
    fn relation_round_trip_into_fresh_manager() {
        let mut m1 = BddManager::new();
        let (doms, r) = sample_relation(&mut m1);
        let e = m1.export_relation(r, &doms).unwrap();
        // The target manager already has unrelated variables — the induced
        // var_map is a genuine shift, not the identity.
        let mut m2 = BddManager::new();
        let _pad = m2.add_domain(100).unwrap();
        let (doms2, r2) = m2.import_relation(&e).unwrap();
        let mut rows1 = m1.rows(r, &doms).unwrap();
        let mut rows2 = m2.rows(r2, &doms2).unwrap();
        rows1.sort();
        rows2.sort();
        assert_eq!(rows1, rows2);
        // Full-oracle check: membership agrees on every point of the
        // domain product, not just on the decoded rows.
        for a in 0..9u64 {
            for b in 0..5u64 {
                assert_eq!(
                    m1.contains(r, &doms, &[a, b]).unwrap(),
                    m2.contains(r2, &doms2, &[a, b]).unwrap(),
                    "tuple ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn relation_export_preserves_schema_order() {
        // Schema order ≠ declaration order: the layout lists the
        // later-declared domain first. The snapshot must hand back handles
        // in schema order regardless.
        let mut m1 = BddManager::new();
        let d1 = m1.add_domain(9).unwrap();
        let d2 = m1.add_domain(5).unwrap();
        let rows: Vec<Vec<u64>> = (0..15u64).map(|i| vec![(i * 2) % 5, (i * 7) % 9]).collect();
        // Layout [d2, d1]: column 0 lives in d2's block, column 1 in d1's.
        let r = m1.relation_from_rows(&[d2, d1], &rows).unwrap();
        let e = m1.export_relation(r, &[d2, d1]).unwrap();
        let mut m2 = BddManager::new();
        let (doms2, r2) = m2.import_relation(&e).unwrap();
        assert_eq!(m2.domain_info(doms2[0]).size, 5);
        assert_eq!(m2.domain_info(doms2[1]).size, 9);
        let mut rows1 = m1.rows(r, &[d2, d1]).unwrap();
        let mut rows2 = m2.rows(r2, &doms2).unwrap();
        rows1.sort();
        rows2.sort();
        assert_eq!(rows1, rows2);
    }

    #[test]
    fn relation_byte_round_trip() {
        let mut m = BddManager::new();
        let (doms, r) = sample_relation(&mut m);
        let e = m.export_relation(r, &doms).unwrap();
        let decoded = ExportedRelation::from_bytes(&e.to_bytes()).unwrap();
        assert_eq!(e, decoded);
        // And the decoded form is actually usable.
        let mut m2 = BddManager::new();
        let (doms2, r2) = m2.import_relation(&decoded).unwrap();
        assert_eq!(
            m2.tuple_count(r2, &doms2).unwrap(),
            m.tuple_count(r, &doms).unwrap()
        );
    }

    #[test]
    fn relation_from_bytes_rejects_malformed_input() {
        assert!(ExportedRelation::from_bytes(&[]).is_none());
        let mut m = BddManager::new();
        let (doms, r) = sample_relation(&mut m);
        let good = m.export_relation(r, &doms).unwrap();
        // Zero-sized domain.
        let mut e = good.clone();
        e.blocks[0].0 = 0;
        assert!(ExportedRelation::from_bytes(&e.to_bytes()).is_none());
        // Width disagrees with the size.
        let mut e = good.clone();
        e.blocks[0].0 = 1000;
        assert!(ExportedRelation::from_bytes(&e.to_bytes()).is_none());
        // Non-ascending variables (blocks swapped without renumbering).
        let mut e = good.clone();
        e.blocks.swap(0, 1);
        assert!(ExportedRelation::from_bytes(&e.to_bytes()).is_none());
        // Slot table not a permutation.
        let mut e = good.clone();
        e.slots[1] = e.slots[0];
        assert!(ExportedRelation::from_bytes(&e.to_bytes()).is_none());
        // Truncated payload.
        let bytes = good.to_bytes();
        assert!(ExportedRelation::from_bytes(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn relation_export_rejects_duplicate_domains() {
        let mut m = BddManager::new();
        let d = m.add_domain(4).unwrap();
        assert!(matches!(
            m.export_relation(Bdd::FALSE, &[d, d]),
            Err(BddError::DuplicateDomain)
        ));
    }

    #[test]
    fn relation_import_rejects_uncovered_variables() {
        let mut m1 = BddManager::new();
        let (doms, r) = sample_relation(&mut m1);
        // Export claiming the layout is only the first column: the function
        // still mentions the second block's variables.
        let e = m1.export_relation(r, &doms[..1]).unwrap();
        let mut m2 = BddManager::new();
        assert!(matches!(
            m2.import_relation(&e),
            Err(BddError::UnmappedVariable { .. })
        ));
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip_and_header_len() {
        let enc = encode_frame(*b"TEST", 7, b"meta", b"payload-bytes");
        assert_eq!(enc.len(), FRAME_HEADER_LEN + 4 + 13);
        let (meta, payload) = decode_frame(&enc, *b"TEST", 7).unwrap();
        assert_eq!(meta, b"meta");
        assert_eq!(payload, b"payload-bytes");
        // Empty sections are legal.
        let empty = encode_frame(*b"TEST", 7, b"", b"");
        let (m, p) = decode_frame(&empty, *b"TEST", 7).unwrap();
        assert!(m.is_empty() && p.is_empty());
    }

    #[test]
    fn frame_rejects_wrong_magic_and_version() {
        let enc = encode_frame(*b"TEST", 7, b"m", b"p");
        let e = decode_frame(&enc, *b"OTHR", 7).unwrap_err();
        assert_eq!(e.offset, 0);
        assert!(e.reason.contains("magic"));
        let e = decode_frame(&enc, *b"TEST", 8).unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.reason.contains("version"));
    }

    #[test]
    fn frame_rejects_every_truncation() {
        let enc = encode_frame(*b"TEST", 1, b"abc", b"defghij");
        for cut in 0..enc.len() {
            let e = decode_frame(&enc[..cut], *b"TEST", 1).unwrap_err();
            assert!(e.offset <= cut, "offset {} beyond cut {cut}", e.offset);
        }
    }

    #[test]
    fn frame_detects_every_single_bit_flip() {
        let enc = encode_frame(*b"TEST", 1, b"abc", b"defghij");
        for byte in 0..enc.len() {
            for bit in 0..8u8 {
                let mut bad = enc.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_frame(&bad, *b"TEST", 1).is_err(),
                    "undetected flip at byte {byte} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn frame_rejects_length_mismatch() {
        let mut enc = encode_frame(*b"TEST", 1, b"abc", b"defghij");
        enc.push(0); // trailing garbage
        let e = decode_frame(&enc, *b"TEST", 1).unwrap_err();
        assert!(e.reason.contains("length"));
    }

    #[test]
    fn dot_output_mentions_every_node() {
        let mut m = BddManager::new();
        let v0 = m.new_var();
        let v1 = m.new_var();
        let x = m.var(v0).unwrap();
        let y = m.var(v1).unwrap();
        let f = m.xor(x, y).unwrap();
        let dot = m.to_dot(f, |v| format!("x{v}"));
        assert!(dot.starts_with("digraph bdd {"));
        assert!(dot.contains("x0") && dot.contains("x1"));
        assert!(dot.contains("style=dashed"));
        // 3 internal nodes for xor over 2 vars.
        assert_eq!(dot.matches("[label=\"x").count(), 3);
    }
}
