//! Persistence and visualization for BDDs.
//!
//! Logical indices are long-lived (the whole point of the paper is to keep
//! them around between validation passes), so the engine can [`export`] a
//! function into a compact, manager-independent form and [`import`] it into
//! another manager — e.g. to persist an index across process restarts, or
//! to move it into a manager with a different variable layout via the
//! `var_map` hook. [`BddManager::to_dot`] renders a function in Graphviz
//! DOT for debugging and teaching.
//!
//! [`export`]: BddManager::export
//! [`import`]: BddManager::import

use crate::error::Result;
use crate::hash::FxHashMap;
use crate::manager::{Bdd, BddManager, Var};

/// A manager-independent BDD snapshot: nodes in bottom-up topological
/// order. Entry `i` describes node `i + 2`; references `0` and `1` are the
/// terminals, references `r ≥ 2` point at entry `r - 2`. The root is the
/// last entry (or a terminal for constant functions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportedBdd {
    /// `(variable, low-ref, high-ref)` triples, children before parents.
    pub nodes: Vec<(Var, u32, u32)>,
    /// The root reference (0 = false, 1 = true, `r ≥ 2` = node `r - 2`).
    pub root: u32,
}

impl ExportedBdd {
    /// Number of internal nodes in the snapshot.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for constant functions.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Serialize into a byte buffer (little-endian u32 triples after an
    /// 8-byte header) — handy for writing an index to disk without pulling
    /// in a serialization framework.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.nodes.len() * 12);
        out.extend_from_slice(&(self.nodes.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.root.to_le_bytes());
        for &(v, lo, hi) in &self.nodes {
            out.extend_from_slice(&v.to_le_bytes());
            out.extend_from_slice(&lo.to_le_bytes());
            out.extend_from_slice(&hi.to_le_bytes());
        }
        out
    }

    /// Inverse of [`ExportedBdd::to_bytes`]. Returns `None` on malformed
    /// input (wrong length, out-of-range references).
    pub fn from_bytes(bytes: &[u8]) -> Option<ExportedBdd> {
        if bytes.len() < 8 {
            return None;
        }
        let n = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
        let root = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
        if bytes.len() != 8 + n * 12 {
            return None;
        }
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let off = 8 + i * 12;
            let v = u32::from_le_bytes(bytes[off..off + 4].try_into().ok()?);
            let lo = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().ok()?);
            let hi = u32::from_le_bytes(bytes[off + 8..off + 12].try_into().ok()?);
            // Children must precede parents.
            if (lo >= 2 && lo - 2 >= i as u32) || (hi >= 2 && hi - 2 >= i as u32) {
                return None;
            }
            nodes.push((v, lo, hi));
        }
        if root >= 2 && root - 2 >= n as u32 {
            return None;
        }
        Some(ExportedBdd { nodes, root })
    }
}

impl BddManager {
    /// Snapshot the function rooted at `f` into a manager-independent form.
    pub fn export(&self, f: Bdd) -> ExportedBdd {
        if f.is_const() {
            return ExportedBdd { nodes: vec![], root: f.index() };
        }
        // Post-order traversal so children are emitted before parents.
        let mut refs: FxHashMap<u32, u32> = FxHashMap::default();
        refs.insert(0, 0);
        refs.insert(1, 1);
        let mut nodes = Vec::new();
        let mut stack = vec![(f.index(), false)];
        while let Some((idx, expanded)) = stack.pop() {
            if refs.contains_key(&idx) {
                continue;
            }
            let n = self.node(Bdd(idx));
            if expanded {
                let lo = refs[&n.low];
                let hi = refs[&n.high];
                refs.insert(idx, nodes.len() as u32 + 2);
                nodes.push((n.level, lo, hi));
            } else {
                stack.push((idx, true));
                stack.push((n.high, false));
                stack.push((n.low, false));
            }
        }
        ExportedBdd { nodes, root: refs[&f.index()] }
    }

    /// Rebuild an exported function in this manager. `var_map` translates
    /// the snapshot's variables into this manager's (identity is typical;
    /// any monotone map works directly, non-monotone maps are rejected by
    /// the ordering invariant).
    ///
    /// # Panics
    /// Debug-panics if `var_map` breaks the variable order (children at or
    /// above parents).
    pub fn import(&mut self, e: &ExportedBdd, var_map: impl Fn(Var) -> Var) -> Result<Bdd> {
        let mut built: Vec<Bdd> = Vec::with_capacity(e.nodes.len());
        let resolve = |r: u32, built: &[Bdd]| -> Bdd {
            match r {
                0 => Bdd::FALSE,
                1 => Bdd::TRUE,
                _ => built[(r - 2) as usize],
            }
        };
        for &(v, lo, hi) in &e.nodes {
            let low = resolve(lo, &built);
            let high = resolve(hi, &built);
            let node = self.mk(var_map(v), low, high)?;
            built.push(node);
        }
        Ok(resolve(e.root, &built))
    }

    /// Render the function rooted at `f` as a Graphviz DOT digraph. Solid
    /// edges are `high` (variable = 1), dashed are `low`. The optional
    /// labeler maps variables to display names (e.g. `city.bit3`).
    pub fn to_dot(&self, f: Bdd, label: impl Fn(Var) -> String) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        out.push_str("  f [label=\"FALSE\", shape=box];\n");
        out.push_str("  t [label=\"TRUE\", shape=box];\n");
        let name = |idx: u32| -> String {
            match idx {
                0 => "f".to_owned(),
                1 => "t".to_owned(),
                _ => format!("n{idx}"),
            }
        };
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.index()];
        while let Some(idx) = stack.pop() {
            if idx <= 1 || !seen.insert(idx) {
                continue;
            }
            let n = self.node(Bdd(idx));
            let _ = writeln!(out, "  n{idx} [label=\"{}\"];", label(n.level));
            let _ = writeln!(out, "  n{idx} -> {} [style=dashed];", name(n.low));
            let _ = writeln!(out, "  n{idx} -> {};", name(n.high));
            stack.push(n.low);
            stack.push(n.high);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_relation(m: &mut BddManager) -> (Vec<crate::fdd::DomainId>, Bdd) {
        let d1 = m.add_domain(9).unwrap();
        let d2 = m.add_domain(5).unwrap();
        let rows: Vec<Vec<u64>> =
            (0..20u64).map(|i| vec![(i * 7) % 9, (i * 3) % 5]).collect();
        let r = m.relation_from_rows(&[d1, d2], &rows).unwrap();
        (vec![d1, d2], r)
    }

    #[test]
    fn export_import_round_trip_same_manager() {
        let mut m = BddManager::new();
        let (_, r) = sample_relation(&mut m);
        let e = m.export(r);
        assert_eq!(e.len(), m.size(r));
        let back = m.import(&e, |v| v).unwrap();
        assert_eq!(back, r, "canonicity: identical function, identical node");
    }

    #[test]
    fn export_import_across_managers() {
        let mut m1 = BddManager::new();
        let (doms, r) = sample_relation(&mut m1);
        let e = m1.export(r);
        let mut m2 = BddManager::new();
        let d1 = m2.add_domain(9).unwrap();
        let d2 = m2.add_domain(5).unwrap();
        let back = m2.import(&e, |v| v).unwrap();
        // Same tuples decodable in the new manager.
        let mut rows1 = m1.rows(r, &doms).unwrap();
        let mut rows2 = m2.rows(back, &[d1, d2]).unwrap();
        rows1.sort();
        rows2.sort();
        assert_eq!(rows1, rows2);
    }

    #[test]
    fn import_with_variable_shift() {
        let mut m1 = BddManager::new();
        let (_, r) = sample_relation(&mut m1);
        let e = m1.export(r);
        let mut m2 = BddManager::new();
        // Burn a leading block, then import shifted past it.
        let _pad = m2.add_domain(16).unwrap(); // 4 vars
        let d1 = m2.add_domain(9).unwrap();
        let d2 = m2.add_domain(5).unwrap();
        let back = m2.import(&e, |v| v + 4).unwrap();
        let count = m2.tuple_count(back, &[d1, d2]).unwrap();
        assert_eq!(count, 20.0);
    }

    #[test]
    fn constants_export_trivially() {
        let mut m = BddManager::new();
        for c in [Bdd::TRUE, Bdd::FALSE] {
            let e = m.export(c);
            assert!(e.is_empty());
            assert_eq!(m.import(&e, |v| v).unwrap(), c);
        }
    }

    #[test]
    fn byte_round_trip() {
        let mut m = BddManager::new();
        let (_, r) = sample_relation(&mut m);
        let e = m.export(r);
        let bytes = e.to_bytes();
        let decoded = ExportedBdd::from_bytes(&bytes).unwrap();
        assert_eq!(e, decoded);
    }

    #[test]
    fn from_bytes_rejects_malformed_input() {
        assert!(ExportedBdd::from_bytes(&[]).is_none());
        assert!(ExportedBdd::from_bytes(&[0; 7]).is_none());
        // Count says 1 node but no payload.
        let mut bad = Vec::new();
        bad.extend_from_slice(&1u32.to_le_bytes());
        bad.extend_from_slice(&2u32.to_le_bytes());
        assert!(ExportedBdd::from_bytes(&bad).is_none());
        // Forward reference (child at or after parent).
        let mut fwd = Vec::new();
        fwd.extend_from_slice(&1u32.to_le_bytes());
        fwd.extend_from_slice(&2u32.to_le_bytes());
        fwd.extend_from_slice(&0u32.to_le_bytes()); // var
        fwd.extend_from_slice(&2u32.to_le_bytes()); // low: self-reference
        fwd.extend_from_slice(&1u32.to_le_bytes());
        assert!(ExportedBdd::from_bytes(&fwd).is_none());
        // Root out of range.
        let mut bad_root = Vec::new();
        bad_root.extend_from_slice(&0u32.to_le_bytes());
        bad_root.extend_from_slice(&9u32.to_le_bytes());
        assert!(ExportedBdd::from_bytes(&bad_root).is_none());
    }

    #[test]
    fn dot_output_mentions_every_node() {
        let mut m = BddManager::new();
        let v0 = m.new_var();
        let v1 = m.new_var();
        let x = m.var(v0).unwrap();
        let y = m.var(v1).unwrap();
        let f = m.xor(x, y).unwrap();
        let dot = m.to_dot(f, |v| format!("x{v}"));
        assert!(dot.starts_with("digraph bdd {"));
        assert!(dot.contains("x0") && dot.contains("x1"));
        assert!(dot.contains("style=dashed"));
        // 3 internal nodes for xor over 2 vars.
        assert_eq!(dot.matches("[label=\"x").count(), 3);
    }
}
