//! Variable renaming (`replace`) and restriction by a cube.
//!
//! `replace` renames variables according to an interned map — BuDDy's
//! `bdd_replace`. It is the cheap half of the paper's equi-join rewrite rule
//! (Section 4.2): `R1 ⋈ R2` becomes `BDD(R1) ∧ BDD(R2[x/y])`, and when the
//! renamed variables keep their relative order the rename is a single linear
//! pass over `BDD(R2)`. When a rename *would* cross the global order, we fall
//! back to an `ite`-based correction at the crossing node (BuDDy's
//! `bdd_correctify`), which stays correct at some extra cost.
//!
//! `restrict` cofactors a function by a conjunction of literals (a *cube*) —
//! how constants in constraints (`city = "Toronto"`) are pinned before
//! quantification.

use crate::cache::{OpCode, OpKind};
use crate::error::Result;
use crate::manager::{Bdd, BddManager, Var};

/// An interned variable-renaming map (total over all variables; identity by
/// default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplaceMap(pub(crate) u32);

impl BddManager {
    /// Intern a renaming given as `(from, to)` pairs. Unlisted variables map
    /// to themselves. Panics if a `from` variable is listed twice with
    /// different targets.
    pub fn replace_map(&mut self, pairs: &[(Var, Var)]) -> ReplaceMap {
        let mut map: Vec<Var> = (0..self.num_vars()).collect();
        for &(from, to) in pairs {
            assert!(
                map[from as usize] == from || map[from as usize] == to,
                "variable {from} renamed twice"
            );
            map[from as usize] = to;
        }
        if let Some(&id) = self.replace_lookup.get(&map) {
            return ReplaceMap(id);
        }
        let id = self.replace_maps.len() as u32;
        self.replace_maps.push(map.clone());
        self.replace_lookup.insert(map, id);
        ReplaceMap(id)
    }

    /// Rename the variables of `f` according to `map`.
    pub fn replace(&mut self, f: Bdd, map: ReplaceMap) -> Result<Bdd> {
        if f.is_const() {
            return Ok(f);
        }
        self.count_op(OpKind::Replace);
        if let Some(r) = self.cache.get(OpCode::Replace, f.0, map.0, 0) {
            return Ok(Bdd(r));
        }
        self.depth_enter();
        let descended = self.replace_descend(f, map);
        self.depth_exit();
        let r = descended?;
        self.cache.put(OpCode::Replace, f.0, map.0, 0, r.0);
        Ok(r)
    }

    fn replace_descend(&mut self, f: Bdd, map: ReplaceMap) -> Result<Bdd> {
        let n = self.node(f);
        let low = self.replace(Bdd(n.low), map)?;
        let high = self.replace(Bdd(n.high), map)?;
        let new_var = self.replace_maps[map.0 as usize][n.level as usize];
        // Fast path: the renamed variable still sits above both children, so
        // a plain mk preserves ordering. Otherwise correct with ite on the
        // literal, which handles arbitrary level crossings.
        if new_var < self.level(low) && new_var < self.level(high) {
            self.mk(new_var, low, high)
        } else {
            let x = self.var(new_var)?;
            self.ite(x, high, low)
        }
    }

    /// Restrict `f` by the partial assignment encoded in the cube `c` (a
    /// conjunction of literals): variables set positively in `c` are fixed
    /// to 1, negatively to 0. The restricted variables vanish from the
    /// result. Cubes with branching structure are rejected by debug
    /// assertion — use [`BddManager::and`] for general conjunction.
    pub fn restrict(&mut self, f: Bdd, c: Bdd) -> Result<Bdd> {
        if f.is_const() || c.is_true() {
            return Ok(f);
        }
        debug_assert!(!c.is_false(), "restriction by the empty cube");
        self.count_op(OpKind::Restrict);
        if let Some(r) = self.cache.get(OpCode::Restrict, f.0, c.0, 0) {
            return Ok(Bdd(r));
        }
        self.depth_enter();
        let descended = self.restrict_descend(f, c);
        self.depth_exit();
        let r = descended?;
        self.cache.put(OpCode::Restrict, f.0, c.0, 0, r.0);
        Ok(r)
    }

    fn restrict_descend(&mut self, f: Bdd, c: Bdd) -> Result<Bdd> {
        let (lf, lc) = (self.level(f), self.level(c));
        if lc < lf {
            // The cube constrains a variable above f's root: skip it.
            let nc = self.node(c);
            let next = if nc.low == 0 {
                Bdd(nc.high)
            } else {
                Bdd(nc.low)
            };
            self.restrict(f, next)
        } else if lc == lf {
            let nf = self.node(f);
            let nc = self.node(c);
            debug_assert!(
                (nc.low == 0) != (nc.high == 0),
                "restrict expects a cube (conjunction of literals)"
            );
            if nc.low == 0 {
                // positive literal: take the high branch
                self.restrict(Bdd(nf.high), Bdd(nc.high))
            } else {
                self.restrict(Bdd(nf.low), Bdd(nc.low))
            }
        } else {
            let nf = self.node(f);
            let low = self.restrict(Bdd(nf.low), c)?;
            let high = self.restrict(Bdd(nf.high), c)?;
            self.mk(nf.level, low, high)
        }
    }

    /// Build the cube (conjunction of literals) for a partial assignment.
    pub fn cube(&mut self, literals: &[(Var, bool)]) -> Result<Bdd> {
        let mut lits: Vec<(Var, bool)> = literals.to_vec();
        lits.sort_unstable_by_key(|&(v, _)| std::cmp::Reverse(v));
        let mut acc = Bdd::TRUE;
        for (v, positive) in lits {
            acc = if positive {
                self.mk(v, Bdd::FALSE, acc)?
            } else {
                self.mk(v, acc, Bdd::FALSE)?
            };
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replace_order_preserving() {
        let mut m = BddManager::new();
        let v: Vec<Var> = (0..4).map(|_| m.new_var()).collect();
        let x0 = m.var(v[0]).unwrap();
        let x1 = m.var(v[1]).unwrap();
        let f = m.and(x0, x1).unwrap();
        // Rename {0→2, 1→3}: order preserved (0<1, 2<3).
        let map = m.replace_map(&[(v[0], v[2]), (v[1], v[3])]);
        let g = m.replace(f, map).unwrap();
        let x2 = m.var(v[2]).unwrap();
        let x3 = m.var(v[3]).unwrap();
        let expected = m.and(x2, x3).unwrap();
        assert_eq!(g, expected);
    }

    #[test]
    fn replace_order_crossing_corrects() {
        let mut m = BddManager::new();
        let v: Vec<Var> = (0..4).map(|_| m.new_var()).collect();
        let x2 = m.var(v[2]).unwrap();
        let x3 = m.var(v[3]).unwrap();
        let f = m.imp(x2, x3).unwrap();
        // Rename {2→1, 3→0}: inverts relative order, forcing correction.
        let map = m.replace_map(&[(v[2], v[1]), (v[3], v[0])]);
        let g = m.replace(f, map).unwrap();
        let x0 = m.var(v[0]).unwrap();
        let x1 = m.var(v[1]).unwrap();
        let expected = m.imp(x1, x0).unwrap();
        assert_eq!(g, expected);
    }

    #[test]
    fn replace_swap_within_function() {
        let mut m = BddManager::new();
        let v: Vec<Var> = (0..2).map(|_| m.new_var()).collect();
        let x0 = m.var(v[0]).unwrap();
        let x1 = m.var(v[1]).unwrap();
        let nx1 = m.not(x1).unwrap();
        let f = m.and(x0, nx1).unwrap(); // x0 ∧ ¬x1
        let map = m.replace_map(&[(v[0], v[1]), (v[1], v[0])]);
        let g = m.replace(f, map).unwrap();
        let nx0 = m.not(x0).unwrap();
        let expected = m.and(x1, nx0).unwrap();
        assert_eq!(g, expected);
    }

    #[test]
    fn replace_identity_map() {
        let mut m = BddManager::new();
        let v: Vec<Var> = (0..3).map(|_| m.new_var()).collect();
        let x0 = m.var(v[0]).unwrap();
        let x2 = m.var(v[2]).unwrap();
        let f = m.xor(x0, x2).unwrap();
        let map = m.replace_map(&[]);
        assert_eq!(m.replace(f, map).unwrap(), f);
    }

    #[test]
    fn cube_encodes_partial_assignment() {
        let mut m = BddManager::new();
        let v: Vec<Var> = (0..3).map(|_| m.new_var()).collect();
        let c = m.cube(&[(v[0], true), (v[2], false)]).unwrap();
        assert!(m.eval(c, |x| x == v[0]));
        assert!(!m.eval(c, |x| x == v[2]));
        assert!(!m.eval(c, |_| false)); // v0 must be true
        assert_eq!(m.size(c), 2);
    }

    #[test]
    fn restrict_pins_variables() {
        let mut m = BddManager::new();
        let v: Vec<Var> = (0..3).map(|_| m.new_var()).collect();
        let x0 = m.var(v[0]).unwrap();
        let x1 = m.var(v[1]).unwrap();
        let x2 = m.var(v[2]).unwrap();
        let t = m.and(x0, x1).unwrap();
        let f = m.or(t, x2).unwrap(); // (x0 ∧ x1) ∨ x2
                                      // Restrict x0 := 1: result should be x1 ∨ x2.
        let c = m.cube(&[(v[0], true)]).unwrap();
        let r = m.restrict(f, c).unwrap();
        let expected = m.or(x1, x2).unwrap();
        assert_eq!(r, expected);
        // Restrict x0 := 0: result should be x2.
        let c0 = m.cube(&[(v[0], false)]).unwrap();
        assert_eq!(m.restrict(f, c0).unwrap(), x2);
    }

    #[test]
    fn restrict_matches_exists_of_conjunction() {
        // restrict(f, cube) == ∃vars (f ∧ cube) for a positive cube.
        let mut m = BddManager::new();
        let v: Vec<Var> = (0..3).map(|_| m.new_var()).collect();
        let x0 = m.var(v[0]).unwrap();
        let x1 = m.var(v[1]).unwrap();
        let x2 = m.var(v[2]).unwrap();
        let t = m.xor(x0, x1).unwrap();
        let f = m.imp(t, x2).unwrap();
        let c = m.cube(&[(v[1], true)]).unwrap();
        let restricted = m.restrict(f, c).unwrap();
        let conj = m.and(f, c).unwrap();
        let vs = m.varset(&[v[1]]);
        let quantified = m.exists(conj, vs).unwrap();
        assert_eq!(restricted, quantified);
    }

    #[test]
    fn restrict_by_variable_above_root() {
        let mut m = BddManager::new();
        let v: Vec<Var> = (0..2).map(|_| m.new_var()).collect();
        let x1 = m.var(v[1]).unwrap();
        let c = m.cube(&[(v[0], true)]).unwrap();
        // x0 doesn't occur in f = x1: restriction is identity.
        assert_eq!(m.restrict(x1, c).unwrap(), x1);
    }
}
