#![warn(missing_docs)]

//! # relcheck-bdd — a from-scratch ROBDD engine with a finite-domain layer
//!
//! This crate implements the Reduced Ordered Binary Decision Diagram (ROBDD)
//! substrate that the ICDE 2007 paper *"Fast Identification of Relational
//! Constraint Violations"* builds its logical indices on. The paper used the
//! BuDDy C library; this crate re-implements the relevant surface in safe
//! Rust:
//!
//! * a hash-consed shared node store (every logically equivalent function has
//!   exactly one node — Bryant's canonicity, Fact 1 of the paper);
//! * the classic `apply` algorithm for the binary connectives, plus `not` and
//!   `ite`, all memoized through a direct-mapped operation cache;
//! * `restrict` (cofactor by a partial assignment), `replace` (variable
//!   renaming, the workhorse of the paper's equi-join rewrite rule), and
//!   existential/universal quantification over variable sets;
//! * the fused quantification operators [`BddManager::app_exists`] /
//!   [`BddManager::app_forall`] (BuDDy's `bdd_appex` / `bdd_appall`), which the
//!   paper's quantifier pull-up/push-down rewrite rules target;
//! * model counting, satisfying-assignment enumeration and cube extraction;
//! * mark–sweep garbage collection with free-list reuse, so long-running
//!   checkers can bound their memory;
//! * a configurable **node limit**: every allocating operation returns
//!   [`Result`] and aborts with [`BddError::NodeLimit`] once the live node
//!   count exceeds the limit — this is the paper's "monitor the size and
//!   default to SQL" strategy (Section 4).
//!
//! On top of the boolean kernel, the [`fdd`] module provides *finite-domain
//! blocks* (BuDDy's `fdd_*` interface): an attribute with an active domain of
//! size `n` is encoded as `⌈log₂ n⌉` consecutive boolean variables, and
//! relations become characteristic functions over those blocks (Section 2.2
//! of the paper).
//!
//! ## Quick example
//!
//! ```
//! use relcheck_bdd::BddManager;
//!
//! let mut m = BddManager::new();
//! let d = m.add_domain(10).unwrap();          // attribute with |dom| = 10
//! let e = m.add_domain(10).unwrap();
//! // the relation {(3, 4), (7, 2)}
//! let r = m.relation_from_rows(&[d, e], &[vec![3, 4], vec![7, 2]]).unwrap();
//! assert!(m.contains(r, &[d, e], &[3, 4]).unwrap());
//! assert!(!m.contains(r, &[d, e], &[3, 2]).unwrap());
//! assert_eq!(m.tuple_count(r, &[d, e]).unwrap(), 2.0);
//! ```

mod analyze;
mod apply;
mod build;
mod cache;
mod error;
pub mod failpoint;
pub mod fdd;
mod hash;
mod manager;
pub mod order;
mod quant;
mod replace;
mod sat;
mod serialize;

pub use cache::{OpKind, OP_KINDS};
pub use error::{BddError, Result};
pub use fdd::{DomainId, DomainInfo};
pub use manager::{
    Bdd, BddManager, Budget, CompactStats, GcStats, ManagerStats, OpStats, StatsDelta, Var,
    NODE_BYTES,
};
pub use quant::VarSet;
pub use replace::ReplaceMap;
pub use sat::SatAssignments;
pub use serialize::{
    crc32, decode_frame, encode_frame, DecodeError, ExportedBdd, ExportedRelation, FRAME_HEADER_LEN,
};

/// Binary boolean connectives accepted by [`BddManager::apply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Conjunction `f ∧ g`.
    And,
    /// Disjunction `f ∨ g`.
    Or,
    /// Exclusive or `f ⊕ g`.
    Xor,
    /// Negated conjunction `¬(f ∧ g)`.
    Nand,
    /// Negated disjunction `¬(f ∨ g)`.
    Nor,
    /// Implication `f ⇒ g`.
    Imp,
    /// Biimplication `f ⇔ g`.
    Biimp,
    /// Difference `f ∧ ¬g` (set minus on characteristic functions).
    Diff,
}

impl Op {
    /// Evaluate the connective on two boolean constants.
    #[inline]
    pub fn eval(self, a: bool, b: bool) -> bool {
        match self {
            Op::And => a && b,
            Op::Or => a || b,
            Op::Xor => a ^ b,
            Op::Nand => !(a && b),
            Op::Nor => !(a || b),
            Op::Imp => !a || b,
            Op::Biimp => a == b,
            Op::Diff => a && !b,
        }
    }
}
