//! Error type for BDD operations.
//!
//! The only recoverable failure the engine reports is exceeding the
//! configured node limit; it is the signal the constraint checker uses to
//! abandon BDD evaluation and fall back to SQL (paper, Section 4). A few
//! usage errors (bad domain values, oversized domains) are also surfaced
//! rather than panicking so that callers driving the engine from user input
//! can degrade gracefully.

use std::fmt;

/// Errors produced by [`crate::BddManager`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BddError {
    /// The live node count exceeded the configured limit. The in-flight
    /// operation was aborted; the manager remains usable (garbage from the
    /// aborted operation can be reclaimed with
    /// [`crate::BddManager::gc`]).
    NodeLimit {
        /// The limit that was in force.
        limit: usize,
        /// Live nodes at the moment the operation aborted.
        live: usize,
    },
    /// A value outside `0..domain_size` was used with a finite domain.
    ValueOutOfDomain {
        /// The offending value.
        value: u64,
        /// The size of the domain it was used with.
        domain_size: u64,
    },
    /// A domain was declared with size zero.
    EmptyDomain,
    /// The total bit width of a tuple layout exceeds what the engine packs
    /// into a single machine word (64 bits) for sorted-tuple construction.
    TupleTooWide {
        /// Total bits required.
        bits: u32,
    },
    /// A row passed to a relation builder has the wrong arity.
    ArityMismatch {
        /// Number of domains in the layout.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A domain rename paired two domains of different bit widths.
    DomainWidthMismatch {
        /// Bit width of the source domain.
        from_bits: u32,
        /// Bit width of the target domain.
        to_bits: u32,
    },
    /// The same domain was used for two different columns of one relation
    /// layout — each column needs its own variable block.
    DuplicateDomain,
    /// An imported snapshot references a variable that the accompanying
    /// layout metadata does not cover, so there is no target variable to
    /// map it to.
    UnmappedVariable {
        /// The snapshot variable with no mapping.
        var: u32,
    },
    /// The wall-clock deadline of the active [`crate::Budget`] passed while
    /// an operation was in flight. The operation was aborted cooperatively
    /// at a recursion boundary; the manager remains usable (exactly like a
    /// node-limit abort) and the caller is expected to escalate down its
    /// degradation ladder.
    Deadline {
        /// Budget steps (memoized recursive calls) taken before the abort.
        steps: u64,
    },
    /// A [`crate::failpoint`] site fired. Only ever produced under an
    /// explicitly configured fault-injection profile — production runs with
    /// the registry disabled can never see this variant.
    FaultInjected {
        /// The failpoint site that fired (see [`crate::failpoint::SITES`]).
        site: &'static str,
    },
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::NodeLimit { limit, live } => write!(
                f,
                "BDD node limit exceeded: {live} live nodes > limit {limit}"
            ),
            BddError::ValueOutOfDomain { value, domain_size } => write!(
                f,
                "value {value} out of range for finite domain of size {domain_size}"
            ),
            BddError::EmptyDomain => write!(f, "finite domains must have at least one value"),
            BddError::TupleTooWide { bits } => write!(
                f,
                "tuple layout needs {bits} bits; sorted-tuple construction packs into 64"
            ),
            BddError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row arity mismatch: layout has {expected} domains, row has {got} values"
                )
            }
            BddError::DomainWidthMismatch { from_bits, to_bits } => write!(
                f,
                "domain rename requires equal bit widths, got {from_bits} vs {to_bits}"
            ),
            BddError::DuplicateDomain => {
                write!(f, "a relation layout listed the same domain twice")
            }
            BddError::UnmappedVariable { var } => {
                write!(
                    f,
                    "snapshot references variable {var} outside the exported layout"
                )
            }
            BddError::Deadline { steps } => write!(
                f,
                "BDD deadline exceeded: operation aborted after {steps} budget steps"
            ),
            BddError::FaultInjected { site } => {
                write!(f, "injected fault at failpoint site '{site}'")
            }
        }
    }
}

impl std::error::Error for BddError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, BddError>;
