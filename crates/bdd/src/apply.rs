//! The `apply` family: binary connectives, negation, and `ite`.
//!
//! `apply` is Bryant's classic simultaneous-descent algorithm: recurse on the
//! topmost variable of the two operands, memoizing on (op, f, g). Its cost is
//! O(‖f‖·‖g‖) node visits in the worst case — this is the "node count is only
//! additive for Cartesian product" property the paper exploits in Section 2.2
//! (the conjunction of BDDs over disjoint variables never multiplies sizes).

use crate::cache::{OpCode, OpKind};
use crate::error::Result;
use crate::manager::{Bdd, BddManager};
use crate::Op;

impl BddManager {
    /// `f ∧ g`.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Result<Bdd> {
        self.apply(Op::And, f, g)
    }

    /// `f ∨ g`.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Result<Bdd> {
        self.apply(Op::Or, f, g)
    }

    /// `f ⊕ g`.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Result<Bdd> {
        self.apply(Op::Xor, f, g)
    }

    /// `f ⇒ g`.
    pub fn imp(&mut self, f: Bdd, g: Bdd) -> Result<Bdd> {
        self.apply(Op::Imp, f, g)
    }

    /// `f ⇔ g`.
    pub fn biimp(&mut self, f: Bdd, g: Bdd) -> Result<Bdd> {
        self.apply(Op::Biimp, f, g)
    }

    /// `f ∧ ¬g` — set difference on characteristic functions.
    pub fn diff(&mut self, f: Bdd, g: Bdd) -> Result<Bdd> {
        self.apply(Op::Diff, f, g)
    }

    /// Apply any binary connective.
    pub fn apply(&mut self, op: Op, f: Bdd, g: Bdd) -> Result<Bdd> {
        // Constant and absorption shortcuts. These matter: they terminate
        // entire subproblems without touching the cache (and are therefore
        // not counted as calls in telemetry).
        if let Some(r) = apply_shortcut(op, f, g) {
            return Ok(r);
        }
        self.budget_check()?;
        self.count_op(OpKind::Apply);
        if let Some(r) = self.cache.get(OpCode::Apply(op_code(op)), f.0, g.0, 0) {
            return Ok(Bdd(r));
        }
        self.depth_enter();
        let descended = self.apply_descend(op, f, g);
        self.depth_exit();
        let r = descended?;
        self.cache.put(OpCode::Apply(op_code(op)), f.0, g.0, 0, r.0);
        Ok(r)
    }

    fn apply_descend(&mut self, op: Op, f: Bdd, g: Bdd) -> Result<Bdd> {
        let (lf, lg) = (self.level(f), self.level(g));
        let top = lf.min(lg);
        let (f0, f1) = if lf == top { self.cofactors(f) } else { (f, f) };
        let (g0, g1) = if lg == top { self.cofactors(g) } else { (g, g) };
        let low = self.apply(op, f0, g0)?;
        let high = self.apply(op, f1, g1)?;
        self.mk(top, low, high)
    }

    /// `¬f`.
    pub fn not(&mut self, f: Bdd) -> Result<Bdd> {
        if f.is_false() {
            return Ok(Bdd::TRUE);
        }
        if f.is_true() {
            return Ok(Bdd::FALSE);
        }
        self.budget_check()?;
        self.count_op(OpKind::Not);
        if let Some(r) = self.cache.get(OpCode::Not, f.0, 0, 0) {
            return Ok(Bdd(r));
        }
        self.depth_enter();
        let descended = self.not_descend(f);
        self.depth_exit();
        let r = descended?;
        self.cache.put(OpCode::Not, f.0, 0, 0, r.0);
        Ok(r)
    }

    fn not_descend(&mut self, f: Bdd) -> Result<Bdd> {
        let n = self.node(f);
        let low = self.not(Bdd(n.low))?;
        let high = self.not(Bdd(n.high))?;
        self.mk(n.level, low, high)
    }

    /// If-then-else: `(f ∧ g) ∨ (¬f ∧ h)`. Handles operands whose supports
    /// interleave arbitrarily, which is what makes it suitable as the
    /// correction step in order-crossing [`BddManager::replace`] calls.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Result<Bdd> {
        if f.is_true() {
            return Ok(g);
        }
        if f.is_false() {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g.is_true() && h.is_false() {
            return Ok(f);
        }
        self.budget_check()?;
        self.count_op(OpKind::Ite);
        if let Some(r) = self.cache.get(OpCode::Ite, f.0, g.0, h.0) {
            return Ok(Bdd(r));
        }
        self.depth_enter();
        let descended = self.ite_descend(f, g, h);
        self.depth_exit();
        let r = descended?;
        self.cache.put(OpCode::Ite, f.0, g.0, h.0, r.0);
        Ok(r)
    }

    fn ite_descend(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Result<Bdd> {
        let top = self.level(f).min(self.level(g)).min(self.level(h));
        let (f0, f1) = if self.level(f) == top {
            self.cofactors(f)
        } else {
            (f, f)
        };
        let (g0, g1) = if self.level(g) == top {
            self.cofactors(g)
        } else {
            (g, g)
        };
        let (h0, h1) = if self.level(h) == top {
            self.cofactors(h)
        } else {
            (h, h)
        };
        let low = self.ite(f0, g0, h0)?;
        let high = self.ite(f1, g1, h1)?;
        self.mk(top, low, high)
    }

    /// Fold a conjunction over many operands, smallest-first. Ordering by
    /// size keeps intermediate results small — the same motivation as join
    /// ordering in a relational optimizer.
    pub fn and_many(&mut self, operands: &[Bdd]) -> Result<Bdd> {
        self.fold(Op::And, Bdd::TRUE, operands)
    }

    /// Fold a disjunction over many operands, smallest-first.
    pub fn or_many(&mut self, operands: &[Bdd]) -> Result<Bdd> {
        self.fold(Op::Or, Bdd::FALSE, operands)
    }

    fn fold(&mut self, op: Op, unit: Bdd, operands: &[Bdd]) -> Result<Bdd> {
        let mut ops: Vec<(usize, Bdd)> = operands.iter().map(|&b| (self.size(b), b)).collect();
        ops.sort_by_key(|&(s, _)| s);
        let mut acc = unit;
        for (_, b) in ops {
            acc = self.apply(op, acc, b)?;
        }
        Ok(acc)
    }
}

#[inline]
fn op_code(op: Op) -> u8 {
    match op {
        Op::And => 0,
        Op::Or => 1,
        Op::Xor => 2,
        Op::Nand => 3,
        Op::Nor => 4,
        Op::Imp => 5,
        Op::Biimp => 6,
        Op::Diff => 7,
    }
}

/// Terminal and absorption cases that resolve without recursion.
#[inline]
fn apply_shortcut(op: Op, f: Bdd, g: Bdd) -> Option<Bdd> {
    if f.is_const() && g.is_const() {
        return Some(if op.eval(f.is_true(), g.is_true()) {
            Bdd::TRUE
        } else {
            Bdd::FALSE
        });
    }
    match op {
        Op::And => match () {
            _ if f.is_false() || g.is_false() => Some(Bdd::FALSE),
            _ if f.is_true() => Some(g),
            _ if g.is_true() => Some(f),
            _ if f == g => Some(f),
            _ => None,
        },
        Op::Or => match () {
            _ if f.is_true() || g.is_true() => Some(Bdd::TRUE),
            _ if f.is_false() => Some(g),
            _ if g.is_false() => Some(f),
            _ if f == g => Some(f),
            _ => None,
        },
        Op::Xor => match () {
            _ if f == g => Some(Bdd::FALSE),
            _ if f.is_false() => Some(g),
            _ if g.is_false() => Some(f),
            _ => None,
        },
        Op::Imp => match () {
            _ if f.is_false() || g.is_true() => Some(Bdd::TRUE),
            _ if f.is_true() => Some(g),
            _ if f == g => Some(Bdd::TRUE),
            _ => None,
        },
        Op::Biimp => {
            if f == g {
                Some(Bdd::TRUE)
            } else {
                None
            }
        }
        Op::Diff => match () {
            _ if f.is_false() || g.is_true() => Some(Bdd::FALSE),
            _ if g.is_false() => Some(f),
            _ if f == g => Some(Bdd::FALSE),
            _ => None,
        },
        Op::Nand | Op::Nor => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively check a binary op against its truth table over all
    /// assignments of the variables in play.
    fn check_op(op: Op) {
        let mut m = BddManager::new();
        let vars: Vec<_> = (0..3).map(|_| m.new_var()).collect();
        let x = m.var(vars[0]).unwrap();
        let y = m.var(vars[1]).unwrap();
        let z = m.var(vars[2]).unwrap();
        let xy = m.and(x, y).unwrap();
        let yz = m.or(y, z).unwrap();
        let f = m.apply(op, xy, yz).unwrap();
        for bits in 0u32..8 {
            let assign = |v: u32| bits >> v & 1 == 1;
            let a = assign(0) && assign(1);
            let b = assign(1) || assign(2);
            assert_eq!(
                m.eval(f, assign),
                op.eval(a, b),
                "op {op:?} bits {bits:03b}"
            );
        }
    }

    #[test]
    fn all_binary_ops_match_truth_tables() {
        for op in [
            Op::And,
            Op::Or,
            Op::Xor,
            Op::Nand,
            Op::Nor,
            Op::Imp,
            Op::Biimp,
            Op::Diff,
        ] {
            check_op(op);
        }
    }

    #[test]
    fn and_is_commutative_and_canonical() {
        let mut m = BddManager::new();
        let v: Vec<_> = (0..2).map(|_| m.new_var()).collect();
        let x = m.var(v[0]).unwrap();
        let y = m.var(v[1]).unwrap();
        let a = m.and(x, y).unwrap();
        let b = m.and(y, x).unwrap();
        assert_eq!(a, b, "canonicity: equivalent functions share a node");
    }

    #[test]
    fn de_morgan() {
        let mut m = BddManager::new();
        let v: Vec<_> = (0..2).map(|_| m.new_var()).collect();
        let x = m.var(v[0]).unwrap();
        let y = m.var(v[1]).unwrap();
        let lhs = {
            let a = m.and(x, y).unwrap();
            m.not(a).unwrap()
        };
        let rhs = {
            let nx = m.not(x).unwrap();
            let ny = m.not(y).unwrap();
            m.or(nx, ny).unwrap()
        };
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn double_negation_is_identity() {
        let mut m = BddManager::new();
        let v: Vec<_> = (0..3).map(|_| m.new_var()).collect();
        let x = m.var(v[0]).unwrap();
        let z = m.var(v[2]).unwrap();
        let f = m.xor(x, z).unwrap();
        let nf = m.not(f).unwrap();
        let nnf = m.not(nf).unwrap();
        assert_eq!(f, nnf);
    }

    #[test]
    fn ite_equals_expansion() {
        let mut m = BddManager::new();
        let v: Vec<_> = (0..3).map(|_| m.new_var()).collect();
        let f = m.var(v[1]).unwrap();
        let g = m.var(v[0]).unwrap();
        let h = m.var(v[2]).unwrap();
        let ite = m.ite(f, g, h).unwrap();
        let expansion = {
            let fg = m.and(f, g).unwrap();
            let nf = m.not(f).unwrap();
            let nfh = m.and(nf, h).unwrap();
            m.or(fg, nfh).unwrap()
        };
        assert_eq!(ite, expansion);
    }

    #[test]
    fn ite_shortcuts() {
        let mut m = BddManager::new();
        let v = m.new_var();
        let x = m.var(v).unwrap();
        assert_eq!(m.ite(Bdd::TRUE, x, Bdd::FALSE).unwrap(), x);
        assert_eq!(m.ite(Bdd::FALSE, Bdd::FALSE, x).unwrap(), x);
        assert_eq!(m.ite(x, Bdd::TRUE, Bdd::FALSE).unwrap(), x);
        assert_eq!(m.ite(x, Bdd::TRUE, Bdd::TRUE).unwrap(), Bdd::TRUE);
    }

    #[test]
    fn conjunction_of_disjoint_supports_is_additive() {
        // The Section 2.2 claim: ‖BDD(R1) ∧ BDD(R2)‖ = ‖R1‖ + ‖R2‖ when the
        // supports are disjoint (Cartesian product of relations).
        let mut m = BddManager::new();
        let vars: Vec<_> = (0..8).map(|_| m.new_var()).collect();
        // f = parity of vars 0..4 (4 levels × 2 nodes each minus sharing)
        let mut f = Bdd::FALSE;
        for &v in &vars[..4] {
            let x = m.var(v).unwrap();
            f = m.xor(f, x).unwrap();
        }
        let mut g = Bdd::FALSE;
        for &v in &vars[4..] {
            let x = m.var(v).unwrap();
            g = m.xor(g, x).unwrap();
        }
        let sf = m.size(f);
        let sg = m.size(g);
        let fg = m.and(f, g).unwrap();
        assert_eq!(m.size(fg), sf + sg);
    }

    #[test]
    fn and_many_matches_pairwise() {
        let mut m = BddManager::new();
        let vars: Vec<_> = (0..4).map(|_| m.new_var()).collect();
        let lits: Vec<Bdd> = vars.iter().map(|&v| m.var(v).unwrap()).collect();
        let folded = m.and_many(&lits).unwrap();
        let mut pairwise = Bdd::TRUE;
        for &l in &lits {
            pairwise = m.and(pairwise, l).unwrap();
        }
        assert_eq!(folded, pairwise);
        assert_eq!(m.or_many(&[]).unwrap(), Bdd::FALSE);
        assert_eq!(m.and_many(&[]).unwrap(), Bdd::TRUE);
    }
}
