//! Resilience tests for the BDD engine: wall-clock deadline aborts, the
//! `apply` failpoint, and byte-level fuzzing of the snapshot decoders.
//!
//! The failpoint registry is process-global, so every test in this binary
//! that touches a `BddManager` serializes on one mutex — a test that arms
//! `apply=1` must not bleed into a concurrently running deadline test.

use relcheck_bdd::{failpoint, Bdd, BddError, BddManager, ExportedBdd, ExportedRelation};
use std::sync::Mutex;
use std::time::Instant;

static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Build an XOR chain over `n` fresh variables — enough distinct subproblems
/// that a binary op over two such chains costs hundreds of budget steps.
fn xor_chain(m: &mut BddManager, vars: &[relcheck_bdd::Var]) -> Bdd {
    let mut f = Bdd::FALSE;
    for &v in vars {
        let x = m.var(v).unwrap();
        f = m.xor(f, x).unwrap();
    }
    f
}

#[test]
fn expired_deadline_aborts_and_manager_recovers() {
    let _g = lock();
    let mut m = BddManager::new();
    let vars: Vec<_> = (0..32).map(|_| m.new_var()).collect();
    // Interleave supports so and(f, g) explores ~|f|·|g| subproblems —
    // comfortably past the 256-step stride between deadline checks.
    let evens: Vec<_> = vars.iter().copied().step_by(2).collect();
    let odds: Vec<_> = vars.iter().copied().skip(1).step_by(2).collect();
    let f = xor_chain(&mut m, &evens);
    let g = xor_chain(&mut m, &odds);

    m.set_deadline(Some(Instant::now()));
    let err = m.and(f, g).expect_err("expired deadline must abort");
    match err {
        BddError::Deadline { steps } => assert!(steps > 0),
        other => panic!("expected Deadline, got {other:?}"),
    }

    // Disarm and the identical operation succeeds — the abort poisons
    // nothing, the manager stays usable.
    m.set_deadline(None);
    let h = m
        .and(f, g)
        .expect("manager must recover after a deadline abort");
    assert!(!h.is_const());
}

#[test]
fn future_deadline_does_not_abort() {
    let _g = lock();
    let mut m = BddManager::new();
    let vars: Vec<_> = (0..16).map(|_| m.new_var()).collect();
    m.set_deadline(Some(Instant::now() + std::time::Duration::from_secs(600)));
    let f = xor_chain(&mut m, &vars[..8]);
    let g = xor_chain(&mut m, &vars[8..]);
    assert!(m.and(f, g).is_ok(), "a generous deadline must not fire");
    m.set_deadline(None);
}

#[test]
fn apply_failpoint_aborts_and_manager_recovers() {
    let _g = lock();
    failpoint::configure_spec("apply=1", 7).unwrap();
    let mut m = BddManager::new();
    let r = m.new_var();
    let err = (|| -> relcheck_bdd::Result<Bdd> {
        let x = m.var(r)?;
        let y = m.not(x)?;
        m.and(x, y)
    })()
    .expect_err("armed apply failpoint must abort the operation");
    match err {
        BddError::FaultInjected { site } => assert_eq!(site, "apply"),
        other => panic!("expected FaultInjected, got {other:?}"),
    }
    assert!(
        failpoint::fired_counts()
            .iter()
            .any(|&(site, n)| site == failpoint::APPLY && n > 0),
        "the firing must be recorded for telemetry"
    );

    failpoint::clear();
    let x = m.var(r).unwrap();
    let y = m.not(x).unwrap();
    assert!(
        m.and(x, y).unwrap().is_false(),
        "manager must compute correctly once the failpoint is disarmed"
    );
}

/// Round-trip a snapshot, then attack the byte buffer: truncate it at every
/// length and flip every bit. The decoder must never panic, and every
/// accepted mutant must still satisfy the format's structural invariants
/// (checked by re-encoding and re-decoding).
#[test]
fn exported_bdd_decode_survives_truncation_and_bit_flips() {
    let mut m = BddManager::new();
    let vars: Vec<_> = (0..6).map(|_| m.new_var()).collect();
    let f = xor_chain(&mut m, &vars);
    let snapshot = m.export(f);
    let bytes = snapshot.to_bytes();
    assert_eq!(ExportedBdd::decode(&bytes).unwrap(), snapshot);

    for len in 0..bytes.len() {
        let e = ExportedBdd::decode(&bytes[..len])
            .expect_err("every proper truncation must be rejected");
        assert!(e.offset <= len, "offset {} past buffer of {len}", e.offset);
    }
    for i in 0..bytes.len() * 8 {
        let mut mutant = bytes.clone();
        mutant[i / 8] ^= 1 << (i % 8);
        if let Ok(decoded) = ExportedBdd::decode(&mutant) {
            // A surviving mutant must still be structurally sound.
            assert_eq!(ExportedBdd::decode(&decoded.to_bytes()).unwrap(), decoded);
        }
    }
}

#[test]
fn exported_relation_decode_survives_truncation_and_bit_flips() {
    let mut m = BddManager::new();
    let d1 = m.add_domain(5).unwrap();
    let d2 = m.add_domain(3).unwrap();
    let mut f = Bdd::FALSE;
    for (a, b) in [(0u64, 1u64), (2, 0), (4, 2)] {
        f = m.insert_row(f, &[d1, d2], &[a, b]).unwrap();
    }
    let snapshot = m.export_relation(f, &[d1, d2]).unwrap();
    let bytes = snapshot.to_bytes();
    assert_eq!(ExportedRelation::decode(&bytes).unwrap(), snapshot);

    for len in 0..bytes.len() {
        ExportedRelation::decode(&bytes[..len])
            .expect_err("every proper truncation must be rejected");
    }
    for i in 0..bytes.len() * 8 {
        let mut mutant = bytes.clone();
        mutant[i / 8] ^= 1 << (i % 8);
        if let Ok(decoded) = ExportedRelation::decode(&mutant) {
            assert_eq!(
                ExportedRelation::decode(&decoded.to_bytes()).unwrap(),
                decoded
            );
        }
    }
}
