//! Property-based tests: the BDD engine against a brute-force oracle.
//!
//! Random boolean expressions over a small variable universe are compiled to
//! BDDs and compared point-by-point against direct evaluation; structural
//! invariants (canonicity, reduction, duality) are asserted along the way.
// Gated behind the off-by-default `fuzz` feature: proptest is an external
// dependency and the tier-1 verify must build with no network access. Run
// with `cargo test --features fuzz` in an environment with a vendored
// proptest.
#![cfg(feature = "fuzz")]

use proptest::prelude::*;
use relcheck_bdd::{Bdd, BddManager, Op, Var};

const NVARS: u32 = 6;

/// A random boolean expression tree.
#[derive(Debug, Clone)]
enum Expr {
    Const(bool),
    Var(Var),
    Not(Box<Expr>),
    Bin(Op, Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self, bits: u32) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Var(v) => bits >> v & 1 == 1,
            Expr::Not(e) => !e.eval(bits),
            Expr::Bin(op, a, b) => op.eval(a.eval(bits), b.eval(bits)),
        }
    }

    fn to_bdd(&self, m: &mut BddManager) -> Bdd {
        match self {
            Expr::Const(true) => Bdd::TRUE,
            Expr::Const(false) => Bdd::FALSE,
            Expr::Var(v) => m.var(*v).unwrap(),
            Expr::Not(e) => {
                let f = e.to_bdd(m);
                m.not(f).unwrap()
            }
            Expr::Bin(op, a, b) => {
                let fa = a.to_bdd(m);
                let fb = b.to_bdd(m);
                m.apply(*op, fa, fb).unwrap()
            }
        }
    }
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::And),
        Just(Op::Or),
        Just(Op::Xor),
        Just(Op::Nand),
        Just(Op::Nor),
        Just(Op::Imp),
        Just(Op::Biimp),
        Just(Op::Diff),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Expr::Const),
        (0..NVARS).prop_map(Expr::Var),
    ];
    leaf.prop_recursive(5, 64, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (arb_op(), inner.clone(), inner).prop_map(|(op, a, b)| Expr::Bin(
                op,
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

fn manager() -> BddManager {
    let mut m = BddManager::new();
    for _ in 0..NVARS {
        m.new_var();
    }
    m
}

proptest! {
    #[test]
    fn bdd_matches_brute_force(e in arb_expr()) {
        let mut m = manager();
        let f = e.to_bdd(&mut m);
        for bits in 0u32..1 << NVARS {
            prop_assert_eq!(m.eval(f, |v| bits >> v & 1 == 1), e.eval(bits));
        }
    }

    #[test]
    fn canonicity_equivalent_exprs_share_node(e in arb_expr()) {
        // f ⇔ ¬¬f and f ⇔ (f ∨ f): all must be the same node.
        let mut m = manager();
        let f = e.to_bdd(&mut m);
        let nf = m.not(f).unwrap();
        let nnf = m.not(nf).unwrap();
        prop_assert_eq!(f, nnf);
        let ff = m.or(f, f).unwrap();
        prop_assert_eq!(f, ff);
    }

    #[test]
    fn reduction_no_redundant_nodes(e in arb_expr()) {
        // ROBDD invariant: no node has low == high, and no two distinct
        // nodes share (level, low, high). We probe via size() being stable
        // under re-construction of the same function.
        let mut m = manager();
        let f = e.to_bdd(&mut m);
        let g = e.to_bdd(&mut m);
        prop_assert_eq!(f, g);
        prop_assert_eq!(m.size(f), m.size(g));
    }

    #[test]
    fn compaction_preserves_function_and_squeezes_arena(e in arb_expr(), g in arb_expr()) {
        // Compile two expressions, drop one, compact: the kept root must be
        // remapped to an equivalent function, the arena must hold exactly
        // the live nodes, and rebuilding the dropped expression must still
        // hash-cons correctly against the compacted tables.
        let mut m = manager();
        let f = e.to_bdd(&mut m);
        let _dropped = g.to_bdd(&mut m);
        let size_before = m.size(f);
        let mut roots = [f];
        let stats = m.compact(&mut roots);
        let f = roots[0];
        prop_assert_eq!(stats.live, m.live_nodes());
        prop_assert_eq!(m.arena_slots(), m.live_nodes());
        prop_assert_eq!(m.size(f), size_before);
        for bits in 0u32..1 << NVARS {
            prop_assert_eq!(m.eval(f, |v| bits >> v & 1 == 1), e.eval(bits));
        }
        let g2 = g.to_bdd(&mut m);
        for bits in 0u32..1 << NVARS {
            prop_assert_eq!(m.eval(g2, |v| bits >> v & 1 == 1), g.eval(bits));
        }
    }

    #[test]
    fn sat_count_matches_brute_force(e in arb_expr()) {
        let mut m = manager();
        let f = e.to_bdd(&mut m);
        let all: Vec<Var> = (0..NVARS).collect();
        let vs = m.varset(&all);
        let expected = (0u32..1 << NVARS).filter(|&bits| e.eval(bits)).count();
        prop_assert_eq!(m.sat_count(f, vs), expected as f64);
    }

    #[test]
    fn sat_assignments_match_brute_force(e in arb_expr()) {
        let mut m = manager();
        let f = e.to_bdd(&mut m);
        let all: Vec<Var> = (0..NVARS).collect();
        let vs = m.varset(&all);
        let mut got: Vec<u32> = m
            .sat_assignments(f, vs)
            .map(|bits| bits.iter().enumerate().fold(0u32, |acc, (i, &b)| acc | (b as u32) << i))
            .collect();
        got.sort_unstable();
        let expected: Vec<u32> = (0u32..1 << NVARS).filter(|&bits| e.eval(bits)).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn quantifier_duality(e in arb_expr(), v in 0..NVARS) {
        let mut m = manager();
        let f = e.to_bdd(&mut m);
        let vs = m.varset(&[v]);
        let forall = m.forall(f, vs).unwrap();
        let nf = m.not(f).unwrap();
        let ex = m.exists(nf, vs).unwrap();
        let dual = m.not(ex).unwrap();
        prop_assert_eq!(forall, dual);
    }

    #[test]
    fn fused_quantifiers_match_unfused(a in arb_expr(), b in arb_expr(), op in arb_op(), v in 0..NVARS) {
        let mut m = manager();
        let fa = a.to_bdd(&mut m);
        let fb = b.to_bdd(&mut m);
        let vs = m.varset(&[v]);
        let fused_e = m.app_exists(op, fa, fb, vs).unwrap();
        let applied = m.apply(op, fa, fb).unwrap();
        let unfused_e = m.exists(applied, vs).unwrap();
        prop_assert_eq!(fused_e, unfused_e);
        let fused_a = m.app_forall(op, fa, fb, vs).unwrap();
        let unfused_a = m.forall(applied, vs).unwrap();
        prop_assert_eq!(fused_a, unfused_a);
    }

    #[test]
    fn replace_is_substitution(e in arb_expr(), perm_seed in any::<u64>()) {
        // Renaming variables by a random permutation must equal evaluating
        // with permuted inputs.
        let mut m = manager();
        let f = e.to_bdd(&mut m);
        // Derive a permutation of 0..NVARS from the seed (Fisher-Yates with
        // a tiny LCG).
        let mut perm: Vec<u32> = (0..NVARS).collect();
        let mut s = perm_seed | 1;
        for i in (1..perm.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let pairs: Vec<(Var, Var)> = (0..NVARS).map(|v| (v, perm[v as usize])).collect();
        let map = m.replace_map(&pairs);
        let g = m.replace(f, map).unwrap();
        for bits in 0u32..1 << NVARS {
            // g(x) = f(y) where y_v = x_{perm(v)}.
            let expected = e.eval({
                let mut y = 0u32;
                for v in 0..NVARS {
                    if bits >> perm[v as usize] & 1 == 1 {
                        y |= 1 << v;
                    }
                }
                y
            });
            prop_assert_eq!(m.eval(g, |v| bits >> v & 1 == 1), expected);
        }
    }

    #[test]
    fn restrict_is_cofactor(e in arb_expr(), v in 0..NVARS, positive in any::<bool>()) {
        let mut m = manager();
        let f = e.to_bdd(&mut m);
        let c = m.cube(&[(v, positive)]).unwrap();
        let r = m.restrict(f, c).unwrap();
        for bits in 0u32..1 << NVARS {
            let pinned = if positive { bits | 1 << v } else { bits & !(1 << v) };
            prop_assert_eq!(m.eval(r, |x| bits >> x & 1 == 1), e.eval(pinned));
        }
        // The restricted variable is gone from the support.
        prop_assert!(!m.support(r).contains(&v));
    }

    #[test]
    fn gc_preserves_rooted_functions(e1 in arb_expr(), e2 in arb_expr()) {
        let mut m = manager();
        let keep = e1.to_bdd(&mut m);
        let _garbage = e2.to_bdd(&mut m);
        m.gc(&[keep]);
        for bits in 0u32..1 << NVARS {
            prop_assert_eq!(m.eval(keep, |v| bits >> v & 1 == 1), e1.eval(bits));
        }
        // The manager still computes correctly after the sweep.
        let again = e2.to_bdd(&mut m);
        for bits in 0u32..1 << NVARS {
            prop_assert_eq!(m.eval(again, |v| bits >> v & 1 == 1), e2.eval(bits));
        }
    }

    #[test]
    fn node_limit_abort_leaves_manager_usable(e in arb_expr()) {
        let mut m = manager();
        m.set_node_limit(Some(4));
        let _ = e.to_bdd_checked(&mut m); // may abort; must not corrupt
        m.set_node_limit(None);
        let f = e.to_bdd(&mut m);
        for bits in 0u32..1 << NVARS {
            prop_assert_eq!(m.eval(f, |v| bits >> v & 1 == 1), e.eval(bits));
        }
    }
}

impl Expr {
    /// Like `to_bdd` but propagating node-limit aborts.
    fn to_bdd_checked(&self, m: &mut BddManager) -> relcheck_bdd::Result<Bdd> {
        Ok(match self {
            Expr::Const(true) => Bdd::TRUE,
            Expr::Const(false) => Bdd::FALSE,
            Expr::Var(v) => m.var(*v)?,
            Expr::Not(e) => {
                let f = e.to_bdd_checked(m)?;
                m.not(f)?
            }
            Expr::Bin(op, a, b) => {
                let fa = a.to_bdd_checked(m)?;
                let fb = b.to_bdd_checked(m)?;
                m.apply(*op, fa, fb)?
            }
        })
    }
}

proptest! {
    #[test]
    fn export_import_round_trips(e in arb_expr()) {
        let mut m = manager();
        let f = e.to_bdd(&mut m);
        let snapshot = m.export(f);
        // Same manager: canonicity gives back the identical node.
        let same = m.import(&snapshot, |v| v).unwrap();
        prop_assert_eq!(same, f);
        // Fresh manager: identical semantics.
        let mut m2 = manager();
        let moved = m2.import(&snapshot, |v| v).unwrap();
        for bits in 0u32..1 << NVARS {
            prop_assert_eq!(m2.eval(moved, |v| bits >> v & 1 == 1), e.eval(bits));
        }
        // Byte round trip preserves the snapshot exactly.
        let decoded = relcheck_bdd::ExportedBdd::from_bytes(&snapshot.to_bytes()).unwrap();
        prop_assert_eq!(&decoded, &snapshot);
        prop_assert_eq!(snapshot.len(), m.size(f));
    }
}

mod relations {
    use super::*;

    proptest! {
        #[test]
        fn relation_membership(
            rows in proptest::collection::vec((0u64..11, 0u64..7, 0u64..5), 0..80)
        ) {
            let mut m = BddManager::new();
            let d1 = m.add_domain(11).unwrap();
            let d2 = m.add_domain(7).unwrap();
            let d3 = m.add_domain(5).unwrap();
            let doms = [d1, d2, d3];
            let vrows: Vec<Vec<u64>> = rows.iter().map(|&(a, b, c)| vec![a, b, c]).collect();
            let r = m.relation_from_rows(&doms, &vrows).unwrap();
            let set: std::collections::HashSet<Vec<u64>> = vrows.iter().cloned().collect();
            prop_assert_eq!(m.tuple_count(r, &doms).unwrap(), set.len() as f64);
            for a in 0..11u64 {
                for b in 0..7u64 {
                    for c in 0..5u64 {
                        let t = vec![a, b, c];
                        prop_assert_eq!(m.contains(r, &doms, &t).unwrap(), set.contains(&t));
                    }
                }
            }
        }

        #[test]
        fn build_strategies_agree(
            rows in proptest::collection::vec((0u64..16, 0u64..9), 0..60)
        ) {
            let mut m = BddManager::new();
            let d1 = m.add_domain(16).unwrap();
            let d2 = m.add_domain(9).unwrap();
            let doms = [d1, d2];
            let vrows: Vec<Vec<u64>> = rows.iter().map(|&(a, b)| vec![a, b]).collect();
            let fast = m.relation_from_rows_sorted(&doms, &vrows).unwrap();
            let fold = m.relation_from_rows_or_fold(&doms, &vrows).unwrap();
            prop_assert_eq!(fast, fold);
        }

        #[test]
        fn insert_then_delete_is_identity(
            rows in proptest::collection::vec((0u64..10, 0u64..10), 1..40),
            extra in (0u64..10, 0u64..10)
        ) {
            let mut m = BddManager::new();
            let d1 = m.add_domain(10).unwrap();
            let d2 = m.add_domain(10).unwrap();
            let doms = [d1, d2];
            let vrows: Vec<Vec<u64>> = rows.iter().map(|&(a, b)| vec![a, b]).collect();
            let base = m.relation_from_rows(&doms, &vrows).unwrap();
            let t = vec![extra.0, extra.1];
            let already = m.contains(base, &doms, &t).unwrap();
            let inserted = m.insert_row(base, &doms, &t).unwrap();
            prop_assert!(m.contains(inserted, &doms, &t).unwrap());
            let deleted = m.delete_row(inserted, &doms, &t).unwrap();
            if already {
                // delete removes it even if it pre-existed
                prop_assert!(!m.contains(deleted, &doms, &t).unwrap());
            } else {
                prop_assert_eq!(deleted, base);
            }
        }

        #[test]
        fn rows_round_trip(
            rows in proptest::collection::vec((0u64..12, 0u64..6), 0..50)
        ) {
            let mut m = BddManager::new();
            let d1 = m.add_domain(12).unwrap();
            let d2 = m.add_domain(6).unwrap();
            let doms = [d1, d2];
            let vrows: Vec<Vec<u64>> = rows.iter().map(|&(a, b)| vec![a, b]).collect();
            let r = m.relation_from_rows(&doms, &vrows).unwrap();
            let mut decoded = m.rows(r, &doms).unwrap();
            decoded.sort();
            let mut expected: Vec<Vec<u64>> = vrows.clone();
            expected.sort();
            expected.dedup();
            prop_assert_eq!(decoded, expected);
        }
    }
}
