//! Stress tests: long op/GC interleavings must never corrupt the store.
//!
//! The dangerous interactions in a BDD package are (a) stale operation-
//! cache entries after node recycling, (b) unique-table corruption across
//! sweeps, and (c) node-limit aborts leaving partial structures. These
//! tests hammer those paths for thousands of iterations and re-verify
//! semantics after every step.

use relcheck_bdd::{Bdd, BddError, BddManager, DomainId};

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

#[test]
fn gc_churn_preserves_semantics() {
    let mut m = BddManager::with_capacity(1 << 12);
    let d1 = m.add_domain(32).unwrap();
    let d2 = m.add_domain(32).unwrap();
    let doms = [d1, d2];
    // A reference relation we re-verify after every sweep.
    let reference: Vec<Vec<u64>> = (0..200u64).map(|i| vec![i % 32, i / 32]).collect(); // injective
    let keep = m.relation_from_rows(&doms, &reference).unwrap();
    let mut seed = 42u64;
    for round in 0..300 {
        // Create garbage of varying shape.
        let n = 1 + (lcg(&mut seed) % 50) as usize;
        let rows: Vec<Vec<u64>> = (0..n)
            .map(|_| vec![lcg(&mut seed) % 32, lcg(&mut seed) % 32])
            .collect();
        let junk = m.relation_from_rows(&doms, &rows).unwrap();
        let combined = m.or(keep, junk).unwrap();
        let _ = m.diff(combined, keep).unwrap();
        if round % 3 == 0 {
            let stats = m.gc(&[keep]);
            assert_eq!(stats.live, m.live_nodes());
        }
        // Semantics check against the reference set.
        let count = m.tuple_count(keep, &doms).unwrap();
        assert_eq!(count, 200.0, "round {round}: reference relation corrupted");
        if round % 50 == 0 {
            for t in reference.iter().take(10) {
                assert!(m.contains(keep, &doms, t).unwrap());
            }
        }
    }
    // Arena stays bounded: everything beyond the kept relation is reused.
    m.gc(&[keep]);
    assert!(
        m.live_nodes() < 4_000,
        "leak: {} live nodes for a 200-tuple relation",
        m.live_nodes()
    );
}

#[test]
fn node_limit_aborts_under_churn_never_corrupt() {
    let mut m = BddManager::with_capacity(1 << 12);
    let doms: Vec<DomainId> = (0..3).map(|_| m.add_domain(64).unwrap()).collect();
    let base_rows: Vec<Vec<u64>> = (0..100u64)
        .map(|i| vec![i % 64, i / 64, (i * 5) % 64])
        .collect(); // injective
    let base = m.relation_from_rows(&doms, &base_rows).unwrap();
    let mut seed = 7u64;
    let mut aborts = 0;
    for _ in 0..200 {
        // Tight, randomly varying limit: some ops succeed, some abort.
        let headroom = (lcg(&mut seed) % 300) as usize;
        m.set_node_limit(Some(m.live_nodes() + headroom));
        let rows: Vec<Vec<u64>> = (0..80)
            .map(|_| {
                vec![
                    lcg(&mut seed) % 64,
                    lcg(&mut seed) % 64,
                    lcg(&mut seed) % 64,
                ]
            })
            .collect();
        match m
            .relation_from_rows(&doms, &rows)
            .and_then(|r| m.or(base, r))
        {
            Ok(_) | Err(BddError::NodeLimit { .. }) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
        if matches!(
            m.relation_from_rows(&doms, &rows),
            Err(BddError::NodeLimit { .. })
        ) {
            aborts += 1;
        }
        m.set_node_limit(None);
        m.gc(&[base]);
        assert_eq!(m.tuple_count(base, &doms).unwrap(), 100.0);
    }
    assert!(
        aborts > 0,
        "the stress must actually exercise the abort path"
    );
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn compaction_churn_preserves_semantics_and_layout() {
    // Randomized build/insert/delete/GC/compact interleavings. After every
    // compaction: the free list is fully squeezed out (arena slots == live
    // nodes), the remapped root still matches the reference model, and the
    // manager keeps allocating correctly (free-list integrity via reuse).
    for seed0 in 0..4u64 {
        let mut m = BddManager::with_capacity(1 << 10);
        let d1 = m.add_domain(32).unwrap();
        let d2 = m.add_domain(32).unwrap();
        let doms = [d1, d2];
        let mut root = Bdd::FALSE;
        let mut model: std::collections::BTreeSet<(u64, u64)> = Default::default();
        let mut seed = 0xC0FFEE ^ seed0;
        for round in 0..150 {
            let row = [splitmix(&mut seed) % 32, splitmix(&mut seed) % 32];
            if splitmix(&mut seed).is_multiple_of(3) {
                root = m.delete_row(root, &doms, &row).unwrap();
                model.remove(&(row[0], row[1]));
            } else {
                root = m.insert_row(root, &doms, &row).unwrap();
                model.insert((row[0], row[1]));
            }
            // Garbage of varying shape.
            let junk_rows: Vec<Vec<u64>> = (0..(1 + splitmix(&mut seed) % 20))
                .map(|_| vec![splitmix(&mut seed) % 32, splitmix(&mut seed) % 32])
                .collect();
            let junk = m.relation_from_rows(&doms, &junk_rows).unwrap();
            let _ = m.xor(root, junk).unwrap();
            match round % 5 {
                0 => {
                    let stats = m.gc(&[root]);
                    assert_eq!(stats.live, m.live_nodes(), "round {round}: mark/live");
                }
                2 => {
                    let mut roots = [root];
                    let stats = m.compact(&mut roots);
                    root = roots[0];
                    assert_eq!(stats.live, m.live_nodes(), "round {round}: compact live");
                    assert_eq!(
                        m.arena_slots(),
                        m.live_nodes(),
                        "round {round}: compaction left free slots"
                    );
                }
                _ => {}
            }
            assert_eq!(
                m.tuple_count(root, &doms).unwrap(),
                model.len() as f64,
                "seed {seed0} round {round}: root diverged from model"
            );
        }
        // Full-universe membership equality at the end.
        for a in 0..32u64 {
            for b in 0..32u64 {
                assert_eq!(
                    m.contains(root, &doms, &[a, b]).unwrap(),
                    model.contains(&(a, b)),
                    "seed {seed0}: membership of ({a},{b})"
                );
            }
        }
    }
}

#[test]
fn serialize_round_trip_is_stable_across_compaction() {
    // The export frame is structural (post-order ids), so compaction —
    // which relocates handles but not structure — must leave the encoded
    // bytes identical, and the decoded copy semantically equal. This is
    // what keeps IndexStore warm starts frame-compatible with the arena.
    let mut m = BddManager::new();
    let doms = [m.add_domain(64).unwrap(), m.add_domain(64).unwrap()];
    let mut seed = 99u64;
    let rows: Vec<Vec<u64>> = (0..300)
        .map(|_| vec![splitmix(&mut seed) % 64, splitmix(&mut seed) % 64])
        .collect();
    let mut root = m.relation_from_rows(&doms, &rows).unwrap();
    // Junk, then poison the arena with freed slots.
    let junk = m
        .relation_from_rows(&doms, &[vec![1, 2], vec![3, 4]])
        .unwrap();
    let _ = m.and(root, junk).unwrap();
    m.gc(&[root]);
    let before = m.export_relation(root, &doms).unwrap();
    let mut handles = [root];
    let stats = m.compact(&mut handles);
    root = handles[0];
    assert!(stats.relocated > 0 || stats.reclaimed_slots > 0);
    let after = m.export_relation(root, &doms).unwrap();
    assert_eq!(
        before.to_bytes(),
        after.to_bytes(),
        "compaction changed the serialized frame"
    );
    // Round-trip into a fresh manager agrees on count and membership.
    let mut m2 = BddManager::new();
    let (doms2, root2) = m2.import_relation(&after).unwrap();
    assert_eq!(
        m.tuple_count(root, &doms).unwrap(),
        m2.tuple_count(root2, &doms2).unwrap()
    );
    for row in rows.iter().take(25) {
        assert!(m2.contains(root2, &doms2, row).unwrap());
    }
}

#[test]
fn compaction_after_node_limit_aborts_never_corrupts() {
    let mut m = BddManager::with_capacity(1 << 10);
    let doms: Vec<DomainId> = (0..3).map(|_| m.add_domain(64).unwrap()).collect();
    let base_rows: Vec<Vec<u64>> = (0..100u64)
        .map(|i| vec![i % 64, i / 64, (i * 7) % 64])
        .collect();
    let mut base = m.relation_from_rows(&doms, &base_rows).unwrap();
    let mut seed = 17u64;
    let mut aborts = 0;
    for round in 0..120 {
        let headroom = (splitmix(&mut seed) % 250) as usize;
        m.set_node_limit(Some(m.live_nodes() + headroom));
        let rows: Vec<Vec<u64>> = (0..60)
            .map(|_| (0..3).map(|_| splitmix(&mut seed) % 64).collect())
            .collect();
        match m
            .relation_from_rows(&doms, &rows)
            .and_then(|r| m.or(base, r))
        {
            Ok(_) => {}
            Err(BddError::NodeLimit { .. }) => aborts += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
        m.set_node_limit(None);
        // Compact right after a possibly-partial structure was abandoned.
        let mut roots = [base];
        m.compact(&mut roots);
        base = roots[0];
        assert_eq!(
            m.tuple_count(base, &doms).unwrap(),
            100.0,
            "round {round}: base corrupted after abort+compact"
        );
        assert_eq!(m.arena_slots(), m.live_nodes());
    }
    assert!(aborts > 0, "the stress must exercise the abort path");
}

#[test]
fn canonicity_survives_recycling() {
    // Build the same function repeatedly across GC cycles; the handle must
    // be bit-identical within a generation and semantically identical
    // across generations.
    let mut m = BddManager::new();
    let d = m.add_domain(100).unwrap();
    let rows: Vec<Vec<u64>> = (0..50u64).map(|i| vec![(i * 13) % 100]).collect();
    let mut prev_count = None;
    for _ in 0..50 {
        let a = m.relation_from_rows(&[d], &rows).unwrap();
        let b = m.relation_from_rows(&[d], &rows).unwrap();
        assert_eq!(a, b, "canonicity within a generation");
        let count = m.tuple_count(a, &[d]).unwrap();
        if let Some(p) = prev_count {
            assert_eq!(count, p);
        }
        prev_count = Some(count);
        m.gc(&[]); // drop everything
    }
}

#[test]
fn deep_formula_chain_is_stack_safe() {
    // 10k chained operations on a 40-bit space: exercises recursion depth
    // (bounded by variable count, not operation count) and cache pressure.
    let mut m = BddManager::with_capacity(1 << 14);
    let doms: Vec<DomainId> = (0..4).map(|_| m.add_domain(1024).unwrap()).collect();
    let mut acc = Bdd::FALSE;
    let mut seed = 3u64;
    for i in 0..10_000u64 {
        let row: Vec<u64> = (0..4).map(|_| lcg(&mut seed) % 1024).collect();
        acc = if i % 3 == 2 {
            m.delete_row(acc, &doms, &row).unwrap()
        } else {
            m.insert_row(acc, &doms, &row).unwrap()
        };
        if i % 2_000 == 1_999 {
            m.gc(&[acc]);
        }
    }
    let count = m.tuple_count(acc, &doms).unwrap();
    assert!(count > 0.0 && count <= 10_000.0);
}
