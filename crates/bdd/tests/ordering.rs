//! Ordering-invariance oracle.
//!
//! The ground truth that makes `bdd::order` safe to tune: a relation's
//! characteristic function is *semantically* identical under every block
//! ordering — only its node count changes. For randomized relations this
//! suite pins that tuple counts and full-universe membership agree across
//! all `order::candidates` shapes (under randomized workload weights) and
//! across random permutations, so any pick the adaptive scorer makes can
//! change speed but never an answer.

use relcheck_bdd::{order, Bdd, BddManager, DomainId};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Build `rows` under the given column ordering in a fresh manager.
fn build(ordering: &[usize], sizes: &[u64], rows: &[Vec<u64>]) -> (BddManager, Vec<DomainId>, Bdd) {
    let mut m = BddManager::new();
    let mut domains: Vec<Option<DomainId>> = vec![None; sizes.len()];
    for &col in ordering {
        domains[col] = Some(m.add_domain(sizes[col]).unwrap());
    }
    let domains: Vec<DomainId> = domains.into_iter().map(Option::unwrap).collect();
    let root = m.relation_from_rows(&domains, rows).unwrap();
    (m, domains, root)
}

fn random_permutation(arity: usize, seed: &mut u64) -> Vec<usize> {
    let mut p: Vec<usize> = (0..arity).collect();
    for i in (1..arity).rev() {
        let j = (splitmix(seed) % (i as u64 + 1)) as usize;
        p.swap(i, j);
    }
    p
}

#[test]
fn verdicts_and_counts_invariant_across_orderings() {
    for seed0 in 0..6u64 {
        let mut seed = 0xBDD0 + seed0;
        let arity = 2 + (splitmix(&mut seed) % 3) as usize; // 2..=4
        let sizes: Vec<u64> = (0..arity).map(|_| 4 + splitmix(&mut seed) % 29).collect();
        let n_rows = 20 + (splitmix(&mut seed) % 150) as usize;
        let rows: Vec<Vec<u64>> = (0..n_rows)
            .map(|_| sizes.iter().map(|&s| splitmix(&mut seed) % s).collect())
            .collect();
        // Reference: schema order.
        let schema: Vec<usize> = (0..arity).collect();
        let (mut m_ref, doms_ref, root_ref) = build(&schema, &sizes, &rows);
        let want_count = m_ref.tuple_count(root_ref, &doms_ref).unwrap();
        // Candidates under randomized workload weights, plus random
        // permutations: every ordering must agree exactly.
        let weights: Vec<u64> = (0..arity).map(|_| splitmix(&mut seed) % 100).collect();
        let bits: Vec<u32> = sizes.iter().map(|&s| order::block_bits(s)).collect();
        let mut orderings: Vec<Vec<usize>> = order::candidates(&weights)
            .into_iter()
            .map(|(_, o)| o)
            .collect();
        orderings.push(order::choose(&weights, &bits).1);
        for _ in 0..3 {
            orderings.push(random_permutation(arity, &mut seed));
        }
        for ordering in &orderings {
            let (mut m, doms, root) = build(ordering, &sizes, &rows);
            assert_eq!(
                m.tuple_count(root, &doms).unwrap(),
                want_count,
                "seed {seed0}: count diverged under {ordering:?}"
            );
            // Membership must agree on every inserted row and on a random
            // sample of the rest of the universe (mostly negatives).
            for row in rows.iter().take(20) {
                assert!(m.contains(root, &doms, row).unwrap());
            }
            for _ in 0..60 {
                let probe: Vec<u64> = sizes.iter().map(|&s| splitmix(&mut seed) % s).collect();
                assert_eq!(
                    m.contains(root, &doms, &probe).unwrap(),
                    m_ref.contains(root_ref, &doms_ref, &probe).unwrap(),
                    "seed {seed0}: membership of {probe:?} diverged under {ordering:?}"
                );
            }
        }
    }
}

#[test]
fn block_bits_matches_domain_allocation() {
    let mut m = BddManager::new();
    for size in [1u64, 2, 3, 4, 5, 16, 17, 100, 1024, 1025] {
        let before = m.num_vars();
        m.add_domain(size).unwrap();
        let declared = m.num_vars() - before;
        assert_eq!(
            declared,
            order::block_bits(size),
            "width mismatch for size {size}"
        );
    }
}

#[test]
fn adaptive_pick_never_changes_serialized_semantics() {
    // Export/import across differently-ordered managers: the decoded copy
    // answers identically, so snapshot transfer is ordering-agnostic too.
    let mut seed = 7u64;
    let sizes = [32u64, 8, 50];
    let rows: Vec<Vec<u64>> = (0..120)
        .map(|_| sizes.iter().map(|&s| splitmix(&mut seed) % s).collect())
        .collect();
    let weights = [90u64, 5, 40];
    let bits: Vec<u32> = sizes.iter().map(|&s| order::block_bits(s)).collect();
    let (_, adaptive) = order::choose(&weights, &bits);
    let schema = vec![0, 1, 2];
    let (m_a, doms_a, root_a) = build(&adaptive, &sizes, &rows);
    let (m_s, doms_s, root_s) = build(&schema, &sizes, &rows);
    let snap_a = m_a.export_relation(root_a, &doms_a).unwrap();
    let snap_s = m_s.export_relation(root_s, &doms_s).unwrap();
    let mut fresh_a = BddManager::new();
    let (fd_a, fr_a) = fresh_a.import_relation(&snap_a).unwrap();
    let mut fresh_s = BddManager::new();
    let (fd_s, fr_s) = fresh_s.import_relation(&snap_s).unwrap();
    assert_eq!(
        fresh_a.tuple_count(fr_a, &fd_a).unwrap(),
        fresh_s.tuple_count(fr_s, &fd_s).unwrap()
    );
    for _ in 0..100 {
        let probe: Vec<u64> = sizes.iter().map(|&s| splitmix(&mut seed) % s).collect();
        assert_eq!(
            fresh_a.contains(fr_a, &fd_a, &probe).unwrap(),
            fresh_s.contains(fr_s, &fd_s, &probe).unwrap(),
            "probe {probe:?}"
        );
    }
}
