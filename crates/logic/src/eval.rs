//! Brute-force model-theoretic evaluation of constraints.
//!
//! Quantifiers range over the **active domain** of the variable's inferred
//! attribute class (all codes in the class dictionary) — the same universe
//! the BDD finite-domain encoding uses, so this evaluator is the semantics
//! oracle for both the BDD compiler and the SQL translator. Cost is
//! exponential in quantifier depth; use it on small databases (tests) only.

use crate::ast::{Formula, Term};
use crate::error::{LogicError, Result};
use crate::sorts::infer_sorts;
use crate::transform::standardize_apart;
use relcheck_relstore::Database;
#[cfg(test)]
use relcheck_relstore::Raw;
use std::collections::{HashMap, HashSet};

/// Prepared evaluation context: inferred sorts plus hashed relation extents.
pub struct EvalContext<'a> {
    db: &'a Database,
    sorts: HashMap<String, String>,
    extents: HashMap<String, HashSet<Vec<u32>>>,
    formula: Formula,
}

impl<'a> EvalContext<'a> {
    /// Prepare a sentence for evaluation (standardizes apart, infers sorts,
    /// hashes the extents of every mentioned relation).
    pub fn new(db: &'a Database, f: &Formula) -> Result<EvalContext<'a>> {
        let free = f.free_vars();
        if !free.is_empty() {
            return Err(LogicError::FreeVariables(free));
        }
        Self::open(db, f)
    }

    /// Prepare an **open** formula — free variables allowed — for
    /// evaluation under explicitly supplied environments (see
    /// [`eval_with`]). This is the audit re-checker's entry point: a
    /// witness substitution binds a constraint's outer universals directly,
    /// without enumerating their domains. Fails with
    /// [`LogicError::UnsortedVariable`] when a free variable's attribute
    /// class cannot be inferred from the formula itself.
    ///
    /// [`eval_with`]: EvalContext::eval_with
    pub fn open(db: &'a Database, f: &Formula) -> Result<EvalContext<'a>> {
        // standardize_apart seeds its used-name set with the free
        // variables, so bound variables shadowing a free name are always
        // freshened — a caller-supplied binding can never be captured.
        let f = standardize_apart(f);
        let sorts = infer_sorts(db, &f)?;
        let mut extents = HashMap::new();
        collect_relations(&f, &mut |name| {
            if !extents.contains_key(name) {
                let rel = db.relation(name).expect("sorts checked relations exist");
                extents.insert(name.to_owned(), rel.rows().collect());
            }
        });
        Ok(EvalContext {
            db,
            sorts,
            extents,
            formula: f,
        })
    }

    /// The inferred sorts (variable → attribute class).
    pub fn sorts(&self) -> &HashMap<String, String> {
        &self.sorts
    }

    /// Decide the sentence.
    pub fn eval(&self) -> bool {
        self.eval_with(&HashMap::new())
    }

    /// Evaluate under a pre-seeded environment mapping free variables to
    /// dictionary codes. `env` must bind every free variable of the
    /// formula; codes must come from the class each variable was inferred
    /// at ([`sorts`]).
    ///
    /// [`sorts`]: EvalContext::sorts
    pub fn eval_with(&self, env: &HashMap<String, u32>) -> bool {
        debug_assert!(
            self.formula.free_vars().iter().all(|v| env.contains_key(v)),
            "eval_with: environment must bind every free variable"
        );
        let mut env = env.clone();
        self.eval_rec(&self.formula.clone(), &mut env)
    }

    fn term_code(&self, t: &Term, class: &str, env: &HashMap<String, u32>) -> Option<u32> {
        match t {
            Term::Var(v) => env.get(v).copied(),
            Term::Const(raw) => self.db.code(class, raw),
        }
    }

    fn eval_rec(&self, f: &Formula, env: &mut HashMap<String, u32>) -> bool {
        match f {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom { relation, args } => {
                let rel = self.db.relation(relation).expect("checked");
                let mut row = Vec::with_capacity(args.len());
                for (i, t) in args.iter().enumerate() {
                    match self.term_code(t, rel.schema().class_of(i), env) {
                        Some(c) => row.push(c),
                        // A constant outside the active domain can never be
                        // in the relation.
                        None => return false,
                    }
                }
                self.extents[relation].contains(&row)
            }
            Formula::Eq(a, b) => {
                // Determine a class for constant resolution: from whichever
                // side is a variable (both-constant equality compares raws).
                match (a, b) {
                    (Term::Const(x), Term::Const(y)) => x == y,
                    _ => {
                        let class = [a, b]
                            .iter()
                            .find_map(|t| match t {
                                Term::Var(v) => self.sorts.get(v).cloned(),
                                _ => None,
                            })
                            .expect("sort inference covered all variables");
                        match (
                            self.term_code(a, &class, env),
                            self.term_code(b, &class, env),
                        ) {
                            (Some(x), Some(y)) => x == y,
                            _ => false,
                        }
                    }
                }
            }
            Formula::InSet(t, vals) => match t {
                Term::Const(raw) => vals.contains(raw),
                Term::Var(v) => {
                    let class = &self.sorts[v];
                    let code = env[v];
                    vals.iter()
                        .any(|raw| self.db.code(class, raw) == Some(code))
                }
            },
            Formula::Not(g) => !self.eval_rec(g, env),
            Formula::And(fs) => fs.iter().all(|g| self.eval_rec(g, env)),
            Formula::Or(fs) => fs.iter().any(|g| self.eval_rec(g, env)),
            Formula::Implies(a, b) => !self.eval_rec(a, env) || self.eval_rec(b, env),
            Formula::Exists(vs, g) => self.eval_quant(vs, g, env, true),
            Formula::Forall(vs, g) => self.eval_quant(vs, g, env, false),
        }
    }

    fn eval_quant(
        &self,
        vs: &[String],
        body: &Formula,
        env: &mut HashMap<String, u32>,
        is_exists: bool,
    ) -> bool {
        fn rec(
            ctx: &EvalContext<'_>,
            vs: &[String],
            body: &Formula,
            env: &mut HashMap<String, u32>,
            is_exists: bool,
        ) -> bool {
            let Some(v) = vs.first() else {
                return ctx.eval_rec(body, env);
            };
            let class = &ctx.sorts[v];
            // Active domains are never empty: an unpopulated class behaves
            // as the singleton {0}, matching the BDD side (finite-domain
            // blocks have at least one value).
            let size = ctx.db.class_size(class).max(1) as u32;
            for code in 0..size {
                env.insert(v.clone(), code);
                let r = rec(ctx, &vs[1..], body, env, is_exists);
                if r == is_exists {
                    env.remove(v);
                    return is_exists;
                }
            }
            env.remove(v);
            !is_exists
        }
        rec(self, vs, body, env, is_exists)
    }
}

fn collect_relations(f: &Formula, visit: &mut impl FnMut(&str)) {
    match f {
        Formula::Atom { relation, .. } => visit(relation),
        Formula::Not(g) => collect_relations(g, visit),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|g| collect_relations(g, visit)),
        Formula::Implies(a, b) => {
            collect_relations(a, visit);
            collect_relations(b, visit);
        }
        Formula::Exists(_, g) | Formula::Forall(_, g) => collect_relations(g, visit),
        _ => {}
    }
}

/// Convenience: prepare and evaluate in one call.
pub fn eval_sentence(db: &Database, f: &Formula) -> Result<bool> {
    Ok(EvalContext::new(db, f)?.eval())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            "CUST",
            &[("city", "city"), ("areacode", "areacode")],
            vec![
                vec![Raw::str("Toronto"), Raw::Int(416)],
                vec![Raw::str("Toronto"), Raw::Int(647)],
                vec![Raw::str("Oshawa"), Raw::Int(905)],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn satisfied_membership_constraint() {
        let db = db();
        let f =
            parse(r#"forall c, a. CUST(c, a) & c = "Toronto" -> a in {416, 647, 905}"#).unwrap();
        assert!(eval_sentence(&db, &f).unwrap());
    }

    #[test]
    fn violated_membership_constraint() {
        let db = db();
        let f = parse(r#"forall c, a. CUST(c, a) & c = "Toronto" -> a in {416}"#).unwrap();
        assert!(!eval_sentence(&db, &f).unwrap());
    }

    #[test]
    fn exists_is_witnessed() {
        let db = db();
        assert!(
            eval_sentence(&db, &parse(r#"exists c, a. CUST(c, a) & a = 905"#).unwrap()).unwrap()
        );
        assert!(
            !eval_sentence(&db, &parse(r#"exists c, a. CUST(c, a) & a = 212"#).unwrap()).unwrap()
        );
    }

    #[test]
    fn constant_outside_active_domain_is_false_atom() {
        let db = db();
        let f = parse(r#"exists a. CUST("Nowhere", a)"#).unwrap();
        assert!(!eval_sentence(&db, &f).unwrap());
    }

    #[test]
    fn open_context_evaluates_witness_substitutions() {
        let db = db();
        // Matrix of: forall c, a. CUST(c, a) & c = "Toronto" -> a in {416}.
        let body = parse(r#"CUST(c, a) & c = "Toronto" -> a in {416}"#).unwrap();
        let ctx = EvalContext::open(&db, &body).unwrap();
        assert_eq!(ctx.sorts()["c"], "city");
        assert_eq!(ctx.sorts()["a"], "areacode");
        let code = |class: &str, raw: &Raw| db.code(class, raw).unwrap();
        let env = |city: &str, area: i64| {
            HashMap::from([
                ("c".to_owned(), code("city", &Raw::str(city))),
                ("a".to_owned(), code("areacode", &Raw::Int(area))),
            ])
        };
        // (Toronto, 647) falsifies the matrix — a genuine witness.
        assert!(!ctx.eval_with(&env("Toronto", 647)));
        // (Toronto, 416) and (Oshawa, 905) satisfy it.
        assert!(ctx.eval_with(&env("Toronto", 416)));
        assert!(ctx.eval_with(&env("Oshawa", 905)));
        // A bound variable shadowing a free name is freshened, so the
        // outer binding survives evaluation of the inner scope: if the
        // inner `a` were not renamed, its scope exit would unbind the
        // free `a` and the second conjunct could never hold.
        let shadow = parse("(exists a. CUST(c, a) & a = 647) & CUST(c, a)").unwrap();
        let ctx2 = EvalContext::open(&db, &shadow).unwrap();
        assert!(ctx2.eval_with(&env("Toronto", 416)));
        assert!(!ctx2.eval_with(&env("Oshawa", 905)));
        // A free variable sorted only through an equality with a constant
        // is rejected, not guessed.
        let unsortable = parse(r#"(exists c. CUST(c, a)) & c = "Toronto""#).unwrap();
        assert!(matches!(
            EvalContext::open(&db, &unsortable),
            Err(LogicError::UnsortedVariable(_))
        ));
    }

    #[test]
    fn free_variables_rejected() {
        let db = db();
        let f = parse("CUST(c, a)").unwrap();
        assert!(matches!(
            eval_sentence(&db, &f),
            Err(LogicError::FreeVariables(_))
        ));
    }

    #[test]
    fn nested_quantifiers_inclusion_dependency() {
        let mut db = db();
        db.create_relation(
            "KNOWN_CITY",
            &[("city", "city")],
            vec![vec![Raw::str("Toronto")], vec![Raw::str("Oshawa")]],
        )
        .unwrap();
        // Every customer's city is a known city.
        let f = parse("forall c, a. CUST(c, a) -> KNOWN_CITY(c)").unwrap();
        assert!(eval_sentence(&db, &f).unwrap());
        // Every known city has a customer with areacode 416? Only Toronto.
        let g = parse("forall c. KNOWN_CITY(c) -> exists a. (CUST(c, a) & a = 416)").unwrap();
        assert!(!eval_sentence(&db, &g).unwrap());
    }

    #[test]
    fn transforms_preserve_semantics_on_examples() {
        use crate::transform::{push_forall_down, simplify, standardize_apart, to_nnf};
        let db = db();
        for src in [
            r#"forall c, a. CUST(c, a) & c = "Toronto" -> a in {416, 647}"#,
            r#"exists c. forall a. CUST(c, a) -> a = 416"#,
            r#"!(exists c, a. CUST(c, a) & a = 212)"#,
            r#"forall c. (exists a. CUST(c, a)) -> exists a. (CUST(c, a) & a != 212)"#,
        ] {
            let f = parse(src).unwrap();
            let expected = eval_sentence(&db, &f).unwrap();
            for (name, g) in [
                ("nnf", to_nnf(&f)),
                ("std", standardize_apart(&f)),
                ("push", push_forall_down(&f)),
                ("simplify", simplify(&f)),
            ] {
                assert_eq!(
                    eval_sentence(&db, &g).unwrap(),
                    expected,
                    "{name} changed semantics of {src}"
                );
            }
            // Prenex: rebuild a formula from prefix + matrix.
            let p = crate::transform::to_prenex(&f);
            let mut rebuilt = p.matrix.clone();
            for (q, v) in p.prefix.iter().rev() {
                rebuilt = match q {
                    crate::transform::Quant::Exists => {
                        Formula::Exists(vec![v.clone()], Box::new(rebuilt))
                    }
                    crate::transform::Quant::Forall => {
                        Formula::Forall(vec![v.clone()], Box::new(rebuilt))
                    }
                };
            }
            assert_eq!(
                eval_sentence(&db, &rebuilt).unwrap(),
                expected,
                "prenex changed semantics of {src}"
            );
        }
    }
}
