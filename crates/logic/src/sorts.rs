//! Sort inference: assigning an attribute class to every variable.
//!
//! A first-order variable ranges over the active domain of some attribute
//! class; which class is derived from the relation positions the variable
//! occurs in, propagated through equalities (`x = y` forces equal classes).
//! Inference fails when a variable is used at two different classes or
//! appears only in comparisons with constants.
//!
//! Run this on formulas whose bound variables have distinct names (see
//! [`crate::transform::standardize_apart`]) — two same-named variables in
//! different scopes would otherwise be conflated.

use crate::ast::{Formula, Term};
use crate::error::{LogicError, Result};
use relcheck_relstore::Database;
use std::collections::HashMap;

/// Infer the attribute class of every variable in `f`.
pub fn infer_sorts(db: &Database, f: &Formula) -> Result<HashMap<String, String>> {
    let mut sorts: HashMap<String, String> = HashMap::new();
    // Equality edges to propagate through (a tiny union by fixpoint; the
    // graphs here are a handful of nodes).
    let mut edges: Vec<(String, String)> = Vec::new();
    collect(db, f, &mut sorts, &mut edges)?;
    // Propagate classes across equality edges until stable.
    loop {
        let mut changed = false;
        for (a, b) in &edges {
            match (sorts.get(a).cloned(), sorts.get(b).cloned()) {
                (Some(ca), Some(cb)) => {
                    if ca != cb {
                        return Err(LogicError::SortConflict {
                            var: b.clone(),
                            first: cb,
                            second: ca,
                        });
                    }
                }
                (Some(ca), None) => {
                    sorts.insert(b.clone(), ca);
                    changed = true;
                }
                (None, Some(cb)) => {
                    sorts.insert(a.clone(), cb);
                    changed = true;
                }
                (None, None) => {}
            }
        }
        if !changed {
            break;
        }
    }
    // Every variable mentioned anywhere must have a sort.
    check_all_sorted(f, &sorts)?;
    Ok(sorts)
}

fn assign(sorts: &mut HashMap<String, String>, var: &str, class: &str) -> Result<()> {
    match sorts.get(var) {
        Some(existing) if existing != class => Err(LogicError::SortConflict {
            var: var.to_owned(),
            first: existing.clone(),
            second: class.to_owned(),
        }),
        Some(_) => Ok(()),
        None => {
            sorts.insert(var.to_owned(), class.to_owned());
            Ok(())
        }
    }
}

fn collect(
    db: &Database,
    f: &Formula,
    sorts: &mut HashMap<String, String>,
    edges: &mut Vec<(String, String)>,
) -> Result<()> {
    match f {
        Formula::True | Formula::False => Ok(()),
        Formula::Atom { relation, args } => {
            let rel = db
                .relation(relation)
                .map_err(|_| LogicError::UnknownRelation(relation.clone()))?;
            if args.len() != rel.arity() {
                return Err(LogicError::AtomArityMismatch {
                    relation: relation.clone(),
                    expected: rel.arity(),
                    got: args.len(),
                });
            }
            for (i, t) in args.iter().enumerate() {
                if let Term::Var(v) = t {
                    assign(sorts, v, rel.schema().class_of(i))?;
                }
            }
            Ok(())
        }
        Formula::Eq(Term::Var(a), Term::Var(b)) => {
            edges.push((a.clone(), b.clone()));
            Ok(())
        }
        Formula::Eq(..) | Formula::InSet(..) => Ok(()),
        Formula::Not(g) => collect(db, g, sorts, edges),
        Formula::And(fs) | Formula::Or(fs) => {
            for g in fs {
                collect(db, g, sorts, edges)?;
            }
            Ok(())
        }
        Formula::Implies(a, b) => {
            collect(db, a, sorts, edges)?;
            collect(db, b, sorts, edges)
        }
        Formula::Exists(_, g) | Formula::Forall(_, g) => collect(db, g, sorts, edges),
    }
}

fn check_all_sorted(f: &Formula, sorts: &HashMap<String, String>) -> Result<()> {
    let check_term = |t: &Term| -> Result<()> {
        if let Term::Var(v) = t {
            if !sorts.contains_key(v) {
                return Err(LogicError::UnsortedVariable(v.clone()));
            }
        }
        Ok(())
    };
    match f {
        Formula::True | Formula::False => Ok(()),
        Formula::Atom { args, .. } => args.iter().try_for_each(check_term),
        Formula::Eq(a, b) => {
            check_term(a)?;
            check_term(b)
        }
        Formula::InSet(t, _) => check_term(t),
        Formula::Not(g) => check_all_sorted(g, sorts),
        Formula::And(fs) | Formula::Or(fs) => {
            fs.iter().try_for_each(|g| check_all_sorted(g, sorts))
        }
        Formula::Implies(a, b) => {
            check_all_sorted(a, sorts)?;
            check_all_sorted(b, sorts)
        }
        Formula::Exists(vs, g) | Formula::Forall(vs, g) => {
            for v in vs {
                if !sorts.contains_key(v) {
                    return Err(LogicError::UnsortedVariable(v.clone()));
                }
            }
            check_all_sorted(g, sorts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use relcheck_relstore::Raw;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            "R",
            &[("city", "city"), ("state", "state")],
            vec![vec![Raw::str("Toronto"), Raw::str("ON")]],
        )
        .unwrap();
        db.create_relation("S", &[("state", "state")], vec![vec![Raw::str("ON")]])
            .unwrap();
        db
    }

    #[test]
    fn sorts_from_atom_positions() {
        let db = db();
        let f = parse("forall c, s. R(c, s) -> S(s)").unwrap();
        let sorts = infer_sorts(&db, &f).unwrap();
        assert_eq!(sorts["c"], "city");
        assert_eq!(sorts["s"], "state");
    }

    #[test]
    fn sorts_propagate_through_equality() {
        let db = db();
        let f = parse("forall c, s, t. R(c, s) & t = s -> S(t)").unwrap();
        let sorts = infer_sorts(&db, &f).unwrap();
        assert_eq!(sorts["t"], "state");
    }

    #[test]
    fn conflict_detected() {
        let db = db();
        // x used both as city (R pos 0) and state (S pos 0).
        let f = parse("forall x. R(x, x) -> S(x)").unwrap();
        assert!(matches!(
            infer_sorts(&db, &f),
            Err(LogicError::SortConflict { .. })
        ));
    }

    #[test]
    fn unsorted_variable_detected() {
        let db = db();
        let f = parse(r#"forall q. q = "ON""#).unwrap();
        assert!(matches!(
            infer_sorts(&db, &f),
            Err(LogicError::UnsortedVariable(_))
        ));
    }

    #[test]
    fn unknown_relation_detected() {
        let db = db();
        let f = parse("forall x. GHOST(x)").unwrap();
        assert!(matches!(
            infer_sorts(&db, &f),
            Err(LogicError::UnknownRelation(_))
        ));
    }

    #[test]
    fn arity_mismatch_detected() {
        let db = db();
        let f = parse("forall x. R(x)").unwrap();
        assert!(matches!(
            infer_sorts(&db, &f),
            Err(LogicError::AtomArityMismatch {
                expected: 2,
                got: 1,
                ..
            })
        ));
    }

    #[test]
    fn equality_chain_propagates_both_ways() {
        let db = db();
        // u = v, v appears in S: u gets state through the chain.
        let f = parse("forall u, v. u = v & S(v) -> S(u)").unwrap();
        let sorts = infer_sorts(&db, &f).unwrap();
        assert_eq!(sorts["u"], "state");
    }
}
