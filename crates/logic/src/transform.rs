//! Formula transformations — the rewrite rules of Section 4.
//!
//! The pipeline the paper prescribes (§4.4) before building any BDD:
//!
//! 1. **standardize apart** bound variables (unique names, a prerequisite
//!    for capture-free quantifier movement);
//! 2. convert to **prenex normal form** ([`to_prenex`]) — this *is* the
//!    quantifier pull-up rule for both ∃ (Rule 3 / Equation 3) and ∀
//!    (Equation 4);
//! 3. **eliminate the leading quantifier block** ([`strip_leading_block`],
//!    §4.1): a leading ∀-block turns the check into a validity test
//!    (`BDD = TRUE`?), a leading ∃-block into a satisfiability test
//!    (`BDD ≠ FALSE`?) — both O(1) on an ROBDD;
//! 4. **push remaining ∀ into conjunctions** ([`push_forall_down`],
//!    Rule 5): `∀x (φ₁ ∧ φ₂) ⇒ ∀x φ₁ ∧ ∀x φ₂`, because `∀x φᵢ` is usually a
//!    much smaller BDD than `φᵢ`.

use crate::ast::Formula;
use std::collections::HashSet;

/// A quantifier kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quant {
    /// Existential.
    Exists,
    /// Universal.
    Forall,
}

/// A prenex-normal-form formula: quantifier prefix plus quantifier-free
/// matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Prenex {
    /// Outermost-first quantifier prefix.
    pub prefix: Vec<(Quant, String)>,
    /// Quantifier-free matrix.
    pub matrix: Formula,
}

/// What test decides the (quantifier-stripped) constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// Constraint holds iff the compiled BDD is TRUE (leading ∀ dropped).
    Validity,
    /// Constraint holds iff the compiled BDD is not FALSE (leading ∃
    /// dropped, or no quantifiers at all).
    Satisfiability,
}

/// Rename bound variables so each binder introduces a globally unique name.
/// Free variables are untouched, and the **first** binder of each name keeps
/// it (so the common case — a sentence whose binders are already distinct —
/// is the identity, and user-chosen names survive into reports).
pub fn standardize_apart(f: &Formula) -> Formula {
    let mut counter = 0usize;
    let mut used: HashSet<String> = f.free_vars().into_iter().collect();
    rename(f, &mut counter, &used.clone(), &mut used)
}

fn fresh(base: &str, counter: &mut usize, used: &mut HashSet<String>) -> String {
    loop {
        *counter += 1;
        let cand = format!("{base}_{counter}");
        if used.insert(cand.clone()) {
            return cand;
        }
    }
}

fn rename(
    f: &Formula,
    counter: &mut usize,
    _all: &HashSet<String>,
    used: &mut HashSet<String>,
) -> Formula {
    match f {
        Formula::Exists(vs, g) | Formula::Forall(vs, g) => {
            let mut body = (**g).clone();
            let mut new_vs = Vec::with_capacity(vs.len());
            let mut seen_here: HashSet<&String> = HashSet::new();
            for v in vs {
                // First binder of a name keeps it; later binders (siblings,
                // nested scopes, duplicates in one binder) are freshened.
                let nv = if used.insert(v.clone()) {
                    v.clone()
                } else {
                    fresh(v, counter, used)
                };
                if seen_here.insert(v) && nv != *v {
                    body = body.rename_free(v, &nv);
                }
                new_vs.push(nv);
            }
            let body = rename(&body, counter, _all, used);
            match f {
                Formula::Exists(..) => Formula::Exists(new_vs, Box::new(body)),
                _ => Formula::Forall(new_vs, Box::new(body)),
            }
        }
        Formula::Not(g) => Formula::Not(Box::new(rename(g, counter, _all, used))),
        Formula::And(fs) => {
            Formula::And(fs.iter().map(|g| rename(g, counter, _all, used)).collect())
        }
        Formula::Or(fs) => Formula::Or(fs.iter().map(|g| rename(g, counter, _all, used)).collect()),
        Formula::Implies(a, b) => Formula::Implies(
            Box::new(rename(a, counter, _all, used)),
            Box::new(rename(b, counter, _all, used)),
        ),
        other => other.clone(),
    }
}

/// Negation normal form: `Implies` desugared, negations pushed onto atoms,
/// quantifiers flipped under negation.
pub fn to_nnf(f: &Formula) -> Formula {
    nnf(f, false)
}

fn nnf(f: &Formula, neg: bool) -> Formula {
    match f {
        Formula::True => {
            if neg {
                Formula::False
            } else {
                Formula::True
            }
        }
        Formula::False => {
            if neg {
                Formula::True
            } else {
                Formula::False
            }
        }
        Formula::Atom { .. } | Formula::Eq(..) | Formula::InSet(..) => {
            if neg {
                f.clone().not()
            } else {
                f.clone()
            }
        }
        Formula::Not(g) => nnf(g, !neg),
        Formula::And(fs) => {
            let parts = fs.iter().map(|g| nnf(g, neg)).collect();
            if neg {
                Formula::Or(parts)
            } else {
                Formula::And(parts)
            }
        }
        Formula::Or(fs) => {
            let parts = fs.iter().map(|g| nnf(g, neg)).collect();
            if neg {
                Formula::And(parts)
            } else {
                Formula::Or(parts)
            }
        }
        Formula::Implies(a, b) => {
            // a → b ≡ ¬a ∨ b
            let na = nnf(a, !neg);
            let nb = nnf(b, neg);
            if neg {
                // ¬(a → b) ≡ a ∧ ¬b; nnf(a,!neg)=nnf(a,true)... careful:
                // handled by computing through the equivalence directly:
                Formula::And(vec![nnf(a, false), nnf(b, true)])
            } else {
                Formula::Or(vec![na, nb])
            }
        }
        Formula::Exists(vs, g) => {
            let body = Box::new(nnf(g, neg));
            if neg {
                Formula::Forall(vs.clone(), body)
            } else {
                Formula::Exists(vs.clone(), body)
            }
        }
        Formula::Forall(vs, g) => {
            let body = Box::new(nnf(g, neg));
            if neg {
                Formula::Exists(vs.clone(), body)
            } else {
                Formula::Forall(vs.clone(), body)
            }
        }
    }
}

/// Convert to prenex normal form. Internally standardizes apart and
/// converts to NNF, so any sentence is accepted. This implements the
/// quantifier pull-up of §4.3 (Equations 3 and 4 read left-to-right).
pub fn to_prenex(f: &Formula) -> Prenex {
    let f = standardize_apart(f);
    let f = to_nnf(&f);
    let mut prefix = Vec::new();
    let matrix = pull(&f, &mut prefix);
    Prenex { prefix, matrix }
}

fn pull(f: &Formula, prefix: &mut Vec<(Quant, String)>) -> Formula {
    match f {
        Formula::Exists(vs, g) => {
            prefix.extend(vs.iter().map(|v| (Quant::Exists, v.clone())));
            pull(g, prefix)
        }
        Formula::Forall(vs, g) => {
            prefix.extend(vs.iter().map(|v| (Quant::Forall, v.clone())));
            pull(g, prefix)
        }
        Formula::And(fs) => Formula::And(fs.iter().map(|g| pull(g, prefix)).collect()),
        Formula::Or(fs) => Formula::Or(fs.iter().map(|g| pull(g, prefix)).collect()),
        // NNF leaves only literals below here.
        other => other.clone(),
    }
}

/// Drop the leading quantifier block of one kind (§4.1). Returns the check
/// mode the caller must apply to the remaining formula:
/// `∀x₁∀x₂∃x₃ φ ↦ (Validity, ∃x₃ φ)`; `∃x̄∀y ψ ↦ (Satisfiability, ∀y ψ)`.
pub fn strip_leading_block(p: &Prenex) -> (CheckMode, Prenex) {
    match p.prefix.first() {
        None => (CheckMode::Satisfiability, p.clone()),
        Some(&(q, _)) => {
            let block_len = p.prefix.iter().take_while(|&&(k, _)| k == q).count();
            let mode = if q == Quant::Forall {
                CheckMode::Validity
            } else {
                CheckMode::Satisfiability
            };
            (
                mode,
                Prenex {
                    prefix: p.prefix[block_len..].to_vec(),
                    matrix: p.matrix.clone(),
                },
            )
        }
    }
}

/// Rule 5: distribute universal quantification over conjunction, assigning
/// to each conjunct only the variables it actually uses:
/// `∀x̄ (φ₁ ∧ φ₂) ⇒ ∀x̄₁ φ₁ ∧ ∀x̄₂ φ₂`. Applied recursively.
///
/// Note: the output can bind the same name in several sibling conjuncts.
/// That is deliberate — all copies denote the *same* sorted variable, and
/// the BDD compiler keeps one global variable→domain map — but it means a
/// pushed-down formula is not always independently re-analyzable: a
/// conjunct like `∀y. y = z` has no atom to anchor `y`'s sort once torn
/// from its siblings, so [`crate::infer_sorts`] (after a fresh
/// standardize-apart) may conservatively reject it. Consumers should infer
/// sorts **before** pushing down, as the compiler does.
pub fn push_forall_down(f: &Formula) -> Formula {
    push_forall_down_counted(f, &mut 0)
}

/// [`push_forall_down`] with telemetry: `events` is incremented once per
/// universal block actually distributed across a conjunction (the rule
/// firing count the checker's rewrite traces report).
pub fn push_forall_down_counted(f: &Formula, events: &mut u64) -> Formula {
    let mut eff = PassEffect::default();
    let out = push_forall_down_gated(f, &mut |_, _| true, &mut eff);
    *events += eff.fired;
    out
}

/// Effect record of one gated transform pass: how often the rule actually
/// rewrote a site, and how often its cost gate declined an applicable one.
/// This is the per-pass evidence the planner folds into a `CheckPlan`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassEffect {
    /// Sites the rule rewrote.
    pub fired: u64,
    /// Applicable sites the gate declined (left untouched).
    pub gated: u64,
}

/// [`push_forall_down_counted`] with a **cost gate**: at every applicable
/// site — a universal block directly over a conjunction — the `gate`
/// callback is consulted with the block's variables and the conjuncts.
/// Returning `true` distributes the block (Rule 5) exactly as
/// [`push_forall_down`] would; returning `false` leaves the block in place
/// (still recursing into the conjuncts). Both outcomes are
/// semantics-preserving; the gate only chooses the cheaper *shape*. The
/// firing/declining tallies land in `eff`.
pub fn push_forall_down_gated(
    f: &Formula,
    gate: &mut dyn FnMut(&[String], &[Formula]) -> bool,
    eff: &mut PassEffect,
) -> Formula {
    match f {
        Formula::Forall(vs, g) => {
            let body = push_forall_down_gated(g, gate, eff);
            match body {
                Formula::And(parts) => {
                    if gate(vs, &parts) {
                        eff.fired += 1;
                        let new_parts = parts
                            .into_iter()
                            .map(|p| {
                                let free: HashSet<String> = p.free_vars().into_iter().collect();
                                let mine: Vec<String> =
                                    vs.iter().filter(|v| free.contains(*v)).cloned().collect();
                                let p = push_forall_down_gated(&p, gate, eff);
                                if mine.is_empty() {
                                    p
                                } else {
                                    Formula::Forall(mine, Box::new(p))
                                }
                            })
                            .collect();
                        Formula::And(new_parts)
                    } else {
                        eff.gated += 1;
                        Formula::Forall(vs.clone(), Box::new(Formula::And(parts)))
                    }
                }
                other => Formula::Forall(vs.clone(), Box::new(other)),
            }
        }
        Formula::Exists(vs, g) => {
            Formula::Exists(vs.clone(), Box::new(push_forall_down_gated(g, gate, eff)))
        }
        Formula::Not(g) => Formula::Not(Box::new(push_forall_down_gated(g, gate, eff))),
        Formula::And(fs) => Formula::And(
            fs.iter()
                .map(|g| push_forall_down_gated(g, gate, eff))
                .collect(),
        ),
        Formula::Or(fs) => Formula::Or(
            fs.iter()
                .map(|g| push_forall_down_gated(g, gate, eff))
                .collect(),
        ),
        Formula::Implies(a, b) => Formula::Implies(
            Box::new(push_forall_down_gated(a, gate, eff)),
            Box::new(push_forall_down_gated(b, gate, eff)),
        ),
        other => other.clone(),
    }
}

/// Flatten nested n-ary connectives, drop boolean units, reduce empty
/// set-membership to `false`, and drop vacuous quantifiers. Keeps the AST
/// small and normal between rewrite steps.
pub fn simplify(f: &Formula) -> Formula {
    match f {
        Formula::InSet(_, vals) if vals.is_empty() => Formula::False,
        Formula::And(fs) => {
            let mut parts = Vec::new();
            for g in fs {
                match simplify(g) {
                    Formula::True => {}
                    Formula::False => return Formula::False,
                    Formula::And(inner) => parts.extend(inner),
                    other => parts.push(other),
                }
            }
            match parts.len() {
                0 => Formula::True,
                1 => parts.pop().unwrap(),
                _ => Formula::And(parts),
            }
        }
        Formula::Or(fs) => {
            let mut parts = Vec::new();
            for g in fs {
                match simplify(g) {
                    Formula::False => {}
                    Formula::True => return Formula::True,
                    Formula::Or(inner) => parts.extend(inner),
                    other => parts.push(other),
                }
            }
            match parts.len() {
                0 => Formula::False,
                1 => parts.pop().unwrap(),
                _ => Formula::Or(parts),
            }
        }
        Formula::Not(g) => match simplify(g) {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            other => other.not(),
        },
        Formula::Implies(a, b) => {
            let (sa, sb) = (simplify(a), simplify(b));
            match (&sa, &sb) {
                (Formula::False, _) | (_, Formula::True) => Formula::True,
                (Formula::True, _) => sb,
                _ => sa.implies(sb),
            }
        }
        Formula::Exists(vs, g) => match simplify(g) {
            c @ (Formula::True | Formula::False) => c,
            other => {
                // Drop binders whose variable no longer occurs (sound:
                // active domains are never empty). Simplification can
                // create such vacuous quantifiers, and downstream sort
                // inference would reject them.
                let free = other.free_vars();
                let vs: Vec<String> = vs.iter().filter(|v| free.contains(v)).cloned().collect();
                if vs.is_empty() {
                    other
                } else {
                    Formula::Exists(vs, Box::new(other))
                }
            }
        },
        Formula::Forall(vs, g) => match simplify(g) {
            c @ (Formula::True | Formula::False) => c,
            other => {
                let free = other.free_vars();
                let vs: Vec<String> = vs.iter().filter(|v| free.contains(v)).cloned().collect();
                if vs.is_empty() {
                    other
                } else {
                    Formula::Forall(vs, Box::new(other))
                }
            }
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn standardize_apart_makes_binders_unique() {
        let f = parse("(exists x. R(x)) & (exists x. S(x))").unwrap();
        let g = standardize_apart(&f);
        let mut names = Vec::new();
        fn binders(f: &Formula, out: &mut Vec<String>) {
            match f {
                Formula::Exists(vs, g) | Formula::Forall(vs, g) => {
                    out.extend(vs.clone());
                    binders(g, out);
                }
                Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|x| binders(x, out)),
                Formula::Not(x) => binders(x, out),
                Formula::Implies(a, b) => {
                    binders(a, out);
                    binders(b, out);
                }
                _ => {}
            }
        }
        binders(&g, &mut names);
        let set: HashSet<&String> = names.iter().collect();
        assert_eq!(
            set.len(),
            names.len(),
            "binder names must be unique: {names:?}"
        );
    }

    #[test]
    fn nnf_pushes_negation_through_quantifiers() {
        let f = parse("!(forall x. R(x))").unwrap();
        let g = to_nnf(&f);
        match g {
            Formula::Exists(_, body) => assert!(matches!(*body, Formula::Not(_))),
            other => panic!("expected exists, got {other}"),
        }
    }

    #[test]
    fn nnf_desugars_implication() {
        let f = parse("R(x) -> S(x)").unwrap();
        let g = to_nnf(&f);
        match g {
            Formula::Or(parts) => {
                assert!(matches!(parts[0], Formula::Not(_)));
                assert!(matches!(parts[1], Formula::Atom { .. }));
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn nnf_negated_implication() {
        let f = parse("!(R(x) -> S(x))").unwrap();
        let g = to_nnf(&f);
        // ¬(a→b) = a ∧ ¬b
        match g {
            Formula::And(parts) => {
                assert!(matches!(parts[0], Formula::Atom { .. }));
                assert!(matches!(parts[1], Formula::Not(_)));
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn prenex_of_paper_formula_matches_equation_2() {
        // ∀xS ∃z (STUDENT ⇒ ∃xC (...)) pulls to ∀xS ∃z ∃xC (...)
        let f = parse(
            r#"forall s. (exists z. STUDENT(s, "CS", z)) ->
                 exists k. (COURSE(k, "Programming") & TAKES(s, k))"#,
        )
        .unwrap();
        let p = to_prenex(&f);
        assert_eq!(p.prefix.len(), 3);
        assert_eq!(p.prefix[0].0, Quant::Forall);
        // the ∃z under negation flips to ∀ in NNF: ¬∃z STUDENT → ∀z ¬STUDENT
        assert_eq!(p.prefix[1].0, Quant::Forall);
        assert_eq!(p.prefix[2].0, Quant::Exists);
        assert!(p.matrix.free_vars().len() == 3);
    }

    #[test]
    fn prenex_matrix_is_quantifier_free() {
        let f = parse("forall x. (exists y. R(x, y)) | (forall z. S(x, z))").unwrap();
        let p = to_prenex(&f);
        fn has_quant(f: &Formula) -> bool {
            match f {
                Formula::Exists(..) | Formula::Forall(..) => true,
                Formula::Not(g) => has_quant(g),
                Formula::And(fs) | Formula::Or(fs) => fs.iter().any(has_quant),
                Formula::Implies(a, b) => has_quant(a) || has_quant(b),
                _ => false,
            }
        }
        assert!(!has_quant(&p.matrix));
        assert_eq!(p.prefix.len(), 3);
    }

    #[test]
    fn strip_leading_forall_block() {
        let f = parse("forall x, y. exists z. R(x, y) & S(y, z)").unwrap();
        let p = to_prenex(&f);
        let (mode, rest) = strip_leading_block(&p);
        assert_eq!(mode, CheckMode::Validity);
        assert_eq!(rest.prefix.len(), 1);
        assert_eq!(rest.prefix[0].0, Quant::Exists);
    }

    #[test]
    fn strip_leading_exists_block() {
        let f = parse("exists x, y. R(x, y)").unwrap();
        let p = to_prenex(&f);
        let (mode, rest) = strip_leading_block(&p);
        assert_eq!(mode, CheckMode::Satisfiability);
        assert!(rest.prefix.is_empty());
    }

    #[test]
    fn strip_ground_formula() {
        let f = parse(r#""a" = "a""#).unwrap();
        let p = to_prenex(&f);
        let (mode, rest) = strip_leading_block(&p);
        assert_eq!(mode, CheckMode::Satisfiability);
        assert_eq!(rest.matrix, p.matrix);
    }

    #[test]
    fn push_forall_distributes_over_conjunction() {
        let f = parse("forall x. R(x) & S(x) & T(y)").unwrap();
        let g = push_forall_down(&f);
        match g {
            Formula::And(parts) => {
                assert_eq!(parts.len(), 3);
                assert!(matches!(parts[0], Formula::Forall(..)));
                assert!(matches!(parts[1], Formula::Forall(..)));
                // T(y) doesn't mention x: no quantifier wrapped around it.
                assert!(matches!(parts[2], Formula::Atom { .. }));
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn push_forall_keeps_disjunction_intact() {
        let f = parse("forall x. R(x) | S(x)").unwrap();
        let g = push_forall_down(&f);
        assert!(
            matches!(g, Formula::Forall(..)),
            "∀ does not distribute over ∨"
        );
    }

    #[test]
    fn simplify_flattens_and_prunes() {
        let f = parse("(R(x) & true) & (S(x) & (T(x) & true))").unwrap();
        match simplify(&f) {
            Formula::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("{other}"),
        }
        assert_eq!(simplify(&parse("R(x) & false").unwrap()), Formula::False);
        assert_eq!(simplify(&parse("R(x) | true").unwrap()), Formula::True);
        assert_eq!(simplify(&parse("!!R(x)").unwrap()), parse("R(x)").unwrap());
        assert_eq!(simplify(&parse("false -> R(x)").unwrap()), Formula::True);
        assert_eq!(simplify(&parse("exists x. true").unwrap()), Formula::True);
    }
}
