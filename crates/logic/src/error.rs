//! Error type for constraint parsing, analysis and evaluation.

use std::fmt;

/// Errors from the logic layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicError {
    /// Concrete-syntax error with position and message.
    Parse {
        /// Byte offset in the input.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// An atom referenced a relation missing from the database.
    UnknownRelation(String),
    /// An atom's argument count disagrees with the relation's arity.
    AtomArityMismatch {
        /// The relation.
        relation: String,
        /// Its arity.
        expected: usize,
        /// Arguments supplied.
        got: usize,
    },
    /// A variable was used at positions of two different attribute classes.
    SortConflict {
        /// The variable.
        var: String,
        /// First class seen.
        first: String,
        /// Conflicting class.
        second: String,
    },
    /// A variable's attribute class could not be inferred (it appears in no
    /// relation atom, directly or through equalities).
    UnsortedVariable(String),
    /// A formula with free variables where a sentence was required.
    FreeVariables(Vec<String>),
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            LogicError::UnknownRelation(r) => write!(f, "unknown relation {r:?}"),
            LogicError::AtomArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "atom {relation:?} expects {expected} arguments, got {got}"
            ),
            LogicError::SortConflict { var, first, second } => write!(
                f,
                "variable {var:?} used with conflicting classes {first:?} and {second:?}"
            ),
            LogicError::UnsortedVariable(v) => {
                write!(f, "cannot infer the attribute class of variable {v:?}")
            }
            LogicError::FreeVariables(vs) => {
                write!(f, "constraint must be a sentence; free variables: {vs:?}")
            }
        }
    }
}

impl std::error::Error for LogicError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, LogicError>;
