//! The constraint AST: terms and first-order formulas.

use relcheck_relstore::Raw;
use std::collections::BTreeSet;
use std::fmt;

/// A term: a first-order variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A variable, identified by name.
    Var(String),
    /// A constant raw value.
    Const(Raw),
}

impl Term {
    /// Variable constructor shorthand.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(Raw::Str(s)) => write!(f, "{s:?}"),
            Term::Const(Raw::Int(i)) => write!(f, "{i}"),
        }
    }
}

/// A first-order formula over relation atoms, with n-ary connectives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// Relation membership `R(t₁, …, tₙ)`.
    Atom {
        /// The relation name.
        relation: String,
        /// Argument terms, one per column.
        args: Vec<Term>,
    },
    /// Term equality `t₁ = t₂`.
    Eq(Term, Term),
    /// Set membership `t ∈ {v₁, …}` — the paper's
    /// `areacode ∈ {416, 647, 905}` predicates.
    InSet(Term, Vec<Raw>),
    /// Negation.
    Not(Box<Formula>),
    /// n-ary conjunction (empty = true).
    And(Vec<Formula>),
    /// n-ary disjunction (empty = false).
    Or(Vec<Formula>),
    /// Implication `lhs ⇒ rhs`.
    Implies(Box<Formula>, Box<Formula>),
    /// Existential quantification over one or more variables.
    Exists(Vec<String>, Box<Formula>),
    /// Universal quantification over one or more variables.
    Forall(Vec<String>, Box<Formula>),
}

impl Formula {
    /// Atom constructor shorthand.
    pub fn atom(relation: &str, args: Vec<Term>) -> Formula {
        Formula::Atom {
            relation: relation.to_owned(),
            args,
        }
    }

    /// `¬self`.
    #[allow(clippy::should_implement_trait)] // builder-style, like the rest
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// `self ∧ other`.
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(vec![self, other])
    }

    /// `self ∨ other`.
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(vec![self, other])
    }

    /// `self ⇒ other`.
    pub fn implies(self, other: Formula) -> Formula {
        Formula::Implies(Box::new(self), Box::new(other))
    }

    /// `∃ vars. self`.
    pub fn exists(vars: &[&str], body: Formula) -> Formula {
        Formula::Exists(
            vars.iter().map(|s| (*s).to_owned()).collect(),
            Box::new(body),
        )
    }

    /// `∀ vars. self`.
    pub fn forall(vars: &[&str], body: Formula) -> Formula {
        Formula::Forall(
            vars.iter().map(|s| (*s).to_owned()).collect(),
            Box::new(body),
        )
    }

    /// The free variables, sorted by name.
    pub fn free_vars(&self) -> Vec<String> {
        let mut free = BTreeSet::new();
        self.collect_free(&mut Vec::new(), &mut free);
        free.into_iter().collect()
    }

    fn collect_free(&self, bound: &mut Vec<String>, free: &mut BTreeSet<String>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom { args, .. } => {
                for t in args {
                    if let Term::Var(v) = t {
                        if !bound.contains(v) {
                            free.insert(v.clone());
                        }
                    }
                }
            }
            Formula::Eq(a, b) => {
                for t in [a, b] {
                    if let Term::Var(v) = t {
                        if !bound.contains(v) {
                            free.insert(v.clone());
                        }
                    }
                }
            }
            Formula::InSet(t, _) => {
                if let Term::Var(v) = t {
                    if !bound.contains(v) {
                        free.insert(v.clone());
                    }
                }
            }
            Formula::Not(f) => f.collect_free(bound, free),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free(bound, free);
                }
            }
            Formula::Implies(a, b) => {
                a.collect_free(bound, free);
                b.collect_free(bound, free);
            }
            Formula::Exists(vs, f) | Formula::Forall(vs, f) => {
                let n = bound.len();
                bound.extend(vs.iter().cloned());
                f.collect_free(bound, free);
                bound.truncate(n);
            }
        }
    }

    /// True if the formula is a sentence (no free variables).
    pub fn is_sentence(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// Rename every free occurrence of `from` to `to` (capture is the
    /// caller's responsibility — used by standardize-apart with fresh
    /// names).
    pub(crate) fn rename_free(&self, from: &str, to: &str) -> Formula {
        let ren = |t: &Term| match t {
            Term::Var(v) if v == from => Term::Var(to.to_owned()),
            other => other.clone(),
        };
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom { relation, args } => Formula::Atom {
                relation: relation.clone(),
                args: args.iter().map(ren).collect(),
            },
            Formula::Eq(a, b) => Formula::Eq(ren(a), ren(b)),
            Formula::InSet(t, vs) => Formula::InSet(ren(t), vs.clone()),
            Formula::Not(f) => Formula::Not(Box::new(f.rename_free(from, to))),
            Formula::And(fs) => Formula::And(fs.iter().map(|f| f.rename_free(from, to)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|f| f.rename_free(from, to)).collect()),
            Formula::Implies(a, b) => Formula::Implies(
                Box::new(a.rename_free(from, to)),
                Box::new(b.rename_free(from, to)),
            ),
            Formula::Exists(vs, f) | Formula::Forall(vs, f) => {
                let body = if vs.iter().any(|v| v == from) {
                    // `from` is shadowed below: stop.
                    (**f).clone()
                } else {
                    f.rename_free(from, to)
                };
                match self {
                    Formula::Exists(..) => Formula::Exists(vs.clone(), Box::new(body)),
                    _ => Formula::Forall(vs.clone(), Box::new(body)),
                }
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom { relation, args } => {
                write!(f, "{relation}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Formula::Eq(a, b) => write!(f, "{a} = {b}"),
            Formula::InSet(t, vs) => {
                write!(f, "{t} in {{")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match v {
                        Raw::Str(s) => write!(f, "{s:?}")?,
                        Raw::Int(n) => write!(f, "{n}")?,
                    }
                }
                write!(f, "}}")
            }
            Formula::Not(g) => write!(f, "!({g})"),
            Formula::And(fs) => {
                if fs.is_empty() {
                    return write!(f, "true");
                }
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                if fs.is_empty() {
                    return write!(f, "false");
                }
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Implies(a, b) => write!(f, "({a} -> {b})"),
            Formula::Exists(vs, g) => write!(f, "exists {}. {g}", vs.join(", ")),
            Formula::Forall(vs, g) => write!(f, "forall {}. {g}", vs.join(", ")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Formula {
        // forall s. STUDENT(s, "CS") -> exists k. TAKES(s, k)
        Formula::forall(
            &["s"],
            Formula::atom("STUDENT", vec![Term::var("s"), Term::Const(Raw::str("CS"))]).implies(
                Formula::exists(
                    &["k"],
                    Formula::atom("TAKES", vec![Term::var("s"), Term::var("k")]),
                ),
            ),
        )
    }

    #[test]
    fn free_vars_respects_binding() {
        let f = sample();
        assert!(f.free_vars().is_empty());
        assert!(f.is_sentence());
        let open = Formula::atom("R", vec![Term::var("x"), Term::var("y")]);
        assert_eq!(open.free_vars(), vec!["x".to_owned(), "y".to_owned()]);
    }

    #[test]
    fn free_vars_with_shadowing() {
        // exists x. R(x) & S(x)  — all bound.
        let f = Formula::exists(
            &["x"],
            Formula::atom("R", vec![Term::var("x")]).and(Formula::atom("S", vec![Term::var("x")])),
        );
        assert!(f.is_sentence());
        // x free outside, bound inside: (R(x) & exists x. S(x)) has free x.
        let g = Formula::atom("R", vec![Term::var("x")]).and(Formula::exists(
            &["x"],
            Formula::atom("S", vec![Term::var("x")]),
        ));
        assert_eq!(g.free_vars(), vec!["x".to_owned()]);
    }

    #[test]
    fn rename_free_stops_at_shadow() {
        let g = Formula::atom("R", vec![Term::var("x")]).and(Formula::exists(
            &["x"],
            Formula::atom("S", vec![Term::var("x")]),
        ));
        let r = g.rename_free("x", "z");
        // Outer occurrence renamed; inner (bound) untouched.
        assert_eq!(r.free_vars(), vec!["z".to_owned()]);
        let s = format!("{r}");
        assert!(s.contains("R(z)"), "{s}");
        assert!(s.contains("S(x)"), "{s}");
    }

    #[test]
    fn display_round_trips_through_parser() {
        let f = sample();
        let printed = format!("{f}");
        let reparsed = crate::parse(&printed).unwrap();
        assert_eq!(f, reparsed);
    }
}
