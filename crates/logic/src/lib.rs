#![warn(missing_docs)]

//! # relcheck-logic — first-order constraints and the ICDE'07 rewrite rules
//!
//! User-defined constraints are first-order logic formulas over relation
//! atoms (the paper's Formula 1, constraints like *"every CS student takes a
//! Programming course"*). This crate provides:
//!
//! * the [`Formula`]/[`Term`] AST with n-ary connectives and typed
//!   quantifiers, plus a concrete syntax [`parse`]r:
//!
//!   ```text
//!   forall s, c. STUDENT(s, "CS", c) ->
//!       exists k. (COURSE(k, "Programming") & TAKES(s, k))
//!   ```
//!
//! * **sort inference** ([`infer_sorts`]): every variable's attribute class
//!   is derived from the relation positions it occurs in;
//! * the **formula transformations** of Section 4 ([`transform`]):
//!   negation-normal form, standardize-apart, prenex normal form
//!   (quantifier pull-up, Rule 3), leading-quantifier elimination (Rule of
//!   §4.1), and universal push-down across conjunction (Rule 5);
//! * a **brute-force evaluator** ([`eval`]) that decides a constraint by
//!   enumerating active domains — the semantics oracle the BDD compiler and
//!   the SQL translator are tested against.

mod ast;
pub mod eval;
mod parser;
mod sorts;
pub mod transform;

mod error;

pub use ast::{Formula, Term};
pub use error::{LogicError, Result};
pub use parser::parse;
pub use sorts::infer_sorts;
