//! Concrete syntax for constraints.
//!
//! ```text
//! formula     := ('forall' | 'exists') ident (',' ident)* '.' formula
//!              | implication
//! implication := disjunction ('->' formula)?            (right-assoc)
//! disjunction := conjunction ('|' conjunction)*
//! conjunction := unary ('&' unary)*
//! unary       := '!' unary | '(' formula ')' | 'true' | 'false' | predicate
//! predicate   := IDENT '(' term (',' term)* ')'          relation atom
//!              | term '=' term | term '!=' term
//!              | term 'in' '{' raw (',' raw)* '}'
//! term        := IDENT | STRING | INT
//! ```
//!
//! Identifiers starting with a letter or `_`; strings are double-quoted;
//! integers are signed decimal. `forall`, `exists`, `in`, `true`, `false`
//! are keywords.

use crate::ast::{Formula, Term};
use crate::error::{LogicError, Result};
use relcheck_relstore::Raw;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Dot,
    Amp,
    Pipe,
    Bang,
    Arrow,
    Eq,
    Neq,
    Forall,
    Exists,
    In,
    True,
    False,
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> LogicError {
        LogicError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn next_tok(&mut self) -> Result<(usize, Tok)> {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        let start = self.pos;
        if self.pos >= self.src.len() {
            return Ok((start, Tok::Eof));
        }
        let c = self.src[self.pos];
        let tok = match c {
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b'{' => {
                self.pos += 1;
                Tok::LBrace
            }
            b'}' => {
                self.pos += 1;
                Tok::RBrace
            }
            b',' => {
                self.pos += 1;
                Tok::Comma
            }
            b'.' => {
                self.pos += 1;
                Tok::Dot
            }
            b'&' => {
                self.pos += 1;
                Tok::Amp
            }
            b'|' => {
                self.pos += 1;
                Tok::Pipe
            }
            b'=' => {
                self.pos += 1;
                Tok::Eq
            }
            b'!' => {
                self.pos += 1;
                if self.pos < self.src.len() && self.src[self.pos] == b'=' {
                    self.pos += 1;
                    Tok::Neq
                } else {
                    Tok::Bang
                }
            }
            b'-' => {
                self.pos += 1;
                if self.pos < self.src.len() && self.src[self.pos] == b'>' {
                    self.pos += 1;
                    Tok::Arrow
                } else if self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                    let n = self.lex_int()?;
                    Tok::Int(-n)
                } else {
                    return Err(self.error("expected '->' or a negative number after '-'"));
                }
            }
            b'"' => {
                self.pos += 1;
                let s = self.pos;
                while self.pos < self.src.len() && self.src[self.pos] != b'"' {
                    self.pos += 1;
                }
                if self.pos >= self.src.len() {
                    return Err(self.error("unterminated string literal"));
                }
                let text = std::str::from_utf8(&self.src[s..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?
                    .to_owned();
                self.pos += 1;
                Tok::Str(text)
            }
            c if c.is_ascii_digit() => Tok::Int(self.lex_int()?),
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let s = self.pos;
                while self.pos < self.src.len()
                    && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                let word = std::str::from_utf8(&self.src[s..self.pos]).unwrap();
                match word {
                    "forall" => Tok::Forall,
                    "exists" => Tok::Exists,
                    "in" => Tok::In,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    _ => Tok::Ident(word.to_owned()),
                }
            }
            other => return Err(self.error(format!("unexpected character {:?}", other as char))),
        };
        Ok((start, tok))
    }

    fn lex_int(&mut self) -> Result<i64> {
        let s = self.pos;
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        std::str::from_utf8(&self.src[s..self.pos])
            .unwrap()
            .parse()
            .map_err(|_| self.error("integer literal out of range"))
    }
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    idx: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.idx].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.idx].1.clone();
        if self.idx < self.toks.len() - 1 {
            self.idx += 1;
        }
        t
    }

    fn offset(&self) -> usize {
        self.toks[self.idx].0
    }

    fn error(&self, message: impl Into<String>) -> LogicError {
        LogicError::Parse {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn expect(&mut self, t: Tok, what: &str) -> Result<()> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn formula(&mut self) -> Result<Formula> {
        match self.peek() {
            Tok::Forall | Tok::Exists => {
                let is_forall = matches!(self.peek(), Tok::Forall);
                self.bump();
                let mut vars = vec![self.ident("quantified variable")?];
                while *self.peek() == Tok::Comma {
                    self.bump();
                    vars.push(self.ident("quantified variable")?);
                }
                self.expect(Tok::Dot, "'.' after quantified variables")?;
                let body = Box::new(self.formula()?);
                Ok(if is_forall {
                    Formula::Forall(vars, body)
                } else {
                    Formula::Exists(vars, body)
                })
            }
            _ => self.implication(),
        }
    }

    fn implication(&mut self) -> Result<Formula> {
        let lhs = self.disjunction()?;
        if *self.peek() == Tok::Arrow {
            self.bump();
            let rhs = self.formula()?; // right-assoc, and allows quantifiers
            Ok(lhs.implies(rhs))
        } else {
            Ok(lhs)
        }
    }

    fn disjunction(&mut self) -> Result<Formula> {
        let mut parts = vec![self.conjunction()?];
        while *self.peek() == Tok::Pipe {
            self.bump();
            parts.push(self.conjunction()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Formula::Or(parts)
        })
    }

    fn conjunction(&mut self) -> Result<Formula> {
        let mut parts = vec![self.unary()?];
        while *self.peek() == Tok::Amp {
            self.bump();
            parts.push(self.unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Formula::And(parts)
        })
    }

    fn unary(&mut self) -> Result<Formula> {
        match self.peek().clone() {
            Tok::Bang => {
                self.bump();
                Ok(self.unary()?.not())
            }
            Tok::True => {
                self.bump();
                Ok(Formula::True)
            }
            Tok::False => {
                self.bump();
                Ok(Formula::False)
            }
            Tok::Forall | Tok::Exists => self.formula(),
            Tok::LParen => {
                self.bump();
                let f = self.formula()?;
                self.expect(Tok::RParen, "')'")?;
                // A parenthesized *term* is not supported; formulas only.
                self.maybe_comparison_suffix(f)
            }
            Tok::Ident(name) => {
                self.bump();
                if *self.peek() == Tok::LParen {
                    // relation atom
                    self.bump();
                    let mut args = vec![self.term()?];
                    while *self.peek() == Tok::Comma {
                        self.bump();
                        args.push(self.term()?);
                    }
                    self.expect(Tok::RParen, "')' closing atom")?;
                    Ok(Formula::Atom {
                        relation: name,
                        args,
                    })
                } else {
                    self.comparison(Term::Var(name))
                }
            }
            Tok::Str(s) => {
                self.bump();
                self.comparison(Term::Const(Raw::Str(s)))
            }
            Tok::Int(i) => {
                self.bump();
                self.comparison(Term::Const(Raw::Int(i)))
            }
            other => Err(self.error(format!("expected a formula, found {other:?}"))),
        }
    }

    /// After a closing paren a comparison cannot follow (formulas aren't
    /// terms); this hook exists to produce a decent error message.
    fn maybe_comparison_suffix(&mut self, f: Formula) -> Result<Formula> {
        match self.peek() {
            Tok::Eq | Tok::Neq | Tok::In => {
                Err(self.error("comparison operators apply to terms, not formulas"))
            }
            _ => Ok(f),
        }
    }

    fn comparison(&mut self, lhs: Term) -> Result<Formula> {
        match self.bump() {
            Tok::Eq => Ok(Formula::Eq(lhs, self.term()?)),
            Tok::Neq => Ok(Formula::Eq(lhs, self.term()?).not()),
            Tok::In => {
                self.expect(Tok::LBrace, "'{' opening a value set")?;
                let mut vals = Vec::new();
                if *self.peek() != Tok::RBrace {
                    vals.push(self.raw()?);
                    while *self.peek() == Tok::Comma {
                        self.bump();
                        vals.push(self.raw()?);
                    }
                }
                self.expect(Tok::RBrace, "'}' closing a value set")?;
                Ok(Formula::InSet(lhs, vals))
            }
            other => Err(self.error(format!(
                "expected '=', '!=' or 'in' after a term, found {other:?}"
            ))),
        }
    }

    fn term(&mut self) -> Result<Term> {
        match self.bump() {
            Tok::Ident(v) => Ok(Term::Var(v)),
            Tok::Str(s) => Ok(Term::Const(Raw::Str(s))),
            Tok::Int(i) => Ok(Term::Const(Raw::Int(i))),
            other => Err(self.error(format!("expected a term, found {other:?}"))),
        }
    }

    fn raw(&mut self) -> Result<Raw> {
        match self.bump() {
            Tok::Str(s) => Ok(Raw::Str(s)),
            Tok::Int(i) => Ok(Raw::Int(i)),
            other => Err(self.error(format!("expected a constant, found {other:?}"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.bump() {
            Tok::Ident(v) => Ok(v),
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }
}

/// Parse a constraint from its concrete syntax.
pub fn parse(src: &str) -> Result<Formula> {
    let mut lexer = Lexer::new(src);
    let mut toks = Vec::new();
    loop {
        let (off, t) = lexer.next_tok()?;
        let done = t == Tok::Eof;
        toks.push((off, t));
        if done {
            break;
        }
    }
    let mut p = Parser { toks, idx: 0 };
    let f = p.formula()?;
    if *p.peek() != Tok::Eof {
        return Err(p.error(format!("trailing input: {:?}", p.peek())));
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_formula_1() {
        let f = parse(
            r#"forall s, z. STUDENT(s, "CS", z) ->
                 exists k. (COURSE(k, "Programming") & TAKES(s, k))"#,
        )
        .unwrap();
        assert!(f.is_sentence());
        match &f {
            Formula::Forall(vs, body) => {
                assert_eq!(vs, &["s", "z"]);
                assert!(matches!(**body, Formula::Implies(..)));
            }
            other => panic!("expected forall, got {other}"),
        }
    }

    #[test]
    fn parses_membership_constraint() {
        let f = parse(
            r#"forall a, n, c, s, z.
                 CUSTOMERS(a, n, c, s, z) & c = "Toronto" -> a in {416, 647, 905}"#,
        )
        .unwrap();
        assert!(f.is_sentence());
    }

    #[test]
    fn precedence_and_over_or() {
        let f = parse("R(x) & S(x) | T(x)").unwrap();
        match f {
            Formula::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0], Formula::And(_)));
            }
            other => panic!("expected or at top, got {other}"),
        }
    }

    #[test]
    fn implication_is_right_associative() {
        let f = parse("R(x) -> S(x) -> T(x)").unwrap();
        match f {
            Formula::Implies(_, rhs) => assert!(matches!(*rhs, Formula::Implies(..))),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn negation_and_neq() {
        let f = parse("!R(x) & x != 3").unwrap();
        match f {
            Formula::And(parts) => {
                assert!(matches!(parts[0], Formula::Not(_)));
                assert!(matches!(parts[1], Formula::Not(_))); // x != 3 desugars
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn negative_integers_parse() {
        let f = parse("x = -42").unwrap();
        assert_eq!(f, Formula::Eq(Term::var("x"), Term::Const(Raw::Int(-42))));
    }

    #[test]
    fn constants_true_false() {
        assert_eq!(parse("true").unwrap(), Formula::True);
        assert_eq!(
            parse("false | true").unwrap(),
            Formula::Or(vec![Formula::False, Formula::True])
        );
    }

    #[test]
    fn quantifier_after_arrow_without_parens() {
        let f = parse("forall x. R(x) -> exists y. S(x, y)").unwrap();
        match f {
            Formula::Forall(_, body) => match *body {
                Formula::Implies(_, rhs) => assert!(matches!(*rhs, Formula::Exists(..))),
                other => panic!("{other}"),
            },
            other => panic!("{other}"),
        }
    }

    #[test]
    fn error_reports_offset() {
        let err = parse("forall . R(x)").unwrap_err();
        match err {
            LogicError::Parse { offset, .. } => assert!(offset >= 7),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(matches!(parse("R(x) R(y)"), Err(LogicError::Parse { .. })));
        assert!(matches!(parse("R(x"), Err(LogicError::Parse { .. })));
        assert!(matches!(parse(r#"x in {"#), Err(LogicError::Parse { .. })));
        assert!(matches!(
            parse(r#""unterminated"#),
            Err(LogicError::Parse { .. })
        ));
    }

    #[test]
    fn empty_in_set_parses() {
        let f = parse("x in {}").unwrap();
        assert_eq!(f, Formula::InSet(Term::var("x"), vec![]));
    }

    #[test]
    fn comparison_of_two_constants_allowed() {
        // Degenerate but well-formed: "CS" = "CS".
        let f = parse(r#""CS" = "CS""#).unwrap();
        assert!(matches!(f, Formula::Eq(Term::Const(_), Term::Const(_))));
    }
}
