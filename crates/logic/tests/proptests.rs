//! Property tests for the constraint language: printer/parser stability
//! and semantic preservation of every transformation.
// Gated behind the off-by-default `fuzz` feature: proptest is an external
// dependency and the tier-1 verify must build with no network access. Run
// with `cargo test --features fuzz` in an environment with a vendored
// proptest.
#![cfg(feature = "fuzz")]

use proptest::prelude::*;
use relcheck_logic::eval::eval_sentence;
use relcheck_logic::transform::{push_forall_down, simplify, standardize_apart, to_nnf, to_prenex};
use relcheck_logic::{parse, Formula, Term};
use relcheck_relstore::{Database, Raw};

/// Random quantifier-free formulas over R(x:k1, y:k2) and S(y:k2) with
/// variables from a fixed pool.
fn arb_matrix() -> impl Strategy<Value = Formula> {
    let atom_r = (0usize..2, 0usize..2).prop_map(|(i, j)| {
        Formula::atom(
            "R",
            vec![Term::var(["x1", "x2"][i]), Term::var(["y1", "y2"][j])],
        )
    });
    let atom_s = (0usize..2).prop_map(|j| Formula::atom("S", vec![Term::var(["y1", "y2"][j])]));
    let eq = Just(Formula::Eq(Term::var("y1"), Term::var("y2")));
    let eq_const = (0usize..2, 0i64..4)
        .prop_map(|(i, c)| Formula::Eq(Term::var(["x1", "x2"][i]), Term::Const(Raw::Int(c))));
    let in_set = proptest::collection::vec(0i64..4, 0..3)
        .prop_map(|vals| Formula::InSet(Term::var("y1"), vals.into_iter().map(Raw::Int).collect()));
    let leaf = prop_oneof![atom_r, atom_s, eq, eq_const, in_set, Just(Formula::True)];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.implies(b)),
        ]
    })
}

/// Close a matrix into a sentence by quantifying its free variables.
fn close(matrix: Formula, pattern: u8) -> Formula {
    let mut f = matrix;
    for (i, v) in ["x1", "x2", "y1", "y2"].into_iter().enumerate() {
        if f.free_vars().iter().any(|fv| fv == v) {
            f = if pattern >> i & 1 == 1 {
                Formula::Exists(vec![v.to_owned()], Box::new(f))
            } else {
                Formula::Forall(vec![v.to_owned()], Box::new(f))
            };
        }
    }
    f
}

fn db() -> Database {
    let mut db = Database::new();
    db.ensure_class_size("k1", 3);
    db.ensure_class_size("k2", 4);
    db.create_relation(
        "R",
        &[("a", "k1"), ("b", "k2")],
        vec![
            vec![Raw::Int(0), Raw::Int(0)],
            vec![Raw::Int(1), Raw::Int(2)],
            vec![Raw::Int(2), Raw::Int(3)],
            vec![Raw::Int(0), Raw::Int(3)],
        ],
    )
    .unwrap();
    db.create_relation(
        "S",
        &[("b", "k2")],
        vec![vec![Raw::Int(0)], vec![Raw::Int(2)]],
    )
    .unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn printer_parser_fixpoint(matrix in arb_matrix(), pattern in any::<u8>()) {
        // One parse⟲print round normalizes (e.g. unary And unwraps); after
        // that, printing and parsing must be mutually inverse.
        let f = close(matrix, pattern);
        let once = parse(&format!("{f}")).unwrap();
        let twice = parse(&format!("{once}")).unwrap();
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(format!("{once}"), format!("{twice}"));
    }

    #[test]
    fn transforms_preserve_semantics(matrix in arb_matrix(), pattern in any::<u8>()) {
        let f = close(matrix, pattern);
        let db = db();
        let expected = match eval_sentence(&db, &f) {
            Ok(v) => v,
            // Vacuously-sorted variables are rejected by design; skip.
            Err(_) => {
                prop_assume!(false);
                unreachable!()
            }
        };
        for (name, g) in [
            ("nnf", to_nnf(&f)),
            ("standardize", standardize_apart(&f)),
            ("push_forall", push_forall_down(&f)),
            ("simplify", simplify(&f)),
        ] {
            match eval_sentence(&db, &g) {
                Ok(got) => prop_assert_eq!(
                    got, expected,
                    "{} changed semantics of {}", name, f
                ),
                // push_forall_down can tear an equality-only conjunct from
                // its sort anchor, and simplify can erase a variable's only
                // atom occurrence; the standalone oracle then conservatively
                // rejects even though the compiler (with its global sort
                // map) evaluates such formulas fine — documented on
                // push_forall_down.
                Err(relcheck_logic::LogicError::UnsortedVariable(_))
                    if name == "push_forall" || name == "simplify" => {}
                Err(e) => prop_assert!(false, "{} failed on {}: {}", name, f, e),
            }
        }
        // Prenex: rebuild and compare.
        let p = to_prenex(&f);
        let mut rebuilt = p.matrix.clone();
        for (q, v) in p.prefix.iter().rev() {
            rebuilt = match q {
                relcheck_logic::transform::Quant::Exists => {
                    Formula::Exists(vec![v.clone()], Box::new(rebuilt))
                }
                relcheck_logic::transform::Quant::Forall => {
                    Formula::Forall(vec![v.clone()], Box::new(rebuilt))
                }
            };
        }
        prop_assert_eq!(
            eval_sentence(&db, &rebuilt).unwrap(),
            expected,
            "prenex changed semantics of {}",
            f
        );
    }

    #[test]
    fn nnf_is_negation_normal(matrix in arb_matrix(), pattern in any::<u8>()) {
        fn check(f: &Formula) -> bool {
            match f {
                Formula::Not(inner) => matches!(
                    **inner,
                    Formula::Atom { .. } | Formula::Eq(..) | Formula::InSet(..)
                ),
                Formula::Implies(..) => false,
                Formula::And(fs) | Formula::Or(fs) => fs.iter().all(check),
                Formula::Exists(_, g) | Formula::Forall(_, g) => check(g),
                _ => true,
            }
        }
        let f = close(matrix, pattern);
        prop_assert!(check(&to_nnf(&f)), "not in NNF: {}", to_nnf(&f));
    }

    #[test]
    fn standardize_apart_binders_unique(matrix in arb_matrix(), pattern in any::<u8>()) {
        fn binders(f: &Formula, out: &mut Vec<String>) {
            match f {
                Formula::Exists(vs, g) | Formula::Forall(vs, g) => {
                    out.extend(vs.iter().cloned());
                    binders(g, out);
                }
                Formula::Not(g) => binders(g, out),
                Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|g| binders(g, out)),
                Formula::Implies(a, b) => {
                    binders(a, out);
                    binders(b, out);
                }
                _ => {}
            }
        }
        // Duplicate the formula against itself to force binder collisions.
        let f = close(matrix.clone(), pattern);
        let doubled = f.clone().and(f);
        let g = standardize_apart(&doubled);
        let mut names = Vec::new();
        binders(&g, &mut names);
        let set: std::collections::HashSet<&String> = names.iter().collect();
        prop_assert_eq!(set.len(), names.len(), "duplicate binders in {}", g);
    }
}
