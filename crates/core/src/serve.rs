//! Long-lived incremental check engine behind a line protocol.
//!
//! The paper's pitch is *fast identification* of violations as data
//! changes; a cold `relcheck run` per update batch throws the warm state
//! away each time. [`ServeEngine`] is the session-oriented alternative:
//! it keeps the relation store, the BDD manager and its logical indices,
//! the fingerprinted plan cache, and (optionally) the persistent
//! [`IndexStore`] alive across requests, and re-checks **only the
//! constraints whose read-set intersects the relations dirtied since the
//! last check** — everything else answers from the registry's cached
//! verdict. The read-set signature is the same one
//! [`crate::parallel::read_set`] computes for lane partitioning, so the
//! skip decisions agree with the parallel scheduler's grouping.
//!
//! The protocol is line-oriented (stdin or a unix socket in the CLI):
//!
//! ```text
//! +REL:v1,v2,…      insert one tuple (the store's journal syntax)
//! -REL:v1,v2,…      delete one tuple
//! check [NAME]      revalidate (everything, or one constraint)
//! certify [NAME]    re-check and emit audited violation certificates
//! stats             session counters
//! quit              end the session
//! ```
//!
//! Durability: with a store attached, deltas flow through
//! [`IndexStore::journaled_apply`] — journal-first with fsync — so a
//! killed session warm-starts to exactly the acknowledged state. A delta
//! value outside a frozen BDD block's domain cannot be folded into the
//! index in-place; the engine degrades that relation to the SQL rung
//! ([`Checker::mark_sql_only`], which retires cached plans *and* cached
//! verdicts) and keeps serving correct answers until a restart rebuilds
//! wider blocks. Per-request deadlines and overload ride the existing
//! degradation ladder: every re-check goes through
//! [`crate::registry::ConstraintRegistry::check_cached`], whose deadline,
//! node-budget, and panic handling are unchanged.

use crate::certify::{emit_certificate, verify_certificate, Certificate, DEFAULT_WITNESS_LIMIT};
use crate::checker::{CheckReport, Checker};
use crate::error::{CoreError, Result};
use crate::registry::{ConstraintRegistry, Verdict};
use crate::store::{Delta, IndexStore};
use crate::telemetry::{AuditMetrics, PlanCacheMetrics, ServeMetrics};
use relcheck_logic::Formula;
use relcheck_relstore::{Raw, StoreError};
use std::collections::BTreeSet;
use std::time::Instant;

/// One parsed protocol command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `+REL:v,…` / `-REL:v,…` — apply one tuple delta.
    Delta(String, Delta),
    /// `check` / `check NAME` — revalidate and report verdicts.
    Check(Option<String>),
    /// `certify` / `certify NAME` — re-check, emit certificates, and
    /// report each one's independent audit result.
    Certify(Option<String>),
    /// `stats` — session counters.
    Stats,
    /// `quit` — end the session.
    Quit,
}

/// Parse a `+REL:v1,v2,...` / `-REL:v1,v2,...` delta argument — the
/// store's journal syntax, shared by the protocol, `relcheck index
/// apply`, and scripts. Values that parse as integers become
/// [`Raw::Int`]; everything else is a string.
pub fn parse_delta(arg: &str) -> std::result::Result<(String, Delta), String> {
    let bad = || format!("bad delta {arg:?} (expected +REL:v1,v2,... or -REL:v1,v2,...)");
    let rest = arg
        .strip_prefix('+')
        .or_else(|| arg.strip_prefix('-'))
        .ok_or_else(bad)?;
    let (relation, values) = rest.split_once(':').ok_or_else(bad)?;
    if relation.is_empty() || values.is_empty() {
        return Err(bad());
    }
    let row: Vec<Raw> = values
        .split(',')
        .map(|v| match v.parse::<i64>() {
            Ok(i) => Raw::Int(i),
            Err(_) => Raw::Str(v.to_owned()),
        })
        .collect();
    let delta = if arg.starts_with('+') {
        Delta::Insert(row)
    } else {
        Delta::Delete(row)
    };
    Ok((relation.to_owned(), delta))
}

/// Parse one protocol line. Blank lines and `#` comments are no-ops
/// (`Ok(None)`), so scripted sessions can be annotated.
pub fn parse_command(line: &str) -> std::result::Result<Option<Command>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    if line.starts_with('+') || line.starts_with('-') {
        let (relation, delta) = parse_delta(line)?;
        return Ok(Some(Command::Delta(relation, delta)));
    }
    let mut parts = line.split_whitespace();
    let cmd = parts.next().expect("non-empty line has a first token");
    let command = match cmd {
        "check" => Command::Check(parts.next().map(str::to_owned)),
        "certify" => Command::Certify(parts.next().map(str::to_owned)),
        "stats" => Command::Stats,
        "quit" => Command::Quit,
        other => {
            return Err(format!(
                "unknown command {other:?} \
                 (try +REL:v,... -REL:v,... check [name] certify [name] stats quit)"
            ))
        }
    };
    if parts.next().is_some() {
        return Err(format!("trailing arguments after {cmd:?}"));
    }
    Ok(Some(command))
}

/// The engine's answer to one protocol line.
#[derive(Debug, Clone, Default)]
pub struct Reply {
    /// Lines to write back to the client.
    pub lines: Vec<String>,
    /// Whether the session should end.
    pub quit: bool,
}

/// The long-lived incremental check engine (see module docs).
pub struct ServeEngine {
    checker: Checker,
    registry: ConstraintRegistry,
    store: Option<IndexStore>,
    /// Relations dirtied by deltas since the last full check, in sorted
    /// order (so `stats` output and revalidation order are deterministic).
    dirty: BTreeSet<String>,
    stats: ServeMetrics,
    /// Witness cap for `certify` replies.
    witness_limit: usize,
    audit: AuditMetrics,
}

impl ServeEngine {
    /// Build a session over a warm checker (callers warm-start the store
    /// before handing it over) and prime the verdict cache with one full
    /// validation — its reports are returned so the caller can print the
    /// baseline, and its wall-clock cost lands in
    /// [`ServeMetrics::full_ns`] as the incremental-vs-full yardstick.
    /// Duplicate constraint names are rejected.
    pub fn new(
        checker: Checker,
        constraints: &[(String, Formula)],
        store: Option<IndexStore>,
    ) -> Result<(ServeEngine, Vec<(String, CheckReport)>)> {
        let mut engine = ServeEngine {
            checker,
            registry: ConstraintRegistry::new(),
            store,
            dirty: BTreeSet::new(),
            stats: ServeMetrics::default(),
            witness_limit: DEFAULT_WITNESS_LIMIT,
            audit: AuditMetrics::default(),
        };
        for (name, f) in constraints {
            if !engine.registry.register(name, f.clone()) {
                return Err(CoreError::Store(StoreError::DuplicateRelation(format!(
                    "constraint {name}"
                ))));
            }
        }
        let start = Instant::now();
        let reports = engine.registry.validate_all(&mut engine.checker)?;
        engine.stats.full_ns = start.elapsed().as_nanos() as u64;
        Ok((engine, reports))
    }

    /// Apply one tuple delta and mark its relation dirty. With a store
    /// attached the delta is durably journaled first
    /// ([`IndexStore::journaled_apply`]); without one it goes straight
    /// through incremental index maintenance. Returns whether the
    /// relation actually changed (duplicate inserts and misses don't).
    pub fn apply(&mut self, relation: &str, delta: &Delta) -> Result<bool> {
        let arity = self.checker.logical_db().db().relation(relation)?.arity();
        if delta.values().len() != arity {
            return Err(CoreError::Store(StoreError::ArityMismatch {
                expected: arity,
                got: delta.values().len(),
            }));
        }
        let changed = match self.store.as_mut() {
            Some(store) => match store.journaled_apply(&mut self.checker, relation, delta) {
                Ok(changed) => changed,
                // The delta is journaled (durable) but its value does not
                // fit the frozen BDD block: degrade rather than lose it.
                Err(CoreError::DomainOverflow { .. }) => self.degrade_overflow(relation, delta)?,
                Err(e) => return Err(e),
            },
            None => self.apply_direct(relation, delta)?,
        };
        self.dirty.insert(relation.to_owned());
        self.stats.deltas += 1;
        Ok(changed)
    }

    /// Store-less delta path: encode, guard the frozen domain exactly
    /// like [`IndexStore::journaled_apply`] does, then maintain the index
    /// incrementally.
    fn apply_direct(&mut self, relation: &str, delta: &Delta) -> Result<bool> {
        let (row, classes) = self.encode(relation, delta)?;
        if self.checker.logical_db().has_index(relation) {
            for (code, class) in row.iter().zip(&classes) {
                if u64::from(*code) >= self.checker.logical_db_mut().class_domain_size(class) {
                    return self.degrade_overflow(relation, delta);
                }
            }
        }
        match delta {
            Delta::Insert(_) => self.checker.logical_db_mut().insert_tuple(relation, &row),
            Delta::Delete(_) => self.checker.logical_db_mut().delete_tuple(relation, &row),
        }
    }

    fn encode(&mut self, relation: &str, delta: &Delta) -> Result<(Vec<u32>, Vec<String>)> {
        let classes: Vec<String> = self
            .checker
            .logical_db()
            .db()
            .relation(relation)?
            .schema()
            .columns()
            .iter()
            .map(|c| c.class.clone())
            .collect();
        let row = delta
            .values()
            .iter()
            .zip(&classes)
            .map(|(v, class)| {
                self.checker
                    .logical_db_mut()
                    .db_mut()
                    .encode_value(class, v)
            })
            .collect();
        Ok((row, classes))
    }

    /// A delta value outside a frozen BDD block: the block cannot grow
    /// in-place, so apply the delta rows-only and route the relation to
    /// the SQL rung. `mark_sql_only` bumps the invalidation epoch, which
    /// retires the relation's cached plans *and* cached verdicts, so the
    /// session keeps serving correct (if slower) answers; the next warm
    /// start re-interns the journal and rebuilds wider blocks.
    fn degrade_overflow(&mut self, relation: &str, delta: &Delta) -> Result<bool> {
        let (row, _) = self.encode(relation, delta)?;
        let rel = self
            .checker
            .logical_db_mut()
            .db_mut()
            .relation_mut(relation)?;
        let changed = match delta {
            Delta::Insert(_) => rel.insert(&row)?,
            Delta::Delete(_) => rel.delete(&row)?,
        };
        self.checker.mark_sql_only(relation);
        Ok(changed)
    }

    /// Serve a `check`: re-verify exactly the constraints whose read-set
    /// intersects the accumulated dirty set (plus anything unvalidated or
    /// epoch-stale), answer the rest from cache, then clear the dirty
    /// set. Returns `(name, verdict)` in registration order.
    pub fn check_all(&mut self) -> Result<Vec<(String, Verdict)>> {
        let start = Instant::now();
        self.note_check();
        let touched: Vec<&str> = self.dirty.iter().map(String::as_str).collect();
        let verdicts = self.registry.revalidate(&mut self.checker, &touched)?;
        self.dirty.clear();
        for (_, v) in &verdicts {
            match v {
                Verdict::Checked { .. } => self.stats.constraints_checked += 1,
                Verdict::Cached { .. } => self.stats.constraints_skipped += 1,
            }
        }
        self.stats.incremental_ns += start.elapsed().as_nanos() as u64;
        Ok(verdicts)
    }

    /// Serve a `check NAME`: the named constraint re-checks only if
    /// dirty-intersecting/stale, from cache otherwise. The dirty set is
    /// **not** consumed — other constraints keep their pending dirtiness
    /// for the next full check. `None` for an unknown name.
    pub fn check_one(&mut self, name: &str) -> Result<Option<Verdict>> {
        let start = Instant::now();
        self.note_check();
        let touched: Vec<&str> = self.dirty.iter().map(String::as_str).collect();
        let verdict = self
            .registry
            .revalidate_one(&mut self.checker, name, &touched)?;
        match verdict {
            Some(Verdict::Checked { .. }) => self.stats.constraints_checked += 1,
            Some(Verdict::Cached { .. }) => self.stats.constraints_skipped += 1,
            None => {}
        }
        self.stats.incremental_ns += start.elapsed().as_nanos() as u64;
        Ok(verdict)
    }

    /// Every registered constraint as `(name, formula)` — the spec the
    /// audit re-checker verifies certificates against.
    fn constraint_list(&self) -> Vec<(String, Formula)> {
        self.registry
            .names()
            .iter()
            .map(|n| {
                (
                    (*n).to_owned(),
                    self.registry.formula(n).expect("listed name").clone(),
                )
            })
            .collect()
    }

    /// Re-check one constraint **fresh** (through the plan cache, never
    /// the verdict cache — a certificate must describe the data as it is
    /// now), emit its certificate, and immediately audit it with the
    /// independent re-checker. Returns `None` for an unknown name;
    /// otherwise the certificate plus the audit rejection, if any
    /// (undecided verdicts are not audited — they are uncertifiable by
    /// construction and the certificate says so).
    pub fn certify_one(
        &mut self,
        name: &str,
    ) -> Result<Option<(Certificate, Option<crate::certify::AuditError>)>> {
        let Some(f) = self.registry.formula(name).cloned() else {
            return Ok(None);
        };
        let report = self.registry.check_cached(&mut self.checker, &f)?;
        let cert = emit_certificate(&mut self.checker, name, &f, &report, self.witness_limit)?;
        self.audit.emitted += 1;
        if let Some(w) = &cert.witnesses {
            self.audit.witnesses += w.tuples.len() as u64;
        }
        let audit = if cert.verdict.is_decided() {
            let constraints = self.constraint_list();
            match verify_certificate(self.checker.logical_db().db(), &constraints, &cert) {
                Ok(_) => {
                    self.audit.verified += 1;
                    None
                }
                Err(e) => {
                    self.audit.failed += 1;
                    Some(e)
                }
            }
        } else {
            None
        };
        Ok(Some((cert, audit)))
    }

    /// [`certify_one`] over every registered constraint, in registration
    /// order.
    ///
    /// [`certify_one`]: ServeEngine::certify_one
    pub fn certify_all(
        &mut self,
    ) -> Result<Vec<(Certificate, Option<crate::certify::AuditError>)>> {
        let names: Vec<String> = self
            .registry
            .names()
            .iter()
            .map(|n| (*n).to_owned())
            .collect();
        let mut out = Vec::with_capacity(names.len());
        for name in names {
            out.push(self.certify_one(&name)?.expect("registered name certifies"));
        }
        Ok(out)
    }

    fn note_check(&mut self) {
        self.stats.checks += 1;
        self.stats.dirty_peak = self.stats.dirty_peak.max(self.dirty.len() as u64);
        self.stats.dirty_total += self.dirty.len() as u64;
    }

    /// Handle one protocol line. Errors are folded into `err …` reply
    /// lines — a bad command or a failed delta never ends the session.
    pub fn handle_line(&mut self, line: &str) -> Reply {
        let command = match parse_command(line) {
            Ok(Some(command)) => command,
            Ok(None) => return Reply::default(),
            Err(e) => {
                self.stats.requests += 1;
                return Reply {
                    lines: vec![format!("err {e}")],
                    quit: false,
                };
            }
        };
        self.stats.requests += 1;
        let mut reply = Reply::default();
        match command {
            Command::Delta(relation, delta) => {
                let sign = match delta {
                    Delta::Insert(_) => '+',
                    Delta::Delete(_) => '-',
                };
                match self.apply(&relation, &delta) {
                    Ok(changed) => reply.lines.push(format!(
                        "ok delta {sign}{relation} applied={changed} dirty={}",
                        self.dirty.len()
                    )),
                    Err(e) => reply.lines.push(format!("err delta {sign}{relation}: {e}")),
                }
            }
            Command::Check(None) => {
                let dirty = self.dirty.len();
                match self.check_all() {
                    Ok(verdicts) => {
                        let mut checked = 0;
                        let mut skipped = 0;
                        for (name, v) in &verdicts {
                            reply.lines.push(render_verdict(name, v));
                            match v {
                                Verdict::Checked { .. } => checked += 1,
                                Verdict::Cached { .. } => skipped += 1,
                            }
                        }
                        reply.lines.push(format!(
                            "ok check checked={checked} skipped={skipped} dirty={dirty}"
                        ));
                    }
                    Err(e) => reply.lines.push(format!("err check: {e}")),
                }
            }
            Command::Check(Some(name)) => match self.check_one(&name) {
                Ok(Some(v)) => {
                    reply.lines.push(render_verdict(&name, &v));
                    reply.lines.push(format!(
                        "ok check checked={} skipped={} dirty={}",
                        matches!(v, Verdict::Checked { .. }) as u8,
                        matches!(v, Verdict::Cached { .. }) as u8,
                        self.dirty.len()
                    ));
                }
                Ok(None) => reply.lines.push(format!("err unknown constraint {name:?}")),
                Err(e) => reply.lines.push(format!("err check {name}: {e}")),
            },
            Command::Certify(name) => {
                let targets: Vec<String> = match &name {
                    Some(n) => vec![n.clone()],
                    None => self
                        .registry
                        .names()
                        .iter()
                        .map(|n| (*n).to_owned())
                        .collect(),
                };
                let (mut emitted, mut witnesses, mut failed) = (0u64, 0u64, 0u64);
                for t in targets {
                    match self.certify_one(&t) {
                        Ok(Some((cert, audit))) => {
                            emitted += 1;
                            if let Some(w) = &cert.witnesses {
                                witnesses += w.tuples.len() as u64;
                            }
                            reply.lines.push(cert.to_json());
                            if let Some(e) = audit {
                                failed += 1;
                                reply.lines.push(format!("err certify {t}: {e}"));
                            }
                        }
                        Ok(None) => reply.lines.push(format!("err unknown constraint {t:?}")),
                        Err(e) => reply.lines.push(format!("err certify {t}: {e}")),
                    }
                }
                reply.lines.push(format!(
                    "ok certify emitted={emitted} witnesses={witnesses} failed={failed}"
                ));
            }
            Command::Stats => {
                let s = &self.stats;
                reply.lines.push(format!(
                    "ok stats requests={} deltas={} checks={} checked={} skipped={} \
                     dirty={} dirty_peak={} full_us={} incremental_us={}",
                    s.requests,
                    s.deltas,
                    s.checks,
                    s.constraints_checked,
                    s.constraints_skipped,
                    self.dirty.len(),
                    s.dirty_peak,
                    s.full_ns / 1_000,
                    s.incremental_ns / 1_000,
                ));
            }
            Command::Quit => {
                reply.lines.push("ok bye".to_owned());
                reply.quit = true;
            }
        }
        reply
    }

    /// Flush durable state on clean shutdown: compact applied journal
    /// records into fresh segments. Skipping this (a killed session)
    /// costs the next warm start replay time, never correctness.
    pub fn finish(&mut self) -> Result<()> {
        if let Some(store) = self.store.as_mut() {
            store.write_back(&mut self.checker)?;
        }
        Ok(())
    }

    /// Session counters so far.
    pub fn stats(&self) -> ServeMetrics {
        self.stats
    }

    /// Plan-cache counters accumulated by the session's registry.
    pub fn plan_cache_stats(&self) -> PlanCacheMetrics {
        self.registry.plan_cache_stats()
    }

    /// Certificate audit counters accumulated by `certify` requests.
    pub fn audit_stats(&self) -> AuditMetrics {
        self.audit
    }

    /// Cap the number of witness tuples each certificate carries
    /// (default [`DEFAULT_WITNESS_LIMIT`]).
    pub fn set_witness_limit(&mut self, limit: usize) {
        self.witness_limit = limit;
    }

    /// The relations dirtied since the last full check.
    pub fn dirty(&self) -> &BTreeSet<String> {
        &self.dirty
    }

    /// The session's registry (read-sets, cached verdicts).
    pub fn registry(&self) -> &ConstraintRegistry {
        &self.registry
    }

    /// The warm checker.
    pub fn checker(&self) -> &Checker {
        &self.checker
    }

    /// Mutable access to the warm checker — maintenance paths
    /// (`rebuild_index`, `mark_sql_only`) route verdict invalidation
    /// through the checker's epoch, so out-of-band mutations stay safe
    /// as long as they end in one of those calls.
    pub fn checker_mut(&mut self) -> &mut Checker {
        &mut self.checker
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<&IndexStore> {
        self.store.as_ref()
    }
}

/// One verdict line: aligned like `relcheck run`'s report so scripted
/// sessions can diff name/status pairs against a batch run.
fn render_verdict(name: &str, v: &Verdict) -> String {
    let status = if v.holds() { "ok" } else { "VIOLATED" };
    let source = match v {
        Verdict::Checked { .. } => "checked",
        Verdict::Cached { .. } => "cached",
    };
    format!("{name:<32} {status:<9} ({source})")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::CheckerOptions;
    use relcheck_logic::parse;
    use relcheck_relstore::Database;

    fn engine() -> ServeEngine {
        let mut db = Database::new();
        db.create_relation(
            "R",
            &[("x", "k"), ("y", "k")],
            vec![
                vec![Raw::Int(1), Raw::Int(1)],
                vec![Raw::Int(2), Raw::Int(2)],
            ],
        )
        .unwrap();
        db.create_relation(
            "S",
            &[("x", "k")],
            vec![vec![Raw::Int(1)], vec![Raw::Int(2)]],
        )
        .unwrap();
        let checker = Checker::new(db, CheckerOptions::default());
        let constraints = vec![
            (
                "r-diagonal".to_owned(),
                parse("forall x, y. R(x, y) -> x = y").unwrap(),
            ),
            (
                "r-covers-s".to_owned(),
                parse("forall x. S(x) -> exists y. R(x, y)").unwrap(),
            ),
            ("s-nonempty".to_owned(), parse("exists x. S(x)").unwrap()),
        ];
        let (engine, reports) = ServeEngine::new(checker, &constraints, None).unwrap();
        assert!(reports.iter().all(|(_, r)| r.holds));
        engine
    }

    #[test]
    fn parse_command_covers_the_protocol() {
        assert_eq!(parse_command("").unwrap(), None);
        assert_eq!(parse_command("  # comment").unwrap(), None);
        assert_eq!(
            parse_command("+R:1,2").unwrap(),
            Some(Command::Delta(
                "R".to_owned(),
                Delta::Insert(vec![Raw::Int(1), Raw::Int(2)])
            ))
        );
        assert_eq!(
            parse_command("-S:Toronto").unwrap(),
            Some(Command::Delta(
                "S".to_owned(),
                Delta::Delete(vec![Raw::str("Toronto")])
            ))
        );
        assert_eq!(parse_command("check").unwrap(), Some(Command::Check(None)));
        assert_eq!(
            parse_command("check r-diagonal").unwrap(),
            Some(Command::Check(Some("r-diagonal".to_owned())))
        );
        assert_eq!(parse_command("stats").unwrap(), Some(Command::Stats));
        assert_eq!(parse_command("quit").unwrap(), Some(Command::Quit));
        assert!(parse_command("bogus").is_err());
        assert!(parse_command("check a b").is_err());
        assert!(parse_command("+R").is_err());
    }

    #[test]
    fn skip_iff_read_set_disjoint_from_dirty_set() {
        let mut e = engine();
        // Delta on S: exactly the S-readers re-check; the R-only
        // constraint answers from cache.
        e.apply("S", &Delta::Insert(vec![Raw::Int(1)])).unwrap();
        let verdicts = e.check_all().unwrap();
        let by_name: std::collections::HashMap<_, _> = verdicts.into_iter().collect();
        assert!(matches!(
            by_name["r-diagonal"],
            Verdict::Cached { holds: true }
        ));
        assert!(matches!(
            by_name["r-covers-s"],
            Verdict::Checked { holds: true }
        ));
        assert!(matches!(
            by_name["s-nonempty"],
            Verdict::Checked { holds: true }
        ));
        let s = e.stats();
        assert_eq!(s.constraints_checked, 2);
        assert_eq!(s.constraints_skipped, 1);
    }

    #[test]
    fn spanning_constraint_is_never_skipped() {
        let mut e = engine();
        // r-covers-s reads both relations: any delta re-checks it.
        for delta in ["+R:3,3", "+S:2"] {
            let (rel, d) = parse_delta(delta).unwrap();
            e.apply(&rel, &d).unwrap();
            let verdicts = e.check_all().unwrap();
            let by_name: std::collections::HashMap<_, _> = verdicts.into_iter().collect();
            assert!(
                matches!(by_name["r-covers-s"], Verdict::Checked { .. }),
                "spanning constraint skipped after {delta}"
            );
        }
    }

    #[test]
    fn empty_delta_answers_everything_from_cache() {
        let mut e = engine();
        let verdicts = e.check_all().unwrap();
        assert!(verdicts
            .iter()
            .all(|(_, v)| matches!(v, Verdict::Cached { .. })));
        let s = e.stats();
        assert_eq!(s.constraints_skipped, 3);
        assert_eq!(s.constraints_checked, 0);
        assert_eq!(s.dirty_peak, 0);
    }

    #[test]
    fn check_one_leaves_other_dirtiness_pending() {
        let mut e = engine();
        e.apply("R", &Delta::Insert(vec![Raw::Int(1), Raw::Int(2)]))
            .unwrap();
        let v = e.check_one("r-diagonal").unwrap().unwrap();
        assert!(matches!(v, Verdict::Checked { holds: false }));
        // The dirty set survives a targeted check…
        assert!(e.dirty().contains("R"));
        // …so the next full check still re-checks the other R-reader.
        let verdicts = e.check_all().unwrap();
        let by_name: std::collections::HashMap<_, _> = verdicts.into_iter().collect();
        assert!(matches!(by_name["r-covers-s"], Verdict::Checked { .. }));
        assert!(e.dirty().is_empty());
        assert!(e.check_one("no-such").unwrap().is_none());
    }

    #[test]
    fn protocol_session_end_to_end() {
        let mut e = engine();
        let r = e.handle_line("+R:1,2");
        assert_eq!(r.lines, vec!["ok delta +R applied=true dirty=1"]);
        let r = e.handle_line("check");
        assert_eq!(
            r.lines.last().unwrap(),
            "ok check checked=2 skipped=1 dirty=1"
        );
        assert!(r
            .lines
            .iter()
            .any(|l| l.starts_with("r-diagonal") && l.contains("VIOLATED")));
        let r = e.handle_line("check s-nonempty");
        assert_eq!(
            r.lines.last().unwrap(),
            "ok check checked=0 skipped=1 dirty=0"
        );
        let r = e.handle_line("+R:9,9");
        // Arity is fine; applying the same tuple twice changes nothing.
        assert_eq!(r.lines, vec!["ok delta +R applied=true dirty=1"]);
        let r = e.handle_line("+R:9");
        assert!(r.lines[0].starts_with("err delta +R:"), "{:?}", r.lines);
        let r = e.handle_line("nonsense");
        assert!(r.lines[0].starts_with("err unknown command"));
        let r = e.handle_line("stats");
        assert!(r.lines[0].starts_with("ok stats requests=7 deltas=2 checks=2"));
        let r = e.handle_line("quit");
        assert!(r.quit);
        assert_eq!(r.lines, vec!["ok bye"]);
    }

    #[test]
    fn maintenance_through_the_engine_retires_stale_verdicts() {
        let mut e = engine();
        // Out-of-band row mutation + rebuild (what store recovery does):
        // no delta marks R dirty, but the epoch-based invalidation must
        // force a re-check anyway.
        let one = e
            .checker()
            .logical_db()
            .db()
            .code("k", &Raw::Int(1))
            .unwrap();
        let two = e
            .checker()
            .logical_db()
            .db()
            .code("k", &Raw::Int(2))
            .unwrap();
        e.checker_mut()
            .logical_db_mut()
            .db_mut()
            .relation_mut("R")
            .unwrap()
            .insert(&[one, two])
            .unwrap();
        e.checker_mut().rebuild_index("R").unwrap();
        let verdicts = e.check_all().unwrap();
        let by_name: std::collections::HashMap<_, _> = verdicts.into_iter().collect();
        assert!(matches!(
            by_name["r-diagonal"],
            Verdict::Checked { holds: false }
        ));
        assert!(matches!(
            by_name["s-nonempty"],
            Verdict::Cached { holds: true }
        ));
    }

    #[test]
    fn overflow_degrades_to_sql_and_stays_correct() {
        let mut e = engine();
        // Value 7 was never interned; the frozen "k" block cannot hold it.
        e.apply("S", &Delta::Insert(vec![Raw::Int(7)])).unwrap();
        assert!(e.checker().is_sql_only("S"));
        let verdicts = e.check_all().unwrap();
        let by_name: std::collections::HashMap<_, _> = verdicts.into_iter().collect();
        // S(7) has no covering R tuple: the spanning constraint breaks,
        // and the verdict is decided correctly on the SQL rung.
        assert!(matches!(
            by_name["r-covers-s"],
            Verdict::Checked { holds: false }
        ));
        assert!(matches!(
            by_name["s-nonempty"],
            Verdict::Checked { holds: true }
        ));
        assert!(matches!(
            by_name["r-diagonal"],
            Verdict::Cached { holds: true }
        ));
    }
}
