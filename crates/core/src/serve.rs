//! Long-lived incremental check engine behind a line protocol.
//!
//! The paper's pitch is *fast identification* of violations as data
//! changes; a cold `relcheck run` per update batch throws the warm state
//! away each time. [`ServeEngine`] is the session-oriented alternative:
//! it keeps the relation store, the BDD manager and its logical indices,
//! the fingerprinted plan cache, and (optionally) the persistent
//! [`IndexStore`] alive across requests, and re-checks **only the
//! constraints whose read-set intersects the relations dirtied since the
//! last check** — everything else answers from the registry's cached
//! verdict. The read-set signature is the same one
//! [`crate::parallel::read_set`] computes for lane partitioning, so the
//! skip decisions agree with the parallel scheduler's grouping.
//!
//! The protocol is line-oriented (stdin or a unix socket in the CLI):
//!
//! ```text
//! +REL:v1,v2,…      insert one tuple (the store's journal syntax)
//! -REL:v1,v2,…      delete one tuple
//! check [NAME]      revalidate (everything, or one constraint)
//! certify [NAME]    re-check and emit audited violation certificates
//! stats             session counters
//! quit              end the session
//! ```
//!
//! Durability: with a store attached, deltas flow through
//! [`IndexStore::journaled_apply`] — journal-first with fsync — so a
//! killed session warm-starts to exactly the acknowledged state. A
//! transiently failing append is retried with bounded deterministic
//! backoff ([`IndexStore::journaled_apply_retrying`]); if the retry
//! budget runs dry the delta is served rows-only — exact but not durable
//! — and the reply says so (`durable=false`). A delta value outside a
//! frozen BDD block's domain cannot be folded into the index in-place;
//! the engine degrades that relation to the SQL rung
//! ([`Checker::mark_sql_only`], which retires cached plans *and* cached
//! verdicts) and keeps serving correct answers until a restart rebuilds
//! wider blocks. Per-request deadlines and overload ride the existing
//! degradation ladder: every re-check goes through
//! [`crate::registry::ConstraintRegistry::check_cached`], whose deadline,
//! node-budget, and panic handling are unchanged.
//!
//! Concurrency: the engine itself is single-threaded on purpose — one
//! [`ServeActor`] thread owns it and serializes every request off a
//! **bounded** queue, so verdict-order determinism is structural, not
//! locked-in. Sessions (one thread per connection in the CLI) talk to it
//! through cloned [`ServeClient`] handles whose `submit` runs the
//! admission governor: Normal requests take the full ladder, Shed
//! requests (queue backlog or slow last request) enter at the SQL rung
//! ([`crate::telemetry::FallbackReason::Overload`]), and when the queue
//! is full the request is Rejected with a typed `busy <retry-after-ms>`
//! reply without ever touching the engine. `quit` (or the CLI's SIGTERM
//! handler) starts a graceful drain: queued requests are finished, new
//! ones see a closed session, and the actor hands the engine back for
//! the final journal flush and metrics emission.

use crate::certify::{emit_certificate, verify_certificate, Certificate, DEFAULT_WITNESS_LIMIT};
use crate::checker::{CheckReport, Checker};
use crate::error::{CoreError, Result};
use crate::policy::WorkloadProfile;
use crate::registry::{ConstraintRegistry, Verdict};
use crate::store::{Delta, IndexStore};
use crate::telemetry::{
    AuditMetrics, OverloadMetrics, PlanCacheMetrics, PolicyMetrics, ServeMetrics,
};
use relcheck_logic::Formula;
use relcheck_relstore::{Raw, StoreError};
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One parsed protocol command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `+REL:v,…` / `-REL:v,…` — apply one tuple delta.
    Delta(String, Delta),
    /// `check` / `check NAME` — revalidate and report verdicts.
    Check(Option<String>),
    /// `certify` / `certify NAME` — re-check, emit certificates, and
    /// report each one's independent audit result.
    Certify(Option<String>),
    /// `advise` — re-record the workload profile, run the cost-model
    /// advisor, apply its routing advice, and report what changed.
    Advise,
    /// `stats` — session counters.
    Stats,
    /// `quit` — end the session.
    Quit,
}

/// Parse a `+REL:v1,v2,...` / `-REL:v1,v2,...` delta argument — the
/// store's journal syntax, shared by the protocol, `relcheck index
/// apply`, and scripts. Values that parse as integers become
/// [`Raw::Int`]; everything else is a string.
pub fn parse_delta(arg: &str) -> std::result::Result<(String, Delta), String> {
    let bad = || format!("bad delta {arg:?} (expected +REL:v1,v2,... or -REL:v1,v2,...)");
    let rest = arg
        .strip_prefix('+')
        .or_else(|| arg.strip_prefix('-'))
        .ok_or_else(bad)?;
    let (relation, values) = rest.split_once(':').ok_or_else(bad)?;
    if relation.is_empty() || values.is_empty() {
        return Err(bad());
    }
    let row: Vec<Raw> = values
        .split(',')
        .map(|v| match v.parse::<i64>() {
            Ok(i) => Raw::Int(i),
            Err(_) => Raw::Str(v.to_owned()),
        })
        .collect();
    let delta = if arg.starts_with('+') {
        Delta::Insert(row)
    } else {
        Delta::Delete(row)
    };
    Ok((relation.to_owned(), delta))
}

/// Parse one protocol line. Blank lines and `#` comments are no-ops
/// (`Ok(None)`), so scripted sessions can be annotated.
pub fn parse_command(line: &str) -> std::result::Result<Option<Command>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    if line.starts_with('+') || line.starts_with('-') {
        let (relation, delta) = parse_delta(line)?;
        return Ok(Some(Command::Delta(relation, delta)));
    }
    let mut parts = line.split_whitespace();
    let cmd = parts.next().expect("non-empty line has a first token");
    let command = match cmd {
        "check" => Command::Check(parts.next().map(str::to_owned)),
        "certify" => Command::Certify(parts.next().map(str::to_owned)),
        "advise" => Command::Advise,
        "stats" => Command::Stats,
        "quit" => Command::Quit,
        other => {
            return Err(format!(
                "unknown command {other:?} \
                 (try +REL:v,... -REL:v,... check [name] certify [name] advise stats quit)"
            ))
        }
    };
    if parts.next().is_some() {
        return Err(format!("trailing arguments after {cmd:?}"));
    }
    Ok(Some(command))
}

/// Decode one raw protocol line from the wire before it reaches
/// [`parse_command`]: cap the length (a slowloris or binary stream must
/// not buffer unbounded), reject embedded NULs and invalid UTF-8 with a
/// typed message, and strip the trailing newline. Shared by the CLI's
/// socket sessions and the protocol fuzz suite, so hardening and tests
/// see the same code path.
pub fn sanitize_line(bytes: &[u8], max_line_bytes: usize) -> std::result::Result<String, String> {
    if bytes.len() > max_line_bytes {
        return Err(format!(
            "line exceeds {max_line_bytes} bytes (got {})",
            bytes.len()
        ));
    }
    if bytes.contains(&0) {
        return Err("line contains a NUL byte".to_owned());
    }
    match std::str::from_utf8(bytes) {
        Ok(s) => Ok(s.trim_end_matches(['\r', '\n']).to_owned()),
        Err(e) => Err(format!("line is not valid UTF-8: {e}")),
    }
}

/// The engine's answer to one protocol line.
#[derive(Debug, Clone, Default)]
pub struct Reply {
    /// Lines to write back to the client.
    pub lines: Vec<String>,
    /// Whether the session should end.
    pub quit: bool,
}

/// What [`ServeEngine::apply`] did with one delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Whether the relation actually changed (duplicate inserts and
    /// deletes of absent tuples don't).
    pub changed: bool,
    /// Whether the delta is durably journaled. `false` only on the
    /// retry-exhausted path: the delta is applied rows-only and the
    /// relation degraded to the SQL rung, so answers stay exact but a
    /// crash before the next successful write-back loses the delta.
    pub durable: bool,
    /// Journal-append retries spent before the append succeeded (0 when
    /// storeless or first-try).
    pub retries: u64,
}

/// Journal-append retry budget for the serve path (see
/// [`IndexStore::journaled_apply_retrying`]).
pub const JOURNAL_RETRY_LIMIT: u64 = 3;

/// The long-lived incremental check engine (see module docs).
pub struct ServeEngine {
    checker: Checker,
    registry: ConstraintRegistry,
    store: Option<IndexStore>,
    /// Relations dirtied by deltas since the last full check, in sorted
    /// order (so `stats` output and revalidation order are deterministic).
    dirty: BTreeSet<String>,
    stats: ServeMetrics,
    /// Witness cap for `certify` replies.
    witness_limit: usize,
    audit: AuditMetrics,
    /// Journal-append retries absorbed across the session (the overload
    /// block's `retries` counter).
    journal_retries: u64,
    /// The baseline validation's reports, retained so re-recorded
    /// profiles keep their per-relation routing attribution (the
    /// post-baseline protocol returns [`Verdict`]s, not reports).
    baseline: Vec<(String, CheckReport)>,
    /// The session's workload profile, re-recorded (replaced, never
    /// merged — manager counters are cumulative, see
    /// [`WorkloadProfile::record`]) on every `advise`.
    profile: WorkloadProfile,
    /// Counters from the most recent advise, `None` until one runs.
    policy: Option<PolicyMetrics>,
    /// How many advise passes ran (explicit `advise` commands plus
    /// periodic re-advises).
    readvises: u64,
}

/// Deltas between automatic re-advise passes: every
/// `READVISE_INTERVAL`-th applied delta re-records the profile and
/// re-applies the advisor, so a drifting workload re-routes without an
/// explicit `advise`. Large enough that short scripted sessions (CI
/// smokes apply a handful of deltas) never trigger one.
pub const READVISE_INTERVAL: u64 = 64;

impl ServeEngine {
    /// Build a session over a warm checker (callers warm-start the store
    /// before handing it over) and prime the verdict cache with one full
    /// validation — its reports are returned so the caller can print the
    /// baseline, and its wall-clock cost lands in
    /// [`ServeMetrics::full_ns`] as the incremental-vs-full yardstick.
    /// Duplicate constraint names are rejected.
    pub fn new(
        checker: Checker,
        constraints: &[(String, Formula)],
        store: Option<IndexStore>,
    ) -> Result<(ServeEngine, Vec<(String, CheckReport)>)> {
        let mut engine = ServeEngine {
            checker,
            registry: ConstraintRegistry::new(),
            store,
            dirty: BTreeSet::new(),
            stats: ServeMetrics::default(),
            witness_limit: DEFAULT_WITNESS_LIMIT,
            audit: AuditMetrics::default(),
            journal_retries: 0,
            baseline: Vec::new(),
            profile: WorkloadProfile::default(),
            policy: None,
            readvises: 0,
        };
        for (name, f) in constraints {
            if !engine.registry.register(name, f.clone()) {
                return Err(CoreError::Store(StoreError::DuplicateRelation(format!(
                    "constraint {name}"
                ))));
            }
        }
        let start = Instant::now();
        let reports = engine.registry.validate_all(&mut engine.checker)?;
        engine.stats.full_ns = start.elapsed().as_nanos() as u64;
        engine.baseline = reports.clone();
        engine.profile = WorkloadProfile::record(&engine.checker, constraints, &engine.baseline);
        Ok((engine, reports))
    }

    /// Apply one tuple delta and mark its relation dirty. With a store
    /// attached the delta is durably journaled first, retrying transient
    /// append failures with bounded backoff
    /// ([`IndexStore::journaled_apply_retrying`]); if the retry budget
    /// runs dry the delta is applied rows-only (exact, not durable) and
    /// the relation degraded to the SQL rung rather than lost or left
    /// half-applied. Without a store the delta goes straight through
    /// incremental index maintenance. The outcome reports what happened
    /// ([`ApplyOutcome`]).
    pub fn apply(&mut self, relation: &str, delta: &Delta) -> Result<ApplyOutcome> {
        let arity = self.checker.logical_db().db().relation(relation)?.arity();
        if delta.values().len() != arity {
            return Err(CoreError::Store(StoreError::ArityMismatch {
                expected: arity,
                got: delta.values().len(),
            }));
        }
        let outcome = match self.store.as_mut() {
            Some(store) => {
                let (retries, result) = store.journaled_apply_retrying(
                    &mut self.checker,
                    relation,
                    delta,
                    JOURNAL_RETRY_LIMIT,
                );
                self.journal_retries += retries;
                match result {
                    Ok(changed) => ApplyOutcome {
                        changed,
                        durable: true,
                        retries,
                    },
                    // The delta is journaled (durable) but its value does
                    // not fit the frozen BDD block: degrade rather than
                    // lose it.
                    Err(CoreError::DomainOverflow { .. }) => ApplyOutcome {
                        changed: self.degrade_overflow(relation, delta)?,
                        durable: true,
                        retries,
                    },
                    // Retry budget exhausted on a transient append
                    // failure: the journal never acknowledged the delta,
                    // so serve it rows-only and route the relation to the
                    // SQL rung — index and journal can no longer diverge,
                    // and the client is told durability was lost.
                    Err(CoreError::Bdd(relcheck_bdd::BddError::FaultInjected { .. }))
                    | Err(CoreError::Io { .. }) => ApplyOutcome {
                        changed: self.degrade_overflow(relation, delta)?,
                        durable: false,
                        retries,
                    },
                    Err(e) => return Err(e),
                }
            }
            None => ApplyOutcome {
                changed: self.apply_direct(relation, delta)?,
                durable: true,
                retries: 0,
            },
        };
        self.dirty.insert(relation.to_owned());
        self.stats.deltas += 1;
        // Periodic re-advise: a long-running session's workload drifts,
        // so every READVISE_INTERVAL-th delta re-runs the advisor. Best
        // effort — route maintenance failing (e.g. a rebuild hitting an
        // injected fault) must not fail the delta that triggered it; the
        // session just keeps its current routing until the next pass.
        if self.stats.deltas.is_multiple_of(READVISE_INTERVAL) {
            let _ = self.advise_now();
        }
        Ok(outcome)
    }

    /// Re-record the workload profile from the live checker (replacing
    /// the previous recording) and apply the cost-model advisor's
    /// routing advice. Any route change bumps the checker epoch, so
    /// cached verdicts reading a re-routed relation retire on the next
    /// check — advising never changes a verdict, only how it is reached.
    pub fn advise_now(&mut self) -> Result<(crate::policy::Advice, crate::policy::AppliedAdvice)> {
        self.profile =
            WorkloadProfile::record(&self.checker, &self.registry.constraints(), &self.baseline);
        let (advice, applied) = self
            .registry
            .apply_policy(&mut self.checker, &self.profile)?;
        self.readvises += 1;
        let mut metrics = advice.metrics(&self.profile, Some(&applied));
        metrics.readvises = self.readvises;
        self.policy = Some(metrics);
        Ok((advice, applied))
    }

    /// Store-less delta path: encode, guard the frozen domain exactly
    /// like [`IndexStore::journaled_apply`] does, then maintain the index
    /// incrementally.
    fn apply_direct(&mut self, relation: &str, delta: &Delta) -> Result<bool> {
        let (row, classes) = self.encode(relation, delta)?;
        if self.checker.logical_db().has_index(relation) {
            for (code, class) in row.iter().zip(&classes) {
                if u64::from(*code) >= self.checker.logical_db_mut().class_domain_size(class) {
                    return self.degrade_overflow(relation, delta);
                }
            }
        }
        match delta {
            Delta::Insert(_) => self.checker.logical_db_mut().insert_tuple(relation, &row),
            Delta::Delete(_) => self.checker.logical_db_mut().delete_tuple(relation, &row),
        }
    }

    fn encode(&mut self, relation: &str, delta: &Delta) -> Result<(Vec<u32>, Vec<String>)> {
        let classes: Vec<String> = self
            .checker
            .logical_db()
            .db()
            .relation(relation)?
            .schema()
            .columns()
            .iter()
            .map(|c| c.class.clone())
            .collect();
        let row = delta
            .values()
            .iter()
            .zip(&classes)
            .map(|(v, class)| {
                self.checker
                    .logical_db_mut()
                    .db_mut()
                    .encode_value(class, v)
            })
            .collect();
        Ok((row, classes))
    }

    /// A delta value outside a frozen BDD block: the block cannot grow
    /// in-place, so apply the delta rows-only and route the relation to
    /// the SQL rung. `mark_sql_only` bumps the invalidation epoch, which
    /// retires the relation's cached plans *and* cached verdicts, so the
    /// session keeps serving correct (if slower) answers; the next warm
    /// start re-interns the journal and rebuilds wider blocks.
    fn degrade_overflow(&mut self, relation: &str, delta: &Delta) -> Result<bool> {
        let (row, _) = self.encode(relation, delta)?;
        let rel = self
            .checker
            .logical_db_mut()
            .db_mut()
            .relation_mut(relation)?;
        let changed = match delta {
            Delta::Insert(_) => rel.insert(&row)?,
            Delta::Delete(_) => rel.delete(&row)?,
        };
        self.checker.mark_sql_only(relation);
        Ok(changed)
    }

    /// Serve a `check`: re-verify exactly the constraints whose read-set
    /// intersects the accumulated dirty set (plus anything unvalidated or
    /// epoch-stale), answer the rest from cache, then clear the dirty
    /// set. Returns `(name, verdict)` in registration order.
    pub fn check_all(&mut self) -> Result<Vec<(String, Verdict)>> {
        let start = Instant::now();
        self.note_check();
        let touched: Vec<&str> = self.dirty.iter().map(String::as_str).collect();
        let verdicts = self.registry.revalidate(&mut self.checker, &touched)?;
        self.dirty.clear();
        for (_, v) in &verdicts {
            match v {
                Verdict::Checked { .. } => self.stats.constraints_checked += 1,
                Verdict::Cached { .. } => self.stats.constraints_skipped += 1,
            }
        }
        self.stats.incremental_ns += start.elapsed().as_nanos() as u64;
        Ok(verdicts)
    }

    /// Serve a `check NAME`: the named constraint re-checks only if
    /// dirty-intersecting/stale, from cache otherwise. The dirty set is
    /// **not** consumed — other constraints keep their pending dirtiness
    /// for the next full check. `None` for an unknown name.
    pub fn check_one(&mut self, name: &str) -> Result<Option<Verdict>> {
        let start = Instant::now();
        self.note_check();
        let touched: Vec<&str> = self.dirty.iter().map(String::as_str).collect();
        let verdict = self
            .registry
            .revalidate_one(&mut self.checker, name, &touched)?;
        match verdict {
            Some(Verdict::Checked { .. }) => self.stats.constraints_checked += 1,
            Some(Verdict::Cached { .. }) => self.stats.constraints_skipped += 1,
            None => {}
        }
        self.stats.incremental_ns += start.elapsed().as_nanos() as u64;
        Ok(verdict)
    }

    /// Every registered constraint as `(name, formula)` — the spec the
    /// audit re-checker verifies certificates against.
    fn constraint_list(&self) -> Vec<(String, Formula)> {
        self.registry
            .names()
            .iter()
            .map(|n| {
                (
                    (*n).to_owned(),
                    self.registry.formula(n).expect("listed name").clone(),
                )
            })
            .collect()
    }

    /// Re-check one constraint **fresh** (through the plan cache, never
    /// the verdict cache — a certificate must describe the data as it is
    /// now), emit its certificate, and immediately audit it with the
    /// independent re-checker. Returns `None` for an unknown name;
    /// otherwise the certificate plus the audit rejection, if any
    /// (undecided verdicts are not audited — they are uncertifiable by
    /// construction and the certificate says so).
    pub fn certify_one(
        &mut self,
        name: &str,
    ) -> Result<Option<(Certificate, Option<crate::certify::AuditError>)>> {
        let Some(f) = self.registry.formula(name).cloned() else {
            return Ok(None);
        };
        let report = self.registry.check_cached(&mut self.checker, &f)?;
        let cert = emit_certificate(&mut self.checker, name, &f, &report, self.witness_limit)?;
        self.audit.emitted += 1;
        if let Some(w) = &cert.witnesses {
            self.audit.witnesses += w.tuples.len() as u64;
        }
        let audit = if cert.verdict.is_decided() {
            let constraints = self.constraint_list();
            match verify_certificate(self.checker.logical_db().db(), &constraints, &cert) {
                Ok(_) => {
                    self.audit.verified += 1;
                    None
                }
                Err(e) => {
                    self.audit.failed += 1;
                    Some(e)
                }
            }
        } else {
            None
        };
        Ok(Some((cert, audit)))
    }

    /// [`certify_one`] over every registered constraint, in registration
    /// order.
    ///
    /// [`certify_one`]: ServeEngine::certify_one
    pub fn certify_all(
        &mut self,
    ) -> Result<Vec<(Certificate, Option<crate::certify::AuditError>)>> {
        let names: Vec<String> = self
            .registry
            .names()
            .iter()
            .map(|n| (*n).to_owned())
            .collect();
        let mut out = Vec::with_capacity(names.len());
        for name in names {
            out.push(self.certify_one(&name)?.expect("registered name certifies"));
        }
        Ok(out)
    }

    fn note_check(&mut self) {
        self.stats.checks += 1;
        self.stats.dirty_peak = self.stats.dirty_peak.max(self.dirty.len() as u64);
        self.stats.dirty_total += self.dirty.len() as u64;
    }

    /// Handle one protocol line. Errors are folded into `err …` reply
    /// lines — a bad command or a failed delta never ends the session.
    pub fn handle_line(&mut self, line: &str) -> Reply {
        let command = match parse_command(line) {
            Ok(Some(command)) => command,
            Ok(None) => return Reply::default(),
            Err(e) => {
                self.stats.requests += 1;
                return Reply {
                    lines: vec![format!("err {e}")],
                    quit: false,
                };
            }
        };
        self.stats.requests += 1;
        let mut reply = Reply::default();
        match command {
            Command::Delta(relation, delta) => {
                let sign = match delta {
                    Delta::Insert(_) => '+',
                    Delta::Delete(_) => '-',
                };
                match self.apply(&relation, &delta) {
                    // The durable marker appears only on the degraded
                    // path, so fault-free replies stay byte-identical to
                    // every earlier protocol version.
                    Ok(out) => reply.lines.push(format!(
                        "ok delta {sign}{relation} applied={} dirty={}{}",
                        out.changed,
                        self.dirty.len(),
                        if out.durable { "" } else { " durable=false" }
                    )),
                    Err(e) => reply.lines.push(format!("err delta {sign}{relation}: {e}")),
                }
            }
            Command::Check(None) => {
                let dirty = self.dirty.len();
                match self.check_all() {
                    Ok(verdicts) => {
                        let mut checked = 0;
                        let mut skipped = 0;
                        for (name, v) in &verdicts {
                            reply.lines.push(render_verdict(name, v));
                            match v {
                                Verdict::Checked { .. } => checked += 1,
                                Verdict::Cached { .. } => skipped += 1,
                            }
                        }
                        reply.lines.push(format!(
                            "ok check checked={checked} skipped={skipped} dirty={dirty}"
                        ));
                    }
                    Err(e) => reply.lines.push(format!("err check: {e}")),
                }
            }
            Command::Check(Some(name)) => match self.check_one(&name) {
                Ok(Some(v)) => {
                    reply.lines.push(render_verdict(&name, &v));
                    reply.lines.push(format!(
                        "ok check checked={} skipped={} dirty={}",
                        matches!(v, Verdict::Checked { .. }) as u8,
                        matches!(v, Verdict::Cached { .. }) as u8,
                        self.dirty.len()
                    ));
                }
                Ok(None) => reply.lines.push(format!("err unknown constraint {name:?}")),
                Err(e) => reply.lines.push(format!("err check {name}: {e}")),
            },
            Command::Certify(name) => {
                let targets: Vec<String> = match &name {
                    Some(n) => vec![n.clone()],
                    None => self
                        .registry
                        .names()
                        .iter()
                        .map(|n| (*n).to_owned())
                        .collect(),
                };
                let (mut emitted, mut witnesses, mut failed) = (0u64, 0u64, 0u64);
                for t in targets {
                    match self.certify_one(&t) {
                        Ok(Some((cert, audit))) => {
                            emitted += 1;
                            if let Some(w) = &cert.witnesses {
                                witnesses += w.tuples.len() as u64;
                            }
                            reply.lines.push(cert.to_json());
                            if let Some(e) = audit {
                                failed += 1;
                                reply.lines.push(format!("err certify {t}: {e}"));
                            }
                        }
                        Ok(None) => reply.lines.push(format!("err unknown constraint {t:?}")),
                        Err(e) => reply.lines.push(format!("err certify {t}: {e}")),
                    }
                }
                reply.lines.push(format!(
                    "ok certify emitted={emitted} witnesses={witnesses} failed={failed}"
                ));
            }
            Command::Advise => match self.advise_now() {
                Ok((advice, applied)) => {
                    for a in &advice.relations {
                        reply.lines.push(format!(
                            "advise {} route={} ordering={} predicted_bdd={} predicted_sql={}",
                            a.relation,
                            a.route.name(),
                            a.ordering,
                            a.predicted_bdd_cost,
                            a.predicted_sql_cost
                        ));
                    }
                    reply.lines.push(format!(
                        "ok advise relations={} sql_routed={} sql_marked={} rebuilt={} \
                         cache_slots={} readvises={}",
                        advice.relations.len(),
                        advice.sql_routed().len(),
                        applied.sql_marked.len(),
                        applied.rebuilt.len(),
                        advice.cache_slots,
                        self.readvises
                    ));
                }
                Err(e) => reply.lines.push(format!("err advise: {e}")),
            },
            Command::Stats => {
                let s = &self.stats;
                reply.lines.push(format!(
                    "ok stats requests={} deltas={} checks={} checked={} skipped={} \
                     dirty={} dirty_peak={} full_us={} incremental_us={}",
                    s.requests,
                    s.deltas,
                    s.checks,
                    s.constraints_checked,
                    s.constraints_skipped,
                    self.dirty.len(),
                    s.dirty_peak,
                    s.full_ns / 1_000,
                    s.incremental_ns / 1_000,
                ));
            }
            Command::Quit => {
                reply.lines.push("ok bye".to_owned());
                reply.quit = true;
            }
        }
        reply
    }

    /// Flush durable state on clean shutdown: compact applied journal
    /// records into fresh segments. Skipping this (a killed session)
    /// costs the next warm start replay time, never correctness.
    pub fn finish(&mut self) -> Result<()> {
        if let Some(store) = self.store.as_mut() {
            store.write_back(&mut self.checker)?;
        }
        Ok(())
    }

    /// Session counters so far.
    pub fn stats(&self) -> ServeMetrics {
        self.stats
    }

    /// Plan-cache counters accumulated by the session's registry.
    pub fn plan_cache_stats(&self) -> PlanCacheMetrics {
        self.registry.plan_cache_stats()
    }

    /// Certificate audit counters accumulated by `certify` requests.
    pub fn audit_stats(&self) -> AuditMetrics {
        self.audit
    }

    /// Journal-append retries absorbed across the session (see
    /// [`ApplyOutcome::retries`]).
    pub fn journal_retries(&self) -> u64 {
        self.journal_retries
    }

    /// Counters from the session's most recent advise pass (`None`
    /// until one runs) — the metrics document's `policy` block.
    pub fn policy_metrics(&self) -> Option<PolicyMetrics> {
        self.policy
    }

    /// The session's most recently recorded workload profile.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Cap the number of witness tuples each certificate carries
    /// (default [`DEFAULT_WITNESS_LIMIT`]).
    pub fn set_witness_limit(&mut self, limit: usize) {
        self.witness_limit = limit;
    }

    /// The relations dirtied since the last full check.
    pub fn dirty(&self) -> &BTreeSet<String> {
        &self.dirty
    }

    /// The session's registry (read-sets, cached verdicts).
    pub fn registry(&self) -> &ConstraintRegistry {
        &self.registry
    }

    /// The warm checker.
    pub fn checker(&self) -> &Checker {
        &self.checker
    }

    /// Mutable access to the warm checker — maintenance paths
    /// (`rebuild_index`, `mark_sql_only`) route verdict invalidation
    /// through the checker's epoch, so out-of-band mutations stay safe
    /// as long as they end in one of those calls.
    pub fn checker_mut(&mut self) -> &mut Checker {
        &mut self.checker
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<&IndexStore> {
        self.store.as_ref()
    }
}

/// Tunables for the serving layer: queue bound, session cap, timeouts,
/// and the shed trigger. All surfaced as `relcheck serve` flags.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Bound of the actor's request queue; a `try_send` against a full
    /// queue is the Reject tier (`busy` reply, engine untouched).
    pub queue_depth: usize,
    /// Maximum concurrent socket sessions; further connections are
    /// turned away with a `busy` line.
    pub max_sessions: usize,
    /// Per-connection idle cap: a client that sends nothing for this
    /// long is disconnected (slowloris cannot pin a session thread).
    pub idle_timeout: Duration,
    /// Shed trigger: when the last request's service time reaches this,
    /// or the queue is more than half full, new requests enter the
    /// ladder at the SQL rung. Zero sheds every request (useful to force
    /// the tier in tests and smokes).
    pub shed_threshold: Duration,
    /// Longest raw protocol line accepted from a socket before the
    /// session replies with a typed error instead of buffering on.
    pub max_line_bytes: usize,
    /// Watchdog ceiling: every request is dispatched with at most this
    /// much wall-clock deadline, so a stuck check escalates down the
    /// ladder to `Degraded` instead of hanging the actor. A tighter
    /// user-configured `--deadline-ms` wins.
    pub hard_deadline: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_depth: 64,
            max_sessions: 8,
            idle_timeout: Duration::from_secs(30),
            shed_threshold: Duration::from_millis(500),
            max_line_bytes: 64 * 1024,
            hard_deadline: Duration::from_secs(4),
        }
    }
}

/// One queued request: the raw line, the admission tier it was accepted
/// at, and the channel its reply goes back on.
struct Request {
    line: String,
    shed: bool,
    reply: SyncSender<Reply>,
}

/// State shared between the actor thread and every client handle: the
/// governor's live signals (queue depth, last service time) and the
/// admission counters.
struct ActorShared {
    depth: AtomicUsize,
    last_service_ns: AtomicU64,
    admitted: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    draining: AtomicBool,
}

/// What a [`ServeClient::submit`] came back with.
#[derive(Debug, Clone)]
pub enum Submission {
    /// The request was admitted and served.
    Reply(Reply),
    /// Reject tier: the bounded queue was full. The engine never saw the
    /// request; the client should wait roughly `retry_after_ms` and try
    /// again (the protocol line is `busy <retry-after-ms>`).
    Busy {
        /// Suggested client backoff — the last request's service time,
        /// floored at 1ms.
        retry_after_ms: u64,
    },
    /// The session is draining or the engine is gone; no reply will ever
    /// come. The connection should close.
    Closed,
}

/// A cloneable handle submitting protocol lines to a [`ServeActor`].
/// Each `submit` runs the admission governor, then blocks until the
/// engine's reply (or the queue's verdict) comes back.
#[derive(Clone)]
pub struct ServeClient {
    tx: SyncSender<Request>,
    shared: Arc<ActorShared>,
    cfg: ServeConfig,
}

impl ServeClient {
    /// Submit one protocol line through admission control.
    pub fn submit(&self, line: &str) -> Submission {
        if self.shared.draining.load(Ordering::Acquire) {
            return Submission::Closed;
        }
        // Governor tiers, cheapest signal first: a backlog past half the
        // queue bound or a slow last request sheds; a full queue rejects.
        // The shed rule itself is owned by `policy`.
        let depth = self.shared.depth.load(Ordering::Acquire);
        let last = Duration::from_nanos(self.shared.last_service_ns.load(Ordering::Acquire));
        let shed = crate::policy::admission_should_shed(
            depth,
            self.cfg.queue_depth,
            last,
            self.cfg.shed_threshold,
        );
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        let req = Request {
            line: line.to_owned(),
            shed,
            reply: reply_tx,
        };
        match self.tx.try_send(req) {
            Ok(()) => {
                self.shared.depth.fetch_add(1, Ordering::AcqRel);
                self.shared.admitted.fetch_add(1, Ordering::AcqRel);
                if shed {
                    self.shared.shed.fetch_add(1, Ordering::AcqRel);
                }
                match reply_rx.recv() {
                    Ok(reply) => Submission::Reply(reply),
                    // The actor dropped the request (hard shutdown racing
                    // the drain window); never served, session over.
                    Err(_) => Submission::Closed,
                }
            }
            Err(TrySendError::Full(_)) => {
                self.shared.rejected.fetch_add(1, Ordering::AcqRel);
                Submission::Busy {
                    retry_after_ms: (last.as_millis() as u64).max(1),
                }
            }
            Err(TrySendError::Disconnected(_)) => Submission::Closed,
        }
    }

    /// Whether the session is draining (quit seen or shutdown begun).
    /// Accept loops poll this to stop taking connections.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// The config the governor runs with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }
}

/// The engine actor: a single thread owning the [`ServeEngine`], fed by
/// a bounded queue of requests from any number of [`ServeClient`]s (see
/// module docs for the overload model).
pub struct ServeActor {
    tx: Option<SyncSender<Request>>,
    shared: Arc<ActorShared>,
    join: Option<JoinHandle<(ServeEngine, u64, u64)>>,
    cfg: ServeConfig,
}

impl ServeActor {
    /// Move the engine onto its actor thread and start serving.
    pub fn spawn(engine: ServeEngine, cfg: ServeConfig) -> ServeActor {
        let (tx, rx) = mpsc::sync_channel(cfg.queue_depth.max(1));
        let shared = Arc::new(ActorShared {
            depth: AtomicUsize::new(0),
            last_service_ns: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            draining: AtomicBool::new(false),
        });
        let loop_shared = Arc::clone(&shared);
        let join = std::thread::Builder::new()
            .name("relcheck-serve-engine".to_owned())
            .spawn(move || engine_loop(engine, rx, loop_shared, cfg))
            .expect("spawn engine actor thread");
        ServeActor {
            tx: Some(tx),
            shared,
            join: Some(join),
            cfg,
        }
    }

    /// A new client handle for this actor.
    pub fn client(&self) -> ServeClient {
        ServeClient {
            tx: self
                .tx
                .clone()
                .expect("actor accepts clients until shutdown"),
            shared: Arc::clone(&self.shared),
            cfg: self.cfg,
        }
    }

    /// Stop the actor: close the queue (a drain, if `quit` has not
    /// already drained it), join the thread, and hand back the engine —
    /// still warm, ready for `finish()` — plus the session's overload
    /// counters.
    pub fn shutdown(mut self) -> (ServeEngine, OverloadMetrics) {
        drop(self.tx.take());
        let (engine, watchdog_fires, drained) = self
            .join
            .take()
            .expect("shutdown runs once")
            .join()
            .expect("engine actor thread never panics (requests are unwind-isolated)");
        let overload = OverloadMetrics {
            admitted: self.shared.admitted.load(Ordering::Acquire),
            shed: self.shared.shed.load(Ordering::Acquire),
            rejected: self.shared.rejected.load(Ordering::Acquire),
            retries: engine.journal_retries(),
            watchdog_fires,
            drained,
        };
        (engine, overload)
    }
}

/// Serve one admitted request on the actor thread: arm the shed tier and
/// the watchdog deadline, run the line unwind-isolated, and restore the
/// engine to its normal-tier state. Returns the reply and the service
/// time.
fn service_request(
    engine: &mut ServeEngine,
    req: &Request,
    deadline: Option<Duration>,
) -> (Reply, Duration) {
    engine.checker_mut().set_shed_load(req.shed);
    engine.checker_mut().set_deadline(deadline);
    let start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| engine.handle_line(&req.line)));
    let elapsed = start.elapsed();
    engine.checker_mut().set_shed_load(false);
    let reply = match outcome {
        Ok(reply) => reply,
        Err(payload) => {
            // The registry's check path already unwind-isolates checks;
            // this catches everything else (a parse or bookkeeping bug)
            // so one poisoned request cannot take down every session.
            // Clear any armed manager deadline and reclaim dead nodes
            // before the next request.
            engine
                .checker_mut()
                .logical_db_mut()
                .manager_mut()
                .set_deadline(None);
            engine.checker_mut().logical_db_mut().gc();
            let msg: &str = if let Some(s) = payload.downcast_ref::<&str>() {
                s
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s
            } else {
                "non-string panic payload"
            };
            Reply {
                lines: vec![format!("err internal: request failed: {msg}")],
                quit: false,
            }
        }
    };
    (reply, elapsed)
}

/// The actor thread body: serialize requests, feed the governor's
/// signals back, and drain gracefully on `quit` or queue close. Returns
/// the engine and the (watchdog_fires, drained) counters.
fn engine_loop(
    mut engine: ServeEngine,
    rx: Receiver<Request>,
    shared: Arc<ActorShared>,
    cfg: ServeConfig,
) -> (ServeEngine, u64, u64) {
    // The watchdog ceiling: a tighter user deadline wins, and the
    // original option is restored before the engine is handed back.
    let base_deadline = engine.checker().options().deadline;
    let deadline = Some(base_deadline.map_or(cfg.hard_deadline, |d| d.min(cfg.hard_deadline)));
    let mut watchdog_fires = 0u64;
    let mut drained = 0u64;
    while let Ok(req) = rx.recv() {
        shared.depth.fetch_sub(1, Ordering::AcqRel);
        let (reply, elapsed) = service_request(&mut engine, &req, deadline);
        if elapsed >= cfg.hard_deadline {
            watchdog_fires += 1;
        }
        shared
            .last_service_ns
            .store(elapsed.as_nanos() as u64, Ordering::Release);
        let quit = reply.quit;
        if quit {
            // Stop admitting *before* the goodbye is visible, so a client
            // that saw `ok bye` can never slip another request in.
            shared.draining.store(true, Ordering::Release);
        }
        // A client that hung up before its reply is not an error.
        let _ = req.reply.send(reply);
        if quit {
            // Graceful drain: finish every request already admitted.
            while let Ok(queued) = rx.try_recv() {
                shared.depth.fetch_sub(1, Ordering::AcqRel);
                let (reply, _) = service_request(&mut engine, &queued, deadline);
                let _ = queued.reply.send(reply);
                drained += 1;
            }
            break;
        }
    }
    // Queue closed without a quit (stdin EOF, or the CLI shutting down
    // after SIGTERM): nothing left to drain, same graceful exit.
    shared.draining.store(true, Ordering::Release);
    engine.checker_mut().set_deadline(base_deadline);
    (engine, watchdog_fires, drained)
}

/// One verdict line: aligned like `relcheck run`'s report so scripted
/// sessions can diff name/status pairs against a batch run.
fn render_verdict(name: &str, v: &Verdict) -> String {
    let status = if v.holds() { "ok" } else { "VIOLATED" };
    let source = match v {
        Verdict::Checked { .. } => "checked",
        Verdict::Cached { .. } => "cached",
    };
    format!("{name:<32} {status:<9} ({source})")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::CheckerOptions;
    use relcheck_logic::parse;
    use relcheck_relstore::Database;

    fn engine() -> ServeEngine {
        let mut db = Database::new();
        db.create_relation(
            "R",
            &[("x", "k"), ("y", "k")],
            vec![
                vec![Raw::Int(1), Raw::Int(1)],
                vec![Raw::Int(2), Raw::Int(2)],
            ],
        )
        .unwrap();
        db.create_relation(
            "S",
            &[("x", "k")],
            vec![vec![Raw::Int(1)], vec![Raw::Int(2)]],
        )
        .unwrap();
        let checker = Checker::new(db, CheckerOptions::default());
        let constraints = vec![
            (
                "r-diagonal".to_owned(),
                parse("forall x, y. R(x, y) -> x = y").unwrap(),
            ),
            (
                "r-covers-s".to_owned(),
                parse("forall x. S(x) -> exists y. R(x, y)").unwrap(),
            ),
            ("s-nonempty".to_owned(), parse("exists x. S(x)").unwrap()),
        ];
        let (engine, reports) = ServeEngine::new(checker, &constraints, None).unwrap();
        assert!(reports.iter().all(|(_, r)| r.holds));
        engine
    }

    #[test]
    fn parse_command_covers_the_protocol() {
        assert_eq!(parse_command("").unwrap(), None);
        assert_eq!(parse_command("  # comment").unwrap(), None);
        assert_eq!(
            parse_command("+R:1,2").unwrap(),
            Some(Command::Delta(
                "R".to_owned(),
                Delta::Insert(vec![Raw::Int(1), Raw::Int(2)])
            ))
        );
        assert_eq!(
            parse_command("-S:Toronto").unwrap(),
            Some(Command::Delta(
                "S".to_owned(),
                Delta::Delete(vec![Raw::str("Toronto")])
            ))
        );
        assert_eq!(parse_command("check").unwrap(), Some(Command::Check(None)));
        assert_eq!(
            parse_command("check r-diagonal").unwrap(),
            Some(Command::Check(Some("r-diagonal".to_owned())))
        );
        assert_eq!(parse_command("advise").unwrap(), Some(Command::Advise));
        assert_eq!(parse_command("stats").unwrap(), Some(Command::Stats));
        assert_eq!(parse_command("quit").unwrap(), Some(Command::Quit));
        assert!(parse_command("bogus").is_err());
        assert!(parse_command("check a b").is_err());
        assert!(parse_command("advise now").is_err());
        assert!(parse_command("+R").is_err());
    }

    #[test]
    fn advise_command_reports_and_never_changes_verdicts() {
        let mut e = engine();
        let before = e.check_all().unwrap();
        let r = e.handle_line("advise");
        let last = r.lines.last().unwrap();
        assert!(last.starts_with("ok advise relations=2"), "{last:?}");
        assert!(last.contains("readvises=1"), "{last:?}");
        // Per-relation lines precede the summary, sorted by name.
        assert!(r.lines[0].starts_with("advise R route="), "{:?}", r.lines);
        assert!(r.lines[1].starts_with("advise S route="), "{:?}", r.lines);
        // Advise is deterministic: a second pass reports the same
        // advice (only the pass counter moves).
        let r2 = e.handle_line("advise");
        assert_eq!(r.lines[..r.lines.len() - 1], r2.lines[..r2.lines.len() - 1]);
        // Routing never changes a verdict.
        let after = e.check_all().unwrap();
        for ((name, b), (_, a)) in before.iter().zip(&after) {
            assert_eq!(b.holds(), a.holds(), "{name}");
        }
        assert!(e.policy_metrics().unwrap().readvises == 2);
    }

    #[test]
    fn skip_iff_read_set_disjoint_from_dirty_set() {
        let mut e = engine();
        // Delta on S: exactly the S-readers re-check; the R-only
        // constraint answers from cache.
        e.apply("S", &Delta::Insert(vec![Raw::Int(1)])).unwrap();
        let verdicts = e.check_all().unwrap();
        let by_name: std::collections::HashMap<_, _> = verdicts.into_iter().collect();
        assert!(matches!(
            by_name["r-diagonal"],
            Verdict::Cached { holds: true }
        ));
        assert!(matches!(
            by_name["r-covers-s"],
            Verdict::Checked { holds: true }
        ));
        assert!(matches!(
            by_name["s-nonempty"],
            Verdict::Checked { holds: true }
        ));
        let s = e.stats();
        assert_eq!(s.constraints_checked, 2);
        assert_eq!(s.constraints_skipped, 1);
    }

    #[test]
    fn spanning_constraint_is_never_skipped() {
        let mut e = engine();
        // r-covers-s reads both relations: any delta re-checks it.
        for delta in ["+R:3,3", "+S:2"] {
            let (rel, d) = parse_delta(delta).unwrap();
            e.apply(&rel, &d).unwrap();
            let verdicts = e.check_all().unwrap();
            let by_name: std::collections::HashMap<_, _> = verdicts.into_iter().collect();
            assert!(
                matches!(by_name["r-covers-s"], Verdict::Checked { .. }),
                "spanning constraint skipped after {delta}"
            );
        }
    }

    #[test]
    fn empty_delta_answers_everything_from_cache() {
        let mut e = engine();
        let verdicts = e.check_all().unwrap();
        assert!(verdicts
            .iter()
            .all(|(_, v)| matches!(v, Verdict::Cached { .. })));
        let s = e.stats();
        assert_eq!(s.constraints_skipped, 3);
        assert_eq!(s.constraints_checked, 0);
        assert_eq!(s.dirty_peak, 0);
    }

    #[test]
    fn check_one_leaves_other_dirtiness_pending() {
        let mut e = engine();
        e.apply("R", &Delta::Insert(vec![Raw::Int(1), Raw::Int(2)]))
            .unwrap();
        let v = e.check_one("r-diagonal").unwrap().unwrap();
        assert!(matches!(v, Verdict::Checked { holds: false }));
        // The dirty set survives a targeted check…
        assert!(e.dirty().contains("R"));
        // …so the next full check still re-checks the other R-reader.
        let verdicts = e.check_all().unwrap();
        let by_name: std::collections::HashMap<_, _> = verdicts.into_iter().collect();
        assert!(matches!(by_name["r-covers-s"], Verdict::Checked { .. }));
        assert!(e.dirty().is_empty());
        assert!(e.check_one("no-such").unwrap().is_none());
    }

    #[test]
    fn protocol_session_end_to_end() {
        let mut e = engine();
        let r = e.handle_line("+R:1,2");
        assert_eq!(r.lines, vec!["ok delta +R applied=true dirty=1"]);
        let r = e.handle_line("check");
        assert_eq!(
            r.lines.last().unwrap(),
            "ok check checked=2 skipped=1 dirty=1"
        );
        assert!(r
            .lines
            .iter()
            .any(|l| l.starts_with("r-diagonal") && l.contains("VIOLATED")));
        let r = e.handle_line("check s-nonempty");
        assert_eq!(
            r.lines.last().unwrap(),
            "ok check checked=0 skipped=1 dirty=0"
        );
        let r = e.handle_line("+R:9,9");
        // Arity is fine; applying the same tuple twice changes nothing.
        assert_eq!(r.lines, vec!["ok delta +R applied=true dirty=1"]);
        let r = e.handle_line("+R:9");
        assert!(r.lines[0].starts_with("err delta +R:"), "{:?}", r.lines);
        let r = e.handle_line("nonsense");
        assert!(r.lines[0].starts_with("err unknown command"));
        let r = e.handle_line("stats");
        assert!(r.lines[0].starts_with("ok stats requests=7 deltas=2 checks=2"));
        let r = e.handle_line("quit");
        assert!(r.quit);
        assert_eq!(r.lines, vec!["ok bye"]);
    }

    #[test]
    fn maintenance_through_the_engine_retires_stale_verdicts() {
        let mut e = engine();
        // Out-of-band row mutation + rebuild (what store recovery does):
        // no delta marks R dirty, but the epoch-based invalidation must
        // force a re-check anyway.
        let one = e
            .checker()
            .logical_db()
            .db()
            .code("k", &Raw::Int(1))
            .unwrap();
        let two = e
            .checker()
            .logical_db()
            .db()
            .code("k", &Raw::Int(2))
            .unwrap();
        e.checker_mut()
            .logical_db_mut()
            .db_mut()
            .relation_mut("R")
            .unwrap()
            .insert(&[one, two])
            .unwrap();
        e.checker_mut().rebuild_index("R").unwrap();
        let verdicts = e.check_all().unwrap();
        let by_name: std::collections::HashMap<_, _> = verdicts.into_iter().collect();
        assert!(matches!(
            by_name["r-diagonal"],
            Verdict::Checked { holds: false }
        ));
        assert!(matches!(
            by_name["s-nonempty"],
            Verdict::Cached { holds: true }
        ));
    }

    #[test]
    fn overflow_degrades_to_sql_and_stays_correct() {
        let mut e = engine();
        // Value 7 was never interned; the frozen "k" block cannot hold it.
        e.apply("S", &Delta::Insert(vec![Raw::Int(7)])).unwrap();
        assert!(e.checker().is_sql_only("S"));
        let verdicts = e.check_all().unwrap();
        let by_name: std::collections::HashMap<_, _> = verdicts.into_iter().collect();
        // S(7) has no covering R tuple: the spanning constraint breaks,
        // and the verdict is decided correctly on the SQL rung.
        assert!(matches!(
            by_name["r-covers-s"],
            Verdict::Checked { holds: false }
        ));
        assert!(matches!(
            by_name["s-nonempty"],
            Verdict::Checked { holds: true }
        ));
        assert!(matches!(
            by_name["r-diagonal"],
            Verdict::Cached { holds: true }
        ));
    }
}
