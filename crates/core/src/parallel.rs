//! Parallel constraint checking with per-worker BDD managers.
//!
//! The serial [`Checker`] funnels every constraint through one shared
//! [`relcheck_bdd::BddManager`]. That keeps index sharing trivial but leaves
//! multi-core machines idle: hash-consing makes the manager inherently
//! single-writer, so BDD work cannot be parallelized *within* one manager
//! without locking every node allocation. This module takes the other
//! route, the one the paper's per-constraint independence invites: give
//! each worker thread its **own** manager and its own clone of the
//! dictionary-encoded [`Database`], partition the constraint set between
//! workers by the relations each constraint reads, and merge the reports
//! back into input order.
//!
//! Two hand-off strategies for the logical indices (see
//! [`IndexTransfer`]):
//!
//! * **Snapshot** — a coordinator builds each referenced index once and
//!   ships it to workers as a manager-independent
//!   [`IndexSnapshot`] (the [`relcheck_bdd::ExportedRelation`] form), so
//!   tuple construction runs once per relation no matter how many lanes
//!   read it. This is what [`Checker::check_all_parallel`] does.
//! * **Rebuild** — workers rebuild indices from their database clone,
//!   with no coordinator BDD work at all.
//!
//! Every lane keeps the paper's full evaluation strategy independently: a
//! node-budget abort in one worker garbage-collects and falls back to SQL
//! *in that lane only*, without poisoning any other worker's manager.
//! Verdicts (`holds`) are identical to the serial path. `method` can
//! legitimately differ right at the node-budget edge: a per-worker manager
//! holds only its batch's indices, so a constraint that busts a *shared*
//! manager's budget may fit in a dedicated one (and vice versa is
//! impossible — a worker never holds more live nodes than the serial
//! checker at the same point). Timing fields (`elapsed`, `live_nodes`)
//! describe the lane that ran the check.
//!
//! Only `std::thread` is used — scoped threads, no external runtime.

use crate::checker::{panic_message, CheckReport, Checker, CheckerOptions};
use crate::error::{CoreError, Result};
use crate::index::IndexSnapshot;
use crate::telemetry::{FleetTelemetry, WorkerTelemetry};
use relcheck_bdd::{failpoint, BddError, StatsDelta};
use relcheck_logic::Formula;
use relcheck_relstore::Database;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How workers obtain the logical indices their batch needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexTransfer {
    /// A coordinator builds each referenced index once and ships
    /// [`IndexSnapshot`]s; workers import instead of re-running tuple
    /// construction.
    #[default]
    Snapshot,
    /// Workers build their own indices from their database clone; the
    /// coordinator does no BDD work.
    Rebuild,
}

/// A standalone parallel front-end over a [`Database`]: partitions a
/// constraint set into per-worker batches and checks them on `threads`
/// worker threads, each with a private BDD manager (see module docs).
///
/// For a one-off parallel pass over an existing serial checker, use
/// [`Checker::check_all_parallel`] instead — it reuses the indices the
/// checker has already built.
pub struct ParallelChecker {
    db: Database,
    opts: CheckerOptions,
    threads: usize,
    transfer: IndexTransfer,
}

impl ParallelChecker {
    /// A parallel checker over a database snapshot. `threads` is clamped to
    /// at least 1; the default transfer strategy is
    /// [`IndexTransfer::Snapshot`].
    pub fn new(db: Database, opts: CheckerOptions, threads: usize) -> ParallelChecker {
        ParallelChecker {
            db,
            opts,
            threads: threads.max(1),
            transfer: IndexTransfer::default(),
        }
    }

    /// Choose how workers obtain their indices.
    pub fn with_transfer(mut self, transfer: IndexTransfer) -> ParallelChecker {
        self.transfer = transfer;
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Check many named constraints across the worker pool. Reports come
    /// back in input order with verdicts identical to the serial
    /// [`Checker::check_all`].
    pub fn check_all(
        &self,
        constraints: &[(String, Formula)],
    ) -> Result<Vec<(String, CheckReport)>> {
        Ok(self.check_all_telemetry(constraints)?.0)
    }

    /// [`ParallelChecker::check_all`] plus the merged lane-level telemetry
    /// (see [`FleetTelemetry`]): per-worker BDD-work deltas in
    /// deterministic batch order, with fleet totals that equal the
    /// per-worker sum by construction.
    pub fn check_all_telemetry(
        &self,
        constraints: &[(String, Formula)],
    ) -> Result<(Vec<(String, CheckReport)>, FleetTelemetry)> {
        match self.transfer {
            IndexTransfer::Rebuild => run(
                &self.db,
                self.opts,
                &HashSet::new(),
                &[],
                constraints,
                self.threads,
            ),
            IndexTransfer::Snapshot => {
                let mut coordinator = Checker::new(self.db.clone(), self.opts);
                coordinator.check_all_parallel_telemetry(constraints, self.threads)
            }
        }
    }
}

/// The read-set signature of a constraint: the relations its formula
/// references, sorted and deduplicated. This is the exact signature the
/// lane partitioner groups by, exported so other layers (the registry's
/// dependency tracking, the serve engine's dirty-set intersection) make
/// the same skip/recheck decisions the parallel scheduler makes.
pub fn read_set(f: &Formula) -> Vec<String> {
    let mut sig = Checker::referenced_relations(f);
    sig.sort_unstable();
    sig
}

/// Partition constraint indices `0..constraints.len()` into at most
/// `threads` batches. Constraints with the same read-set signature (the
/// sorted list of relations they reference) are grouped so a worker can
/// serve a whole group from one set of indices; groups larger than
/// `⌈n/threads⌉` are split so one hot signature cannot serialize the run.
/// Chunks go largest-first to the least-loaded batch (ties to the lowest
/// batch), which is deterministic; each batch is returned sorted so a
/// worker executes its lane in input order.
pub(crate) fn partition(constraints: &[(String, Formula)], threads: usize) -> Vec<Vec<usize>> {
    let n = constraints.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    // Group by read-set signature, in order of first occurrence.
    let mut groups: Vec<(Vec<String>, Vec<usize>)> = Vec::new();
    for (i, (_, f)) in constraints.iter().enumerate() {
        let sig = read_set(f);
        match groups.iter_mut().find(|(s, _)| *s == sig) {
            Some((_, members)) => members.push(i),
            None => groups.push((sig, vec![i])),
        }
    }
    let cap = n.div_ceil(threads);
    let mut chunks: Vec<Vec<usize>> = Vec::new();
    for (_, members) in groups {
        for c in members.chunks(cap) {
            chunks.push(c.to_vec());
        }
    }
    // Greedy bin-packing: biggest chunks first, ties broken by the chunk's
    // first constraint index so the result is independent of HashMap-style
    // iteration order anywhere upstream.
    chunks.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
    let mut batches: Vec<Vec<usize>> = vec![Vec::new(); threads];
    for chunk in chunks {
        let target = (0..threads)
            .min_by_key(|&t| (batches[t].len(), t))
            .expect("threads >= 1");
        batches[target].extend(chunk);
    }
    batches.retain(|b| !b.is_empty());
    for b in &mut batches {
        b.sort_unstable();
    }
    batches
}

/// What one worker lane hands back: the completed reports (tagged with
/// their constraint index), the lane's BDD-work totals, and the first
/// error, if any, tagged likewise.
struct LaneResult {
    reports: Vec<(usize, CheckReport)>,
    /// All BDD work in the lane's private manager, imports included.
    bdd: StatsDelta,
    peak_nodes: usize,
    depth_hwm: u32,
    err: Option<(usize, CoreError)>,
}

/// One worker lane: a private checker over a database clone, seeded with
/// the coordinator's SQL-only set and any snapshots its batch reads.
/// Returns the completed reports plus the first error (tagged with its
/// constraint index) if one occurred.
fn run_batch(
    db: &Database,
    opts: CheckerOptions,
    sql_only: &HashSet<String>,
    snapshots: &[IndexSnapshot],
    constraints: &[(String, Formula)],
    batch: &[usize],
    lane: usize,
) -> LaneResult {
    // Fault-injection site: simulate a lane whose thread dies on arrival.
    // The panic unwinds into the catch in `run`, which turns the whole
    // batch into `Errored` reports without touching any other lane.
    if failpoint::enabled() && failpoint::should_fail(failpoint::LANE_SPAWN, lane as u64) {
        panic!(
            "injected fault at failpoint site '{}' (lane {lane})",
            failpoint::LANE_SPAWN
        );
    }
    let mut ck = Checker::new(db.clone(), opts);
    // Baseline before imports, so the lane's delta owns its index-transfer
    // work and fleet totals stay an honest sum of everything done.
    let baseline = ck.logical_db().manager().stats();
    let lane_result = |ck: &Checker, reports, err| {
        let after = ck.logical_db().manager().stats();
        LaneResult {
            reports,
            bdd: after.delta_since(&baseline),
            peak_nodes: after.peak_nodes,
            depth_hwm: after.depth_hwm,
            err,
        }
    };
    for name in sql_only {
        ck.mark_sql_only(name);
    }
    // Adopt only the snapshots this lane actually reads — importing the
    // rest would waste node budget on indices the batch never touches.
    let needed: HashSet<String> = batch
        .iter()
        .flat_map(|&i| Checker::referenced_relations(&constraints[i].1))
        .collect();
    for snap in snapshots {
        if !needed.contains(&snap.relation) {
            continue;
        }
        if let Err(e) = ck.logical_db_mut().import_index(snap) {
            match e {
                // Mirror `ensure_index`: a budget abort — node limit,
                // deadline, or injected decode fault — makes the relation
                // SQL-only for this lane instead of failing the run.
                CoreError::Bdd(
                    BddError::NodeLimit { .. }
                    | BddError::Deadline { .. }
                    | BddError::FaultInjected { .. },
                ) => {
                    ck.logical_db_mut().gc();
                    ck.mark_sql_only(&snap.relation);
                }
                other => return lane_result(&ck, Vec::new(), Some((batch[0], other))),
            }
        }
    }
    let mut out = Vec::with_capacity(batch.len());
    for &i in batch {
        // Same panic guard as the serial `check_all`: one exploding
        // constraint yields an `Errored` report, the rest of the batch
        // still runs on the same lane checker.
        match catch_unwind(AssertUnwindSafe(|| ck.check(&constraints[i].1))) {
            Ok(Ok(report)) => out.push((i, report)),
            Ok(Err(e)) => return lane_result(&ck, out, Some((i, e))),
            Err(payload) => {
                ck.logical_db_mut().manager_mut().set_deadline(None);
                ck.logical_db_mut().gc();
                out.push((
                    i,
                    CheckReport::errored(panic_message(payload), opts.telemetry),
                ));
            }
        }
    }
    lane_result(&ck, out, None)
}

/// Fan a constraint set out over scoped worker threads and merge the
/// reports back into input order.
///
/// Failure semantics (deterministic in both dimensions):
///
/// * A **panicking** lane — its thread died, or the `lane-spawn`
///   failpoint fired — is absorbed: every constraint of that batch gets a
///   [`crate::checker::Verdict::Errored`] report carrying the panic
///   payload, and every other lane completes untouched.
/// * A **typed error** (unknown relation, corrupt snapshot) still fails
///   the run, and the error attached to the smallest constraint index
///   wins across all lanes — the same error a serial pass would have hit
///   first.
pub(crate) fn run(
    db: &Database,
    opts: CheckerOptions,
    sql_only: &HashSet<String>,
    snapshots: &[IndexSnapshot],
    constraints: &[(String, Formula)],
    threads: usize,
) -> Result<(Vec<(String, CheckReport)>, FleetTelemetry)> {
    let batches = partition(constraints, threads);
    let results: Vec<std::result::Result<LaneResult, String>> = std::thread::scope(|s| {
        let handles: Vec<_> = batches
            .iter()
            .enumerate()
            .map(|(lane, batch)| {
                s.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| {
                        run_batch(db, opts, sql_only, snapshots, constraints, batch, lane)
                    }))
                    .map_err(panic_message)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| Err(panic_message(p))))
            .collect()
    });
    let mut merged: Vec<Option<CheckReport>> = vec![None; constraints.len()];
    let mut first_err: Option<(usize, CoreError)> = None;
    let mut workers = Vec::with_capacity(results.len());
    for (lane, result) in results.into_iter().enumerate() {
        let result = match result {
            Ok(r) => r,
            Err(payload) => {
                // Poisoned lane: synthesize `Errored` reports for its whole
                // batch. The lane did no attributable BDD work we can
                // still read, so its telemetry counters stay zero and the
                // fleet totals remain an honest per-worker sum.
                for &i in &batches[lane] {
                    merged[i] = Some(CheckReport::errored(payload.clone(), opts.telemetry));
                }
                workers.push(WorkerTelemetry {
                    worker: lane,
                    constraints: batches[lane].clone(),
                    bdd: StatsDelta::default(),
                    peak_nodes: 0,
                    depth_hwm: 0,
                });
                continue;
            }
        };
        for (i, r) in result.reports {
            merged[i] = Some(r);
        }
        if let Some((at, e)) = result.err {
            if first_err.as_ref().is_none_or(|(best, _)| at < *best) {
                first_err = Some((at, e));
            }
        }
        // Lanes come back in batch order (the spawn order), so worker
        // numbering is deterministic regardless of thread scheduling.
        workers.push(WorkerTelemetry {
            worker: lane,
            constraints: batches[lane].clone(),
            bdd: result.bdd,
            peak_nodes: result.peak_nodes,
            depth_hwm: result.depth_hwm,
        });
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }
    let reports = constraints
        .iter()
        .zip(merged)
        .map(|((name, _), r)| {
            // Every constraint is assigned to exactly one batch, and every
            // lane outcome above fills its batch; a gap would be a
            // partition bug — degrade to an Errored report, never panic.
            let r = r.unwrap_or_else(|| {
                CheckReport::errored(
                    "internal: constraint missing from every lane's reports".to_owned(),
                    opts.telemetry,
                )
            });
            (name.clone(), r)
        })
        .collect();
    Ok((reports, FleetTelemetry::from_workers(workers)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcheck_logic::parse;
    use relcheck_relstore::Raw;

    fn named(pairs: &[(&str, &str)]) -> Vec<(String, Formula)> {
        pairs
            .iter()
            .map(|(n, f)| (n.to_string(), parse(f).unwrap()))
            .collect()
    }

    #[test]
    fn partition_covers_each_constraint_once() {
        let cs = named(&[
            ("a", "exists x. R(x)"),
            ("b", "exists x. S(x)"),
            ("c", "forall x. R(x) -> S(x)"),
            ("d", "exists x. R(x)"),
            ("e", "exists x. T(x)"),
        ]);
        for threads in 1..=8 {
            let batches = partition(&cs, threads);
            assert!(batches.len() <= threads.min(cs.len()));
            let mut all: Vec<usize> = batches.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2, 3, 4], "threads={threads}");
            for b in &batches {
                assert!(b.windows(2).all(|w| w[0] < w[1]), "batches stay sorted");
            }
        }
    }

    #[test]
    fn partition_groups_shared_read_sets() {
        // a and d read exactly {R}; with two lanes they should ride
        // together so one worker serves both from one index.
        let cs = named(&[
            ("a", "exists x. R(x)"),
            ("b", "exists x. S(x)"),
            ("c", "exists x. T(x)"),
            ("d", "forall x. R(x) -> R(x)"),
        ]);
        let batches = partition(&cs, 2);
        let lane_of = |i: usize| batches.iter().position(|b| b.contains(&i)).unwrap();
        assert_eq!(lane_of(0), lane_of(3), "same signature, same lane");
    }

    #[test]
    fn partition_splits_oversized_groups() {
        // Every constraint reads {R}: one signature, but four lanes should
        // still all get work.
        let cs: Vec<(String, Formula)> = (0..8)
            .map(|i| (format!("c{i}"), parse("exists x. R(x)").unwrap()))
            .collect();
        let batches = partition(&cs, 4);
        assert_eq!(batches.len(), 4);
        assert!(batches.iter().all(|b| b.len() == 2));
    }

    #[test]
    fn partition_is_deterministic() {
        let cs = named(&[
            ("a", "exists x. R(x)"),
            ("b", "exists x. S(x)"),
            ("c", "forall x. R(x) -> S(x)"),
            ("d", "exists x. T(x)"),
            ("e", "exists x. R(x)"),
            ("f", "exists x. S(x)"),
        ]);
        let first = partition(&cs, 3);
        for _ in 0..10 {
            assert_eq!(partition(&cs, 3), first);
        }
    }

    #[test]
    fn parallel_matches_serial_on_a_small_database() {
        let mut db = Database::new();
        db.create_relation(
            "CUST",
            &[
                ("city", "city"),
                ("areacode", "areacode"),
                ("state", "state"),
            ],
            vec![
                vec![Raw::str("Toronto"), Raw::Int(416), Raw::str("ON")],
                vec![Raw::str("Oshawa"), Raw::Int(905), Raw::str("ON")],
                vec![Raw::str("Newark"), Raw::Int(973), Raw::str("NJ")],
                vec![Raw::str("Newark"), Raw::Int(212), Raw::str("NY")],
            ],
        )
        .unwrap();
        let cs = named(&[
            (
                "holds",
                r#"forall c, a, s. CUST(c, a, s) & c = "Toronto" -> s = "ON""#,
            ),
            (
                "breaks",
                r#"forall c, a, s. CUST(c, a, s) & c = "Newark" -> s = "NJ""#,
            ),
            ("nonempty", r#"exists c, a, s. CUST(c, a, s)"#),
        ]);
        let mut serial = Checker::new(db.clone(), CheckerOptions::default());
        let want = serial.check_all(&cs).unwrap();
        for transfer in [IndexTransfer::Snapshot, IndexTransfer::Rebuild] {
            for threads in [1usize, 2, 3, 8] {
                let pc = ParallelChecker::new(db.clone(), CheckerOptions::default(), threads)
                    .with_transfer(transfer);
                let got = pc.check_all(&cs).unwrap();
                assert_eq!(got.len(), want.len());
                for ((wn, wr), (gn, gr)) in want.iter().zip(&got) {
                    assert_eq!(wn, gn, "order preserved");
                    assert_eq!(wr.holds, gr.holds, "{wn} with {threads} threads");
                    assert_eq!(wr.method, gr.method, "{wn} with {threads} threads");
                }
            }
        }
    }

    #[test]
    fn empty_constraint_set_is_fine() {
        let db = Database::new();
        let pc = ParallelChecker::new(db, CheckerOptions::default(), 4);
        assert!(pc.check_all(&[]).unwrap().is_empty());
        assert!(partition(&[], 4).is_empty());
    }
}
