//! End-to-end telemetry: per-constraint traces, lane aggregation, and the
//! stable metrics JSON schema.
//!
//! The paper's argument is that logical indices let the checker *decide*
//! where time goes — BDD vs SQL fallback, which rewrite rules fired, how
//! the ordering strategy shaped node counts. This module makes those
//! decisions observable:
//!
//! * [`CheckTrace`] — what one [`crate::checker::Checker::check`] call did:
//!   phase timings, rewrite-rule firings (R1–R4, in application order),
//!   index build-vs-reuse, the BDD-vs-SQL routing decision with the
//!   node-budget reason on fallback, and the [`StatsDelta`] of BDD work.
//! * [`FleetTelemetry`] — lane-level aggregation across
//!   [`crate::parallel`] workers, merged deterministically (workers in
//!   batch order, constraint indices in input order), with fleet totals
//!   that are exactly the sum of the per-worker counters.
//! * [`RunMetrics`] — the machine-readable report emitted by
//!   `relcheck run --metrics <path.json>` and the bench binaries. The
//!   schema is documented in `DESIGN.md` and validated by
//!   [`validate_metrics_json`] (used by `relcheck metrics-check` and the
//!   CI smoke step). Everything here is std-only: the writer and the
//!   parser are hand-rolled.
//!
//! Overhead discipline: counters are plain integers maintained by
//! `relcheck-bdd` unconditionally; everything that allocates or reads the
//! clock is gated on `CheckerOptions::telemetry`.

use crate::checker::Method;
use relcheck_bdd::{OpKind, StatsDelta};
use std::time::Duration;

/// The rewrite rules of the paper's Section 4 pipeline, numbered as the
/// telemetry schema reports them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewriteRule {
    /// R1 — leading-quantifier-block elimination (§4.1): the outer ∀/∃
    /// block is dropped and the check becomes an O(1) validity /
    /// satisfiability test. Count = number of binders stripped.
    R1LeadingBlock,
    /// R2 — rename-based equi-join (§4.2): a relation atom's columns are
    /// renamed into query domains instead of conjoining equality BDDs.
    /// One firing per atom, count = number of non-identity renames.
    R2JoinRename,
    /// R3 — quantifier pull-up / prenex conversion (§4.3, Equations 3–4).
    /// Count = length of the resulting quantifier prefix.
    R3PrenexPullup,
    /// R4 — universal push-down over conjunction (Rule 5): count = number
    /// of ∀ blocks actually distributed across a conjunction.
    R4ForallPushdown,
}

impl RewriteRule {
    /// Stable machine-readable name (`"R1"` … `"R4"`).
    pub fn name(self) -> &'static str {
        match self {
            RewriteRule::R1LeadingBlock => "R1",
            RewriteRule::R2JoinRename => "R2",
            RewriteRule::R3PrenexPullup => "R3",
            RewriteRule::R4ForallPushdown => "R4",
        }
    }
}

/// One rewrite-rule firing, recorded in application order. Only firings
/// with `count > 0` are recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleFiring {
    /// Which rule fired.
    pub rule: RewriteRule,
    /// Rule-specific magnitude (see [`RewriteRule`] variants).
    pub count: u64,
}

/// How a referenced relation's index was obtained for this check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexProvenance {
    /// Built during this check (first reference).
    Built,
    /// Already present in the manager; reused.
    Reused,
    /// Over the node budget (now or previously): permanently SQL-only.
    SqlOnly,
}

impl IndexProvenance {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            IndexProvenance::Built => "built",
            IndexProvenance::Reused => "reused",
            IndexProvenance::SqlOnly => "sql_only",
        }
    }
}

/// Index provenance for one relation referenced by a check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEvent {
    /// Relation name.
    pub relation: String,
    /// Build vs reuse vs budget-out.
    pub provenance: IndexProvenance,
}

/// Why the BDD path was not (or could not be) taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FallbackReason {
    /// BDD construction aborted on the live-node budget (the paper's
    /// size-threshold strategy).
    NodeLimit {
        /// The configured budget.
        limit: usize,
        /// Live nodes at the abort.
        live: usize,
    },
    /// A referenced relation is SQL-only (its index busted the budget).
    UnindexedRelation,
    /// The per-check wall-clock deadline expired mid-recursion
    /// ([`relcheck_bdd::BddError::Deadline`]).
    Deadline,
    /// The node-budget abort survived a GC-and-retry: both BDD attempts
    /// busted the budget, so the ladder left the BDD path for good.
    RetryExhausted {
        /// The configured budget.
        limit: usize,
        /// Live nodes at the second abort.
        live: usize,
    },
    /// The check was killed outright — a caught panic payload or an
    /// injected-fault description (`relcheck run --fail-spec`).
    Panic(String),
    /// The admission governor shed this request: under overload the serve
    /// engine enters the ladder at the SQL rung (still exact, just
    /// cheaper on memory) instead of building BDDs.
    Overload,
}

/// Wall-clock phase breakdown of one check (captured only with telemetry
/// enabled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Ensuring every referenced index exists (build or reuse).
    pub index: Duration,
    /// Compile + decide (BDD path and/or SQL fallback).
    pub eval: Duration,
    /// Whole check, including post-check GC.
    pub total: Duration,
}

/// One planner pass, as recorded in a check trace: how often it fired and
/// how often its cost gate declined it. Mirrors
/// [`crate::plan::PassRecord`] minus the before/after formula snapshots
/// (those stay in the plan; the trace carries only the counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassStat {
    /// Stable pass name (e.g. `"prenex-pullup"`, `"forall-pushdown"`).
    pub pass: &'static str,
    /// The paper rewrite rule the pass implements, if any.
    pub rule: Option<RewriteRule>,
    /// How many times the pass's rewrite applied.
    pub fired: u64,
    /// How many candidate sites the cost gate declined.
    pub gated: u64,
}

/// Plan-cache counters for a registry-driven run (schema v4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheMetrics {
    /// Checks answered by a cached [`crate::plan::CheckPlan`] whose
    /// fingerprints still matched.
    pub hits: u64,
    /// Checks that had to plan from scratch (first sight, or a stale
    /// fingerprint).
    pub misses: u64,
}

/// Workload-driven policy counters (schema v8): what the
/// [`crate::policy`] advisor recommended and what applying it did.
/// `None` at the [`RunMetrics`] level means the run never consulted the
/// advisor (static routing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyMetrics {
    /// Relations the advisor examined.
    pub relations: u64,
    /// Relations advised to keep (or build) a BDD index.
    pub advised_bdd: u64,
    /// Relations advised to route to the SQL rung.
    pub advised_sql: u64,
    /// Relations newly marked SQL-only when the advice was applied.
    pub applied_sql_only: u64,
    /// Indexed relations rebuilt under a different advised ordering.
    pub applied_rebuilds: u64,
    /// Relations whose recorded weights were re-seeded into the live
    /// workload.
    pub reseeded: u64,
    /// Periodic re-advise passes a serve session ran.
    pub readvises: u64,
    /// The apply-cache slot count the advice recommended.
    pub cache_slots: u64,
    /// Checks in the workload profile the advice was computed from.
    pub profile_checks: u64,
}

/// Structured trace of one `Checker::check` call. Attached to
/// [`crate::checker::CheckReport::metrics`] when
/// `CheckerOptions::telemetry` is set.
#[derive(Debug, Clone)]
pub struct CheckTrace {
    /// The routing decision (mirrors `CheckReport::method`, so the trace
    /// is self-contained).
    pub method: Method,
    /// Rewrite-rule firings in application order (R3 prenex, R1 strip,
    /// R4 push-down, then R2 per compiled atom). Empty on the SQL path.
    pub rules: Vec<RuleFiring>,
    /// Planner passes run for this check, in pipeline order, with fired
    /// and cost-gate-declined counts. Empty when the BDD step was not
    /// planned (SQL-only relations, errored checks).
    pub passes: Vec<PassStat>,
    /// Per-relation index provenance, in reference order.
    pub index_events: Vec<IndexEvent>,
    /// Why the BDD path was abandoned, if it was.
    pub fallback: Option<FallbackReason>,
    /// Degradation-ladder rungs traversed, in order (`"bdd"`,
    /// `"gc_retry"`, `"sql"`, `"brute_force"`, `"degraded"`, or
    /// `"errored"` for a check killed by a panic).
    pub ladder: Vec<&'static str>,
    /// Phase timings.
    pub timings: PhaseTimings,
    /// BDD work performed by this check (monotone-counter delta).
    pub bdd: StatsDelta,
}

/// Telemetry for one parallel lane (or the single lane of a serial pass).
#[derive(Debug, Clone)]
pub struct WorkerTelemetry {
    /// Lane number, in deterministic batch order.
    pub worker: usize,
    /// Input indices of the constraints this lane checked, ascending.
    pub constraints: Vec<usize>,
    /// All BDD work in the lane (index import/build + checks).
    pub bdd: StatsDelta,
    /// The lane manager's live-node high-water mark.
    pub peak_nodes: usize,
    /// The lane manager's recursion-depth high-water mark.
    pub depth_hwm: u32,
}

/// Deterministic merged telemetry for a whole `check_all_parallel` run.
#[derive(Debug, Clone)]
pub struct FleetTelemetry {
    /// Per-worker telemetry, in batch order.
    pub workers: Vec<WorkerTelemetry>,
    /// Sum of every worker's [`StatsDelta`] — exactly, by construction.
    pub total: StatsDelta,
}

impl FleetTelemetry {
    /// Assemble a fleet from its lanes, computing the total.
    pub fn from_workers(workers: Vec<WorkerTelemetry>) -> FleetTelemetry {
        let mut total = StatsDelta::default();
        for w in &workers {
            total += w.bdd;
        }
        FleetTelemetry { workers, total }
    }
}

/// Metrics for one named constraint, as serialized.
#[derive(Debug, Clone)]
pub struct ConstraintMetrics {
    /// Constraint name.
    pub name: String,
    /// Verdict.
    pub holds: bool,
    /// What the check established (decided vs degraded vs errored).
    pub verdict: crate::checker::Verdict,
    /// Why the check could not decide, for undecided verdicts.
    pub error: Option<String>,
    /// Decision path.
    pub method: Method,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// The structured trace, when telemetry was enabled.
    pub trace: Option<CheckTrace>,
}

/// Run-level degradation summary: how many constraints came back without
/// a decided verdict, plus the fault-injection evidence when failpoints
/// were armed.
#[derive(Debug, Clone, Default)]
pub struct DegradationSummary {
    /// Constraints whose verdict was `degraded`.
    pub degraded: usize,
    /// Constraints whose verdict was `errored`.
    pub errored: usize,
    /// Constraints that left the straight BDD path (trace has a fallback
    /// reason). Zero when telemetry is off.
    pub fallbacks: usize,
    /// Failpoint evidence: `(seed, fired counts per site)`, present iff
    /// the registry was armed when the report was assembled.
    pub failpoints: Option<(u64, Vec<(&'static str, u64)>)>,
}

/// Closed vocabulary of index-store recovery reasons. The metrics
/// validator rejects anything outside this list, so a new failure mode
/// must be named here (and documented in DESIGN.md §5d) before it can
/// ship.
pub mod recovery_reason {
    /// The manifest failed frame or structural validation.
    pub const MANIFEST_CORRUPT: &str = "manifest_corrupt";
    /// A segment file failed its checksum or decode.
    pub const SEGMENT_CORRUPT: &str = "segment_corrupt";
    /// The manifest referenced a segment file that is not on disk.
    pub const SEGMENT_MISSING: &str = "segment_missing";
    /// A journal record in the body of the journal failed its CRC.
    pub const JOURNAL_CORRUPT: &str = "journal_corrupt";
    /// The journal ended in a partial record (torn append); the tail was
    /// discarded. This alone does not force a rebuild.
    pub const JOURNAL_TORN: &str = "journal_torn";
    /// The base CSV (or a sibling sharing an attribute class) changed
    /// since the segment was written.
    pub const STALE_FINGERPRINT: &str = "stale_fingerprint";
    /// Journaled values need a wider BDD block than the segment has.
    pub const DOMAIN_OVERFLOW: &str = "domain_overflow";
    /// Replaying a journal record through incremental maintenance failed.
    pub const REPLAY_FAILED: &str = "replay_failed";
    /// Every legal reason, for validation.
    pub const ALL: [&str; 8] = [
        MANIFEST_CORRUPT,
        SEGMENT_CORRUPT,
        SEGMENT_MISSING,
        JOURNAL_CORRUPT,
        JOURNAL_TORN,
        STALE_FINGERPRINT,
        DOMAIN_OVERFLOW,
        REPLAY_FAILED,
    ];
}

/// One recovery event from the persistent index store: something on disk
/// was unusable, the store said why, and the run carried on correctly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// Relation whose cache entry was affected.
    pub relation: String,
    /// One of [`recovery_reason`]'s constants.
    pub reason: &'static str,
    /// Human-readable specifics (decode offset, fingerprints, …).
    pub detail: String,
}

/// Persistent-index-store counters for one run (`index_cache` in the
/// schema). `None` on `RunMetrics` means the run had no `--index-cache`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexCacheMetrics {
    /// Relations warm-started from a valid cached segment.
    pub hits: u64,
    /// Relations with no usable cache entry (built from scratch).
    pub misses: u64,
    /// Relations whose cache entry existed but was unusable — a subset of
    /// the misses, each explained by a [`RecoveryRecord`].
    pub rebuilds: u64,
    /// Journaled tuple deltas replayed through incremental maintenance.
    pub journal_replayed: u64,
    /// Best-effort cache writes that failed (the run continues; the cache
    /// just stays cold for those relations).
    pub write_failures: u64,
    /// Every recovery event, in detection order.
    pub recoveries: Vec<RecoveryRecord>,
}

/// Session counters for a `relcheck serve` run (`serve` in the schema,
/// since v5). `None` on `RunMetrics` means the run was a batch job.
///
/// `checks`, `constraints_checked`, `constraints_skipped`, and the
/// dirty-set gauges count only protocol `check` requests; the priming
/// validation that warms the session is accounted separately in
/// `full_ns`, so `incremental_ns` vs `full_ns` compares delta-driven
/// re-checking against the cold full pass on the same session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Protocol commands handled (deltas + checks + stats + quit).
    pub requests: u64,
    /// Tuple deltas applied (acknowledged, i.e. journaled when a store
    /// is attached).
    pub deltas: u64,
    /// `check` requests served.
    pub checks: u64,
    /// Constraints re-checked across all `check` requests (their
    /// read-set intersected the dirty set, or their verdict was stale).
    pub constraints_checked: u64,
    /// Constraints answered from the registry's cached verdict.
    pub constraints_skipped: u64,
    /// Largest dirty-relation set any `check` request saw.
    pub dirty_peak: u64,
    /// Sum of dirty-set sizes over all `check` requests (divide by
    /// `checks` for the mean).
    pub dirty_total: u64,
    /// Wall-clock nanoseconds spent serving `check` requests.
    pub incremental_ns: u64,
    /// Wall-clock nanoseconds of the initial full validation that primed
    /// the verdict cache.
    pub full_ns: u64,
}

/// Certificate audit counters (`audit` in the schema, since v6). `None`
/// on [`RunMetrics`] means the run did not emit or verify certificates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditMetrics {
    /// Certificates emitted.
    pub emitted: u64,
    /// Certificates that passed independent re-checking.
    pub verified: u64,
    /// Certificates rejected by the re-checker (tampering or an engine
    /// bug) — any nonzero value here is an incident.
    pub failed: u64,
    /// Witness tuples carried across all emitted certificates (bounded
    /// per certificate by `--witness-limit`).
    pub witnesses: u64,
}

/// Admission-governor counters for a `relcheck serve` run (`overload` in
/// the schema, since v7). `None` on [`RunMetrics`] means the run was a
/// batch job. Conservation: `shed <= admitted` and `drained <= admitted`
/// (`metrics-check` enforces both).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverloadMetrics {
    /// Requests accepted onto the engine queue (Normal + Shed tiers).
    pub admitted: u64,
    /// Admitted requests served at the Shed tier: the ladder entered at
    /// the SQL rung ([`FallbackReason::Overload`]) instead of BDD.
    pub shed: u64,
    /// Requests turned away with a `busy <retry-after-ms>` reply because
    /// the bounded queue was full (the engine never saw them).
    pub rejected: u64,
    /// Journal-append retries that eventually succeeded (transient store
    /// faults absorbed before the rows-only degrade would have fired).
    pub retries: u64,
    /// Checks whose service time overran the hard deadline — the armed
    /// watchdog escalated them down the ladder instead of hanging.
    pub watchdog_fires: u64,
    /// Queued requests still served after drain began (`quit`/SIGTERM):
    /// the graceful-drain path finishes in-flight work, never drops it.
    pub drained: u64,
}

/// The top-level machine-readable report (`schema_version` 8). See
/// `DESIGN.md` for field meanings and stability guarantees.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Worker threads the run was configured with.
    pub threads: usize,
    /// Whether per-check traces were captured.
    pub telemetry_enabled: bool,
    /// Per-constraint metrics, in input order.
    pub constraints: Vec<ConstraintMetrics>,
    /// Lane-level aggregation, when the run went through the parallel
    /// front-end (serial passes report a single lane).
    pub fleet: Option<FleetTelemetry>,
    /// Degraded/errored counts and fault-injection evidence.
    pub degradation: DegradationSummary,
    /// Persistent index store counters; `None` when the run did not use
    /// `--index-cache`. Assembled by the caller after `from_reports`.
    pub index_cache: Option<IndexCacheMetrics>,
    /// Plan-cache counters; `None` when the run did not go through a
    /// [`crate::registry::ConstraintRegistry`]. Assembled by the caller
    /// after `from_reports`.
    pub plan_cache: Option<PlanCacheMetrics>,
    /// Serve-session counters; `None` for batch runs. Assembled by the
    /// caller after `from_reports`.
    pub serve: Option<ServeMetrics>,
    /// Certificate audit counters; `None` when the run did not certify.
    /// Assembled by the caller after `from_reports`.
    pub audit: Option<AuditMetrics>,
    /// Admission-governor counters; `None` for batch runs. Assembled by
    /// the caller after `from_reports`.
    pub overload: Option<OverloadMetrics>,
    /// Workload-driven policy counters; `None` when the run never
    /// consulted the advisor. Assembled by the caller after
    /// `from_reports`.
    pub policy: Option<PolicyMetrics>,
}

impl RunMetrics {
    /// Assemble a report from named check reports (input order preserved).
    /// Captures the failpoint registry's fired counts if it is armed.
    pub fn from_reports(
        reports: &[(String, crate::checker::CheckReport)],
        fleet: Option<FleetTelemetry>,
        threads: usize,
    ) -> RunMetrics {
        use crate::checker::Verdict;
        let telemetry_enabled = reports.iter().any(|(_, r)| r.metrics.is_some());
        let degradation = DegradationSummary {
            degraded: reports
                .iter()
                .filter(|(_, r)| r.verdict == Verdict::Degraded)
                .count(),
            errored: reports
                .iter()
                .filter(|(_, r)| r.verdict == Verdict::Errored)
                .count(),
            fallbacks: reports
                .iter()
                .filter(|(_, r)| r.metrics.as_ref().is_some_and(|t| t.fallback.is_some()))
                .count(),
            failpoints: relcheck_bdd::failpoint::armed_seed()
                .map(|seed| (seed, relcheck_bdd::failpoint::fired_counts())),
        };
        RunMetrics {
            threads,
            telemetry_enabled,
            constraints: reports
                .iter()
                .map(|(name, r)| ConstraintMetrics {
                    name: name.clone(),
                    holds: r.holds,
                    verdict: r.verdict,
                    error: r.error.clone(),
                    method: r.method,
                    elapsed: r.elapsed,
                    trace: r.metrics.clone(),
                })
                .collect(),
            fleet,
            degradation,
            index_cache: None,
            plan_cache: None,
            serve: None,
            audit: None,
            overload: None,
            policy: None,
        }
    }

    /// Render the schema-version-8 JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj_open();
        w.key("schema_version");
        w.raw("8");
        w.key("tool");
        w.string("relcheck");
        w.key("threads");
        w.raw(&self.threads.to_string());
        w.key("telemetry_enabled");
        w.raw(if self.telemetry_enabled {
            "true"
        } else {
            "false"
        });
        w.key("constraints");
        w.arr_open();
        for c in &self.constraints {
            write_constraint(&mut w, c);
        }
        w.arr_close();
        w.key("fleet");
        match &self.fleet {
            None => w.raw("null"),
            Some(fl) => write_fleet(&mut w, fl),
        }
        w.key("degradation");
        write_degradation(&mut w, &self.degradation);
        w.key("index_cache");
        match &self.index_cache {
            None => w.raw("null"),
            Some(ic) => write_index_cache(&mut w, ic),
        }
        w.key("plan_cache");
        match &self.plan_cache {
            None => w.raw("null"),
            Some(pc) => {
                w.obj_open();
                w.key("hits");
                w.raw(&pc.hits.to_string());
                w.key("misses");
                w.raw(&pc.misses.to_string());
                w.obj_close();
            }
        }
        w.key("serve");
        match &self.serve {
            None => w.raw("null"),
            Some(sv) => {
                w.obj_open();
                for (k, v) in [
                    ("requests", sv.requests),
                    ("deltas", sv.deltas),
                    ("checks", sv.checks),
                    ("constraints_checked", sv.constraints_checked),
                    ("constraints_skipped", sv.constraints_skipped),
                    ("dirty_peak", sv.dirty_peak),
                    ("dirty_total", sv.dirty_total),
                    ("incremental_ns", sv.incremental_ns),
                    ("full_ns", sv.full_ns),
                ] {
                    w.key(k);
                    w.raw(&v.to_string());
                }
                w.obj_close();
            }
        }
        w.key("audit");
        match &self.audit {
            None => w.raw("null"),
            Some(a) => {
                w.obj_open();
                for (k, v) in [
                    ("emitted", a.emitted),
                    ("verified", a.verified),
                    ("failed", a.failed),
                    ("witnesses", a.witnesses),
                ] {
                    w.key(k);
                    w.raw(&v.to_string());
                }
                w.obj_close();
            }
        }
        w.key("overload");
        match &self.overload {
            None => w.raw("null"),
            Some(ov) => {
                w.obj_open();
                for (k, v) in [
                    ("admitted", ov.admitted),
                    ("shed", ov.shed),
                    ("rejected", ov.rejected),
                    ("retries", ov.retries),
                    ("watchdog_fires", ov.watchdog_fires),
                    ("drained", ov.drained),
                ] {
                    w.key(k);
                    w.raw(&v.to_string());
                }
                w.obj_close();
            }
        }
        w.key("policy");
        match &self.policy {
            None => w.raw("null"),
            Some(p) => {
                w.obj_open();
                for (k, v) in [
                    ("relations", p.relations),
                    ("advised_bdd", p.advised_bdd),
                    ("advised_sql", p.advised_sql),
                    ("applied_sql_only", p.applied_sql_only),
                    ("applied_rebuilds", p.applied_rebuilds),
                    ("reseeded", p.reseeded),
                    ("readvises", p.readvises),
                    ("cache_slots", p.cache_slots),
                    ("profile_checks", p.profile_checks),
                ] {
                    w.key(k);
                    w.raw(&v.to_string());
                }
                w.obj_close();
            }
        }
        w.obj_close();
        w.finish()
    }
}

fn write_index_cache(w: &mut JsonWriter, ic: &IndexCacheMetrics) {
    w.obj_open();
    for (k, v) in [
        ("hits", ic.hits),
        ("misses", ic.misses),
        ("rebuilds", ic.rebuilds),
        ("journal_replayed", ic.journal_replayed),
        ("write_failures", ic.write_failures),
    ] {
        w.key(k);
        w.raw(&v.to_string());
    }
    w.key("recoveries");
    w.arr_open();
    for r in &ic.recoveries {
        w.obj_open();
        w.key("relation");
        w.string(&r.relation);
        w.key("reason");
        w.string(r.reason);
        w.key("detail");
        w.string(&r.detail);
        w.obj_close();
    }
    w.arr_close();
    w.obj_close();
}

fn method_name(m: Method) -> &'static str {
    match m {
        Method::Bdd => "bdd",
        Method::SqlFallback => "sql_fallback",
        Method::BruteForce => "brute_force",
        Method::Aborted => "aborted",
    }
}

fn write_degradation(w: &mut JsonWriter, d: &DegradationSummary) {
    w.obj_open();
    w.key("degraded");
    w.raw(&d.degraded.to_string());
    w.key("errored");
    w.raw(&d.errored.to_string());
    w.key("fallbacks");
    w.raw(&d.fallbacks.to_string());
    w.key("failpoints");
    match &d.failpoints {
        None => w.raw("null"),
        Some((seed, fired)) => {
            w.obj_open();
            // As a string: u64 seeds can exceed the i64 range our parser
            // (and many consumers) give JSON integers.
            w.key("seed");
            w.string(&seed.to_string());
            w.key("fired");
            w.arr_open();
            for (site, count) in fired {
                w.obj_open();
                w.key("site");
                w.string(site);
                w.key("count");
                w.raw(&count.to_string());
                w.obj_close();
            }
            w.arr_close();
            w.obj_close();
        }
    }
    w.obj_close();
}

fn write_constraint(w: &mut JsonWriter, c: &ConstraintMetrics) {
    w.obj_open();
    w.key("name");
    w.string(&c.name);
    w.key("holds");
    w.raw(if c.holds { "true" } else { "false" });
    w.key("verdict");
    w.string(c.verdict.name());
    w.key("error");
    match &c.error {
        None => w.raw("null"),
        Some(e) => w.string(e),
    }
    w.key("method");
    w.string(method_name(c.method));
    w.key("elapsed_ns");
    w.raw(&(c.elapsed.as_nanos() as u64).to_string());
    w.key("trace");
    match &c.trace {
        None => w.raw("null"),
        Some(t) => write_trace(w, t),
    }
    w.obj_close();
}

fn write_trace(w: &mut JsonWriter, t: &CheckTrace) {
    w.obj_open();
    w.key("method");
    w.string(method_name(t.method));
    w.key("rules");
    w.arr_open();
    for r in &t.rules {
        w.obj_open();
        w.key("rule");
        w.string(r.rule.name());
        w.key("count");
        w.raw(&r.count.to_string());
        w.obj_close();
    }
    w.arr_close();
    w.key("passes");
    w.arr_open();
    for p in &t.passes {
        w.obj_open();
        w.key("pass");
        w.string(p.pass);
        w.key("rule");
        match p.rule {
            None => w.raw("null"),
            Some(r) => w.string(r.name()),
        }
        w.key("fired");
        w.raw(&p.fired.to_string());
        w.key("gated");
        w.raw(&p.gated.to_string());
        w.obj_close();
    }
    w.arr_close();
    w.key("index_events");
    w.arr_open();
    for e in &t.index_events {
        w.obj_open();
        w.key("relation");
        w.string(&e.relation);
        w.key("provenance");
        w.string(e.provenance.name());
        w.obj_close();
    }
    w.arr_close();
    w.key("fallback");
    match &t.fallback {
        None => w.raw("null"),
        Some(FallbackReason::NodeLimit { limit, live }) => {
            w.obj_open();
            w.key("reason");
            w.string("node_limit");
            w.key("limit");
            w.raw(&limit.to_string());
            w.key("live");
            w.raw(&live.to_string());
            w.obj_close();
        }
        Some(FallbackReason::UnindexedRelation) => {
            w.obj_open();
            w.key("reason");
            w.string("unindexed_relation");
            w.obj_close();
        }
        Some(FallbackReason::Deadline) => {
            w.obj_open();
            w.key("reason");
            w.string("deadline");
            w.obj_close();
        }
        Some(FallbackReason::RetryExhausted { limit, live }) => {
            w.obj_open();
            w.key("reason");
            w.string("retry_exhausted");
            w.key("limit");
            w.raw(&limit.to_string());
            w.key("live");
            w.raw(&live.to_string());
            w.obj_close();
        }
        Some(FallbackReason::Panic(msg)) => {
            w.obj_open();
            w.key("reason");
            w.string("panic");
            w.key("message");
            w.string(msg);
            w.obj_close();
        }
        Some(FallbackReason::Overload) => {
            w.obj_open();
            w.key("reason");
            w.string("overload");
            w.obj_close();
        }
    }
    w.key("ladder");
    w.arr_open();
    for rung in &t.ladder {
        w.string(rung);
    }
    w.arr_close();
    w.key("timings");
    w.obj_open();
    w.key("index_ns");
    w.raw(&(t.timings.index.as_nanos() as u64).to_string());
    w.key("eval_ns");
    w.raw(&(t.timings.eval.as_nanos() as u64).to_string());
    w.key("total_ns");
    w.raw(&(t.timings.total.as_nanos() as u64).to_string());
    w.obj_close();
    w.key("bdd");
    write_delta(w, &t.bdd);
    w.obj_close();
}

fn write_delta(w: &mut JsonWriter, d: &StatsDelta) {
    w.obj_open();
    w.key("created_nodes");
    w.raw(&d.created_nodes.to_string());
    w.key("cache_hits");
    w.raw(&d.cache_hits.to_string());
    w.key("cache_misses");
    w.raw(&d.cache_misses.to_string());
    w.key("gc_runs");
    w.raw(&d.gc_runs.to_string());
    w.key("ops");
    w.arr_open();
    for (i, kind) in OpKind::ALL.iter().enumerate() {
        let s = d.ops[i];
        w.obj_open();
        w.key("op");
        w.string(kind.name());
        w.key("calls");
        w.raw(&s.calls.to_string());
        w.key("cache_hits");
        w.raw(&s.cache_hits.to_string());
        w.key("cache_misses");
        w.raw(&s.cache_misses.to_string());
        w.obj_close();
    }
    w.arr_close();
    w.obj_close();
}

fn write_fleet(w: &mut JsonWriter, fl: &FleetTelemetry) {
    w.obj_open();
    w.key("workers");
    w.arr_open();
    for wk in &fl.workers {
        w.obj_open();
        w.key("worker");
        w.raw(&wk.worker.to_string());
        w.key("constraints");
        w.arr_open();
        for &i in &wk.constraints {
            w.raw(&i.to_string());
        }
        w.arr_close();
        w.key("peak_nodes");
        w.raw(&wk.peak_nodes.to_string());
        w.key("depth_hwm");
        w.raw(&wk.depth_hwm.to_string());
        w.key("bdd");
        write_delta(w, &wk.bdd);
        w.obj_close();
    }
    w.arr_close();
    w.key("total");
    write_delta(w, &fl.total);
    w.obj_close();
}

/// A tiny JSON emitter that tracks commas so callers write keys and values
/// in order without bookkeeping. Shared with the certificate writer
/// (`crate::certify`), which needs the same byte-stable output.
pub(crate) struct JsonWriter {
    out: String,
    need_comma: Vec<bool>,
}

impl JsonWriter {
    pub(crate) fn new() -> JsonWriter {
        JsonWriter {
            out: String::new(),
            need_comma: vec![false],
        }
    }

    fn pre_value(&mut self) {
        if let Some(top) = self.need_comma.last_mut() {
            if *top {
                self.out.push(',');
            }
            *top = true;
        }
    }

    pub(crate) fn obj_open(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.need_comma.push(false);
    }

    pub(crate) fn obj_close(&mut self) {
        self.need_comma.pop();
        self.out.push('}');
    }

    pub(crate) fn arr_open(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.need_comma.push(false);
    }

    pub(crate) fn arr_close(&mut self) {
        self.need_comma.pop();
        self.out.push(']');
    }

    pub(crate) fn key(&mut self, k: &str) {
        self.pre_value();
        self.out.push('"');
        self.out.push_str(k);
        self.out.push_str("\":");
        // The value that follows must not emit another comma.
        if let Some(top) = self.need_comma.last_mut() {
            *top = false;
        }
    }

    pub(crate) fn string(&mut self, s: &str) {
        self.pre_value();
        self.out.push('"');
        for ch in s.chars() {
            match ch {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    pub(crate) fn raw(&mut self, v: &str) {
        self.pre_value();
        self.out.push_str(v);
    }

    pub(crate) fn finish(self) -> String {
        self.out
    }
}

/// A parsed JSON value — just enough to validate the metrics schema
/// offline (std-only; used by `relcheck metrics-check` and the test
/// suite).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (counters; anything without `.`/`e`).
    Int(i64),
    /// A non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number (integer or float).
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }
}

/// Parse a JSON document (strict enough for round-tripping our own
/// output; rejects trailing garbage).
pub fn parse_json(text: &str) -> std::result::Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> std::result::Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".to_owned()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'u') => {
                                let hex =
                                    b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                s.push(char::from_u32(code).ok_or("bad \\u escape")?);
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 character.
                        let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                        let ch = rest.chars().next().unwrap();
                        s.push(ch);
                        *pos += ch.len_utf8();
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            if b.get(*pos) == Some(&b'-') {
                *pos += 1;
            }
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            if s.is_empty() {
                return Err(format!("unexpected character at byte {start}"));
            }
            if s.bytes().all(|c| c.is_ascii_digit() || c == b'-') {
                s.parse::<i64>().map(Json::Int).map_err(|e| e.to_string())
            } else {
                s.parse::<f64>().map(Json::Float).map_err(|e| e.to_string())
            }
        }
    }
}

/// The op-kind names a `bdd` block must list, in order.
fn op_kind_names() -> Vec<&'static str> {
    OpKind::ALL.iter().map(|k| k.name()).collect()
}

fn check_delta_block(v: &Json, at: &str) -> std::result::Result<(), String> {
    for field in ["created_nodes", "cache_hits", "cache_misses", "gc_runs"] {
        v.get(field)
            .and_then(Json::as_int)
            .ok_or(format!("{at}: missing integer field {field:?}"))?;
    }
    let ops = v
        .get("ops")
        .and_then(Json::as_arr)
        .ok_or(format!("{at}: missing array field \"ops\""))?;
    let names = op_kind_names();
    if ops.len() != names.len() {
        return Err(format!(
            "{at}: ops must list all {} kinds, got {}",
            names.len(),
            ops.len()
        ));
    }
    for (o, want) in ops.iter().zip(&names) {
        let got = o
            .get("op")
            .and_then(Json::as_str)
            .ok_or(format!("{at}: op entry missing \"op\""))?;
        if got != *want {
            return Err(format!("{at}: expected op {want:?}, got {got:?}"));
        }
        let calls = o
            .get("calls")
            .and_then(Json::as_int)
            .ok_or(format!("{at}: op {got:?} missing \"calls\""))?;
        let hits = o
            .get("cache_hits")
            .and_then(Json::as_int)
            .ok_or(format!("{at}: op {got:?} missing \"cache_hits\""))?;
        let misses = o
            .get("cache_misses")
            .and_then(Json::as_int)
            .ok_or(format!("{at}: op {got:?} missing \"cache_misses\""))?;
        if calls != hits + misses {
            return Err(format!(
                "{at}: op {got:?} violates calls == hits + misses ({calls} != {hits} + {misses})"
            ));
        }
    }
    Ok(())
}

fn delta_field(v: &Json, field: &str) -> i64 {
    v.get(field).and_then(Json::as_int).unwrap_or(0)
}

/// Validate a metrics document against the schema: required fields and
/// types, per-op conservation laws, and — when a fleet section is present
/// — that the fleet totals equal the sum of the per-worker counters.
pub fn validate_metrics_json(text: &str) -> std::result::Result<(), String> {
    let doc = parse_json(text)?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_int)
        .ok_or("missing integer field \"schema_version\"")?;
    if !(1..=8).contains(&version) {
        return Err(format!("unsupported schema_version {version}"));
    }
    doc.get("threads")
        .and_then(Json::as_int)
        .ok_or("missing integer field \"threads\"")?;
    let constraints = doc
        .get("constraints")
        .and_then(Json::as_arr)
        .ok_or("missing array field \"constraints\"")?;
    for (i, c) in constraints.iter().enumerate() {
        let at = format!("constraints[{i}]");
        c.get("name")
            .and_then(Json::as_str)
            .ok_or(format!("{at}: missing string field \"name\""))?;
        if !matches!(c.get("holds"), Some(Json::Bool(_))) {
            return Err(format!("{at}: missing boolean field \"holds\""));
        }
        if version >= 2 {
            let verdict = c
                .get("verdict")
                .and_then(Json::as_str)
                .ok_or(format!("{at}: missing string field \"verdict\""))?;
            if !["holds", "violated", "degraded", "errored"].contains(&verdict) {
                return Err(format!("{at}: unknown verdict {verdict:?}"));
            }
            match c.get("error") {
                Some(Json::Null) | Some(Json::Str(_)) => {}
                other => {
                    return Err(format!(
                        "{at}: \"error\" must be null or string, got {other:?}"
                    ))
                }
            }
        }
        let method = c
            .get("method")
            .and_then(Json::as_str)
            .ok_or(format!("{at}: missing string field \"method\""))?;
        let methods: &[&str] = if version >= 2 {
            &["bdd", "sql_fallback", "brute_force", "aborted"]
        } else {
            &["bdd", "sql_fallback", "brute_force"]
        };
        if !methods.contains(&method) {
            return Err(format!("{at}: unknown method {method:?}"));
        }
        c.get("elapsed_ns")
            .and_then(Json::as_int)
            .ok_or(format!("{at}: missing integer field \"elapsed_ns\""))?;
        match c.get("trace") {
            Some(Json::Null) | None => {}
            Some(t) => {
                let rules = t
                    .get("rules")
                    .and_then(Json::as_arr)
                    .ok_or(format!("{at}.trace: missing array field \"rules\""))?;
                for r in rules {
                    let name = r
                        .get("rule")
                        .and_then(Json::as_str)
                        .ok_or(format!("{at}.trace: rule entry missing \"rule\""))?;
                    if !["R1", "R2", "R3", "R4"].contains(&name) {
                        return Err(format!("{at}.trace: unknown rule {name:?}"));
                    }
                    let count = r
                        .get("count")
                        .and_then(Json::as_int)
                        .ok_or(format!("{at}.trace: rule entry missing \"count\""))?;
                    if count <= 0 {
                        return Err(format!("{at}.trace: rule {name:?} has count {count} <= 0"));
                    }
                }
                if version >= 4 {
                    let passes = t
                        .get("passes")
                        .and_then(Json::as_arr)
                        .ok_or(format!("{at}.trace: missing array field \"passes\""))?;
                    for p in passes {
                        let name = p
                            .get("pass")
                            .and_then(Json::as_str)
                            .ok_or(format!("{at}.trace: pass entry missing \"pass\""))?;
                        if ![
                            "prenex-pullup",
                            "strip-leading-block",
                            "refutation-nnf",
                            "forall-pushdown",
                        ]
                        .contains(&name)
                        {
                            return Err(format!("{at}.trace: unknown pass {name:?}"));
                        }
                        match p.get("rule") {
                            Some(Json::Null) => {}
                            Some(Json::Str(r))
                                if ["R1", "R2", "R3", "R4"].contains(&r.as_str()) => {}
                            other => {
                                return Err(format!(
                                    "{at}.trace: pass {name:?} has bad \"rule\" {other:?}"
                                ))
                            }
                        }
                        for f in ["fired", "gated"] {
                            let v = p.get(f).and_then(Json::as_int).ok_or(format!(
                                "{at}.trace: pass {name:?} missing integer {f:?}"
                            ))?;
                            if v < 0 {
                                return Err(format!("{at}.trace: pass {name:?} {f} = {v} < 0"));
                            }
                        }
                    }
                }
                let events = t
                    .get("index_events")
                    .and_then(Json::as_arr)
                    .ok_or(format!("{at}.trace: missing array field \"index_events\""))?;
                for e in events {
                    let p = e
                        .get("provenance")
                        .and_then(Json::as_str)
                        .ok_or(format!("{at}.trace: index event missing \"provenance\""))?;
                    if !["built", "reused", "sql_only"].contains(&p) {
                        return Err(format!("{at}.trace: unknown provenance {p:?}"));
                    }
                }
                match t.get("fallback") {
                    Some(Json::Null) | None => {}
                    Some(fb) => {
                        let reason = fb
                            .get("reason")
                            .and_then(Json::as_str)
                            .ok_or(format!("{at}.trace.fallback: missing \"reason\""))?;
                        let reasons: &[&str] = if version >= 7 {
                            &[
                                "node_limit",
                                "unindexed_relation",
                                "deadline",
                                "retry_exhausted",
                                "panic",
                                "overload",
                            ]
                        } else if version >= 2 {
                            &[
                                "node_limit",
                                "unindexed_relation",
                                "deadline",
                                "retry_exhausted",
                                "panic",
                            ]
                        } else {
                            &["node_limit", "unindexed_relation"]
                        };
                        if !reasons.contains(&reason) {
                            return Err(format!("{at}.trace.fallback: unknown reason {reason:?}"));
                        }
                    }
                }
                if let Some(ladder) = t.get("ladder") {
                    let rungs = ladder
                        .as_arr()
                        .ok_or(format!("{at}.trace: \"ladder\" must be an array"))?;
                    for r in rungs {
                        let name = r
                            .as_str()
                            .ok_or(format!("{at}.trace.ladder: rung must be a string"))?;
                        if ![
                            "bdd",
                            "gc_retry",
                            "sql",
                            "brute_force",
                            "degraded",
                            "errored",
                        ]
                        .contains(&name)
                        {
                            return Err(format!("{at}.trace.ladder: unknown rung {name:?}"));
                        }
                    }
                }
                let timings = t
                    .get("timings")
                    .ok_or(format!("{at}.trace: missing field \"timings\""))?;
                for f in ["index_ns", "eval_ns", "total_ns"] {
                    timings
                        .get(f)
                        .and_then(Json::as_int)
                        .ok_or(format!("{at}.trace.timings: missing integer {f:?}"))?;
                }
                let bdd = t
                    .get("bdd")
                    .ok_or(format!("{at}.trace: missing field \"bdd\""))?;
                check_delta_block(bdd, &format!("{at}.trace.bdd"))?;
            }
        }
    }
    match doc.get("fleet") {
        Some(Json::Null) | None => {}
        Some(fleet) => {
            let workers = fleet
                .get("workers")
                .and_then(Json::as_arr)
                .ok_or("fleet: missing array field \"workers\"")?;
            let total = fleet.get("total").ok_or("fleet: missing field \"total\"")?;
            check_delta_block(total, "fleet.total")?;
            let mut sums: Vec<(String, i64)> = Vec::new();
            for (wi, w) in workers.iter().enumerate() {
                let at = format!("fleet.workers[{wi}]");
                let bdd = w.get("bdd").ok_or(format!("{at}: missing field \"bdd\""))?;
                check_delta_block(bdd, &format!("{at}.bdd"))?;
                for f in ["created_nodes", "cache_hits", "cache_misses", "gc_runs"] {
                    let v = delta_field(bdd, f);
                    match sums.iter_mut().find(|(k, _)| k == f) {
                        Some((_, acc)) => *acc += v,
                        None => sums.push((f.to_owned(), v)),
                    }
                }
            }
            for (f, sum) in &sums {
                let t = delta_field(total, f);
                if t != *sum {
                    return Err(format!("fleet.total.{f} = {t} but per-worker sum is {sum}"));
                }
            }
            // Per-op totals must also be the worker sums.
            if let Some(total_ops) = total.get("ops").and_then(Json::as_arr) {
                for (ki, op) in total_ops.iter().enumerate() {
                    let name = op.get("op").and_then(Json::as_str).unwrap_or("?");
                    for f in ["calls", "cache_hits", "cache_misses"] {
                        let t = delta_field(op, f);
                        let mut sum = 0i64;
                        for w in workers {
                            if let Some(ops) = w
                                .get("bdd")
                                .and_then(|b| b.get("ops"))
                                .and_then(Json::as_arr)
                            {
                                sum += delta_field(&ops[ki], f);
                            }
                        }
                        if t != sum {
                            return Err(format!(
                                "fleet.total ops[{name}].{f} = {t} but per-worker sum is {sum}"
                            ));
                        }
                    }
                }
            }
        }
    }
    if version >= 2 {
        let deg = doc
            .get("degradation")
            .ok_or("missing field \"degradation\"")?;
        for f in ["degraded", "errored", "fallbacks"] {
            let v = deg
                .get(f)
                .and_then(Json::as_int)
                .ok_or(format!("degradation: missing integer field {f:?}"))?;
            if v < 0 {
                return Err(format!("degradation.{f} = {v} < 0"));
            }
        }
        // Counts must agree with the per-constraint verdicts.
        for (f, verdict) in [("degraded", "degraded"), ("errored", "errored")] {
            let count = deg.get(f).and_then(Json::as_int).unwrap_or(0);
            let tally = constraints
                .iter()
                .filter(|c| c.get("verdict").and_then(Json::as_str) == Some(verdict))
                .count() as i64;
            if count != tally {
                return Err(format!(
                    "degradation.{f} = {count} but {tally} constraints report verdict {verdict:?}"
                ));
            }
        }
        match deg.get("failpoints") {
            Some(Json::Null) | None => {}
            Some(fp) => {
                fp.get("seed")
                    .and_then(Json::as_str)
                    .ok_or("degradation.failpoints: missing string field \"seed\"")?;
                let fired = fp
                    .get("fired")
                    .and_then(Json::as_arr)
                    .ok_or("degradation.failpoints: missing array field \"fired\"")?;
                for (i, s) in fired.iter().enumerate() {
                    s.get("site").and_then(Json::as_str).ok_or(format!(
                        "degradation.failpoints.fired[{i}]: missing \"site\""
                    ))?;
                    let n = s.get("count").and_then(Json::as_int).ok_or(format!(
                        "degradation.failpoints.fired[{i}]: missing \"count\""
                    ))?;
                    if n < 0 {
                        return Err(format!("degradation.failpoints.fired[{i}]: count {n} < 0"));
                    }
                }
            }
        }
    }
    if version >= 3 {
        let ic = doc
            .get("index_cache")
            .ok_or("missing field \"index_cache\"")?;
        if !matches!(ic, Json::Null) {
            for f in [
                "hits",
                "misses",
                "rebuilds",
                "journal_replayed",
                "write_failures",
            ] {
                let v = ic
                    .get(f)
                    .and_then(Json::as_int)
                    .ok_or(format!("index_cache: missing integer field {f:?}"))?;
                if v < 0 {
                    return Err(format!("index_cache.{f} = {v} < 0"));
                }
            }
            let recoveries = ic
                .get("recoveries")
                .and_then(Json::as_arr)
                .ok_or("index_cache: missing array field \"recoveries\"")?;
            for (i, r) in recoveries.iter().enumerate() {
                r.get("relation")
                    .and_then(Json::as_str)
                    .ok_or(format!("index_cache.recoveries[{i}]: missing \"relation\""))?;
                let reason = r
                    .get("reason")
                    .and_then(Json::as_str)
                    .ok_or(format!("index_cache.recoveries[{i}]: missing \"reason\""))?;
                if !recovery_reason::ALL.contains(&reason) {
                    return Err(format!(
                        "index_cache.recoveries[{i}]: unknown reason {reason:?}"
                    ));
                }
                r.get("detail")
                    .and_then(Json::as_str)
                    .ok_or(format!("index_cache.recoveries[{i}]: missing \"detail\""))?;
            }
            // Conservation: every rebuild is explained by a recovery
            // record (some records — e.g. a salvaged torn journal tail —
            // do not force a rebuild, so ≤ rather than =).
            let rebuilds = ic.get("rebuilds").and_then(Json::as_int).unwrap_or(0);
            if rebuilds > recoveries.len() as i64 {
                return Err(format!(
                    "index_cache.rebuilds = {rebuilds} exceeds the {} recovery record(s)",
                    recoveries.len()
                ));
            }
        }
    }
    if version >= 4 {
        let pc = doc
            .get("plan_cache")
            .ok_or("missing field \"plan_cache\"")?;
        if !matches!(pc, Json::Null) {
            for f in ["hits", "misses"] {
                let v = pc
                    .get(f)
                    .and_then(Json::as_int)
                    .ok_or(format!("plan_cache: missing integer field {f:?}"))?;
                if v < 0 {
                    return Err(format!("plan_cache.{f} = {v} < 0"));
                }
            }
        }
    }
    if version >= 5 {
        let sv = doc.get("serve").ok_or("missing field \"serve\"")?;
        if !matches!(sv, Json::Null) {
            let mut fields = std::collections::HashMap::new();
            for f in [
                "requests",
                "deltas",
                "checks",
                "constraints_checked",
                "constraints_skipped",
                "dirty_peak",
                "dirty_total",
                "incremental_ns",
                "full_ns",
            ] {
                let v = sv
                    .get(f)
                    .and_then(Json::as_int)
                    .ok_or(format!("serve: missing integer field {f:?}"))?;
                if v < 0 {
                    return Err(format!("serve.{f} = {v} < 0"));
                }
                fields.insert(f, v);
            }
            // Conservation: the peak dirty-set size is one of the sizes
            // summed into the total, and every delta/check is a request.
            if fields["dirty_peak"] > fields["dirty_total"] {
                return Err(format!(
                    "serve.dirty_peak = {} exceeds dirty_total = {}",
                    fields["dirty_peak"], fields["dirty_total"]
                ));
            }
            if fields["deltas"] + fields["checks"] > fields["requests"] {
                return Err(format!(
                    "serve.deltas + serve.checks = {} exceeds requests = {}",
                    fields["deltas"] + fields["checks"],
                    fields["requests"]
                ));
            }
        }
    }
    if version >= 6 {
        let au = doc.get("audit").ok_or("missing field \"audit\"")?;
        if !matches!(au, Json::Null) {
            let mut fields = std::collections::HashMap::new();
            for f in ["emitted", "verified", "failed", "witnesses"] {
                let v = au
                    .get(f)
                    .and_then(Json::as_int)
                    .ok_or(format!("audit: missing integer field {f:?}"))?;
                if v < 0 {
                    return Err(format!("audit.{f} = {v} < 0"));
                }
                fields.insert(f, v);
            }
            // Conservation: in an emitting run every verification outcome
            // refers to an emitted certificate. A verify-only run reports
            // emitted = 0 and its verified/failed tallies stand alone.
            if fields["emitted"] > 0 && fields["verified"] + fields["failed"] > fields["emitted"] {
                return Err(format!(
                    "audit.verified + audit.failed = {} exceeds emitted = {}",
                    fields["verified"] + fields["failed"],
                    fields["emitted"]
                ));
            }
        }
    }
    if version >= 7 {
        let ov = doc.get("overload").ok_or("missing field \"overload\"")?;
        if !matches!(ov, Json::Null) {
            let mut fields = std::collections::HashMap::new();
            for f in [
                "admitted",
                "shed",
                "rejected",
                "retries",
                "watchdog_fires",
                "drained",
            ] {
                let v = ov
                    .get(f)
                    .and_then(Json::as_int)
                    .ok_or(format!("overload: missing integer field {f:?}"))?;
                if v < 0 {
                    return Err(format!("overload.{f} = {v} < 0"));
                }
                fields.insert(f, v);
            }
            // Conservation: shed requests are a subset of admitted ones
            // (rejected requests never reach the engine), and the drain
            // phase only serves requests that were already admitted.
            if fields["shed"] > fields["admitted"] {
                return Err(format!(
                    "overload.shed = {} exceeds admitted = {}",
                    fields["shed"], fields["admitted"]
                ));
            }
            if fields["drained"] > fields["admitted"] {
                return Err(format!(
                    "overload.drained = {} exceeds admitted = {}",
                    fields["drained"], fields["admitted"]
                ));
            }
            // Every engine-visible request was admitted by the governor
            // (the engine skips blank/comment lines, so <=, not ==).
            if let Some(sv) = doc.get("serve") {
                if !matches!(sv, Json::Null) {
                    if let Some(reqs) = sv.get("requests").and_then(Json::as_int) {
                        if reqs > fields["admitted"] {
                            return Err(format!(
                                "serve.requests = {} exceeds overload.admitted = {}",
                                reqs, fields["admitted"]
                            ));
                        }
                    }
                }
            }
        }
    }
    if version >= 8 {
        let po = doc.get("policy").ok_or("missing field \"policy\"")?;
        if !matches!(po, Json::Null) {
            let mut fields = std::collections::HashMap::new();
            for f in [
                "relations",
                "advised_bdd",
                "advised_sql",
                "applied_sql_only",
                "applied_rebuilds",
                "reseeded",
                "readvises",
                "cache_slots",
                "profile_checks",
            ] {
                let v = po
                    .get(f)
                    .and_then(Json::as_int)
                    .ok_or(format!("policy: missing integer field {f:?}"))?;
                if v < 0 {
                    return Err(format!("policy.{f} = {v} < 0"));
                }
                fields.insert(f, v);
            }
            // Conservation: every examined relation got exactly one
            // route, and only SQL-advised relations can be newly marked.
            if fields["advised_bdd"] + fields["advised_sql"] != fields["relations"] {
                return Err(format!(
                    "policy.advised_bdd + policy.advised_sql = {} but relations = {}",
                    fields["advised_bdd"] + fields["advised_sql"],
                    fields["relations"]
                ));
            }
            if fields["applied_sql_only"] > fields["advised_sql"] {
                return Err(format!(
                    "policy.applied_sql_only = {} exceeds advised_sql = {}",
                    fields["applied_sql_only"], fields["advised_sql"]
                ));
            }
        }
    }
    Ok(())
}

/// Validate a `relcheck plan --json` document (schema version 1, kind
/// `"plan"`): required fields and types, pass/rule/ladder vocabulary,
/// hex-string fingerprints, and that the emitted ladder matches the
/// presence of the bdd/sql steps.
pub fn validate_plan_json(text: &str) -> std::result::Result<(), String> {
    let doc = parse_json(text)?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_int)
        .ok_or("missing integer field \"schema_version\"")?;
    if version != 1 {
        return Err(format!("unsupported plan schema_version {version}"));
    }
    let kind = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("missing string field \"kind\"")?;
    if kind != "plan" {
        return Err(format!("kind must be \"plan\", got {kind:?}"));
    }
    let plans = doc
        .get("plans")
        .and_then(Json::as_arr)
        .ok_or("missing array field \"plans\"")?;
    for (i, p) in plans.iter().enumerate() {
        let at = format!("plans[{i}]");
        for field in ["name", "constraint"] {
            p.get(field)
                .and_then(Json::as_str)
                .ok_or(format!("{at}: missing string field {field:?}"))?;
        }
        for field in ["constraint_fp", "schema_fp"] {
            let fp = p
                .get(field)
                .and_then(Json::as_str)
                .ok_or(format!("{at}: missing string field {field:?}"))?;
            if fp.len() != 16 || !fp.bytes().all(|b| b.is_ascii_hexdigit()) {
                return Err(format!("{at}: {field} must be 16 hex digits, got {fp:?}"));
            }
        }
        let opts = p
            .get("options")
            .ok_or(format!("{at}: missing field \"options\""))?;
        for field in [
            "prenex",
            "strip_leading",
            "pushdown",
            "gate_pushdown",
            "join_rename",
            "fused_quant",
        ] {
            if !matches!(opts.get(field), Some(Json::Bool(_))) {
                return Err(format!("{at}.options: missing boolean field {field:?}"));
            }
        }
        let passes = p
            .get("passes")
            .and_then(Json::as_arr)
            .ok_or(format!("{at}: missing array field \"passes\""))?;
        for pass in passes {
            let name = pass
                .get("pass")
                .and_then(Json::as_str)
                .ok_or(format!("{at}: pass entry missing \"pass\""))?;
            if ![
                "prenex-pullup",
                "strip-leading-block",
                "refutation-nnf",
                "forall-pushdown",
            ]
            .contains(&name)
            {
                return Err(format!("{at}: unknown pass {name:?}"));
            }
            match pass.get("rule") {
                Some(Json::Null) => {}
                Some(Json::Str(r)) if ["R1", "R2", "R3", "R4"].contains(&r.as_str()) => {}
                other => return Err(format!("{at}: pass {name:?} has bad rule {other:?}")),
            }
            for field in ["fired", "gated"] {
                let n = pass
                    .get(field)
                    .and_then(Json::as_int)
                    .ok_or(format!("{at}: pass {name:?} missing {field:?}"))?;
                if n < 0 {
                    return Err(format!("{at}: pass {name:?} has {field} = {n} < 0"));
                }
            }
            for field in ["before", "after"] {
                pass.get(field)
                    .and_then(Json::as_str)
                    .ok_or(format!("{at}: pass {name:?} missing string {field:?}"))?;
            }
        }
        let bdd = p.get("bdd").ok_or(format!("{at}: missing field \"bdd\""))?;
        let has_bdd = !matches!(bdd, Json::Null);
        if has_bdd {
            let test = bdd
                .get("test")
                .and_then(Json::as_str)
                .ok_or(format!("{at}.bdd: missing string field \"test\""))?;
            if !["violations-empty", "satisfiable"].contains(&test) {
                return Err(format!("{at}.bdd: unknown test {test:?}"));
            }
            let stripped = bdd
                .get("stripped")
                .and_then(Json::as_arr)
                .ok_or(format!("{at}.bdd: missing array field \"stripped\""))?;
            for v in stripped {
                if !matches!(v, Json::Str(_)) {
                    return Err(format!("{at}.bdd: stripped entries must be strings"));
                }
            }
            for field in ["join_rename", "fused_quant"] {
                if !matches!(bdd.get(field), Some(Json::Bool(_))) {
                    return Err(format!("{at}.bdd: missing boolean field {field:?}"));
                }
            }
        }
        let sql = p.get("sql").ok_or(format!("{at}: missing field \"sql\""))?;
        let has_sql = !matches!(sql, Json::Null);
        if has_sql {
            sql.get("shape")
                .and_then(Json::as_str)
                .ok_or(format!("{at}.sql: missing string field \"shape\""))?;
            let columns = sql
                .get("columns")
                .and_then(Json::as_arr)
                .ok_or(format!("{at}.sql: missing array field \"columns\""))?;
            for c in columns {
                if !matches!(c, Json::Str(_)) {
                    return Err(format!("{at}.sql: column entries must be strings"));
                }
            }
        }
        let ladder = p
            .get("ladder")
            .and_then(Json::as_arr)
            .ok_or(format!("{at}: missing array field \"ladder\""))?;
        let mut want = Vec::new();
        if has_bdd {
            want.push("bdd");
        }
        if has_sql {
            want.push("sql");
        }
        want.push("brute_force");
        let got: Vec<&str> = ladder.iter().filter_map(Json::as_str).collect();
        if got.len() != ladder.len() {
            return Err(format!("{at}: ladder entries must be strings"));
        }
        if got != want {
            return Err(format!(
                "{at}: ladder {got:?} does not match steps (want {want:?})"
            ));
        }
    }
    Ok(())
}

/// Orderings a BENCH entry may report: a static strategy name, an
/// adaptive pick (`adaptive:<candidate>`), or `n/a` for paths that never
/// touch a BDD (the SQL-recheck row of the dynamic benchmark).
fn valid_bench_ordering(s: &str) -> bool {
    if let Some(pick) = s.strip_prefix("adaptive:") {
        return ["static", "concatenated", "frequency", "interleaved"].contains(&pick);
    }
    [
        "schema",
        "random",
        "max-inf-gain",
        "prob-converge",
        "min-cond-entropy",
        "sifted",
        "adaptive",
        "n/a",
    ]
    .contains(&s)
}

fn bench_str<'a>(v: &'a Json, at: &str, field: &str) -> std::result::Result<&'a str, String> {
    let s = v
        .get(field)
        .and_then(Json::as_str)
        .ok_or(format!("{at}: missing string field {field:?}"))?;
    if s.is_empty() {
        return Err(format!("{at}: {field:?} must be non-empty"));
    }
    Ok(s)
}

fn bench_count(v: &Json, at: &str, field: &str) -> std::result::Result<i64, String> {
    let n = v
        .get(field)
        .and_then(Json::as_int)
        .ok_or(format!("{at}: missing integer field {field:?}"))?;
    if n < 0 {
        return Err(format!("{at}: {field:?} must be non-negative, got {n}"));
    }
    Ok(n)
}

/// Validate a `BENCH_*.json` benchmark-trajectory document (schema
/// version 1, see `DESIGN.md` §"BENCH schema"): required fields and
/// types, hit rates in `[0, 1]`, known orderings, and — for the `table1`
/// document — at least one before/after comparison, the acceptance
/// anchor of the committed trajectory. Used by `relcheck bench-check`
/// and the CI bench smoke.
pub fn validate_bench_json(text: &str) -> std::result::Result<(), String> {
    let doc = parse_json(text)?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_int)
        .ok_or("missing integer field \"schema_version\"")?;
    if version != 1 {
        return Err(format!("unsupported bench schema_version {version}"));
    }
    if doc.get("kind").and_then(Json::as_str) != Some("bench") {
        return Err("missing field \"kind\": \"bench\"".to_owned());
    }
    let bench = doc
        .get("bench")
        .and_then(Json::as_str)
        .ok_or("missing string field \"bench\"")?;
    if !["table1", "par_scaling", "dynamic"].contains(&bench) {
        return Err(format!("unknown bench {bench:?}"));
    }
    match doc.get("config") {
        Some(Json::Obj(fields)) => {
            for (k, v) in fields {
                if v.as_int().is_none_or(|n| n < 0) {
                    return Err(format!("config.{k}: must be a non-negative integer"));
                }
            }
        }
        _ => return Err("missing object field \"config\"".to_owned()),
    }
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("missing array field \"entries\"")?;
    if entries.is_empty() {
        return Err("\"entries\" must be non-empty".to_owned());
    }
    for (i, e) in entries.iter().enumerate() {
        let at = format!("entries[{i}]");
        bench_str(e, &at, "name")?;
        bench_str(e, &at, "variant")?;
        bench_count(e, &at, "wall_ns")?;
        bench_count(e, &at, "peak_nodes")?;
        let rate = e
            .get("cache_hit_rate")
            .and_then(Json::as_num)
            .ok_or(format!("{at}: missing numeric field \"cache_hit_rate\""))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("{at}: cache_hit_rate {rate} outside [0, 1]"));
        }
        let ordering = bench_str(e, &at, "ordering")?;
        if !valid_bench_ordering(ordering) {
            return Err(format!("{at}: unknown ordering {ordering:?}"));
        }
    }
    let comparisons = doc
        .get("comparisons")
        .and_then(Json::as_arr)
        .ok_or("missing array field \"comparisons\"")?;
    if bench == "table1" && comparisons.is_empty() {
        return Err("table1 must carry at least one before/after comparison".to_owned());
    }
    for (i, c) in comparisons.iter().enumerate() {
        let at = format!("comparisons[{i}]");
        bench_str(c, &at, "name")?;
        bench_str(c, &at, "baseline")?;
        bench_str(c, &at, "candidate")?;
        for field in [
            "wall_ns_before",
            "wall_ns_after",
            "peak_nodes_before",
            "peak_nodes_after",
        ] {
            bench_count(c, &at, field)?;
        }
        if bench_count(c, &at, "wall_ns_before")? == 0 || bench_count(c, &at, "wall_ns_after")? == 0
        {
            return Err(format!(
                "{at}: a measured comparison cannot have zero wall time"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let text = r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": -7}}"#;
        let v = parse_json(text).unwrap();
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_int(), Some(-7));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_int(), Some(1));
        assert_eq!(arr[1], Json::Float(2.5));
        assert_eq!(arr[2].as_str(), Some("x\n"));
        assert_eq!(arr[3], Json::Bool(true));
        assert_eq!(arr[4], Json::Null);
    }

    #[test]
    fn json_rejects_trailing_garbage() {
        assert!(parse_json("{} extra").is_err());
        assert!(parse_json("[1,").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn writer_escapes_strings() {
        let mut w = JsonWriter::new();
        w.obj_open();
        w.key("k");
        w.string("a\"b\\c\nd");
        w.obj_close();
        let text = w.finish();
        let v = parse_json(&text).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn empty_metrics_document_validates() {
        let m = RunMetrics {
            threads: 1,
            telemetry_enabled: false,
            constraints: Vec::new(),
            fleet: None,
            degradation: DegradationSummary::default(),
            index_cache: None,
            plan_cache: None,
            serve: None,
            audit: None,
            overload: None,
            policy: None,
        };
        validate_metrics_json(&m.to_json()).unwrap();
    }

    #[test]
    fn index_cache_metrics_validate_and_conserve() {
        let mut m = RunMetrics {
            threads: 1,
            telemetry_enabled: false,
            constraints: Vec::new(),
            fleet: None,
            degradation: DegradationSummary::default(),
            index_cache: Some(IndexCacheMetrics {
                hits: 1,
                misses: 2,
                rebuilds: 1,
                journal_replayed: 5,
                write_failures: 0,
                recoveries: vec![RecoveryRecord {
                    relation: "R".to_owned(),
                    reason: recovery_reason::SEGMENT_CORRUPT,
                    detail: "checksum mismatch at offset 20".to_owned(),
                }],
            }),
            plan_cache: Some(PlanCacheMetrics { hits: 3, misses: 1 }),
            serve: None,
            audit: None,
            overload: None,
            policy: None,
        };
        validate_metrics_json(&m.to_json()).unwrap();
        // A rebuild with no recovery record explaining it must fail.
        m.index_cache.as_mut().unwrap().rebuilds = 2;
        let err = validate_metrics_json(&m.to_json()).unwrap_err();
        assert!(err.contains("rebuilds"), "{err}");
        // An off-vocabulary reason must fail (hand-edit the JSON: the
        // typed constructor cannot produce one).
        m.index_cache.as_mut().unwrap().rebuilds = 1;
        let doc = m.to_json().replace("segment_corrupt", "gremlins");
        let err = validate_metrics_json(&doc).unwrap_err();
        assert!(err.contains("unknown reason"), "{err}");
        // v3 documents must carry the field, even as null.
        let doc = m.to_json();
        let stripped = doc.replace(
            &doc[doc.find(",\"index_cache\"").unwrap()..doc.rfind('}').unwrap()],
            "",
        );
        let err = validate_metrics_json(&stripped).unwrap_err();
        assert!(err.contains("index_cache"), "{err}");
    }

    #[test]
    fn serve_metrics_validate_and_conserve() {
        let mut m = RunMetrics {
            threads: 1,
            telemetry_enabled: false,
            constraints: Vec::new(),
            fleet: None,
            degradation: DegradationSummary::default(),
            index_cache: None,
            plan_cache: Some(PlanCacheMetrics { hits: 3, misses: 4 }),
            serve: Some(ServeMetrics {
                requests: 5,
                deltas: 2,
                checks: 2,
                constraints_checked: 3,
                constraints_skipped: 5,
                dirty_peak: 2,
                dirty_total: 3,
                incremental_ns: 10,
                full_ns: 20,
            }),
            audit: None,
            overload: None,
            policy: None,
        };
        validate_metrics_json(&m.to_json()).unwrap();
        // The peak dirty-set size is one of the summed sizes: peak >
        // total cannot happen in a faithful document.
        m.serve.as_mut().unwrap().dirty_peak = 9;
        let err = validate_metrics_json(&m.to_json()).unwrap_err();
        assert!(err.contains("dirty_peak"), "{err}");
        m.serve.as_mut().unwrap().dirty_peak = 2;
        // Every delta and check is a request.
        m.serve.as_mut().unwrap().requests = 1;
        let err = validate_metrics_json(&m.to_json()).unwrap_err();
        assert!(err.contains("requests"), "{err}");
        m.serve.as_mut().unwrap().requests = 5;
        // v5 documents must carry the field, even as null.
        let doc = m.to_json();
        let stripped = doc.replace(
            &doc[doc.find(",\"serve\"").unwrap()..doc.rfind('}').unwrap()],
            "",
        );
        let err = validate_metrics_json(&stripped).unwrap_err();
        assert!(err.contains("serve"), "{err}");
        // Batch runs carry it as null; that validates.
        m.serve = None;
        validate_metrics_json(&m.to_json()).unwrap();
    }

    #[test]
    fn validator_accepts_older_schema_versions() {
        // A v2 document has no index_cache field; the validator must not
        // demand one.
        let m = RunMetrics {
            threads: 1,
            telemetry_enabled: false,
            constraints: Vec::new(),
            fleet: None,
            degradation: DegradationSummary::default(),
            index_cache: None,
            plan_cache: None,
            serve: None,
            audit: None,
            overload: None,
            policy: None,
        };
        let v2 = m
            .to_json()
            .replace("\"schema_version\":8", "\"schema_version\":2");
        validate_metrics_json(&v2).unwrap();
        // A v3 document has no plan_cache field; tolerated the same way.
        let doc = m.to_json();
        let v3 = doc
            .replace("\"schema_version\":8", "\"schema_version\":3")
            .replace(",\"plan_cache\":null", "");
        validate_metrics_json(&v3).unwrap();
        // A v5 document has no audit field; tolerated the same way.
        let v5 = doc
            .replace("\"schema_version\":8", "\"schema_version\":5")
            .replace(",\"audit\":null", "");
        validate_metrics_json(&v5).unwrap();
        // A v6 document has no overload field; tolerated the same way.
        let v6 = doc
            .replace("\"schema_version\":8", "\"schema_version\":6")
            .replace(",\"overload\":null", "");
        validate_metrics_json(&v6).unwrap();
        // A v7 document has no policy field; tolerated the same way.
        let v7 = doc
            .replace("\"schema_version\":8", "\"schema_version\":7")
            .replace(",\"policy\":null", "");
        validate_metrics_json(&v7).unwrap();
    }

    #[test]
    fn validator_checks_overload_block() {
        let mut m = RunMetrics {
            threads: 1,
            telemetry_enabled: false,
            constraints: Vec::new(),
            fleet: None,
            degradation: DegradationSummary::default(),
            index_cache: None,
            plan_cache: None,
            serve: Some(ServeMetrics {
                requests: 5,
                deltas: 2,
                checks: 2,
                constraints_checked: 3,
                constraints_skipped: 5,
                dirty_peak: 2,
                dirty_total: 3,
                incremental_ns: 10,
                full_ns: 20,
            }),
            audit: None,
            overload: Some(OverloadMetrics {
                admitted: 6,
                shed: 2,
                rejected: 3,
                retries: 1,
                watchdog_fires: 0,
                drained: 1,
            }),
            policy: None,
        };
        validate_metrics_json(&m.to_json()).unwrap();
        // Shed requests are a subset of admitted ones.
        m.overload.as_mut().unwrap().shed = 9;
        let err = validate_metrics_json(&m.to_json()).unwrap_err();
        assert!(err.contains("overload.shed"), "{err}");
        m.overload.as_mut().unwrap().shed = 2;
        // The drain phase only serves admitted requests.
        m.overload.as_mut().unwrap().drained = 9;
        let err = validate_metrics_json(&m.to_json()).unwrap_err();
        assert!(err.contains("overload.drained"), "{err}");
        m.overload.as_mut().unwrap().drained = 1;
        // Every engine-visible request went through admission.
        m.serve.as_mut().unwrap().requests = 9;
        m.serve.as_mut().unwrap().constraints_skipped = 9;
        let err = validate_metrics_json(&m.to_json()).unwrap_err();
        assert!(err.contains("overload.admitted"), "{err}");
        m.serve.as_mut().unwrap().requests = 5;
        // v7 documents must carry the field, even as null; batch runs
        // carry it as null and that validates.
        m.overload = None;
        let doc = m.to_json();
        validate_metrics_json(&doc).unwrap();
        let stripped = doc.replace(",\"overload\":null", "");
        let err = validate_metrics_json(&stripped).unwrap_err();
        assert!(err.contains("overload"), "{err}");
        // The overload ladder-entry reason is v7 vocabulary only.
        let v6 = doc.replace("\"schema_version\":8", "\"schema_version\":6");
        validate_metrics_json(&v6).unwrap();
    }

    #[test]
    fn validator_checks_policy_block() {
        let mut m = RunMetrics {
            threads: 1,
            telemetry_enabled: false,
            constraints: Vec::new(),
            fleet: None,
            degradation: DegradationSummary::default(),
            index_cache: None,
            plan_cache: None,
            serve: None,
            audit: None,
            overload: None,
            policy: Some(PolicyMetrics {
                relations: 4,
                advised_bdd: 3,
                advised_sql: 1,
                applied_sql_only: 1,
                applied_rebuilds: 2,
                reseeded: 6,
                readvises: 0,
                cache_slots: 1 << 18,
                profile_checks: 9,
            }),
        };
        validate_metrics_json(&m.to_json()).unwrap();
        // Every advised relation got exactly one route.
        m.policy.as_mut().unwrap().advised_bdd = 9;
        let err = validate_metrics_json(&m.to_json()).unwrap_err();
        assert!(err.contains("policy.advised"), "{err}");
        m.policy.as_mut().unwrap().advised_bdd = 3;
        // Only SQL-routed relations can be marked sql-only.
        m.policy.as_mut().unwrap().applied_sql_only = 5;
        let err = validate_metrics_json(&m.to_json()).unwrap_err();
        assert!(err.contains("policy.applied_sql_only"), "{err}");
        m.policy.as_mut().unwrap().applied_sql_only = 1;
        // v8 documents must carry the field, even as null; static runs
        // carry it as null and that validates.
        m.policy = None;
        let doc = m.to_json();
        validate_metrics_json(&doc).unwrap();
        let stripped = doc.replace(",\"policy\":null", "");
        let err = validate_metrics_json(&stripped).unwrap_err();
        assert!(err.contains("policy"), "{err}");
        // A v7 document may omit the block entirely.
        let v7 = stripped.replace("\"schema_version\":8", "\"schema_version\":7");
        validate_metrics_json(&v7).unwrap();
    }

    #[test]
    fn validator_checks_audit_block() {
        let mut m = RunMetrics {
            threads: 1,
            telemetry_enabled: false,
            constraints: Vec::new(),
            fleet: None,
            degradation: DegradationSummary::default(),
            index_cache: None,
            plan_cache: None,
            serve: None,
            audit: Some(AuditMetrics {
                emitted: 3,
                verified: 3,
                failed: 0,
                witnesses: 7,
            }),
            overload: None,
            policy: None,
        };
        validate_metrics_json(&m.to_json()).unwrap();
        // Every verification outcome refers to an emitted certificate.
        m.audit.as_mut().unwrap().failed = 2;
        let err = validate_metrics_json(&m.to_json()).unwrap_err();
        assert!(err.contains("audit.verified"), "{err}");
        // Verify-only runs report emitted = 0; tallies stand alone.
        m.audit = Some(AuditMetrics {
            emitted: 0,
            verified: 4,
            failed: 1,
            witnesses: 0,
        });
        validate_metrics_json(&m.to_json()).unwrap();
        // v6 documents must carry the field, even as null.
        m.audit = None;
        let doc = m.to_json();
        let stripped = doc.replace(",\"audit\":null", "");
        let err = validate_metrics_json(&stripped).unwrap_err();
        assert!(err.contains("audit"), "{err}");
        validate_metrics_json(&doc).unwrap();
    }

    #[test]
    fn validator_rejects_bad_fleet_totals() {
        let wk = WorkerTelemetry {
            worker: 0,
            constraints: vec![0],
            bdd: StatsDelta {
                created_nodes: 5,
                ..Default::default()
            },
            peak_nodes: 10,
            depth_hwm: 3,
        };
        let mut fleet = FleetTelemetry::from_workers(vec![wk]);
        let good = RunMetrics {
            threads: 2,
            telemetry_enabled: true,
            constraints: Vec::new(),
            fleet: Some(fleet.clone()),
            degradation: DegradationSummary::default(),
            index_cache: None,
            plan_cache: None,
            serve: None,
            audit: None,
            overload: None,
            policy: None,
        };
        validate_metrics_json(&good.to_json()).unwrap();
        fleet.total.created_nodes += 1;
        let bad = RunMetrics {
            threads: 2,
            telemetry_enabled: true,
            constraints: Vec::new(),
            fleet: Some(fleet),
            degradation: DegradationSummary::default(),
            index_cache: None,
            plan_cache: None,
            serve: None,
            audit: None,
            overload: None,
            policy: None,
        };
        let err = validate_metrics_json(&bad.to_json()).unwrap_err();
        assert!(err.contains("created_nodes"), "{err}");
    }
}
