//! Logical indices: one shared BDD manager over a relational database.
//!
//! A [`LogicalDatabase`] wraps a [`Database`] together with a single
//! [`BddManager`]. Each indexed relation gets one finite-domain block per
//! column — declared in the order chosen by an [`OrderingStrategy`], since
//! declaration order *is* the BDD variable order — and its characteristic
//! function as the index root. Constraint compilation additionally draws
//! *query domains* from per-class pools: the finite domains that first-order
//! variables are renamed into (the paper's rename-based equi-join,
//! Section 4.2).

use crate::error::{CoreError, Result};
use crate::ordering::OrderingStrategy;
use relcheck_bdd::{
    failpoint, Bdd, BddError, BddManager, DecodeError, DomainId, ExportedRelation, GcStats,
};
use relcheck_relstore::Database;
use std::collections::HashMap;

/// A built index over one relation.
#[derive(Debug, Clone)]
pub struct RelIndex {
    /// Finite-domain block per column, in **schema order** (regardless of
    /// the variable ordering used to declare them).
    pub domains: Vec<DomainId>,
    /// Root of the characteristic-function BDD.
    pub root: Bdd,
    /// The column ordering the blocks were declared in.
    pub ordering: Vec<usize>,
}

/// A manager-independent snapshot of one relation's logical index:
/// everything a *different* BDD manager needs to adopt the index without
/// re-running tuple construction. This is the hand-off format the parallel
/// checker uses to ship coordinator-built indices to per-worker managers
/// (all fields are plain owned data, so the snapshot is `Send`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSnapshot {
    /// The indexed relation's name.
    pub relation: String,
    /// The column ordering the blocks were declared in.
    pub ordering: Vec<usize>,
    /// The characteristic function plus its finite-domain layout, with
    /// domains in schema order.
    pub rel: ExportedRelation,
}

impl IndexSnapshot {
    /// Serialize into a self-contained byte buffer (relation name, column
    /// ordering, then the [`ExportedRelation`] payload, all little-endian) —
    /// an index persisted to disk or shipped across a process boundary.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let name = self.relation.as_bytes();
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&(self.ordering.len() as u32).to_le_bytes());
        for &c in &self.ordering {
            out.extend_from_slice(&(c as u32).to_le_bytes());
        }
        out.extend_from_slice(&self.rel.to_bytes());
        out
    }

    /// Inverse of [`IndexSnapshot::to_bytes`]. Corrupted input — truncation,
    /// bit flips, structural lies at any layer — always yields a typed
    /// [`CoreError::SnapshotDecode`]; this function never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<IndexSnapshot> {
        let fail = |offset: usize, reason: &'static str| {
            Err(CoreError::SnapshotDecode(DecodeError { offset, reason }))
        };
        let mut off = 0usize;
        let Some(w) = bytes.get(0..4) else {
            return fail(0, "buffer truncated inside the name length");
        };
        let name_len = u32::from_le_bytes(w.try_into().unwrap()) as usize;
        off += 4;
        let Some(name_bytes) = bytes.get(off..off.saturating_add(name_len)) else {
            return fail(off, "buffer truncated inside the relation name");
        };
        let Ok(relation) = std::str::from_utf8(name_bytes) else {
            return fail(off, "relation name is not valid UTF-8");
        };
        let relation = relation.to_owned();
        off += name_len;
        let Some(w) = bytes.get(off..off + 4) else {
            return fail(off, "buffer truncated inside the ordering length");
        };
        let ncols = u32::from_le_bytes(w.try_into().unwrap()) as usize;
        off += 4;
        let mut ordering = Vec::with_capacity(ncols.min(1 << 16));
        let mut seen = Vec::new();
        for _ in 0..ncols {
            let Some(w) = bytes.get(off..off + 4) else {
                return fail(off, "buffer truncated inside the ordering table");
            };
            let c = u32::from_le_bytes(w.try_into().unwrap()) as usize;
            if c >= ncols {
                return fail(off, "ordering entry outside the column range");
            }
            if seen.len() < ncols {
                seen.resize(ncols, false);
            }
            if seen[c] {
                return fail(off, "ordering table repeats a column");
            }
            seen[c] = true;
            ordering.push(c);
            off += 4;
        }
        let rel = ExportedRelation::decode(&bytes[off..]).map_err(|e| {
            CoreError::SnapshotDecode(DecodeError {
                offset: off + e.offset,
                reason: e.reason,
            })
        })?;
        if rel.slots.len() != ordering.len() {
            return fail(off, "ordering length disagrees with the relation arity");
        }
        Ok(IndexSnapshot {
            relation,
            ordering,
            rel,
        })
    }
}

/// One argument's resolved effect on a relation index — the
/// manager-independent shape of what [`crate::exec`] does to compile an
/// atom. A compiled atom is a pure function of the index root plus its
/// action list, so `(relation, actions)` keys the shared-subgraph cache:
/// two constraints mentioning the same `R(x, y)` shape resolve to equal
/// keys and reuse one compiled BDD instead of re-running the restricts and
/// renames per constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomAction {
    /// Pin a column block to a dictionary code (constant argument).
    Pin(DomainId, u64),
    /// Rename a column block into a variable's query domain (§4.2).
    Rename(DomainId, DomainId),
    /// Conjoin equality with a variable's domain, then project the column
    /// block away (repeated variables, or the naive join strategy).
    Equal(DomainId, DomainId),
}

/// A cached compiled atom: valid while the data version and the source
/// index root both still match (a rebuild under a different ordering can
/// change the root without bumping the version).
#[derive(Debug, Clone, Copy)]
struct CachedAtom {
    version: u64,
    index_root: Bdd,
    result: Bdd,
}

/// A database plus its BDD logical indices.
pub struct LogicalDatabase {
    mgr: BddManager,
    db: Database,
    indices: HashMap<String, RelIndex>,
    class_sizes: HashMap<String, u64>,
    query_pools: HashMap<String, Vec<DomainId>>,
    version: u64,
    atom_cache: HashMap<(String, Vec<AtomAction>), CachedAtom>,
    atom_hits: u64,
    atom_misses: u64,
    sharing: bool,
    workload: HashMap<String, Vec<u64>>,
    adaptive_picks: HashMap<String, &'static str>,
}

impl LogicalDatabase {
    /// Wrap a database. No indices are built yet. The manager gets the
    /// default apply-cache size; [`LogicalDatabase::with_cache_slots`]
    /// sizes it from a recorded workload instead.
    pub fn new(db: Database) -> LogicalDatabase {
        LogicalDatabase::with_cache_slots(db, crate::policy::DEFAULT_CACHE_SLOTS)
    }

    /// Wrap a database with an explicitly-sized BDD apply-cache —
    /// `relcheck run --route auto` passes
    /// [`crate::policy::WorkloadProfile::cache_slots`] here so the cache
    /// matches the observed peak node population instead of the fixed
    /// default.
    pub fn with_cache_slots(db: Database, cache_slots: usize) -> LogicalDatabase {
        LogicalDatabase {
            mgr: BddManager::with_capacity(cache_slots),
            db,
            indices: HashMap::new(),
            class_sizes: HashMap::new(),
            query_pools: HashMap::new(),
            version: 0,
            atom_cache: HashMap::new(),
            atom_hits: 0,
            atom_misses: 0,
            sharing: true,
            workload: HashMap::new(),
            adaptive_picks: HashMap::new(),
        }
    }

    /// Add `col_weights[i]` to column `i`'s recorded access weight for a
    /// relation. The executor calls this once per compiled atom (cache
    /// hits included), so the weights mirror the observed check workload —
    /// the feature set [`OrderingStrategy::Adaptive`] scores candidate
    /// orderings against on the next index (re)build.
    pub fn record_column_use(&mut self, relation: &str, col_weights: &[u64]) {
        let w = self
            .workload
            .entry(relation.to_owned())
            .or_insert_with(|| vec![0; col_weights.len()]);
        if w.len() < col_weights.len() {
            w.resize(col_weights.len(), 0);
        }
        for (t, &d) in w.iter_mut().zip(col_weights) {
            *t = t.saturating_add(d);
        }
    }

    /// The recorded per-column access weights for a relation, if any check
    /// has touched it.
    pub fn column_weights(&self, relation: &str) -> Option<&[u64]> {
        self.workload.get(relation).map(Vec::as_slice)
    }

    /// Which candidate shape the last adaptive build of this relation's
    /// index picked (`"static"` when the fallback ordering won, else
    /// `"concatenated"` / `"frequency"` / `"interleaved"`), or `None` if
    /// the index was never built adaptively from a workload.
    pub fn adaptive_pick(&self, relation: &str) -> Option<&'static str> {
        self.adaptive_picks.get(relation).copied()
    }

    /// Enable or disable the shared-subgraph atom cache (enabled by
    /// default). Disabling drops every cached entry — the escape hatch
    /// behind `CheckerOptions::share_subgraphs`, and the baseline side of
    /// the sharing differential tests.
    pub fn set_subgraph_sharing(&mut self, on: bool) {
        self.sharing = on;
        if !on {
            self.atom_cache.clear();
        }
    }

    /// Is the shared-subgraph atom cache enabled?
    pub fn subgraph_sharing(&self) -> bool {
        self.sharing
    }

    /// Look up a compiled atom. A hit requires the stored entry to match
    /// the current data version *and* the relation's current index root.
    pub fn atom_cache_get(&mut self, relation: &str, key: &[AtomAction]) -> Option<Bdd> {
        if !self.sharing {
            return None;
        }
        let cur_root = self.indices.get(relation)?.root;
        match self.atom_cache.get(&(relation.to_owned(), key.to_vec())) {
            Some(c) if c.version == self.version && c.index_root == cur_root => {
                self.atom_hits += 1;
                Some(c.result)
            }
            _ => {
                self.atom_misses += 1;
                None
            }
        }
    }

    /// Install a compiled atom under the current data version. The cached
    /// root is protected by [`LogicalDatabase::gc`] until it goes stale.
    pub fn atom_cache_put(&mut self, relation: &str, key: Vec<AtomAction>, result: Bdd) {
        if !self.sharing {
            return;
        }
        let Some(idx) = self.indices.get(relation) else {
            return;
        };
        let entry = CachedAtom {
            version: self.version,
            index_root: idx.root,
            result,
        };
        self.atom_cache.insert((relation.to_owned(), key), entry);
    }

    /// `(hits, misses)` observed by the shared-subgraph atom cache.
    pub fn atom_cache_stats(&self) -> (u64, u64) {
        (self.atom_hits, self.atom_misses)
    }

    /// Drop every shared-subgraph cache entry, keeping sharing enabled —
    /// the memory-pressure valve. The degradation ladder sheds the cache
    /// on any node-budget abort before its GC-retry, so a tight budget
    /// behaves exactly like an unshared manager instead of failing checks
    /// that would fit without the cache's pinned roots.
    pub fn shed_atom_cache(&mut self) {
        self.atom_cache.clear();
    }

    /// Drop atom-cache entries that no longer match the current data
    /// version or their relation's current index root.
    fn prune_atom_cache(&mut self) {
        let version = self.version;
        let indices = &self.indices;
        self.atom_cache.retain(|(rel, _), c| {
            c.version == version && indices.get(rel).is_some_and(|i| i.root == c.index_root)
        });
    }

    /// A monotone counter bumped by every operation that can change what a
    /// check observes: tuple inserts/deletes, index imports (which adopt
    /// externally-built content), and any grant of raw mutable database
    /// access. Building an index from the relation's own rows does *not*
    /// bump it — materialization changes no verdict. Plan caches key on
    /// it: two calls returning the same value mean no data change happened
    /// in between.
    pub fn data_version(&self) -> u64 {
        self.version
    }

    /// The underlying database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the underlying database. The persistent index
    /// store uses this to replay journal records that *predate* a cached
    /// segment: those deltas are already folded into the segment's BDD, so
    /// only the relation rows (and dictionaries) need them re-applied —
    /// going through [`LogicalDatabase::insert_tuple`] would double-apply
    /// them to the index.
    pub fn db_mut(&mut self) -> &mut Database {
        // Conservatively assume the caller mutates: raw access can change
        // rows without going through insert/delete, so cached plans keyed
        // on data_version must not survive it.
        self.version += 1;
        &mut self.db
    }

    /// The shared BDD manager.
    pub fn manager(&self) -> &BddManager {
        &self.mgr
    }

    /// Mutable access to the manager (query compilation needs it).
    pub fn manager_mut(&mut self) -> &mut BddManager {
        &mut self.mgr
    }

    /// The finite-domain size used for an attribute class: the class
    /// dictionary's active-domain size, widened to cover any raw codes in
    /// already-registered relations. Frozen once first used (BDD blocks
    /// cannot grow).
    pub fn class_domain_size(&mut self, class: &str) -> u64 {
        if let Some(&s) = self.class_sizes.get(class) {
            return s;
        }
        let mut size = self.db.class_size(class).max(1);
        for name in self
            .db
            .relation_names()
            .map(str::to_owned)
            .collect::<Vec<_>>()
        {
            let rel = self.db.relation(&name).expect("name enumerated");
            for (i, col) in rel.schema().columns().iter().enumerate() {
                if col.class == class {
                    let max = rel.col(i).iter().copied().max().map_or(0, |m| m as u64 + 1);
                    size = size.max(max);
                }
            }
        }
        self.class_sizes.insert(class.to_owned(), size);
        size
    }

    /// Is this relation indexed?
    pub fn has_index(&self, name: &str) -> bool {
        self.indices.contains_key(name)
    }

    /// The index for a relation (must have been built).
    pub fn index(&self, name: &str) -> Option<&RelIndex> {
        self.indices.get(name)
    }

    /// Build (or rebuild) the BDD index for a relation using the given
    /// ordering strategy. Fails with `BddError::NodeLimit` if the manager's
    /// node limit is exceeded — the caller should then mark the relation
    /// SQL-only (paper: "we do not materialize the BDD").
    pub fn build_index(&mut self, name: &str, strategy: OrderingStrategy) -> Result<&RelIndex> {
        if failpoint::enabled()
            && failpoint::should_fail(failpoint::INDEX_BUILD, failpoint::key_str(name))
        {
            return Err(CoreError::Bdd(BddError::FaultInjected {
                site: failpoint::INDEX_BUILD,
            }));
        }
        let rel = self.db.relation(name)?.clone();
        let dom_sizes: Vec<u64> = rel
            .schema()
            .columns()
            .iter()
            .map(|c| c.class.clone())
            .collect::<Vec<_>>()
            .into_iter()
            .map(|class| self.class_domain_size(&class))
            .collect();
        let ordering = match strategy {
            // The weight-aware adaptive path: score the candidate shapes
            // against this relation's recorded workload; a build before any
            // check ran (no weights) uses the strategy's static fallback.
            OrderingStrategy::Adaptive
                if self
                    .workload
                    .get(name)
                    .is_some_and(|w| w.iter().any(|&x| x > 0)) =>
            {
                let mut weights = self.workload[name].clone();
                weights.resize(rel.arity(), 0);
                let bits: Vec<u32> = dom_sizes
                    .iter()
                    .map(|&s| relcheck_bdd::order::block_bits(s))
                    .collect();
                // The static fallback competes as a candidate in first
                // position: on a tie (e.g. a flat workload) adaptive
                // defers to it, so by its own cost model the pick is
                // never worse than not adapting at all. The scoring rule
                // lives in `policy` so `relcheck advise` predicts exactly
                // the pick a rebuild would make.
                let (picked, order) = crate::policy::choose_ordering(
                    strategy.order(&rel, &dom_sizes),
                    &weights,
                    &bits,
                );
                self.adaptive_picks.insert(name.to_owned(), picked);
                order
            }
            _ => strategy.order(&rel, &dom_sizes),
        };
        let mut domains: Vec<Option<DomainId>> = vec![None; rel.arity()];
        for &col in &ordering {
            domains[col] = Some(self.mgr.add_domain(dom_sizes[col])?);
        }
        let domains: Vec<DomainId> = domains.into_iter().map(Option::unwrap).collect();
        let rows: Vec<Vec<u64>> = rel
            .rows()
            .map(|r| r.iter().map(|&v| v as u64).collect())
            .collect();
        let root = self.mgr.relation_from_rows(&domains, &rows)?;
        self.indices.insert(
            name.to_owned(),
            RelIndex {
                domains,
                root,
                ordering,
            },
        );
        // No version bump: the index is derived from the relation's current
        // rows, so every verdict is unchanged by its materialization.
        Ok(&self.indices[name])
    }

    /// Insert a tuple into both the relation and its BDD index (if built).
    /// This is the paper's incremental-maintenance operation (Figure 4(b)).
    ///
    /// The index is maintained **before** the row store: `insert_row` is
    /// idempotent (set union), so doing it first means a failure — an
    /// injected fault, a node-budget abort — leaves both representations
    /// untouched instead of tearing them apart. A torn delta would make
    /// the BDD ladder and the naive re-checker disagree, which the audit
    /// path treats as an engine bug.
    pub fn insert_tuple(&mut self, name: &str, row: &[u32]) -> Result<bool> {
        self.db.relation(name)?; // surface unknown relations before any work
        if let Some(idx) = self.indices.get(name) {
            let domains = idx.domains.clone();
            let root = idx.root;
            let values: Vec<u64> = row.iter().map(|&v| v as u64).collect();
            let new_root = self.mgr.insert_row(root, &domains, &values)?;
            self.indices.get_mut(name).expect("just read").root = new_root;
        }
        let fresh = self.db.relation_mut(name)?.insert(row)?;
        if fresh {
            self.version += 1;
        }
        Ok(fresh)
    }

    /// Delete a tuple from both representations. Index first, like
    /// [`insert_tuple`](Self::insert_tuple) — `delete_row` is idempotent
    /// (set difference), so a failed maintenance step changes nothing.
    pub fn delete_tuple(&mut self, name: &str, row: &[u32]) -> Result<bool> {
        self.db.relation(name)?;
        if let Some(idx) = self.indices.get(name) {
            let domains = idx.domains.clone();
            let root = idx.root;
            let values: Vec<u64> = row.iter().map(|&v| v as u64).collect();
            let new_root = self.mgr.delete_row(root, &domains, &values)?;
            self.indices.get_mut(name).expect("just read").root = new_root;
        }
        let existed = self.db.relation_mut(name)?.delete(row)?;
        if existed {
            self.version += 1;
        }
        Ok(existed)
    }

    /// Get the `slot`-th query domain of an attribute class, allocating it
    /// (and any earlier slots) on first use. All pool domains of a class
    /// share its frozen size, so renames between relation blocks and query
    /// blocks are always width-compatible.
    pub fn query_domain(&mut self, class: &str, slot: usize) -> Result<DomainId> {
        let size = self.class_domain_size(class);
        let pool = self.query_pools.entry(class.to_owned()).or_default();
        while pool.len() <= slot {
            // Borrow dance: allocate outside the entry borrow.
            let d = {
                let mgr = &mut self.mgr;
                mgr.add_domain(size)
            };
            match d {
                Ok(d) => pool.push(d),
                Err(e) => return Err(CoreError::Bdd(e)),
            }
        }
        Ok(pool[slot])
    }

    /// Snapshot a built index into a manager-independent [`IndexSnapshot`]
    /// (or `None` if the relation has no index). The snapshot can be
    /// adopted by another [`LogicalDatabase`] over the same data via
    /// [`LogicalDatabase::import_index`].
    pub fn export_index(&self, name: &str) -> Option<IndexSnapshot> {
        let idx = self.indices.get(name)?;
        let rel = self.mgr.export_relation(idx.root, &idx.domains).ok()?;
        Some(IndexSnapshot {
            relation: name.to_owned(),
            ordering: idx.ordering.clone(),
            rel,
        })
    }

    /// Adopt a snapshot exported from another manager: declare fresh
    /// finite-domain blocks, rebuild the characteristic function, and
    /// install it as this database's index for the relation. The snapshot
    /// must come from a [`LogicalDatabase`] over the same (dictionary-
    /// encoded) data — the block sizes freeze the attribute-class domain
    /// sizes here exactly as a local [`LogicalDatabase::build_index`]
    /// would, so later query-domain pools stay width-compatible.
    pub fn import_index(&mut self, snap: &IndexSnapshot) -> Result<()> {
        if failpoint::enabled()
            && failpoint::should_fail(
                failpoint::SNAPSHOT_DECODE,
                failpoint::key_str(&snap.relation),
            )
        {
            return Err(CoreError::Bdd(BddError::FaultInjected {
                site: failpoint::SNAPSHOT_DECODE,
            }));
        }
        let (domains, root) = self.mgr.import_relation(&snap.rel)?;
        let classes: Vec<String> = self
            .db
            .relation(&snap.relation)?
            .schema()
            .columns()
            .iter()
            .map(|c| c.class.clone())
            .collect();
        for (class, &d) in classes.iter().zip(&domains) {
            let size = self.mgr.domain_info(d).size;
            self.class_sizes.entry(class.clone()).or_insert(size);
        }
        self.indices.insert(
            snap.relation.clone(),
            RelIndex {
                domains,
                root,
                ordering: snap.ordering.clone(),
            },
        );
        self.version += 1;
        Ok(())
    }

    /// Garbage-collect everything except the index roots and the still-valid
    /// shared-subgraph cache entries (stale entries are pruned first so they
    /// don't pin dead nodes).
    pub fn gc(&mut self) -> GcStats {
        self.prune_atom_cache();
        let mut roots: Vec<Bdd> = self.indices.values().map(|i| i.root).collect();
        roots.extend(self.atom_cache.values().map(|c| c.result));
        self.mgr.gc(&roots)
    }

    /// Squeeze freed slots out of the manager's arena, rewriting the index
    /// roots and atom cache to the relocated handles. Unlike
    /// [`LogicalDatabase::gc`] this *shrinks* the arena (and restores its
    /// cache-line density after churn), but it invalidates any [`Bdd`]
    /// handle not owned by this database — callers must not hold BDDs
    /// across it.
    pub fn compact(&mut self) -> relcheck_bdd::CompactStats {
        self.prune_atom_cache();
        let names: Vec<String> = {
            let mut n: Vec<String> = self.indices.keys().cloned().collect();
            n.sort_unstable();
            n
        };
        let keys: Vec<(String, Vec<AtomAction>)> = self.atom_cache.keys().cloned().collect();
        let mut roots: Vec<Bdd> = names.iter().map(|n| self.indices[n].root).collect();
        let cache_start = roots.len();
        roots.extend(keys.iter().map(|k| self.atom_cache[k].result));
        let stats = self.mgr.compact(&mut roots);
        for (n, r) in names.iter().zip(&roots[..cache_start]) {
            self.indices.get_mut(n).expect("key enumerated").root = *r;
        }
        for (k, r) in keys.iter().zip(&roots[cache_start..]) {
            let root = self.indices[&k.0].root;
            let c = self.atom_cache.get_mut(k).expect("key enumerated");
            c.result = *r;
            c.index_root = root;
        }
        stats
    }

    /// Total node count of all index roots (shared nodes counted once) —
    /// the memory figure of Figure 4(c).
    pub fn index_size(&self) -> usize {
        let roots: Vec<Bdd> = self.indices.values().map(|i| i.root).collect();
        self.mgr.size_shared(&roots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcheck_relstore::Raw;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            "R",
            &[("city", "city"), ("areacode", "areacode")],
            vec![
                vec![Raw::str("Toronto"), Raw::Int(416)],
                vec![Raw::str("Toronto"), Raw::Int(647)],
                vec![Raw::str("Oshawa"), Raw::Int(905)],
                vec![Raw::str("Newark"), Raw::Int(973)],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn build_index_and_count() {
        let mut ldb = LogicalDatabase::new(db());
        ldb.build_index("R", OrderingStrategy::Schema).unwrap();
        let idx = ldb.index("R").unwrap().clone();
        let count = {
            let mgr = ldb.manager_mut();
            mgr.tuple_count(idx.root, &idx.domains).unwrap()
        };
        assert_eq!(count, 4.0);
        assert!(ldb.index_size() > 0);
    }

    #[test]
    fn index_respects_ordering_strategy() {
        let mut ldb = LogicalDatabase::new(db());
        ldb.build_index("R", OrderingStrategy::ProbConverge)
            .unwrap();
        let idx = ldb.index("R").unwrap();
        let mut o = idx.ordering.clone();
        o.sort_unstable();
        assert_eq!(o, vec![0, 1]);
        // Domains are stored in schema order regardless of declaration.
        assert_eq!(idx.domains.len(), 2);
    }

    #[test]
    fn insert_and_delete_maintain_both_sides() {
        let mut ldb = LogicalDatabase::new(db());
        ldb.build_index("R", OrderingStrategy::Schema).unwrap();
        // Insert a new (city=Oshawa, areacode=416) pair using existing codes.
        let city = ldb.db().code("city", &Raw::str("Oshawa")).unwrap();
        let ac = ldb.db().code("areacode", &Raw::Int(416)).unwrap();
        assert!(ldb.insert_tuple("R", &[city, ac]).unwrap());
        assert!(!ldb.insert_tuple("R", &[city, ac]).unwrap(), "idempotent");
        let idx = ldb.index("R").unwrap().clone();
        let contains = ldb
            .manager()
            .contains(idx.root, &idx.domains, &[city as u64, ac as u64])
            .unwrap();
        assert!(contains);
        assert_eq!(ldb.db().relation("R").unwrap().len(), 5);
        // Delete it again.
        assert!(ldb.delete_tuple("R", &[city, ac]).unwrap());
        let idx = ldb.index("R").unwrap().clone();
        assert!(!ldb
            .manager()
            .contains(idx.root, &idx.domains, &[city as u64, ac as u64])
            .unwrap());
        assert_eq!(ldb.db().relation("R").unwrap().len(), 4);
    }

    #[test]
    fn query_domains_are_pooled_and_width_compatible() {
        let mut ldb = LogicalDatabase::new(db());
        ldb.build_index("R", OrderingStrategy::Schema).unwrap();
        let q0 = ldb.query_domain("city", 0).unwrap();
        let q0_again = ldb.query_domain("city", 0).unwrap();
        assert_eq!(q0, q0_again, "pool slots are stable");
        let q1 = ldb.query_domain("city", 1).unwrap();
        assert_ne!(q0, q1);
        // Rename from the relation's city block into the query domain works
        // (equal widths).
        let idx = ldb.index("R").unwrap().clone();
        let mgr = ldb.manager_mut();
        let moved = mgr.replace_domains(idx.root, &[(idx.domains[0], q0)]);
        assert!(moved.is_ok());
    }

    #[test]
    fn gc_keeps_index_roots() {
        let mut ldb = LogicalDatabase::new(db());
        ldb.build_index("R", OrderingStrategy::Schema).unwrap();
        let idx = ldb.index("R").unwrap().clone();
        // Create garbage.
        {
            let mgr = ldb.manager_mut();
            let d = idx.domains[1];
            let _junk = mgr.value_set(d, &[0, 1, 2]).unwrap();
        }
        let stats = ldb.gc();
        assert!(stats.freed > 0);
        let count = {
            let mgr = ldb.manager_mut();
            mgr.tuple_count(idx.root, &idx.domains).unwrap()
        };
        assert_eq!(count, 4.0, "index root survives GC");
    }

    #[test]
    fn index_snapshot_transfers_between_logical_databases() {
        let data = db();
        let mut src = LogicalDatabase::new(data.clone());
        src.build_index("R", OrderingStrategy::ProbConverge)
            .unwrap();
        let snap = src.export_index("R").unwrap();
        assert!(src.export_index("missing").is_none());

        let mut dst = LogicalDatabase::new(data);
        dst.import_index(&snap).unwrap();
        assert!(dst.has_index("R"));
        let idx = dst.index("R").unwrap().clone();
        assert_eq!(idx.ordering, snap.ordering);
        assert_eq!(
            dst.manager_mut()
                .tuple_count(idx.root, &idx.domains)
                .unwrap(),
            4.0
        );
        // The adopted index supports incremental maintenance like a
        // locally-built one.
        let city = dst.db().code("city", &Raw::str("Oshawa")).unwrap();
        let ac = dst.db().code("areacode", &Raw::Int(416)).unwrap();
        assert!(dst.insert_tuple("R", &[city, ac]).unwrap());
        let idx = dst.index("R").unwrap().clone();
        assert!(dst
            .manager()
            .contains(idx.root, &idx.domains, &[city as u64, ac as u64])
            .unwrap());
        // Class sizes froze to the imported block sizes: query domains are
        // width-compatible with the adopted blocks.
        let q = dst.query_domain("city", 0).unwrap();
        assert!(dst
            .manager_mut()
            .replace_domains(idx.root, &[(idx.domains[0], q)])
            .is_ok());
    }

    /// Differential property: any interleaving of inserts and deletes,
    /// followed by a check, must agree with a from-scratch rebuild of the
    /// final relation state — both at the characteristic-function level
    /// (membership of every tuple in the code universe) and at the verdict
    /// level (an FD check through the real checker path). This is the
    /// insert/delete symmetry the journal-replay recovery path leans on.
    #[test]
    fn interleaved_maintenance_matches_from_scratch_rebuild() {
        use crate::checker::{Checker, CheckerOptions};
        use std::collections::BTreeSet;

        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        let cities = ["Toronto", "Oshawa", "Newark"];
        let areacodes = [416i64, 647, 905, 973];
        for seed in 0..8u64 {
            let mut ldb = LogicalDatabase::new(db());
            ldb.build_index("R", OrderingStrategy::ProbConverge)
                .unwrap();
            // Reference model: the rows the relation should hold.
            let mut model: BTreeSet<[u32; 2]> = {
                let rel = ldb.db().relation("R").unwrap();
                (0..rel.len())
                    .map(|i| {
                        let r = rel.row(i);
                        [r[0], r[1]]
                    })
                    .collect()
            };
            let mut rng = seed.wrapping_mul(0x1234_5678_9ABC_DEF1) | 1;
            for _ in 0..60 {
                let city = cities[(splitmix(&mut rng) % 3) as usize];
                let ac = areacodes[(splitmix(&mut rng) % 4) as usize];
                let row = [
                    ldb.db().code("city", &Raw::str(city)).unwrap(),
                    ldb.db().code("areacode", &Raw::Int(ac)).unwrap(),
                ];
                if splitmix(&mut rng).is_multiple_of(2) {
                    let fresh = ldb.insert_tuple("R", &row).unwrap();
                    assert_eq!(fresh, model.insert(row), "seed {seed}: insert echo");
                } else {
                    let existed = ldb.delete_tuple("R", &row).unwrap();
                    assert_eq!(existed, model.remove(&row), "seed {seed}: delete echo");
                }
            }
            // (a) Characteristic function == model, over the whole universe.
            let idx = ldb.index("R").unwrap().clone();
            for c in 0..cities.len() as u32 {
                for a in 0..areacodes.len() as u32 {
                    let got = ldb
                        .manager()
                        .contains(idx.root, &idx.domains, &[c as u64, a as u64])
                        .unwrap();
                    assert_eq!(
                        got,
                        model.contains(&[c, a]),
                        "seed {seed}: membership of ({c},{a}) diverged"
                    );
                }
            }
            // (b) Verdict differential through the real checker path: the
            // maintained database and a from-scratch database over the
            // final rows must agree on an FD check.
            let final_rows: Vec<Vec<Raw>> = model
                .iter()
                .map(|r| {
                    let rel = ldb.db().relation("R").unwrap();
                    ldb.db().decode_row(rel, r)
                })
                .collect();
            let mut fresh_db = Database::new();
            fresh_db
                .create_relation(
                    "R",
                    &[("city", "city"), ("areacode", "areacode")],
                    final_rows,
                )
                .unwrap();
            let mut warm = Checker::new(ldb.db().clone(), CheckerOptions::default());
            let mut cold = Checker::new(fresh_db, CheckerOptions::default());
            // city → areacode (functional dependency on column 0 ⇒ 1) and
            // its reverse; deletions can flip either verdict.
            for (lhs, rhs) in [(0usize, 1usize), (1, 0)] {
                let w = warm.check_fd_bdd("R", &[lhs], &[rhs]).unwrap();
                let c = cold.check_fd_bdd("R", &[lhs], &[rhs]).unwrap();
                assert_eq!(w, c, "seed {seed}: FD {lhs}->{rhs} verdict diverged");
            }
        }
    }

    #[test]
    fn atom_cache_hits_and_invalidates() {
        let mut ldb = LogicalDatabase::new(db());
        ldb.build_index("R", OrderingStrategy::Schema).unwrap();
        let idx = ldb.index("R").unwrap().clone();
        let q = ldb.query_domain("city", 0).unwrap();
        let key = vec![AtomAction::Rename(idx.domains[0], q)];
        assert_eq!(ldb.atom_cache_get("R", &key), None, "cold cache misses");
        let compiled = {
            let mgr = ldb.manager_mut();
            mgr.replace_domains(idx.root, &[(idx.domains[0], q)])
                .unwrap()
        };
        ldb.atom_cache_put("R", key.clone(), compiled);
        assert_eq!(ldb.atom_cache_get("R", &key), Some(compiled));
        // The cached root survives GC.
        ldb.gc();
        assert_eq!(ldb.atom_cache_get("R", &key), Some(compiled));
        // A data mutation invalidates the entry.
        let city = ldb.db().code("city", &Raw::str("Oshawa")).unwrap();
        let ac = ldb.db().code("areacode", &Raw::Int(416)).unwrap();
        assert!(ldb.insert_tuple("R", &[city, ac]).unwrap());
        assert_eq!(ldb.atom_cache_get("R", &key), None, "stale after insert");
        let (hits, misses) = ldb.atom_cache_stats();
        assert_eq!((hits, misses), (2, 2));
        // Disabling sharing drops entries and stops counting.
        ldb.set_subgraph_sharing(false);
        ldb.atom_cache_put("R", key.clone(), compiled);
        assert_eq!(ldb.atom_cache_get("R", &key), None);
        assert_eq!(ldb.atom_cache_stats(), (2, 2));
    }

    #[test]
    fn compact_preserves_indices_and_atom_cache() {
        let mut ldb = LogicalDatabase::new(db());
        ldb.build_index("R", OrderingStrategy::Schema).unwrap();
        // Populate a cache entry and plenty of garbage.
        let idx = ldb.index("R").unwrap().clone();
        let q = ldb.query_domain("city", 0).unwrap();
        let key = vec![AtomAction::Rename(idx.domains[0], q)];
        let compiled = {
            let mgr = ldb.manager_mut();
            let _junk = mgr.value_set(idx.domains[1], &[0, 1, 2, 3]).unwrap();
            mgr.replace_domains(idx.root, &[(idx.domains[0], q)])
                .unwrap()
        };
        ldb.atom_cache_put("R", key.clone(), compiled);
        let stats = ldb.compact();
        assert!(stats.reclaimed_slots > 0, "garbage squeezed out");
        // Index root still answers membership over the whole universe.
        let idx = ldb.index("R").unwrap().clone();
        assert_eq!(
            ldb.manager_mut()
                .tuple_count(idx.root, &idx.domains)
                .unwrap(),
            4.0
        );
        // The cache entry was remapped, not dropped: a lookup still hits,
        // and the remapped handle equals a fresh compile of the same atom.
        let cached = ldb.atom_cache_get("R", &key).expect("entry survives");
        let fresh = ldb
            .manager_mut()
            .replace_domains(idx.root, &[(idx.domains[0], q)])
            .unwrap();
        assert_eq!(cached, fresh);
    }

    #[test]
    fn node_limit_fails_index_build() {
        let mut ldb = LogicalDatabase::new(db());
        ldb.manager_mut().set_node_limit(Some(2));
        let err = ldb.build_index("R", OrderingStrategy::Schema);
        assert!(matches!(
            err,
            Err(CoreError::Bdd(relcheck_bdd::BddError::NodeLimit { .. }))
        ));
        // Recoverable: raise the limit and retry.
        ldb.manager_mut().set_node_limit(None);
        ldb.gc();
        assert!(ldb.build_index("R", OrderingStrategy::Schema).is_ok());
    }
}
