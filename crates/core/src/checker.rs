//! The constraint checker: BDD-first with SQL fallback.
//!
//! [`Checker`] is the system the paper evaluates. Registering a database
//! builds (lazily, per referenced relation) BDD logical indices under a
//! configurable variable-ordering strategy and node budget. Each
//! [`Checker::check`] call:
//!
//! 1. tries the **BDD path** — the rewrite pipeline plus compiled BDD
//!    manipulation of Section 4;
//! 2. on a node-budget abort (`BddError::NodeLimit`), garbage-collects and
//!    **falls back to SQL** (the translated violation plan of
//!    [`crate::sqlgen`]), exactly the paper's thresholding strategy;
//! 3. for constraint shapes outside the SQL translator's class, falls back
//!    to brute-force active-domain evaluation as a last resort.
//!
//! Once violated constraints are identified, [`Checker::find_violations`]
//! runs the SQL plan to materialize the offending tuples — the paper's
//! "first identify violated constraints fast, then focus on the tuples".

use crate::error::{CoreError, Result};
use crate::index::LogicalDatabase;
use crate::ordering::OrderingStrategy;
use crate::plan::{fnv1a, formula_fingerprint, CheckPlan, PlanOptions, SqlStep};
use crate::sqlgen::{self, Shape};
use crate::telemetry::{
    CheckTrace, FallbackReason, FleetTelemetry, IndexEvent, IndexProvenance, PassStat,
    PhaseTimings, RuleFiring, WorkerTelemetry,
};
use relcheck_bdd::{failpoint, BddError, StatsDelta};
use relcheck_logic::eval::eval_sentence;
use relcheck_logic::Formula;
use relcheck_relstore::plan::execute;
use relcheck_relstore::Relation;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Checker configuration.
#[derive(Debug, Clone, Copy)]
pub struct CheckerOptions {
    /// Live-node budget for the shared BDD manager. `None` = unlimited.
    /// The paper settles on 10⁶ nodes (Section 5.2).
    pub node_limit: Option<usize>,
    /// The rewrite-pass toggles and cost-gate policy every check plans
    /// under — one switch per discrete pass of the §4.4 pipeline
    /// (replacing the old all-or-nothing `use_rewrites` boolean).
    /// [`PlanOptions::from_flags`] reproduces the legacy configurations.
    pub plan: PlanOptions,
    /// Variable-ordering strategy for index construction.
    pub ordering: OrderingStrategy,
    /// Garbage-collect query scratch space after every check.
    pub gc_between_checks: bool,
    /// Capture a structured [`CheckTrace`] per check (phase timings,
    /// rewrite-rule firings, index provenance, BDD work). The integer
    /// counters behind the trace are maintained by the BDD manager
    /// unconditionally; this switch only gates the clock reads and the
    /// trace allocation, so leaving it off costs nothing measurable.
    pub telemetry: bool,
    /// Per-constraint wall-clock budget. Armed at the start of every
    /// [`Checker::check`] call; the BDD recursion polls it (every
    /// [`relcheck_bdd::Budget`] stride) and aborts with
    /// [`BddError::Deadline`], which escalates down the degradation ladder
    /// exactly like a node-budget abort. `None` = no deadline.
    pub deadline: Option<Duration>,
    /// Reuse compiled atom subgraphs across constraints over the same
    /// relations (the [`crate::index::AtomAction`]-keyed cache). Sharing
    /// never changes a verdict — a compiled atom is a pure function of the
    /// index root and its action list — so this is on by default; `false`
    /// is the escape hatch and the baseline side of the sharing
    /// differential suite.
    pub share_subgraphs: bool,
    /// BDD apply-cache slot count. `None` = the policy default
    /// ([`crate::policy::DEFAULT_CACHE_SLOTS`]); `relcheck run --route
    /// auto` passes a workload-derived size
    /// ([`crate::policy::WorkloadProfile::cache_slots`]). Sizing only
    /// affects memoization hit rates, never verdicts.
    pub apply_cache_slots: Option<usize>,
}

impl Default for CheckerOptions {
    fn default() -> Self {
        CheckerOptions {
            node_limit: Some(1_000_000),
            plan: PlanOptions::default(),
            ordering: OrderingStrategy::ProbConverge,
            gc_between_checks: true,
            telemetry: false,
            deadline: None,
            share_subgraphs: true,
            apply_cache_slots: None,
        }
    }
}

/// How a check was ultimately decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Decided on the BDD logical indices.
    Bdd,
    /// BDD path aborted (node budget or unindexed relation); decided by the
    /// translated SQL plan.
    SqlFallback,
    /// Neither path applied; decided by brute-force active-domain
    /// enumeration.
    BruteForce,
    /// No path produced an answer: the check panicked, was killed by an
    /// injected fault, or exhausted every rung of the degradation ladder.
    /// Only [`Verdict::Degraded`] / [`Verdict::Errored`] reports carry it.
    Aborted,
}

/// What a check actually established. [`CheckReport::holds`] collapses
/// this to a boolean for the common case; the verdict keeps the undecided
/// outcomes distinguishable so a failed check is never silently read as a
/// clean one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Decided: the constraint holds.
    Holds,
    /// Decided: the constraint is violated.
    Violated,
    /// Undecided: every rung of the degradation ladder failed (see
    /// `DESIGN.md` §6). The error string says why the last rung failed.
    Degraded,
    /// Undecided: the check died (panic or injected fault) before any rung
    /// could answer. The error string carries the panic payload.
    Errored,
}

impl Verdict {
    /// Stable machine-readable name (`"holds"`, `"violated"`, `"degraded"`,
    /// `"errored"`).
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Holds => "holds",
            Verdict::Violated => "violated",
            Verdict::Degraded => "degraded",
            Verdict::Errored => "errored",
        }
    }

    /// True for [`Verdict::Holds`] / [`Verdict::Violated`] — the check
    /// produced a real answer.
    pub fn is_decided(self) -> bool {
        matches!(self, Verdict::Holds | Verdict::Violated)
    }
}

/// Outcome of one constraint check.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Does the constraint hold? Meaningful only when
    /// [`CheckReport::verdict`] is decided; undecided reports carry `true`
    /// here so legacy consumers that only look at `holds` do not misread a
    /// failed check as a violation.
    pub holds: bool,
    /// What the check established (decided vs degraded vs errored).
    pub verdict: Verdict,
    /// Why the check could not decide, when `verdict` is undecided.
    pub error: Option<String>,
    /// Which evaluation path decided it.
    pub method: Method,
    /// Wall-clock time for the decision.
    pub elapsed: Duration,
    /// Live BDD nodes after the check (post-GC if enabled).
    pub live_nodes: usize,
    /// Structured trace of the check, present iff
    /// [`CheckerOptions::telemetry`] was set.
    pub metrics: Option<CheckTrace>,
}

impl CheckReport {
    /// A report for a check that died before any ladder rung could answer
    /// (a caught panic or an injected fault): verdict
    /// [`Verdict::Errored`], with the payload preserved in `error` and —
    /// when telemetry is on — in the trace's [`FallbackReason::Panic`].
    pub(crate) fn errored(message: String, telemetry: bool) -> CheckReport {
        let metrics = telemetry.then(|| CheckTrace {
            method: Method::Aborted,
            rules: Vec::new(),
            passes: Vec::new(),
            index_events: Vec::new(),
            fallback: Some(FallbackReason::Panic(message.clone())),
            ladder: vec!["errored"],
            timings: PhaseTimings::default(),
            bdd: StatsDelta::default(),
        });
        CheckReport {
            holds: true,
            verdict: Verdict::Errored,
            error: Some(message),
            method: Method::Aborted,
            elapsed: Duration::ZERO,
            live_nodes: 0,
            metrics,
        }
    }
}

/// Render a caught panic payload as a string for an `Errored` report.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

/// The budget-style aborts the degradation ladder absorbs; anything else
/// propagates as a hard error. The persistent index store reuses this
/// classification: a warm-start build that aborts on budget routes the
/// relation to SQL-only exactly like a cold build would.
pub(crate) fn budget_abort(e: &CoreError) -> Option<BddError> {
    match e {
        CoreError::Bdd(
            b @ (BddError::NodeLimit { .. }
            | BddError::Deadline { .. }
            | BddError::FaultInjected { .. }),
        ) => Some(b.clone()),
        _ => None,
    }
}

/// Map an absorbed abort to the trace-level reason it records.
fn abort_reason(b: &BddError) -> FallbackReason {
    match b {
        BddError::NodeLimit { limit, live } => FallbackReason::NodeLimit {
            limit: *limit,
            live: *live,
        },
        BddError::Deadline { .. } => FallbackReason::Deadline,
        other => FallbackReason::Panic(other.to_string()),
    }
}

/// Named output columns plus rows of dictionary codes — what
/// [`Checker::find_violations_bdd`] produces.
pub type CodedViolations = (Vec<String>, Vec<Vec<u32>>);

/// A bounded violation sample with an exact total, produced by
/// [`Checker::find_violations_counted`] for certificate emission: the
/// outer-∀ variable names in prefix order, their inferred attribute
/// classes, up to `limit` witness rows of dictionary codes, and the exact
/// number of violating assignments counted on the violation BDD itself.
#[derive(Debug, Clone, PartialEq)]
pub struct CountedViolations {
    /// Outer universal variable names, prefix order.
    pub vars: Vec<String>,
    /// Attribute class of each variable (parallel to `vars`).
    pub classes: Vec<String>,
    /// Up to `limit` violating rows of dictionary codes.
    pub rows: Vec<Vec<u32>>,
    /// Exact violating-assignment count (`rows.len() as f64` iff
    /// enumeration was exhaustive).
    pub total: f64,
}

/// Index details inside an [`Explanation`].
#[derive(Debug, Clone)]
pub struct IndexInfo {
    /// The relation.
    pub relation: String,
    /// Node count of its BDD index (0 if SQL-only).
    pub nodes: usize,
    /// Attribute ordering the index was declared with.
    pub ordering: Vec<usize>,
    /// True if the index build busted the node budget.
    pub sql_only: bool,
}

/// EXPLAIN output for a constraint (see [`Checker::explain`]).
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The quantifier prefix after prenex conversion, outermost first.
    pub prenex_prefix: Vec<String>,
    /// The quantifier-free matrix.
    pub matrix: String,
    /// How many leading quantifiers the §4.1 rule eliminates.
    pub stripped_leading: usize,
    /// Which O(1) test decides the constraint.
    pub mode: &'static str,
    /// The formula the BDD compiler actually processes (after negation,
    /// push-down, simplification).
    pub compiled_body: String,
    /// Per-relation index details.
    pub indices: Vec<IndexInfo>,
    /// The SQL fallback plan, if the constraint is in the translatable
    /// class.
    pub sql_plan: Option<String>,
}

impl std::fmt::Display for Explanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "prenex prefix : {}", self.prenex_prefix.join(" "))?;
        writeln!(f, "matrix        : {}", self.matrix)?;
        writeln!(
            f,
            "leading quant : {} eliminated -> {}",
            self.stripped_leading, self.mode
        )?;
        writeln!(f, "compiled body : {}", self.compiled_body)?;
        for i in &self.indices {
            if i.sql_only {
                writeln!(f, "index {}: SQL-only (over node budget)", i.relation)?;
            } else {
                writeln!(
                    f,
                    "index {}: {} nodes, ordering {:?}",
                    i.relation, i.nodes, i.ordering
                )?;
            }
        }
        match &self.sql_plan {
            Some(p) => writeln!(f, "sql fallback  : {p}"),
            None => writeln!(f, "sql fallback  : (untranslatable; brute force)"),
        }
    }
}

/// The constraint-checking system (see module docs).
pub struct Checker {
    ldb: LogicalDatabase,
    opts: CheckerOptions,
    /// Relations whose index build exceeded the budget: permanently
    /// SQL-only (paper: "we do not materialize the BDD").
    sql_only: HashSet<String>,
    /// Explicit plan-invalidation epoch: bumped whenever the environment
    /// changes in a way tuple counters cannot see ([`Checker::rebuild_index`],
    /// [`Checker::mark_sql_only`]), so stale cached plans can never execute.
    epoch: u64,
    /// Per-relation record of the epoch at which the relation was last
    /// explicitly invalidated (`rebuild_index` / `mark_sql_only`). The
    /// schema fingerprint already retires cached *plans* on any epoch
    /// bump; this map lets verdict caches (the registry) retire cached
    /// *verdicts* too, but only for constraints that actually read the
    /// invalidated relation.
    invalidated: HashMap<String, u64>,
    /// When set, checks enter the degradation ladder at the SQL rung
    /// instead of building BDDs ([`FallbackReason::Overload`]). Flipped
    /// per-request by the serve admission governor; never affects the
    /// verdict, only the path that decides it.
    shed_load: bool,
}

impl Checker {
    /// Wrap a database. Indices are built lazily as constraints reference
    /// relations.
    pub fn new(db: relcheck_relstore::Database, opts: CheckerOptions) -> Checker {
        let slots = crate::policy::manager_cache_slots(opts.apply_cache_slots);
        let mut ldb = LogicalDatabase::with_cache_slots(db, slots);
        ldb.manager_mut().set_node_limit(opts.node_limit);
        ldb.set_subgraph_sharing(opts.share_subgraphs);
        Checker {
            ldb,
            opts,
            sql_only: HashSet::new(),
            epoch: 0,
            invalidated: HashMap::new(),
            shed_load: false,
        }
    }

    /// Access the underlying logical database (indices, manager, data).
    pub fn logical_db(&self) -> &LogicalDatabase {
        &self.ldb
    }

    /// Mutable access (e.g. for incremental maintenance).
    pub fn logical_db_mut(&mut self) -> &mut LogicalDatabase {
        &mut self.ldb
    }

    /// The active options.
    pub fn options(&self) -> &CheckerOptions {
        &self.opts
    }

    /// Enter (or leave) load-shedding mode: while set, checks skip the
    /// BDD rungs and enter the ladder at SQL, recorded in the trace as
    /// [`FallbackReason::Overload`]. The SQL and brute-force rungs decide
    /// the same verdict the full ladder would, so shedding trades memory
    /// headroom for per-check speed without ever changing an answer.
    pub fn set_shed_load(&mut self, shed: bool) {
        self.shed_load = shed;
    }

    /// Whether load-shedding mode is active (see [`Checker::set_shed_load`]).
    pub fn shed_load(&self) -> bool {
        self.shed_load
    }

    /// Replace the per-check wall-clock deadline. The serve watchdog uses
    /// this to arm a hard ceiling on every request it dispatches so a
    /// stuck check escalates down the ladder instead of hanging the
    /// engine actor.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.opts.deadline = deadline;
    }

    /// Force index construction for a relation now (otherwise lazy).
    /// Returns false if the relation went over budget and is SQL-only.
    pub fn ensure_index(&mut self, name: &str) -> Result<bool> {
        if self.sql_only.contains(name) {
            return Ok(false);
        }
        if self.ldb.has_index(name) {
            return Ok(true);
        }
        // A lazy first-time build does not bump the epoch: materializing
        // an index changes no verdict a plan can produce, so plans cached
        // before the build stay valid. (A budget abort inside still lands
        // the relation in `sql_only`, which the schema fingerprint covers.)
        self.build_index_now(name)
    }

    /// Build a fresh index for a relation right now, replacing any index it
    /// already has — the persistent store's recovery path, where a cached
    /// index turned out to be unusable partway through adoption. Budget
    /// aborts route the relation to SQL-only exactly like
    /// [`Checker::ensure_index`] would.
    pub fn rebuild_index(&mut self, name: &str) -> Result<bool> {
        // An explicit rebuild — recovery, or budget-out — changes what
        // plans may assume about the environment; retire every cached plan,
        // and record the relation so verdict caches retire theirs too.
        self.epoch += 1;
        self.invalidated.insert(name.to_owned(), self.epoch);
        self.build_index_now(name)
    }

    fn build_index_now(&mut self, name: &str) -> Result<bool> {
        match self.ldb.build_index(name, self.opts.ordering) {
            Ok(_) => Ok(true),
            // A budget abort — node limit, deadline, or injected fault —
            // makes the relation SQL-only instead of failing the check:
            // every later reference routes through the fallback ladder.
            Err(e) if budget_abort(&e).is_some() => {
                self.ldb.shed_atom_cache();
                self.ldb.gc();
                self.sql_only.insert(name.to_owned());
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    /// Mark a relation permanently SQL-only, as if its index build had
    /// busted the node budget. The parallel checker uses this to seed
    /// workers with the coordinator's over-budget set so every lane makes
    /// the same BDD-vs-SQL routing decisions.
    pub fn mark_sql_only(&mut self, name: &str) {
        // The sql_only set is part of the schema fingerprint, but bump the
        // epoch too so the invalidation does not depend on set contents
        // alone (e.g. mark, unmark-by-rebuild, re-mark round trips).
        self.epoch += 1;
        self.invalidated.insert(name.to_owned(), self.epoch);
        self.sql_only.insert(name.to_owned());
    }

    /// The current plan-invalidation epoch (see [`Checker::rebuild_index`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch at which `name` was last explicitly invalidated via
    /// [`Checker::rebuild_index`] or [`Checker::mark_sql_only`], or 0 if it
    /// never was. A verdict cached at epoch `e` is stale for any constraint
    /// reading a relation whose invalidation epoch exceeds `e` — the usual
    /// trigger is maintenance that mutated rows out-of-band (the store's
    /// recovery path) before rebuilding the index.
    pub fn relation_invalidation_epoch(&self, name: &str) -> u64 {
        self.invalidated.get(name).copied().unwrap_or(0)
    }

    /// Is this relation on the permanent SQL-only list?
    pub fn is_sql_only(&self, name: &str) -> bool {
        self.sql_only.contains(name)
    }

    pub(crate) fn sql_only_set(&self) -> &HashSet<String> {
        &self.sql_only
    }

    pub(crate) fn referenced_relations(f: &Formula) -> Vec<String> {
        fn go(f: &Formula, out: &mut Vec<String>) {
            match f {
                Formula::Atom { relation, .. } if !out.contains(relation) => {
                    out.push(relation.clone());
                }
                Formula::Atom { .. } => {}
                Formula::Not(g) => go(g, out),
                Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|g| go(g, out)),
                Formula::Implies(a, b) => {
                    go(a, out);
                    go(b, out);
                }
                Formula::Exists(_, g) | Formula::Forall(_, g) => go(g, out),
                _ => {}
            }
        }
        let mut out = Vec::new();
        go(f, &mut out);
        out
    }

    /// The fingerprint of everything a [`CheckPlan`] depends on besides the
    /// constraint itself: data version, invalidation epoch, ordering
    /// strategy, pass toggles, and the SQL-only set. A cached plan is valid
    /// exactly while this value matches its
    /// [`CheckPlan::schema_fp`]; any tuple mutation, index rebuild, or
    /// routing change produces a different fingerprint.
    pub fn schema_fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(32 + 16 * self.sql_only.len());
        bytes.extend_from_slice(&self.ldb.data_version().to_le_bytes());
        bytes.extend_from_slice(&self.epoch.to_le_bytes());
        bytes.extend_from_slice(&self.opts.ordering.fingerprint().to_le_bytes());
        bytes.extend_from_slice(&self.opts.plan.bits().to_le_bytes());
        let mut names: Vec<&str> = self.sql_only.iter().map(String::as_str).collect();
        names.sort_unstable();
        for n in names {
            bytes.extend_from_slice(n.as_bytes());
            bytes.push(0);
        }
        fnv1a(&bytes)
    }

    /// Build (without executing) the [`CheckPlan`] for a constraint under
    /// the current options — what `relcheck plan` prints. Ensures the
    /// referenced indices exist first, exactly as a check would, so the
    /// plan's BDD/SQL routing and fingerprints match what
    /// [`Checker::check`] will do next.
    pub fn plan(&mut self, f: &Formula) -> Result<CheckPlan> {
        let free = f.free_vars();
        if !free.is_empty() {
            return Err(CoreError::Logic(relcheck_logic::LogicError::FreeVariables(
                free,
            )));
        }
        for rel in Self::referenced_relations(f) {
            self.ensure_index(&rel)?;
        }
        let fp = self.schema_fingerprint();
        Ok(crate::planner::plan_check(
            self.ldb.db(),
            f,
            self.opts.plan,
            &self.sql_only,
            fp,
        ))
    }

    /// The plan-cache key for a constraint: `(constraint fingerprint,
    /// schema fingerprint)`. Ensures referenced indices first — index
    /// construction bumps the data version, so computing the key before
    /// ensuring would poison it and repeated checks would never hit.
    pub fn plan_key(&mut self, f: &Formula) -> Result<(u64, u64)> {
        let free = f.free_vars();
        if !free.is_empty() {
            return Err(CoreError::Logic(relcheck_logic::LogicError::FreeVariables(
                free,
            )));
        }
        for rel in Self::referenced_relations(f) {
            self.ensure_index(&rel)?;
        }
        Ok((formula_fingerprint(f), self.schema_fingerprint()))
    }

    /// Decide a constraint. See module docs for the strategy; the full
    /// degradation ladder (`DESIGN.md` §6) is BDD → GC-and-retry-once →
    /// SQL plan → brute force → [`Verdict::Degraded`].
    pub fn check(&mut self, f: &Formula) -> Result<CheckReport> {
        Ok(self.check_planned(f, None)?.0)
    }

    /// [`Checker::check`] seeded with a previously-built plan (e.g. from
    /// the registry's plan cache). The plan is used only if its
    /// fingerprints still match the current constraint and environment;
    /// otherwise the checker silently replans — a stale plan can never
    /// execute.
    pub fn check_with_plan(&mut self, f: &Formula, plan: &CheckPlan) -> Result<CheckReport> {
        Ok(self.check_planned(f, Some(plan))?.0)
    }

    /// The full planned-check entry point: decide the constraint and
    /// return the plan that was executed (fresh or the validated `cached`
    /// one), ready to insert into a plan cache.
    pub fn check_planned(
        &mut self,
        f: &Formula,
        cached: Option<&CheckPlan>,
    ) -> Result<(CheckReport, CheckPlan)> {
        // Arm the per-check wall-clock budget. The deadline lives in the
        // manager so the BDD recursion can poll it; clear it on every exit
        // path so later manager work is unaffected.
        let armed = self.opts.deadline.map(|d| Instant::now() + d);
        self.ldb.manager_mut().set_deadline(armed);
        let report = self.check_inner(f, cached);
        self.ldb.manager_mut().set_deadline(None);
        report
    }

    fn check_inner(
        &mut self,
        f: &Formula,
        cached: Option<&CheckPlan>,
    ) -> Result<(CheckReport, CheckPlan)> {
        let start = Instant::now();
        let free = f.free_vars();
        if !free.is_empty() {
            return Err(CoreError::Logic(relcheck_logic::LogicError::FreeVariables(
                free,
            )));
        }
        let tel = self.opts.telemetry;
        let stats_before = tel.then(|| self.ldb.manager().stats());
        // Make sure every referenced relation is indexed (or marked
        // SQL-only).
        let index_start = tel.then(Instant::now);
        let mut index_events: Vec<IndexEvent> = Vec::new();
        let mut all_indexed = true;
        for rel in Self::referenced_relations(f) {
            let had = self.ldb.has_index(&rel);
            let ok = self.ensure_index(&rel)?;
            all_indexed &= ok;
            if tel {
                let provenance = if !ok {
                    IndexProvenance::SqlOnly
                } else if had {
                    IndexProvenance::Reused
                } else {
                    IndexProvenance::Built
                };
                index_events.push(IndexEvent {
                    relation: rel,
                    provenance,
                });
            }
        }
        let index_time = index_start.map(|t| t.elapsed()).unwrap_or_default();
        // Obtain the plan: reuse the caller's cached one only if both
        // fingerprints still match the constraint and the current
        // environment (computed *after* ensuring indices, which bumps the
        // data version). A mismatched plan is silently replanned, so a
        // stale cache entry can never execute.
        let current_fp = self.schema_fingerprint();
        let plan: CheckPlan = match cached {
            Some(p) if p.schema_fp == current_fp && p.constraint_fp == formula_fingerprint(f) => {
                p.clone()
            }
            _ => crate::planner::plan_check(
                self.ldb.db(),
                f,
                self.opts.plan,
                &self.sql_only,
                current_fp,
            ),
        };
        debug_assert_eq!(
            plan.bdd.is_some(),
            all_indexed,
            "plan routing must agree with index state"
        );
        let eval_start = tel.then(Instant::now);
        // R2 firings from the executor. They survive a node-budget abort on
        // purpose: they record the renames the BDD attempt performed before
        // defaulting to SQL. (R1/R3/R4 firings live in the plan's passes.)
        let mut r2: Vec<RuleFiring> = Vec::new();
        let mut fallback: Option<FallbackReason> = None;
        let mut ladder: Vec<&'static str> = Vec::new();
        let mut error: Option<String> = None;
        let mut decided: Option<(bool, Method)> = None;
        let record_error = |error: &mut Option<String>, e: String| match error.take() {
            Some(prev) => *error = Some(format!("{prev}; {e}")),
            None => *error = Some(e),
        };
        if crate::policy::shed_entry_skips_bdd(self.shed_load, plan.bdd.is_some()) {
            // The admission governor shed this check: skip the BDD rungs
            // and enter the ladder at SQL, which decides the same verdict
            // without building node-heavy intermediates. Recorded as a
            // fallback so the trace shows the ladder entered late.
            fallback = Some(FallbackReason::Overload);
        } else if let Some(step) = plan.bdd.as_ref() {
            // Rung 1: the paper's BDD path — execute the plan's BDD step.
            ladder.push("bdd");
            let sink = if tel { Some(&mut r2) } else { None };
            match crate::exec::execute_bdd(&mut self.ldb, step, sink) {
                Ok(h) => decided = Some((h, Method::Bdd)),
                Err(e) => {
                    let Some(abort) = budget_abort(&e) else {
                        return Err(e);
                    };
                    // Under memory pressure the cache is the first thing to
                    // go: shedding it makes the retry (and every later
                    // rung) see the same headroom an unshared manager has.
                    self.ldb.shed_atom_cache();
                    self.ldb.gc();
                    if matches!(abort, BddError::NodeLimit { .. }) {
                        // Rung 2: the GC may have freed enough scratch from
                        // the aborted attempt for the same compile to fit;
                        // retry exactly once before giving up on BDDs.
                        ladder.push("gc_retry");
                        r2.clear();
                        let sink = if tel { Some(&mut r2) } else { None };
                        match crate::exec::execute_bdd(&mut self.ldb, step, sink) {
                            Ok(h) => decided = Some((h, Method::Bdd)),
                            Err(e2) => {
                                let Some(abort2) = budget_abort(&e2) else {
                                    return Err(e2);
                                };
                                self.ldb.shed_atom_cache();
                                self.ldb.gc();
                                fallback = Some(match abort2 {
                                    BddError::NodeLimit { limit, live } => {
                                        FallbackReason::RetryExhausted { limit, live }
                                    }
                                    other => abort_reason(&other),
                                });
                            }
                        }
                    } else {
                        // A deadline or injected fault will not be cured by
                        // GC; escalate straight down the ladder.
                        fallback = Some(abort_reason(&abort));
                    }
                }
            }
        } else {
            fallback = Some(FallbackReason::UnindexedRelation);
        }
        if decided.is_none() {
            // Rung 3: the plan's pre-translated SQL step (paper §4's
            // "default to SQL" strategy). The rung is recorded even when
            // the constraint is outside the translatable class — the
            // ladder logs rungs tried, not rungs that answered.
            ladder.push("sql");
            match self.sql_rung(f, plan.sql.as_ref()) {
                Ok(Some(d)) => decided = Some(d),
                Ok(None) => {} // outside the translatable class
                Err(e) => record_error(&mut error, e.to_string()),
            }
        }
        if decided.is_none() {
            // Rung 4: brute-force active-domain evaluation.
            ladder.push("brute_force");
            match eval_sentence(self.ldb.db(), f) {
                Ok(h) => decided = Some((h, Method::BruteForce)),
                Err(e) => record_error(&mut error, e.to_string()),
            }
        }
        let (holds, method, verdict) = match decided {
            Some((h, m)) => (h, m, if h { Verdict::Holds } else { Verdict::Violated }),
            None => {
                // Rung 5: every rung failed. Surface an explicit Degraded
                // verdict instead of an answer we don't have.
                ladder.push("degraded");
                (true, Method::Aborted, Verdict::Degraded)
            }
        };
        let eval_time = eval_start.map(|t| t.elapsed()).unwrap_or_default();
        if self.opts.gc_between_checks {
            self.ldb.gc();
        }
        let elapsed = start.elapsed();
        let metrics = stats_before.map(|before| CheckTrace {
            method,
            rules: {
                // Plan-level R3/R1/R4 firings in application order, then
                // the executor's R2 events — the same order the monolith
                // emitted.
                let mut rules = plan.rule_firings();
                rules.append(&mut r2);
                rules
            },
            passes: plan
                .passes
                .iter()
                .map(|p| PassStat {
                    pass: p.pass,
                    rule: p.rule,
                    fired: p.fired,
                    gated: p.gated,
                })
                .collect(),
            index_events,
            fallback,
            ladder,
            timings: PhaseTimings {
                index: index_time,
                eval: eval_time,
                total: elapsed,
            },
            bdd: self.ldb.manager().stats().delta_since(&before),
        });
        let report = CheckReport {
            holds,
            verdict,
            error,
            method,
            elapsed,
            live_nodes: self.ldb.manager().live_nodes(),
            metrics,
        };
        Ok((report, plan))
    }

    /// The SQL-plan rung: execute the plan's pre-translated step.
    /// `Ok(None)` means the constraint is outside the translatable class
    /// (callers then brute-force).
    fn sql_rung(&mut self, f: &Formula, step: Option<&SqlStep>) -> Result<Option<(bool, Method)>> {
        if failpoint::enabled() {
            let key = failpoint::key_str(&f.to_string());
            if failpoint::should_fail(failpoint::SQL_FALLBACK, key) {
                return Err(CoreError::Bdd(BddError::FaultInjected {
                    site: failpoint::SQL_FALLBACK,
                }));
            }
        }
        match step {
            Some(s) => Ok(Some((
                crate::exec::execute_sql(self.ldb.db(), s)?,
                Method::SqlFallback,
            ))),
            None => Ok(None),
        }
    }

    fn check_via_sql(&mut self, f: &Formula) -> Result<(bool, Method)> {
        let step =
            sqlgen::violation_plan(self.ldb.db(), f).map(|translated| SqlStep { translated });
        match self.sql_rung(f, step.as_ref())? {
            Some(d) => Ok(d),
            None => Ok((eval_sentence(self.ldb.db(), f)?, Method::BruteForce)),
        }
    }

    /// Decide a constraint strictly via the SQL path (the paper's baseline;
    /// used by the benchmark harness for the BDD-vs-SQL comparisons).
    pub fn check_sql(&mut self, f: &Formula) -> Result<CheckReport> {
        let start = Instant::now();
        let stats_before = self.opts.telemetry.then(|| self.ldb.manager().stats());
        let (holds, method) = self.check_via_sql(f)?;
        let elapsed = start.elapsed();
        let metrics = stats_before.map(|before| CheckTrace {
            method,
            rules: Vec::new(),
            passes: Vec::new(),
            index_events: Vec::new(),
            fallback: None,
            ladder: vec!["sql"],
            timings: PhaseTimings {
                index: Duration::ZERO,
                eval: elapsed,
                total: elapsed,
            },
            bdd: self.ldb.manager().stats().delta_since(&before),
        });
        Ok(CheckReport {
            holds,
            verdict: if holds {
                Verdict::Holds
            } else {
                Verdict::Violated
            },
            error: None,
            method,
            elapsed,
            live_nodes: self.ldb.manager().live_nodes(),
            metrics,
        })
    }

    /// Check many named constraints, returning each report. This is the
    /// paper's headline workflow: quickly identify *which* constraints are
    /// violated on *which* tables.
    /// Each check runs behind a panic guard: a constraint that panics (a
    /// compiler bug, an injected fault) yields a [`Verdict::Errored`]
    /// report carrying the payload, and the rest of the batch still runs.
    /// Typed errors (unknown relation, malformed constraint) still abort
    /// the batch, matching the single-check contract.
    pub fn check_all(
        &mut self,
        constraints: &[(String, Formula)],
    ) -> Result<Vec<(String, CheckReport)>> {
        let mut out = Vec::with_capacity(constraints.len());
        for (name, f) in constraints {
            match catch_unwind(AssertUnwindSafe(|| self.check(f))) {
                Ok(Ok(r)) => out.push((name.clone(), r)),
                Ok(Err(e)) => return Err(e),
                Err(payload) => {
                    // The manager's tables are structurally sound at any
                    // unwind point (no unsafe code); disarm the deadline
                    // and drop scratch so the next constraint starts clean.
                    self.ldb.manager_mut().set_deadline(None);
                    self.ldb.shed_atom_cache();
                    self.ldb.gc();
                    out.push((
                        name.clone(),
                        CheckReport::errored(panic_message(payload), self.opts.telemetry),
                    ));
                }
            }
        }
        Ok(out)
    }

    /// [`Checker::check_all`] spread over `threads` worker threads, each
    /// with its own BDD manager (see [`crate::parallel`]). The coordinator
    /// builds each referenced index once and ships it to the workers as a
    /// manager-independent snapshot; constraints are batched by the
    /// relations they read, and every worker keeps the full node-budget /
    /// SQL-fallback strategy independently. Reports come back in input
    /// order with verdicts identical to the serial path.
    pub fn check_all_parallel(
        &mut self,
        constraints: &[(String, Formula)],
        threads: usize,
    ) -> Result<Vec<(String, CheckReport)>> {
        Ok(self.check_all_parallel_telemetry(constraints, threads)?.0)
    }

    /// [`Checker::check_all_parallel`] plus the merged lane-level
    /// telemetry: one [`WorkerTelemetry`] per lane (in deterministic batch
    /// order) and fleet totals that are exactly the sum of the per-lane
    /// counters. A serial pass (one thread or one constraint) reports a
    /// single lane covering every constraint.
    pub fn check_all_parallel_telemetry(
        &mut self,
        constraints: &[(String, Formula)],
        threads: usize,
    ) -> Result<(Vec<(String, CheckReport)>, FleetTelemetry)> {
        if threads <= 1 || constraints.len() <= 1 {
            let before = self.ldb.manager().stats();
            let reports = self.check_all(constraints)?;
            let after = self.ldb.manager().stats();
            let lane = WorkerTelemetry {
                worker: 0,
                constraints: (0..constraints.len()).collect(),
                bdd: after.delta_since(&before),
                peak_nodes: after.peak_nodes,
                depth_hwm: after.depth_hwm,
            };
            return Ok((reports, FleetTelemetry::from_workers(vec![lane])));
        }
        // Build (or budget-out) every referenced index exactly once, then
        // snapshot for transfer — workers import instead of re-running
        // tuple construction.
        let mut snapshots = Vec::new();
        let mut seen = HashSet::new();
        for (_, f) in constraints {
            for rel in Self::referenced_relations(f) {
                if seen.insert(rel.clone()) && self.ensure_index(&rel)? {
                    snapshots.push(self.ldb.export_index(&rel).expect("just ensured"));
                }
            }
        }
        crate::parallel::run(
            self.ldb.db(),
            self.opts,
            self.sql_only_set(),
            &snapshots,
            constraints,
            threads,
        )
    }

    /// Materialize up to `limit` violating assignments **on the BDD path**:
    /// build the violation-set BDD (premise ∧ ¬conclusion over the outer ∀
    /// variables) and enumerate its tuples, without touching SQL. Returns
    /// `None` when the constraint is not ∀-prefixed, a referenced relation
    /// is SQL-only, or the node budget aborts (callers then use
    /// [`Checker::find_violations`]).
    ///
    /// Output: `(variable names, rows of dictionary codes)` — decode codes
    /// through the database's class dictionaries.
    pub fn find_violations_bdd(
        &mut self,
        f: &Formula,
        limit: usize,
    ) -> Result<Option<CodedViolations>> {
        let free = f.free_vars();
        if !free.is_empty() {
            return Err(CoreError::Logic(relcheck_logic::LogicError::FreeVariables(
                free,
            )));
        }
        for rel in Self::referenced_relations(f) {
            if !self.ensure_index(&rel)? {
                return Ok(None);
            }
        }
        let result = match crate::exec::violations_bdd(&mut self.ldb, f, self.opts.plan) {
            Ok(Some(vs)) => {
                let doms: Vec<_> = vs.vars.iter().map(|(_, d, _)| *d).collect();
                let names: Vec<String> = vs.vars.iter().map(|(v, _, _)| v.clone()).collect();
                let rows = self
                    .ldb
                    .manager_mut()
                    .rows_limited(vs.bdd, &doms, limit)
                    .map_err(CoreError::Bdd)?;
                let rows: Vec<Vec<u32>> = rows
                    .into_iter()
                    .map(|r| r.into_iter().map(|v| v as u32).collect())
                    .collect();
                Ok(Some((names, rows)))
            }
            Ok(None) => Ok(None),
            Err(e) if budget_abort(&e).is_some() => {
                self.ldb.shed_atom_cache();
                self.ldb.gc();
                Ok(None)
            }
            Err(e) => Err(e),
        };
        if self.opts.gc_between_checks {
            self.ldb.gc();
        }
        result
    }

    /// [`find_violations_bdd`] plus provenance for certificates: attribute
    /// classes per variable and the **exact** violation count from
    /// [`sat_count`] over the violation BDD (domain ranges are conjoined
    /// into it, so the count never includes out-of-range encodings). Same
    /// `None` conditions as [`find_violations_bdd`].
    ///
    /// [`find_violations_bdd`]: Checker::find_violations_bdd
    /// [`sat_count`]: relcheck_bdd::BddManager::sat_count
    pub fn find_violations_counted(
        &mut self,
        f: &Formula,
        limit: usize,
    ) -> Result<Option<CountedViolations>> {
        let free = f.free_vars();
        if !free.is_empty() {
            return Err(CoreError::Logic(relcheck_logic::LogicError::FreeVariables(
                free,
            )));
        }
        for rel in Self::referenced_relations(f) {
            if !self.ensure_index(&rel)? {
                return Ok(None);
            }
        }
        let result = match crate::exec::violations_bdd(&mut self.ldb, f, self.opts.plan) {
            Ok(Some(vs)) => {
                let doms: Vec<_> = vs.vars.iter().map(|(_, d, _)| *d).collect();
                let vars: Vec<String> = vs.vars.iter().map(|(v, _, _)| v.clone()).collect();
                let classes: Vec<String> = vs.vars.iter().map(|(_, _, c)| c.clone()).collect();
                let mgr = self.ldb.manager_mut();
                let count = mgr.tuple_count(vs.bdd, &doms).map_err(CoreError::Bdd);
                let rows = count.and_then(|total| {
                    let rows = mgr
                        .rows_limited(vs.bdd, &doms, limit)
                        .map_err(CoreError::Bdd)?;
                    let rows: Vec<Vec<u32>> = rows
                        .into_iter()
                        .map(|r| r.into_iter().map(|v| v as u32).collect())
                        .collect();
                    Ok((rows, total))
                });
                match rows {
                    Ok((rows, total)) => Ok(Some(CountedViolations {
                        vars,
                        classes,
                        rows,
                        total,
                    })),
                    Err(e) if budget_abort(&e).is_some() => {
                        self.ldb.shed_atom_cache();
                        self.ldb.gc();
                        Ok(None)
                    }
                    Err(e) => Err(e),
                }
            }
            Ok(None) => Ok(None),
            Err(e) if budget_abort(&e).is_some() => {
                self.ldb.shed_atom_cache();
                self.ldb.gc();
                Ok(None)
            }
            Err(e) => Err(e),
        };
        if self.opts.gc_between_checks {
            self.ldb.gc();
        }
        result
    }

    /// Check the functional dependency `lhs → rhs` on a relation via BDD
    /// projection (the paper's Figure 5(b) strategy): existentially
    /// quantify everything but `lhs ∪ rhs` to get `B₁`, then also quantify
    /// `rhs` to get `B₂`; the FD holds iff both projections have the same
    /// tuple count (each `lhs` group maps to exactly one `rhs` value).
    pub fn check_fd_bdd(&mut self, relation: &str, lhs: &[usize], rhs: &[usize]) -> Result<bool> {
        if !self.ensure_index(relation)? {
            // Over budget: use the SQL group-by formulation.
            return Ok(relcheck_relstore::algebra::fd_holds(
                self.ldb.db().relation(relation)?,
                lhs,
                rhs,
            )?);
        }
        let idx = self.ldb.index(relation).expect("just ensured").clone();
        let arity = idx.domains.len();
        let others: Vec<_> = (0..arity)
            .filter(|c| !lhs.contains(c) && !rhs.contains(c))
            .map(|c| idx.domains[c])
            .collect();
        let lhs_doms: Vec<_> = lhs.iter().map(|&c| idx.domains[c]).collect();
        let rhs_doms: Vec<_> = rhs.iter().map(|&c| idx.domains[c]).collect();
        let mgr = self.ldb.manager_mut();
        let vs_others = mgr.domain_varset(&others);
        let b1 = mgr.exists(idx.root, vs_others)?;
        let vs_rhs = mgr.domain_varset(&rhs_doms);
        let b2 = mgr.exists(b1, vs_rhs)?;
        let pair_doms: Vec<_> = lhs_doms.iter().chain(&rhs_doms).copied().collect();
        let n1 = mgr.tuple_count(b1, &pair_doms)?;
        let n2 = mgr.tuple_count(b2, &lhs_doms)?;
        if self.opts.gc_between_checks {
            self.ldb.gc();
        }
        Ok(n1 == n2)
    }

    /// The SQL group-by formulation of the same FD check (baseline).
    pub fn check_fd_sql(&self, relation: &str, lhs: &[usize], rhs: &[usize]) -> Result<bool> {
        Ok(relcheck_relstore::algebra::fd_holds(
            self.ldb.db().relation(relation)?,
            lhs,
            rhs,
        )?)
    }

    /// EXPLAIN-style description of how a constraint would be evaluated:
    /// the rewrite pipeline's intermediate forms, the indices involved,
    /// and the SQL fallback plan (if the constraint is translatable).
    /// Ensures indices exist (so node counts are real) but runs no check.
    pub fn explain(&mut self, f: &Formula) -> Result<Explanation> {
        use relcheck_logic::transform::{
            push_forall_down, simplify, strip_leading_block, to_nnf, to_prenex, CheckMode,
        };
        let free = f.free_vars();
        if !free.is_empty() {
            return Err(CoreError::Logic(relcheck_logic::LogicError::FreeVariables(
                free,
            )));
        }
        let mut indices = Vec::new();
        for rel in Self::referenced_relations(f) {
            let indexed = self.ensure_index(&rel)?;
            let detail = if indexed {
                let idx = self.ldb.index(&rel).expect("just ensured");
                IndexInfo {
                    relation: rel.clone(),
                    nodes: self.ldb.manager().size(idx.root),
                    ordering: idx.ordering.clone(),
                    sql_only: false,
                }
            } else {
                IndexInfo {
                    relation: rel.clone(),
                    nodes: 0,
                    ordering: vec![],
                    sql_only: true,
                }
            };
            indices.push(detail);
        }
        let p = to_prenex(f);
        let (mode, rest) = strip_leading_block(&p);
        let prefix: Vec<String> = p
            .prefix
            .iter()
            .map(|(q, v)| {
                format!(
                    "{}{v}",
                    if *q == relcheck_logic::transform::Quant::Forall {
                        "∀"
                    } else {
                        "∃"
                    }
                )
            })
            .collect();
        let stripped = p.prefix.len() - rest.prefix.len();
        let (mode_name, compiled_body) = match mode {
            CheckMode::Validity => (
                "validity, tested by refutation (violation set must be empty)",
                format!(
                    "{}",
                    simplify(&push_forall_down(&to_nnf(
                        &crate::planner::rebuild(&rest).not()
                    )))
                ),
            ),
            CheckMode::Satisfiability => (
                "satisfiability (compiled BDD must be non-false)",
                format!(
                    "{}",
                    simplify(&push_forall_down(&crate::planner::rebuild(&rest)))
                ),
            ),
        };
        let sql_plan = sqlgen::violation_plan(self.ldb.db(), f).map(|t| format!("{:?}", t.plan));
        Ok(Explanation {
            prenex_prefix: prefix,
            matrix: format!("{}", p.matrix),
            stripped_leading: stripped,
            mode: mode_name,
            compiled_body,
            indices,
            sql_plan,
        })
    }

    /// Materialize the violating tuples of a constraint (the follow-up step
    /// once `check` reports a violation). Output columns are the premise
    /// variables in join order; use
    /// [`relcheck_relstore::Database::decode_row`] to render them.
    pub fn find_violations(&mut self, f: &Formula) -> Result<(Relation, Vec<String>)> {
        match sqlgen::violation_plan(self.ldb.db(), f) {
            Some(t) if t.shape == Shape::Violations => {
                let out = execute(self.ldb.db(), &t.plan)?;
                Ok((out, t.columns))
            }
            Some(_) => Err(CoreError::UnsupportedForViolationQuery(
                "existential constraints have witnesses, not violating tuples".to_owned(),
            )),
            None => Err(CoreError::UnsupportedForViolationQuery(format!(
                "no relational plan for: {f}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcheck_logic::parse;
    use relcheck_relstore::{Database, Raw};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            "CUST",
            &[
                ("city", "city"),
                ("areacode", "areacode"),
                ("state", "state"),
            ],
            vec![
                vec![Raw::str("Toronto"), Raw::Int(416), Raw::str("ON")],
                vec![Raw::str("Toronto"), Raw::Int(647), Raw::str("ON")],
                vec![Raw::str("Oshawa"), Raw::Int(905), Raw::str("ON")],
                vec![Raw::str("Newark"), Raw::Int(973), Raw::str("NJ")],
                vec![Raw::str("Newark"), Raw::Int(212), Raw::str("NY")],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn check_uses_bdd_path() {
        let mut ck = Checker::new(db(), CheckerOptions::default());
        let f = parse(r#"forall c, a, s. CUST(c, a, s) & c = "Toronto" -> s = "ON""#).unwrap();
        let r = ck.check(&f).unwrap();
        assert!(r.holds);
        assert_eq!(r.method, Method::Bdd);
    }

    #[test]
    fn node_limit_falls_back_to_sql() {
        let opts = CheckerOptions {
            node_limit: Some(18),
            ..Default::default()
        };
        let mut ck = Checker::new(db(), opts);
        let f = parse(r#"forall c, a, s. CUST(c, a, s) & c = "Newark" -> s = "NJ""#).unwrap();
        let r = ck.check(&f).unwrap();
        assert!(!r.holds);
        assert_eq!(r.method, Method::SqlFallback);
        // And the checker stays usable.
        let g = parse(r#"exists c, a, s. CUST(c, a, s) & s = "NY""#).unwrap();
        assert!(ck.check(&g).unwrap().holds);
    }

    #[test]
    fn untranslatable_falls_back_to_brute_force() {
        let opts = CheckerOptions {
            node_limit: Some(18),
            ..Default::default()
        };
        let mut ck = Checker::new(db(), opts);
        // Disjunctive premise: out of the SQL class.
        let f =
            parse(r#"forall c, a, s. CUST(c, a, s) | CUST(c, a, s) -> s in {"ON", "NJ", "NY"}"#)
                .unwrap();
        let r = ck.check(&f).unwrap();
        assert!(r.holds);
        assert_eq!(r.method, Method::BruteForce);
    }

    #[test]
    fn check_all_reports_violated_constraints() {
        let mut ck = Checker::new(db(), CheckerOptions::default());
        let constraints = vec![
            (
                "toronto-areacodes".to_owned(),
                parse(r#"forall c, a, s. CUST(c, a, s) & c = "Toronto" -> a in {416, 647}"#)
                    .unwrap(),
            ),
            (
                "newark-in-nj".to_owned(),
                parse(r#"forall c, a, s. CUST(c, a, s) & c = "Newark" -> s = "NJ""#).unwrap(),
            ),
            (
                "fd-areacode-state".to_owned(),
                parse(
                    r#"forall c1, a, s1, c2, s2.
                         CUST(c1, a, s1) & CUST(c2, a, s2) -> s1 = s2"#,
                )
                .unwrap(),
            ),
        ];
        let reports = ck.check_all(&constraints).unwrap();
        let violated: Vec<&str> = reports
            .iter()
            .filter(|(_, r)| !r.holds)
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(violated, vec!["newark-in-nj"]);
        assert!(reports.iter().all(|(_, r)| r.method == Method::Bdd));
    }

    #[test]
    fn find_violations_returns_decoded_tuples() {
        let mut ck = Checker::new(db(), CheckerOptions::default());
        let f = parse(r#"forall c, a, s. CUST(c, a, s) & c = "Newark" -> s = "NJ""#).unwrap();
        assert!(!ck.check(&f).unwrap().holds);
        let (rows, cols) = ck.find_violations(&f).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(cols.len(), 3);
        let decoded = ck.logical_db().db().decode_row(&rows, &rows.row(0));
        assert!(decoded.contains(&Raw::str("NY")));
    }

    #[test]
    fn find_violations_rejects_existentials() {
        let mut ck = Checker::new(db(), CheckerOptions::default());
        let f = parse(r#"exists c, a, s. CUST(c, a, s)"#).unwrap();
        assert!(matches!(
            ck.find_violations(&f),
            Err(CoreError::UnsupportedForViolationQuery(_))
        ));
    }

    #[test]
    fn explain_describes_the_pipeline() {
        let mut ck = Checker::new(db(), CheckerOptions::default());
        let f =
            parse(r#"forall c, a, s. CUST(c, a, s) & c = "Toronto" -> exists a2. CUST(c, a2, s)"#)
                .unwrap();
        let e = ck.explain(&f).unwrap();
        assert_eq!(e.stripped_leading, 3, "the ∀ block is eliminated");
        assert!(e.mode.contains("validity"));
        assert_eq!(e.indices.len(), 1);
        assert_eq!(e.indices[0].relation, "CUST");
        assert!(!e.indices[0].sql_only);
        assert!(e.indices[0].nodes > 0);
        assert!(e.sql_plan.is_some(), "in the translatable class");
        let rendered = format!("{e}");
        assert!(rendered.contains("prenex prefix"));
        assert!(rendered.contains("CUST"));
        // Existential constraint: satisfiability mode.
        let g = parse("exists c, a, s. CUST(c, a, s)").unwrap();
        let e = ck.explain(&g).unwrap();
        assert!(e.mode.contains("satisfiability"));
    }

    #[test]
    fn bdd_violation_enumeration_matches_sql_path() {
        let mut ck = Checker::new(db(), CheckerOptions::default());
        let f = parse(r#"forall c, a, s. CUST(c, a, s) & c = "Toronto" -> a in {416}"#).unwrap();
        assert!(!ck.check(&f).unwrap().holds);
        let (names, mut bdd_rows) = ck
            .find_violations_bdd(&f, 100)
            .unwrap()
            .expect("∀-prefixed constraint");
        // SQL path for the same constraint.
        let (sql_rel, sql_cols) = ck.find_violations(&f).unwrap();
        assert_eq!(bdd_rows.len(), sql_rel.len());
        // Align column orders and compare the tuple sets.
        let perm: Vec<usize> = sql_cols
            .iter()
            .map(|c| names.iter().position(|n| n == c).unwrap())
            .collect();
        for row in &mut bdd_rows {
            *row = perm.iter().map(|&i| row[i]).collect();
        }
        let mut sql_rows: Vec<Vec<u32>> = sql_rel.rows().collect();
        bdd_rows.sort();
        sql_rows.sort();
        assert_eq!(bdd_rows, sql_rows);
    }

    #[test]
    fn bdd_violation_enumeration_respects_limit() {
        let mut ck = Checker::new(db(), CheckerOptions::default());
        // Everything violates this (no Toronto customer has areacode 905).
        let f = parse(r#"forall c, a, s. CUST(c, a, s) -> a = 905"#).unwrap();
        let (_, rows) = ck.find_violations_bdd(&f, 2).unwrap().unwrap();
        assert_eq!(rows.len(), 2, "limit must cap the enumeration");
        let (_, all) = ck.find_violations_bdd(&f, 100).unwrap().unwrap();
        assert_eq!(all.len(), 4, "four of five rows violate");
    }

    #[test]
    fn bdd_violation_enumeration_declines_existentials() {
        let mut ck = Checker::new(db(), CheckerOptions::default());
        let f = parse(r#"exists c, a, s. CUST(c, a, s)"#).unwrap();
        assert!(ck.find_violations_bdd(&f, 10).unwrap().is_none());
    }

    #[test]
    fn fd_check_bdd_matches_sql() {
        let mut ck = Checker::new(db(), CheckerOptions::default());
        // areacode → state holds in the fixture; city → state does not
        // (Newark maps to NJ and NY).
        for (lhs, rhs, expected) in [
            (vec![1usize], vec![2usize], true),
            (vec![0], vec![2], false),
            (vec![0, 1], vec![2], true),
            (vec![2], vec![0], false),
        ] {
            let via_bdd = ck.check_fd_bdd("CUST", &lhs, &rhs).unwrap();
            let via_sql = ck.check_fd_sql("CUST", &lhs, &rhs).unwrap();
            assert_eq!(via_bdd, via_sql, "lhs={lhs:?} rhs={rhs:?}");
            assert_eq!(via_bdd, expected, "lhs={lhs:?} rhs={rhs:?}");
        }
    }

    #[test]
    fn free_variables_rejected() {
        let mut ck = Checker::new(db(), CheckerOptions::default());
        let f = parse("CUST(c, a, s)").unwrap();
        assert!(matches!(ck.check(&f), Err(CoreError::Logic(_))));
    }

    #[test]
    fn incremental_maintenance_changes_answers() {
        let mut ck = Checker::new(db(), CheckerOptions::default());
        let f = parse(r#"forall c, a, s. CUST(c, a, s) & c = "Oshawa" -> a in {905}"#).unwrap();
        assert!(ck.check(&f).unwrap().holds);
        // Insert a violating tuple (Oshawa, 416, ON) using existing codes.
        let city = ck
            .logical_db()
            .db()
            .code("city", &Raw::str("Oshawa"))
            .unwrap();
        let ac = ck
            .logical_db()
            .db()
            .code("areacode", &Raw::Int(416))
            .unwrap();
        let st = ck.logical_db().db().code("state", &Raw::str("ON")).unwrap();
        ck.logical_db_mut()
            .insert_tuple("CUST", &[city, ac, st])
            .unwrap();
        let r = ck.check(&f).unwrap();
        assert!(!r.holds, "inserted tuple must violate");
        assert_eq!(r.method, Method::Bdd);
        // Delete it: constraint holds again.
        ck.logical_db_mut()
            .delete_tuple("CUST", &[city, ac, st])
            .unwrap();
        assert!(ck.check(&f).unwrap().holds);
    }

    #[test]
    fn all_option_combinations_agree() {
        let f =
            parse(r#"forall c, a, s. CUST(c, a, s) -> exists c2, s2. CUST(c2, a, s2)"#).unwrap();
        for use_rewrites in [true, false] {
            for join_rename in [true, false] {
                let opts = CheckerOptions {
                    plan: PlanOptions::from_flags(use_rewrites, join_rename),
                    ..Default::default()
                };
                let mut ck = Checker::new(db(), opts);
                assert!(
                    ck.check(&f).unwrap().holds,
                    "rewrites={use_rewrites} rename={join_rename}"
                );
            }
        }
    }
}
