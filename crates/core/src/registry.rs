//! Constraint registry with dependency-driven re-validation.
//!
//! The paper's motivation is *dynamic* databases: schemas and contents
//! evolve, and after each batch of updates one wants to know which
//! constraints broke — without re-checking the ones that cannot have been
//! affected. A [`ConstraintRegistry`] tracks named constraints, which
//! relations each one reads, and the last verdict; after updates, only the
//! constraints touching a modified relation are re-checked (the BDD
//! indices themselves are maintained incrementally by
//! [`crate::index::LogicalDatabase`]).

use crate::checker::{panic_message, CheckReport, Checker};
use crate::error::Result;
use crate::plan::CheckPlan;
use crate::telemetry::PlanCacheMetrics;
use relcheck_logic::Formula;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A registered constraint.
#[derive(Debug, Clone)]
struct Entry {
    name: String,
    formula: Formula,
    reads: HashSet<String>,
    last: Option<bool>,
    /// [`Checker::epoch`] at the moment `last` was cached. A verdict is
    /// stale — even with an empty touched set — once any relation in
    /// `reads` has been explicitly invalidated (`rebuild_index` /
    /// `mark_sql_only`) at a later epoch: those maintenance paths mutate
    /// rows and indices out-of-band, so the cached boolean may no longer
    /// describe the data.
    validated_epoch: u64,
}

impl Entry {
    /// Must this entry be re-checked given the touched-relation set?
    fn dirty(&self, checker: &Checker, touched: &HashSet<&str>) -> bool {
        self.last.is_none()
            || self.reads.iter().any(|r| {
                touched.contains(r.as_str())
                    || checker.relation_invalidation_epoch(r) > self.validated_epoch
            })
    }
}

/// Verdict source in a [`ConstraintRegistry::revalidate`] report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Re-checked this round (a relation it reads changed).
    Checked {
        /// Whether the constraint holds now.
        holds: bool,
    },
    /// Untouched by the update set; the cached verdict still applies.
    Cached {
        /// The cached result.
        holds: bool,
    },
}

impl Verdict {
    /// The boolean outcome regardless of provenance.
    pub fn holds(&self) -> bool {
        match *self {
            Verdict::Checked { holds } | Verdict::Cached { holds } => holds,
        }
    }
}

/// Named constraints with dependency tracking (see module docs).
///
/// ```
/// use relcheck_core::checker::{Checker, CheckerOptions};
/// use relcheck_core::registry::{ConstraintRegistry, Verdict};
/// use relcheck_logic::parse;
/// use relcheck_relstore::{Database, Raw};
///
/// let mut db = Database::new();
/// db.create_relation("R", &[("x", "k")], vec![vec![Raw::Int(1)]]).unwrap();
/// db.create_relation("S", &[("x", "k")], vec![vec![Raw::Int(1)]]).unwrap();
/// let mut checker = Checker::new(db, CheckerOptions::default());
///
/// let mut registry = ConstraintRegistry::new();
/// registry.register("r-in-s", parse("forall x. R(x) -> S(x)").unwrap());
/// registry.register("s-nonempty", parse("exists x. S(x)").unwrap());
/// registry.validate_all(&mut checker).unwrap();
///
/// // An update touches only R: the S-only constraint is served from cache.
/// let verdicts = registry.revalidate(&mut checker, &["R"]).unwrap();
/// assert!(matches!(verdicts[0].1, Verdict::Checked { holds: true }));
/// assert!(matches!(verdicts[1].1, Verdict::Cached { holds: true }));
/// ```
#[derive(Debug, Default)]
pub struct ConstraintRegistry {
    entries: Vec<Entry>,
    /// Compiled plans keyed by `(constraint fingerprint, schema
    /// fingerprint)`. The schema fingerprint covers the data version,
    /// the checker's epoch (bumped by `rebuild_index`/`mark_sql_only`),
    /// the ordering strategy, and the plan options, so any change that
    /// could invalidate a plan changes the key and the stale entry is
    /// simply never looked up again (and is pruned on the next insert
    /// for the same constraint).
    plans: HashMap<(u64, u64), CheckPlan>,
    plan_stats: PlanCacheMetrics,
}

impl ConstraintRegistry {
    /// Empty registry.
    pub fn new() -> ConstraintRegistry {
        ConstraintRegistry::default()
    }

    /// Register a constraint. Returns false (and ignores the call) if the
    /// name is already taken.
    pub fn register(&mut self, name: &str, formula: Formula) -> bool {
        if self.entries.iter().any(|e| e.name == name) {
            return false;
        }
        // The exact signature the parallel partitioner groups by, so the
        // registry's skip/recheck decisions agree with lane scheduling.
        let reads = crate::parallel::read_set(&formula).into_iter().collect();
        self.entries.push(Entry {
            name: name.to_owned(),
            formula,
            reads,
            last: None,
            validated_epoch: 0,
        });
        true
    }

    /// The relations a registered constraint reads (its read-set
    /// signature, from [`crate::parallel::read_set`]).
    pub fn read_set(&self, name: &str) -> Option<&HashSet<String>> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.reads)
    }

    /// Names in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// The formula behind a name.
    pub fn formula(&self, name: &str) -> Option<&Formula> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.formula)
    }

    /// Check one constraint through the plan cache: a cached
    /// [`CheckPlan`] whose `(constraint, schema)` fingerprints still match
    /// is handed to the checker and skips planning entirely; otherwise the
    /// freshly-planned result is cached for next time. Runs behind the
    /// same panic guard as [`Checker::check_all`], so a poisoned
    /// constraint yields an `Errored` report instead of tearing down the
    /// batch.
    pub fn check_cached(&mut self, checker: &mut Checker, f: &Formula) -> Result<CheckReport> {
        let key = checker.plan_key(f)?;
        let cached = self.plans.get(&key);
        if cached.is_some() {
            self.plan_stats.hits += 1;
        } else {
            self.plan_stats.misses += 1;
        }
        match catch_unwind(AssertUnwindSafe(|| checker.check_planned(f, cached))) {
            Ok(Ok((report, plan))) => {
                // Keep at most one plan per constraint: drop entries for
                // this constraint under dead schema fingerprints.
                let live = (plan.constraint_fp, plan.schema_fp);
                self.plans.retain(|k, _| k.0 != live.0 || k.1 == live.1);
                self.plans.insert(live, plan);
                Ok(report)
            }
            Ok(Err(e)) => Err(e),
            Err(payload) => {
                // Same recovery as `Checker::check_all`: the manager's
                // tables are structurally sound at any unwind point;
                // disarm the deadline and drop scratch.
                let telemetry = checker.options().telemetry;
                checker.logical_db_mut().manager_mut().set_deadline(None);
                checker.logical_db_mut().gc();
                Ok(CheckReport::errored(panic_message(payload), telemetry))
            }
        }
    }

    /// Plan-cache hit/miss counters accumulated by
    /// [`ConstraintRegistry::check_cached`] (and everything routed through
    /// it: [`ConstraintRegistry::validate_all`],
    /// [`ConstraintRegistry::revalidate`]).
    pub fn plan_cache_stats(&self) -> PlanCacheMetrics {
        self.plan_stats
    }

    /// Validate everything, caching verdicts. Returns `(name, report)` in
    /// registration order.
    pub fn validate_all(&mut self, checker: &mut Checker) -> Result<Vec<(String, CheckReport)>> {
        let mut out = Vec::with_capacity(self.entries.len());
        for i in 0..self.entries.len() {
            let formula = self.entries[i].formula.clone();
            let report = self.check_cached(checker, &formula)?;
            let epoch = checker.epoch();
            let e = &mut self.entries[i];
            // Undecided verdicts (degraded/errored) are never cached: the
            // constraint stays dirty and is re-checked next round.
            e.last = report.verdict.is_decided().then_some(report.holds);
            e.validated_epoch = epoch;
            out.push((e.name.clone(), report));
        }
        Ok(out)
    }

    /// [`ConstraintRegistry::validate_all`] spread across `threads` worker
    /// threads via [`Checker::check_all_parallel`]: constraints are batched
    /// by the relations they read, each worker checks its batch on a
    /// private BDD manager, and the merged reports (identical verdicts, in
    /// registration order) refresh the cache exactly as the serial pass
    /// would.
    pub fn validate_all_parallel(
        &mut self,
        checker: &mut Checker,
        threads: usize,
    ) -> Result<Vec<(String, CheckReport)>> {
        let constraints: Vec<(String, Formula)> = self
            .entries
            .iter()
            .map(|e| (e.name.clone(), e.formula.clone()))
            .collect();
        let reports = checker.check_all_parallel(&constraints, threads)?;
        let epoch = checker.epoch();
        for (e, (_, r)) in self.entries.iter_mut().zip(&reports) {
            e.last = r.verdict.is_decided().then_some(r.holds);
            e.validated_epoch = epoch;
        }
        Ok(reports)
    }

    /// Re-check entry `i` if it is dirty with respect to `touched` (or
    /// epoch-stale, or never validated); otherwise return its cached
    /// verdict untouched.
    fn revalidate_entry(
        &mut self,
        checker: &mut Checker,
        i: usize,
        touched: &HashSet<&str>,
    ) -> Result<Verdict> {
        let e = &self.entries[i];
        if !e.dirty(checker, touched) {
            return Ok(Verdict::Cached {
                holds: e.last.expect("clean entries have a cached verdict"),
            });
        }
        let formula = e.formula.clone();
        let report = self.check_cached(checker, &formula)?;
        let epoch = checker.epoch();
        let e = &mut self.entries[i];
        e.last = report.verdict.is_decided().then_some(report.holds);
        e.validated_epoch = epoch;
        Ok(Verdict::Checked {
            holds: report.holds,
        })
    }

    /// After updates to `touched` relations, re-check only the constraints
    /// reading any of them; the rest report their cached verdict.
    /// Constraints never validated before are always checked, as are
    /// constraints whose cached verdict predates an explicit invalidation
    /// ([`Checker::rebuild_index`] / [`Checker::mark_sql_only`]) of a
    /// relation they read.
    pub fn revalidate(
        &mut self,
        checker: &mut Checker,
        touched: &[&str],
    ) -> Result<Vec<(String, Verdict)>> {
        let touched: HashSet<&str> = touched.iter().copied().collect();
        let mut out = Vec::with_capacity(self.entries.len());
        for i in 0..self.entries.len() {
            let verdict = self.revalidate_entry(checker, i, &touched)?;
            out.push((self.entries[i].name.clone(), verdict));
        }
        Ok(out)
    }

    /// [`ConstraintRegistry::revalidate`] for a single named constraint:
    /// re-checked only if its read-set intersects `touched` (or it is
    /// stale/unvalidated), answered from cache otherwise. Other entries
    /// are left exactly as they are — in particular their dirtiness with
    /// respect to `touched` is not consumed. Returns `None` for an
    /// unknown name.
    pub fn revalidate_one(
        &mut self,
        checker: &mut Checker,
        name: &str,
        touched: &[&str],
    ) -> Result<Option<Verdict>> {
        let Some(i) = self.entries.iter().position(|e| e.name == name) else {
            return Ok(None);
        };
        let touched: HashSet<&str> = touched.iter().copied().collect();
        self.revalidate_entry(checker, i, &touched).map(Some)
    }

    /// Apply a batch of tuple deltas through the persistent store's
    /// journaled incremental-maintenance path, then revalidate exactly
    /// the constraints reading a touched relation. Each delta is durable
    /// (journal-first with fsync) before it is applied, so a crash
    /// between the apply and the next check loses no acknowledged
    /// update — the next warm start replays the journal.
    pub fn revalidate_after_deltas(
        &mut self,
        checker: &mut Checker,
        store: &mut crate::store::IndexStore,
        deltas: &[(String, crate::store::Delta)],
    ) -> Result<Vec<(String, Verdict)>> {
        let mut touched: Vec<&str> = Vec::new();
        for (relation, delta) in deltas {
            store.journaled_apply(checker, relation, delta)?;
            if !touched.contains(&relation.as_str()) {
                touched.push(relation);
            }
        }
        self.revalidate(checker, &touched)
    }

    /// The registered `(name, formula)` pairs in registration order —
    /// the constraint list the workload advisor scores entry rungs for.
    pub fn constraints(&self) -> Vec<(String, Formula)> {
        self.entries
            .iter()
            .map(|e| (e.name.clone(), e.formula.clone()))
            .collect()
    }

    /// Run the workload-driven advisor over this registry's constraints
    /// and apply its advice to the checker — the `--route auto` /
    /// serve-re-advise entry point. Any route change goes through
    /// [`Checker::mark_sql_only`] / [`Checker::rebuild_index`], which
    /// bump the invalidation epoch, so every cached verdict reading a
    /// re-routed relation is retired on the next revalidate and the
    /// schema fingerprint of every affected plan changes: applying
    /// advice can re-route but never lets a stale verdict or plan
    /// survive the switch.
    pub fn apply_policy(
        &mut self,
        checker: &mut Checker,
        profile: &crate::policy::WorkloadProfile,
    ) -> Result<(crate::policy::Advice, crate::policy::AppliedAdvice)> {
        let constraints = self.constraints();
        let advice = crate::policy::advise(profile, checker, &constraints);
        let applied = crate::policy::apply_advice(checker, &advice)?;
        Ok((advice, applied))
    }

    /// Currently-cached verdicts (`None` = never validated).
    pub fn cached(&self) -> HashMap<String, Option<bool>> {
        self.entries
            .iter()
            .map(|e| (e.name.clone(), e.last))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::CheckerOptions;
    use relcheck_logic::parse;
    use relcheck_relstore::{Database, Raw};

    fn setup() -> (Checker, ConstraintRegistry) {
        let mut db = Database::new();
        db.create_relation(
            "R",
            &[("x", "k"), ("y", "k")],
            vec![
                vec![Raw::Int(1), Raw::Int(1)],
                vec![Raw::Int(2), Raw::Int(2)],
            ],
        )
        .unwrap();
        db.create_relation(
            "S",
            &[("x", "k")],
            vec![vec![Raw::Int(1)], vec![Raw::Int(2)]],
        )
        .unwrap();
        let ck = Checker::new(db, CheckerOptions::default());
        let mut reg = ConstraintRegistry::new();
        assert!(reg.register(
            "r-diagonal",
            parse("forall x, y. R(x, y) -> x = y").unwrap()
        ));
        assert!(reg.register(
            "r-covers-s",
            parse("forall x. S(x) -> exists y. R(x, y)").unwrap()
        ));
        assert!(reg.register("s-nonempty", parse("exists x. S(x)").unwrap()));
        (ck, reg)
    }

    #[test]
    fn duplicate_names_rejected() {
        let (_, mut reg) = setup();
        assert!(!reg.register("r-diagonal", parse("exists x. S(x)").unwrap()));
        assert_eq!(reg.names().len(), 3);
    }

    #[test]
    fn validate_all_caches_verdicts() {
        let (mut ck, mut reg) = setup();
        let reports = reg.validate_all(&mut ck).unwrap();
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(|(_, r)| r.holds));
        assert!(reg.cached().values().all(|v| *v == Some(true)));
    }

    #[test]
    fn revalidate_only_touches_dependents() {
        let (mut ck, mut reg) = setup();
        reg.validate_all(&mut ck).unwrap();
        // Break R's diagonal property via the incremental index.
        let one = ck.logical_db().db().code("k", &Raw::Int(1)).unwrap();
        let two = ck.logical_db().db().code("k", &Raw::Int(2)).unwrap();
        ck.logical_db_mut().insert_tuple("R", &[one, two]).unwrap();
        let verdicts = reg.revalidate(&mut ck, &["R"]).unwrap();
        let by_name: HashMap<_, _> = verdicts.into_iter().collect();
        assert!(matches!(
            by_name["r-diagonal"],
            Verdict::Checked { holds: false }
        ));
        assert!(matches!(
            by_name["r-covers-s"],
            Verdict::Checked { holds: true }
        ));
        // s-nonempty does not read R: cached.
        assert!(matches!(
            by_name["s-nonempty"],
            Verdict::Cached { holds: true }
        ));
    }

    #[test]
    fn rebuild_index_retires_cached_verdicts() {
        let (mut ck, mut reg) = setup();
        reg.validate_all(&mut ck).unwrap();
        // Mutate rows out-of-band — the store's recovery path writes
        // straight into the relation without touching data versions —
        // then rebuild the index. The registry sees no touched set;
        // only the invalidation epoch says the cache is stale.
        let one = ck.logical_db().db().code("k", &Raw::Int(1)).unwrap();
        let two = ck.logical_db().db().code("k", &Raw::Int(2)).unwrap();
        ck.logical_db_mut()
            .db_mut()
            .relation_mut("R")
            .unwrap()
            .insert(&[one, two])
            .unwrap();
        ck.rebuild_index("R").unwrap();
        let verdicts = reg.revalidate(&mut ck, &[]).unwrap();
        let by_name: HashMap<_, _> = verdicts.into_iter().collect();
        assert!(matches!(
            by_name["r-diagonal"],
            Verdict::Checked { holds: false }
        ));
        // A constraint not reading R keeps its cache.
        assert!(matches!(
            by_name["s-nonempty"],
            Verdict::Cached { holds: true }
        ));
    }

    #[test]
    fn mark_sql_only_retires_cached_verdicts() {
        let (mut ck, mut reg) = setup();
        reg.validate_all(&mut ck).unwrap();
        ck.mark_sql_only("R");
        let verdicts = reg.revalidate(&mut ck, &[]).unwrap();
        let by_name: HashMap<_, _> = verdicts.into_iter().collect();
        // Everything reading R re-checks (now via the SQL rung); the
        // S-only constraint still answers from cache.
        assert!(matches!(
            by_name["r-diagonal"],
            Verdict::Checked { holds: true }
        ));
        assert!(matches!(
            by_name["r-covers-s"],
            Verdict::Checked { holds: true }
        ));
        assert!(matches!(
            by_name["s-nonempty"],
            Verdict::Cached { holds: true }
        ));
    }

    #[test]
    fn revalidate_one_checks_only_the_named_constraint() {
        let (mut ck, mut reg) = setup();
        reg.validate_all(&mut ck).unwrap();
        let one = ck.logical_db().db().code("k", &Raw::Int(1)).unwrap();
        let two = ck.logical_db().db().code("k", &Raw::Int(2)).unwrap();
        ck.logical_db_mut().insert_tuple("R", &[one, two]).unwrap();
        // The named constraint re-checks against the touched set…
        let v = reg
            .revalidate_one(&mut ck, "r-diagonal", &["R"])
            .unwrap()
            .unwrap();
        assert!(matches!(v, Verdict::Checked { holds: false }));
        // …without consuming other entries' dirtiness: a later full
        // revalidate over the same touched set still re-checks them.
        let verdicts = reg.revalidate(&mut ck, &["R"]).unwrap();
        let by_name: HashMap<_, _> = verdicts.into_iter().collect();
        assert!(matches!(by_name["r-covers-s"], Verdict::Checked { .. }));
        assert!(reg
            .revalidate_one(&mut ck, "no-such", &[])
            .unwrap()
            .is_none());
    }

    #[test]
    fn apply_policy_routes_through_epoch_invalidation() {
        let (mut ck, mut reg) = setup();
        let before = reg.validate_all(&mut ck).unwrap();
        // A profile that always fell back on R forces an SQL route for
        // it; the application must bump the epoch so the next
        // revalidate re-checks everything reading R.
        let mut profile = crate::policy::WorkloadProfile::default();
        profile.relations.insert(
            "R".to_owned(),
            crate::policy::RelationProfile {
                rows: 3,
                sql_checks: 4,
                ..Default::default()
            },
        );
        let (advice, applied) = reg.apply_policy(&mut ck, &profile).unwrap();
        assert!(advice.sql_routed().contains("R"));
        assert_eq!(applied.sql_marked, vec!["R".to_owned()]);
        assert!(ck.is_sql_only("R"));
        let verdicts = reg.revalidate(&mut ck, &[]).unwrap();
        let by_name: HashMap<_, _> = verdicts.into_iter().collect();
        assert!(matches!(by_name["r-diagonal"], Verdict::Checked { .. }));
        assert!(matches!(by_name["s-nonempty"], Verdict::Cached { .. }));
        // Routing never changes a verdict.
        for (name, r) in &before {
            assert_eq!(by_name[name].holds(), r.holds, "{name}");
        }
    }

    #[test]
    fn unvalidated_constraints_always_check() {
        let (mut ck, mut reg) = setup();
        // No validate_all first: everything is dirty even with no touches.
        let verdicts = reg.revalidate(&mut ck, &[]).unwrap();
        assert!(verdicts
            .iter()
            .all(|(_, v)| matches!(v, Verdict::Checked { .. })));
        // Second pass with no touches: everything cached.
        let verdicts = reg.revalidate(&mut ck, &[]).unwrap();
        assert!(verdicts
            .iter()
            .all(|(_, v)| matches!(v, Verdict::Cached { .. })));
        assert!(verdicts.iter().all(|(_, v)| v.holds()));
    }
}
