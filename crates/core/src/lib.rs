#![warn(missing_docs)]

//! # relcheck-core — BDD logical indices and the constraint checker
//!
//! The primary contribution of *"Fast Identification of Relational
//! Constraint Violations"* (ICDE 2007): given a set of relations and a set
//! of user-defined first-order constraints, decide **which constraints are
//! violated** — fast, by manipulating ROBDD *logical indices* instead of
//! running SQL — and only then drill into the violating tuples.
//!
//! The pieces, mapped to the paper:
//!
//! * [`ordering`] — the variable-ordering heuristics of Section 3:
//!   [`ordering::max_inf_gain`] (information gain, ID3-style) and
//!   [`ordering::prob_converge`] (the Φ measure), plus random and
//!   exhaustive-optimal orderings for the Figure 2/3 experiments.
//! * [`index`] — [`index::LogicalDatabase`]: one shared [`relcheck_bdd::BddManager`]
//!   holding a BDD index per relation (built with a chosen attribute
//!   ordering, incrementally maintainable) plus pooled *query domains* that
//!   constraint variables are compiled into.
//! * [`compile`] — the FOL → BDD compiler implementing the Section 4
//!   evaluation strategy: prenex conversion, leading-quantifier elimination,
//!   ∀ push-down, rename-based equi-joins (with the naive equality-cube
//!   strategy kept for ablation), and fused `appex`/`appall`
//!   quantification, all under a node-budget.
//! * [`sqlgen`] — the Formula → relational-plan translator used for the SQL
//!   baseline and for the fallback when a BDD exceeds the node threshold.
//! * [`checker`] — [`checker::Checker`], the user-facing API:
//!   [`checker::Checker::check`] (which constraints are violated),
//!   [`checker::Checker::find_violations`] (the offending tuples), with
//!   per-check method/size/timing reports.
//! * [`parallel`] — [`parallel::ParallelChecker`] and
//!   [`checker::Checker::check_all_parallel`]: the constraint set spread
//!   over worker threads, each with a private BDD manager, with indices
//!   shipped as manager-independent snapshots and reports merged back
//!   deterministically.
//! * [`serve`] — [`serve::ServeEngine`], the long-lived session engine
//!   behind `relcheck serve`: deltas dirty relations, and each check
//!   re-verifies only the constraints whose read-set intersects the
//!   dirty set — the paper's "fast identification" applied to a
//!   *changing* database instead of a cold batch.
//!
//! ```
//! use relcheck_core::checker::{Checker, CheckerOptions};
//! use relcheck_relstore::{Database, Raw};
//! use relcheck_logic::parse;
//!
//! let mut db = Database::new();
//! db.create_relation(
//!     "CUST",
//!     &[("city", "city"), ("areacode", "areacode")],
//!     vec![
//!         vec![Raw::str("Toronto"), Raw::Int(416)],
//!         vec![Raw::str("Toronto"), Raw::Int(212)], // bad prefix
//!     ],
//! ).unwrap();
//! let mut checker = Checker::new(db, CheckerOptions::default());
//! let c = parse(r#"forall c, a. CUST(c, a) & c = "Toronto" -> a in {416, 647}"#).unwrap();
//! let report = checker.check(&c).unwrap();
//! assert!(!report.holds);
//! ```

pub mod certify;
pub mod checker;
pub mod compile;
mod error;
pub mod exec;
pub mod index;
pub mod ordering;
pub mod parallel;
pub mod plan;
pub mod planner;
pub mod policy;
pub mod registry;
pub mod serve;
pub mod sqlgen;
pub mod store;
pub mod telemetry;

pub use certify::{AuditError, AuditOutcome, Certificate, Witnesses};
pub use checker::{CheckReport, Checker, CheckerOptions, Method, Verdict};
pub use error::{CoreError, Result};
pub use index::{IndexSnapshot, LogicalDatabase};
pub use ordering::OrderingStrategy;
pub use parallel::{IndexTransfer, ParallelChecker};
pub use plan::{plans_to_json, CheckPlan, PlanOptions};
pub use policy::{Advice, AppliedAdvice, IndexAdvice, Route, RoutePolicy, WorkloadProfile};
pub use registry::ConstraintRegistry;
pub use serve::{ApplyOutcome, ServeActor, ServeClient, ServeConfig, ServeEngine, Submission};
pub use store::{Delta, IndexStore, VerifyStatus};
pub use telemetry::{
    AuditMetrics, CheckTrace, DegradationSummary, FallbackReason, FleetTelemetry,
    IndexCacheMetrics, OverloadMetrics, PassStat, PlanCacheMetrics, PolicyMetrics, RecoveryRecord,
    RewriteRule, RuleFiring, RunMetrics, ServeMetrics, WorkerTelemetry,
};
