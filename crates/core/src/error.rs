//! Unified error type for the checker stack.

use relcheck_bdd::{BddError, DecodeError};
use relcheck_logic::LogicError;
use relcheck_relstore::StoreError;
use std::fmt;

/// Errors surfaced by index construction and constraint checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Propagated BDD-engine error. `NodeLimit` is handled internally by the
    /// fallback machinery and only escapes when no fallback applies.
    Bdd(BddError),
    /// Propagated relational-engine error.
    Store(StoreError),
    /// Propagated constraint-language error.
    Logic(LogicError),
    /// `find_violations` was asked for tuples of a constraint shape the SQL
    /// translator does not cover.
    UnsupportedForViolationQuery(String),
    /// The compiler needed a relation's BDD index but none was built.
    MissingIndex(String),
    /// An index snapshot's byte representation failed structural
    /// validation (truncated, bit-flipped, or otherwise corrupted input).
    SnapshotDecode(DecodeError),
    /// A filesystem operation in the persistent index store failed.
    /// `std::io::Error` is neither `Clone` nor `Eq`, so the store captures
    /// the operation, path, and rendered message instead.
    Io {
        /// What was being attempted (`"open"`, `"write"`, `"rename"`, …).
        op: &'static str,
        /// The path involved.
        path: String,
        /// The rendered `std::io::Error`.
        message: String,
    },
    /// A journaled value belongs to a domain the cached index cannot
    /// represent: replaying it would need a wider BDD block than the
    /// segment was built with. The store answers this by rebuilding.
    DomainOverflow {
        /// Relation whose cached index is too narrow.
        relation: String,
        /// The attribute class that outgrew its block.
        class: String,
    },
    /// `relcheck index` was asked about a relation with no cache entry.
    NotCached(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Bdd(e) => write!(f, "bdd: {e}"),
            CoreError::Store(e) => write!(f, "store: {e}"),
            CoreError::Logic(e) => write!(f, "logic: {e}"),
            CoreError::UnsupportedForViolationQuery(what) => {
                write!(
                    f,
                    "cannot enumerate violations for this constraint shape: {what}"
                )
            }
            CoreError::MissingIndex(rel) => {
                write!(f, "no BDD index built for relation {rel:?}")
            }
            CoreError::SnapshotDecode(e) => write!(f, "snapshot: {e}"),
            CoreError::Io { op, path, message } => {
                write!(f, "index store: cannot {op} {path}: {message}")
            }
            CoreError::DomainOverflow { relation, class } => write!(
                f,
                "cached index for {relation:?} cannot represent new {class:?} values (domain overflow)"
            ),
            CoreError::NotCached(rel) => {
                write!(f, "no cached index for relation {rel:?}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<BddError> for CoreError {
    fn from(e: BddError) -> Self {
        CoreError::Bdd(e)
    }
}

impl From<StoreError> for CoreError {
    fn from(e: StoreError) -> Self {
        CoreError::Store(e)
    }
}

impl From<LogicError> for CoreError {
    fn from(e: LogicError) -> Self {
        CoreError::Logic(e)
    }
}

impl From<DecodeError> for CoreError {
    fn from(e: DecodeError) -> Self {
        CoreError::SnapshotDecode(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CoreError>;
