//! Violation certificates and the independent audit re-checker.
//!
//! A [`Certificate`] packages everything needed to re-establish a verdict
//! without trusting the BDD engine: the constraint's formula (re-parseable
//! concrete syntax), the planner's constraint/schema fingerprints, the
//! data version, the verdict with the degradation-ladder rung that decided
//! it, and — for `Violated` — witness tuples enumerated from the violation
//! BDD via [`sat_assignments`] with the **exact** violation total from
//! [`sat_count`].
//!
//! The re-checker ([`verify_certificate`]) is deliberately primitive: it
//! evaluates the original FOL formula with the naive active-domain
//! interpreter ([`relcheck_logic::eval`]) directly over the relstore rows
//! — no planner, no rewrites, no BDDs — so a bug anywhere in the fast
//! path (or a tampered certificate) surfaces as a typed [`AuditError`]
//! instead of being silently trusted.
//!
//! Trust model, per verdict (see `DESIGN.md` §8):
//!
//! * `Violated` + witnesses — each witness substitution is checked to
//!   falsify the quantifier-stripped matrix, and when the assignment
//!   space is small enough the exact violation total is independently
//!   recounted.
//! * `Violated` without witnesses — the full sentence is re-evaluated and
//!   must come out false.
//! * `Holds` — audited by full re-evaluation (cost: active-domain
//!   enumeration); there is no witness-sized shortcut for a universal
//!   claim.
//! * `Degraded` / `Errored` — **uncertifiable**: verification returns
//!   [`AuditError::Unauditable`], never a silent pass.
//!
//! [`sat_assignments`]: relcheck_bdd::BddManager::sat_assignments
//! [`sat_count`]: relcheck_bdd::BddManager::sat_count

use crate::checker::{CheckReport, Checker, Method, Verdict};
use crate::error::Result;
use crate::plan::formula_fingerprint;
use crate::telemetry::{parse_json, Json, JsonWriter};
use relcheck_logic::eval::{eval_sentence, EvalContext};
use relcheck_logic::{parse, Formula};
use relcheck_relstore::{Database, Raw};
use std::collections::HashMap;
use std::fmt;

/// Format version written into every certificate.
pub const CERTIFICATE_VERSION: i64 = 1;

/// Witness-enumeration cap when the caller does not pass
/// `--witness-limit`.
pub const DEFAULT_WITNESS_LIMIT: usize = 10;

/// Above this many candidate assignments the verifier skips the exact
/// recount (per-witness checks still run); below it the claimed total is
/// re-derived by exhaustive enumeration.
const RECOUNT_BOUND: f64 = 200_000.0;

/// Witness tuples attached to a `Violated` certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct Witnesses {
    /// The constraint's leading universal variables, prefix order.
    pub vars: Vec<String>,
    /// Attribute class of each variable (parallel to `vars`).
    pub classes: Vec<String>,
    /// Exact number of violating assignments ([`sat_count`] over the
    /// violation BDD, domain ranges conjoined).
    ///
    /// [`sat_count`]: relcheck_bdd::BddManager::sat_count
    pub total: f64,
    /// True iff `tuples` is a strict prefix of the violation set
    /// (`tuples.len() < total`).
    pub truncated: bool,
    /// Up to `--witness-limit` violating tuples, decoded to raw values
    /// (parallel to `vars`).
    pub tuples: Vec<Vec<Raw>>,
}

/// A serializable, independently re-checkable record of one verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Constraint name, as registered.
    pub constraint: String,
    /// The constraint's formula in re-parseable concrete syntax.
    pub formula: String,
    /// Planner fingerprint of the formula ([`formula_fingerprint`]).
    pub constraint_fp: u64,
    /// Planner fingerprint of the schema/options the check ran under
    /// ([`Checker::schema_fingerprint`]). Provenance only: it depends on
    /// engine state (index epochs) the auditor cannot recompute.
    pub schema_fp: u64,
    /// The logical database's data version at emission. Provenance only,
    /// like `schema_fp`.
    pub data_version: u64,
    /// The verdict being certified.
    pub verdict: Verdict,
    /// The degradation-ladder rung that decided it (`"bdd"`,
    /// `"gc_retry"`, `"sql"`, `"brute_force"`, `"degraded"`,
    /// `"errored"`).
    pub rung: String,
    /// Witness tuples; present only on `Violated` certificates whose
    /// violation set was enumerable on the BDD path.
    pub witnesses: Option<Witnesses>,
}

/// What went wrong while parsing or verifying a certificate. Every
/// variant is a *typed* rejection: the audit never reports a bare
/// boolean, so tampering and engine bugs stay distinguishable.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditError {
    /// The document is not well-formed JSON.
    Json(String),
    /// A required field is missing or has the wrong type/value.
    Field {
        /// Where in the document (e.g. `certs[2].witnesses.total`).
        path: String,
        /// What was expected there.
        expected: String,
    },
    /// The certificate's format version is not supported.
    UnsupportedVersion(i64),
    /// The certificate names a constraint the spec does not define.
    UnknownConstraint(String),
    /// The embedded formula text does not parse.
    Formula {
        /// The certificate's constraint name.
        constraint: String,
        /// Parser diagnostic.
        message: String,
    },
    /// The embedded formula does not hash to the embedded
    /// `constraint_fp` — the formula text or the fingerprint was altered.
    FingerprintMismatch {
        /// The certificate's constraint name.
        constraint: String,
        /// Fingerprint claimed by the certificate.
        claimed: u64,
        /// Fingerprint of the embedded formula text.
        actual: u64,
    },
    /// The embedded formula is not the constraint registered under this
    /// name in the spec being audited against.
    FormulaMismatch {
        /// The certificate's constraint name.
        constraint: String,
    },
    /// A witness tuple has the wrong arity, or `vars`/`classes` lengths
    /// disagree.
    WitnessShape {
        /// The certificate's constraint name.
        constraint: String,
        /// Index of the offending tuple (`usize::MAX` for the header).
        index: usize,
    },
    /// The witness variables are not the constraint's leading universal
    /// variables.
    WitnessVarsMismatch {
        /// The certificate's constraint name.
        constraint: String,
    },
    /// A witness value is not in its class's active domain — it cannot
    /// occur in any relation row, so it cannot be part of a genuine
    /// violation (the classic single-byte tamper).
    WitnessValueUnknown {
        /// The certificate's constraint name.
        constraint: String,
        /// Index of the offending tuple.
        index: usize,
        /// The variable whose value is unknown.
        var: String,
        /// The rendered value.
        value: String,
    },
    /// A claimed witness does **not** falsify the constraint's matrix
    /// under the naive interpreter.
    WitnessNotViolating {
        /// The certificate's constraint name.
        constraint: String,
        /// Index of the offending tuple.
        index: usize,
    },
    /// The claimed exact violation total disagrees with the independent
    /// recount.
    CountMismatch {
        /// The certificate's constraint name.
        constraint: String,
        /// Total claimed by the certificate.
        claimed: f64,
        /// Total from exhaustive re-enumeration.
        actual: f64,
    },
    /// Re-evaluating the full sentence contradicts the certified verdict.
    VerdictMismatch {
        /// The certificate's constraint name.
        constraint: String,
        /// The certified verdict.
        claimed: Verdict,
        /// What the naive interpreter found (`true` = holds).
        reevaluated_holds: bool,
    },
    /// `Degraded`/`Errored` verdicts carry no decidable claim; they are
    /// explicitly not auditable and never silently pass.
    Unauditable {
        /// The certificate's constraint name.
        constraint: String,
        /// The undecided verdict.
        verdict: Verdict,
    },
    /// The naive interpreter itself rejected the formula (unknown
    /// relation, sort conflict, …) — the certificate cannot be about this
    /// database.
    Eval {
        /// The certificate's constraint name.
        constraint: String,
        /// The interpreter diagnostic.
        message: String,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::Json(m) => write!(f, "malformed certificate document: {m}"),
            AuditError::Field { path, expected } => {
                write!(f, "certificate field {path}: expected {expected}")
            }
            AuditError::UnsupportedVersion(v) => {
                write!(f, "unsupported certificate_version {v}")
            }
            AuditError::UnknownConstraint(c) => {
                write!(f, "certificate names unknown constraint {c:?}")
            }
            AuditError::Formula {
                constraint,
                message,
            } => write!(
                f,
                "{constraint}: embedded formula does not parse: {message}"
            ),
            AuditError::FingerprintMismatch {
                constraint,
                claimed,
                actual,
            } => write!(
                f,
                "{constraint}: formula hashes to {actual:#018x}, certificate claims {claimed:#018x}"
            ),
            AuditError::FormulaMismatch { constraint } => write!(
                f,
                "{constraint}: embedded formula is not the registered constraint"
            ),
            AuditError::WitnessShape { constraint, index } => {
                write!(f, "{constraint}: witness tuple {index} has the wrong shape")
            }
            AuditError::WitnessVarsMismatch { constraint } => write!(
                f,
                "{constraint}: witness variables are not the leading universals"
            ),
            AuditError::WitnessValueUnknown {
                constraint,
                index,
                var,
                value,
            } => write!(
                f,
                "{constraint}: witness tuple {index} binds {var} to {value:?}, \
                 which is outside its active domain"
            ),
            AuditError::WitnessNotViolating { constraint, index } => write!(
                f,
                "{constraint}: witness tuple {index} does not falsify the constraint matrix"
            ),
            AuditError::CountMismatch {
                constraint,
                claimed,
                actual,
            } => write!(
                f,
                "{constraint}: certificate claims {claimed} violations, recount found {actual}"
            ),
            AuditError::VerdictMismatch {
                constraint,
                claimed,
                reevaluated_holds,
            } => write!(
                f,
                "{constraint}: certified verdict {} but naive re-evaluation says holds={}",
                claimed.name(),
                reevaluated_holds
            ),
            AuditError::Unauditable {
                constraint,
                verdict,
            } => write!(
                f,
                "{constraint}: verdict {} is undecided and cannot be audited",
                verdict.name()
            ),
            AuditError::Eval {
                constraint,
                message,
            } => write!(f, "{constraint}: re-evaluation failed: {message}"),
        }
    }
}

impl std::error::Error for AuditError {}

/// What an accepted certificate was checked against.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditOutcome {
    /// The constraint.
    pub constraint: String,
    /// The certified verdict.
    pub verdict: Verdict,
    /// Witness substitutions individually re-checked.
    pub witnesses_checked: usize,
    /// Whether the exact violation total was independently recounted
    /// (false when the assignment space exceeded the recount bound or
    /// the certificate carried no witnesses).
    pub recounted: bool,
}

/// The leading block of universal variables, syntactically — no
/// rewriting, so it matches what an auditor sees in the formula text.
fn leading_forall_vars(f: &Formula) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = f;
    while let Formula::Forall(vs, g) = cur {
        out.extend(vs.iter().cloned());
        cur = g;
    }
    out
}

/// The formula with its leading universal block stripped — the matrix a
/// witness substitution must falsify.
fn strip_leading_foralls(f: &Formula) -> &Formula {
    let mut cur = f;
    while let Formula::Forall(_, g) = cur {
        cur = g;
    }
    cur
}

/// The ladder rung that decided a report: the trace's last rung when
/// telemetry was on, otherwise reconstructed from method + verdict.
fn rung_name(report: &CheckReport) -> &'static str {
    if let Some(t) = &report.metrics {
        if let Some(last) = t.ladder.last() {
            return last;
        }
    }
    match (report.verdict, report.method) {
        (Verdict::Degraded, _) => "degraded",
        (Verdict::Errored, _) => "errored",
        (_, Method::Bdd) => "bdd",
        (_, Method::SqlFallback) => "sql",
        (_, Method::BruteForce) => "brute_force",
        (_, Method::Aborted) => "errored",
    }
}

/// Emit a certificate for one checked constraint.
///
/// For `Violated` verdicts this enumerates up to `witness_limit` witness
/// tuples from the violation BDD — but only attaches them when the
/// violation set's variables are exactly the formula's syntactic leading
/// universals (rewrites can rename or reorder them; a certificate must
/// stay auditable from its own text). A budget abort or non-∀-prefixed
/// shape simply yields a witness-free certificate, which the auditor
/// re-checks by full re-evaluation instead.
pub fn emit_certificate(
    checker: &mut Checker,
    name: &str,
    f: &Formula,
    report: &CheckReport,
    witness_limit: usize,
) -> Result<Certificate> {
    let (constraint_fp, schema_fp) = checker.plan_key(f)?;
    let witnesses = if report.verdict == Verdict::Violated {
        match checker.find_violations_counted(f, witness_limit)? {
            Some(cv) if cv.vars == leading_forall_vars(f) => {
                let db = checker.logical_db().db();
                let tuples: Vec<Vec<Raw>> = cv
                    .rows
                    .iter()
                    .map(|row| {
                        row.iter()
                            .zip(&cv.classes)
                            .map(|(&code, class)| {
                                db.dict(class).expect("indexed class").decode(code).clone()
                            })
                            .collect()
                    })
                    .collect();
                Some(Witnesses {
                    truncated: (tuples.len() as f64) < cv.total,
                    vars: cv.vars,
                    classes: cv.classes,
                    total: cv.total,
                    tuples,
                })
            }
            _ => None,
        }
    } else {
        None
    };
    // After plan_key/find_violations_counted: index builds bump the data
    // version, and the certificate must record the state it was checked
    // against.
    let data_version = checker.logical_db().data_version();
    Ok(Certificate {
        constraint: name.to_owned(),
        formula: f.to_string(),
        constraint_fp,
        schema_fp,
        data_version,
        verdict: report.verdict,
        rung: rung_name(report).to_owned(),
        witnesses,
    })
}

/// Emit certificates for a whole run of reports (e.g. the output of
/// [`crate::registry::ConstraintRegistry::validate_all`]).
pub fn emit_certificates(
    checker: &mut Checker,
    constraints: &[(String, Formula)],
    reports: &[(String, CheckReport)],
    witness_limit: usize,
) -> Result<Vec<Certificate>> {
    let by_name: HashMap<&str, &Formula> =
        constraints.iter().map(|(n, f)| (n.as_str(), f)).collect();
    let mut out = Vec::with_capacity(reports.len());
    for (name, report) in reports {
        let f = by_name
            .get(name.as_str())
            .expect("report names come from the constraint list");
        out.push(emit_certificate(checker, name, f, report, witness_limit)?);
    }
    Ok(out)
}

/// Verify one certificate against the database and spec constraints with
/// the naive interpreter only. See the module docs for the per-verdict
/// trust model.
pub fn verify_certificate(
    db: &Database,
    constraints: &[(String, Formula)],
    cert: &Certificate,
) -> std::result::Result<AuditOutcome, AuditError> {
    let constraint = cert.constraint.clone();
    let registered = constraints
        .iter()
        .find(|(n, _)| *n == cert.constraint)
        .map(|(_, f)| f)
        .ok_or_else(|| AuditError::UnknownConstraint(constraint.clone()))?;
    let f = parse(&cert.formula).map_err(|e| AuditError::Formula {
        constraint: constraint.clone(),
        message: e.to_string(),
    })?;
    let actual_fp = formula_fingerprint(&f);
    if actual_fp != cert.constraint_fp {
        return Err(AuditError::FingerprintMismatch {
            constraint,
            claimed: cert.constraint_fp,
            actual: actual_fp,
        });
    }
    if formula_fingerprint(registered) != cert.constraint_fp {
        return Err(AuditError::FormulaMismatch { constraint });
    }
    match cert.verdict {
        Verdict::Degraded | Verdict::Errored => Err(AuditError::Unauditable {
            constraint,
            verdict: cert.verdict,
        }),
        Verdict::Holds => {
            let holds = eval_sentence(db, &f).map_err(|e| AuditError::Eval {
                constraint: constraint.clone(),
                message: e.to_string(),
            })?;
            if !holds {
                return Err(AuditError::VerdictMismatch {
                    constraint,
                    claimed: Verdict::Holds,
                    reevaluated_holds: false,
                });
            }
            Ok(AuditOutcome {
                constraint,
                verdict: Verdict::Holds,
                witnesses_checked: 0,
                recounted: false,
            })
        }
        Verdict::Violated => match &cert.witnesses {
            Some(w) => verify_witnesses(db, &f, w, constraint),
            None => {
                let holds = eval_sentence(db, &f).map_err(|e| AuditError::Eval {
                    constraint: constraint.clone(),
                    message: e.to_string(),
                })?;
                if holds {
                    return Err(AuditError::VerdictMismatch {
                        constraint,
                        claimed: Verdict::Violated,
                        reevaluated_holds: true,
                    });
                }
                Ok(AuditOutcome {
                    constraint,
                    verdict: Verdict::Violated,
                    witnesses_checked: 0,
                    recounted: false,
                })
            }
        },
    }
}

fn verify_witnesses(
    db: &Database,
    f: &Formula,
    w: &Witnesses,
    constraint: String,
) -> std::result::Result<AuditOutcome, AuditError> {
    if w.vars != leading_forall_vars(f) {
        return Err(AuditError::WitnessVarsMismatch { constraint });
    }
    if w.classes.len() != w.vars.len() {
        return Err(AuditError::WitnessShape {
            constraint,
            index: usize::MAX,
        });
    }
    let matrix = strip_leading_foralls(f);
    let ctx = match EvalContext::open(db, matrix) {
        Ok(ctx) => ctx,
        // The matrix alone may not determine every variable's sort (a
        // variable used only against constants). Fall back to the
        // witness-free audit: the full sentence must still be false.
        Err(_) => {
            let holds = eval_sentence(db, f).map_err(|e| AuditError::Eval {
                constraint: constraint.clone(),
                message: e.to_string(),
            })?;
            if holds {
                return Err(AuditError::VerdictMismatch {
                    constraint,
                    claimed: Verdict::Violated,
                    reevaluated_holds: true,
                });
            }
            return Ok(AuditOutcome {
                constraint,
                verdict: Verdict::Violated,
                witnesses_checked: 0,
                recounted: false,
            });
        }
    };
    // The interpreter inferred its own sorts; the certificate's classes
    // must agree, or witness codes would be looked up in the wrong
    // dictionaries.
    for (v, class) in w.vars.iter().zip(&w.classes) {
        if ctx.sorts().get(v) != Some(class) {
            return Err(AuditError::WitnessVarsMismatch { constraint });
        }
    }
    for (i, tuple) in w.tuples.iter().enumerate() {
        if tuple.len() != w.vars.len() {
            return Err(AuditError::WitnessShape {
                constraint,
                index: i,
            });
        }
        let mut env = HashMap::with_capacity(w.vars.len());
        for ((v, class), raw) in w.vars.iter().zip(&w.classes).zip(tuple) {
            let code = db
                .code(class, raw)
                .ok_or_else(|| AuditError::WitnessValueUnknown {
                    constraint: constraint.clone(),
                    index: i,
                    var: v.clone(),
                    value: raw.to_string(),
                })?;
            env.insert(v.clone(), code);
        }
        if ctx.eval_with(&env) {
            return Err(AuditError::WitnessNotViolating {
                constraint,
                index: i,
            });
        }
    }
    // A non-empty verified witness list already proves the violation; an
    // empty one (witness_limit 0) still needs the full-sentence check.
    if w.tuples.is_empty() && w.total > 0.0 {
        let holds = eval_sentence(db, f).map_err(|e| AuditError::Eval {
            constraint: constraint.clone(),
            message: e.to_string(),
        })?;
        if holds {
            return Err(AuditError::VerdictMismatch {
                constraint,
                claimed: Verdict::Violated,
                reevaluated_holds: true,
            });
        }
    }
    // Exact recount when the assignment space is small enough: walk the
    // active-domain product of the witness variables and count falsifying
    // assignments.
    let space: f64 = w
        .classes
        .iter()
        .map(|c| db.class_size(c).max(1) as f64)
        .product();
    let mut recounted = false;
    if space <= RECOUNT_BOUND {
        let sizes: Vec<u32> = w
            .classes
            .iter()
            .map(|c| db.class_size(c).max(1) as u32)
            .collect();
        let mut codes = vec![0u32; w.vars.len()];
        let mut count = 0f64;
        loop {
            let env: HashMap<String, u32> =
                w.vars.iter().cloned().zip(codes.iter().copied()).collect();
            if !ctx.eval_with(&env) {
                count += 1.0;
            }
            // Odometer increment over the mixed-radix code vector.
            let mut pos = w.vars.len();
            loop {
                if pos == 0 {
                    break;
                }
                pos -= 1;
                codes[pos] += 1;
                if codes[pos] < sizes[pos] {
                    break;
                }
                codes[pos] = 0;
                if pos == 0 {
                    pos = usize::MAX;
                    break;
                }
            }
            if pos == usize::MAX || w.vars.is_empty() {
                break;
            }
        }
        if count != w.total {
            return Err(AuditError::CountMismatch {
                constraint,
                claimed: w.total,
                actual: count,
            });
        }
        recounted = true;
    }
    // Internal consistency of the header itself.
    if w.truncated != ((w.tuples.len() as f64) < w.total) {
        return Err(AuditError::Field {
            path: format!("{constraint}.witnesses.truncated"),
            expected: "truncated == (tuples.len() < total)".to_owned(),
        });
    }
    Ok(AuditOutcome {
        constraint,
        verdict: Verdict::Violated,
        witnesses_checked: w.tuples.len(),
        recounted,
    })
}

// ---------------------------------------------------------------------
// JSON round trip (hand-rolled, std-only, byte-stable)
// ---------------------------------------------------------------------

/// `u64` fingerprints travel as JSON strings: the parser (and many
/// consumers) give JSON integers only `i64` range. Matches the metrics
/// schema's failpoint-seed precedent.
fn write_u64_str(w: &mut JsonWriter, v: u64) {
    w.string(&v.to_string());
}

/// Exact violation totals travel as strings too: they are `f64` counts
/// that can exceed every integer type, and a string round-trips
/// byte-identically.
fn format_total(t: f64) -> String {
    if t >= 0.0 && t == t.trunc() && t <= u64::MAX as f64 {
        format!("{}", t as u64)
    } else {
        format!("{t}")
    }
}

fn write_raw_value(w: &mut JsonWriter, raw: &Raw) {
    w.obj_open();
    match raw {
        Raw::Int(i) => {
            w.key("int");
            w.raw(&i.to_string());
        }
        Raw::Str(s) => {
            w.key("str");
            w.string(s);
        }
    }
    w.obj_close();
}

fn write_certificate(w: &mut JsonWriter, cert: &Certificate) {
    w.obj_open();
    w.key("certificate_version");
    w.raw(&CERTIFICATE_VERSION.to_string());
    w.key("constraint");
    w.string(&cert.constraint);
    w.key("formula");
    w.string(&cert.formula);
    w.key("constraint_fp");
    write_u64_str(w, cert.constraint_fp);
    w.key("schema_fp");
    write_u64_str(w, cert.schema_fp);
    w.key("data_version");
    w.raw(&cert.data_version.to_string());
    w.key("verdict");
    w.string(cert.verdict.name());
    w.key("rung");
    w.string(&cert.rung);
    w.key("witnesses");
    match &cert.witnesses {
        None => w.raw("null"),
        Some(ws) => {
            w.obj_open();
            w.key("vars");
            w.arr_open();
            for v in &ws.vars {
                w.string(v);
            }
            w.arr_close();
            w.key("classes");
            w.arr_open();
            for c in &ws.classes {
                w.string(c);
            }
            w.arr_close();
            w.key("total");
            w.string(&format_total(ws.total));
            w.key("truncated");
            w.raw(if ws.truncated { "true" } else { "false" });
            w.key("tuples");
            w.arr_open();
            for tuple in &ws.tuples {
                w.arr_open();
                for raw in tuple {
                    write_raw_value(w, raw);
                }
                w.arr_close();
            }
            w.arr_close();
            w.obj_close();
        }
    }
    w.obj_close();
}

impl Certificate {
    /// Render one certificate as a JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        write_certificate(&mut w, self);
        w.finish()
    }
}

/// Render a bundle of certificates as a JSON array — the `--certify` /
/// `audit emit` file format.
pub fn bundle_to_json(certs: &[Certificate]) -> String {
    let mut w = JsonWriter::new();
    w.arr_open();
    for c in certs {
        write_certificate(&mut w, c);
    }
    w.arr_close();
    w.finish()
}

fn field_err(path: &str, expected: &str) -> AuditError {
    AuditError::Field {
        path: path.to_owned(),
        expected: expected.to_owned(),
    }
}

fn get_str(v: &Json, at: &str, field: &str) -> std::result::Result<String, AuditError> {
    v.get(field)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| field_err(&format!("{at}.{field}"), "string"))
}

fn get_u64_str(v: &Json, at: &str, field: &str) -> std::result::Result<u64, AuditError> {
    get_str(v, at, field)?
        .parse::<u64>()
        .map_err(|_| field_err(&format!("{at}.{field}"), "u64-as-string"))
}

fn parse_raw_value(v: &Json, at: &str) -> std::result::Result<Raw, AuditError> {
    match (v.get("int"), v.get("str")) {
        (Some(Json::Int(i)), None) => Ok(Raw::Int(*i)),
        (None, Some(Json::Str(s))) => Ok(Raw::Str(s.clone())),
        _ => Err(field_err(at, "{\"int\": n} or {\"str\": s}")),
    }
}

fn certificate_from_json(v: &Json, at: &str) -> std::result::Result<Certificate, AuditError> {
    let version = v
        .get("certificate_version")
        .and_then(Json::as_int)
        .ok_or_else(|| field_err(&format!("{at}.certificate_version"), "integer"))?;
    if version != CERTIFICATE_VERSION {
        return Err(AuditError::UnsupportedVersion(version));
    }
    let constraint = get_str(v, at, "constraint")?;
    let formula = get_str(v, at, "formula")?;
    let constraint_fp = get_u64_str(v, at, "constraint_fp")?;
    let schema_fp = get_u64_str(v, at, "schema_fp")?;
    let data_version = v
        .get("data_version")
        .and_then(Json::as_int)
        .filter(|n| *n >= 0)
        .ok_or_else(|| field_err(&format!("{at}.data_version"), "non-negative integer"))?
        as u64;
    let verdict = match v.get("verdict").and_then(Json::as_str) {
        Some("holds") => Verdict::Holds,
        Some("violated") => Verdict::Violated,
        Some("degraded") => Verdict::Degraded,
        Some("errored") => Verdict::Errored,
        _ => {
            return Err(field_err(
                &format!("{at}.verdict"),
                "holds|violated|degraded|errored",
            ))
        }
    };
    let rung = get_str(v, at, "rung")?;
    if ![
        "bdd",
        "gc_retry",
        "sql",
        "brute_force",
        "degraded",
        "errored",
    ]
    .contains(&rung.as_str())
    {
        return Err(field_err(&format!("{at}.rung"), "a known ladder rung"));
    }
    let witnesses = match v.get("witnesses") {
        None => return Err(field_err(&format!("{at}.witnesses"), "object or null")),
        Some(Json::Null) => None,
        Some(ws) => {
            let wat = format!("{at}.witnesses");
            let strings = |field: &str| -> std::result::Result<Vec<String>, AuditError> {
                ws.get(field)
                    .and_then(Json::as_arr)
                    .ok_or_else(|| field_err(&format!("{wat}.{field}"), "array"))?
                    .iter()
                    .map(|s| {
                        s.as_str()
                            .map(str::to_owned)
                            .ok_or_else(|| field_err(&format!("{wat}.{field}[]"), "string"))
                    })
                    .collect()
            };
            let vars = strings("vars")?;
            let classes = strings("classes")?;
            let total = get_str(ws, &wat, "total")?
                .parse::<f64>()
                .map_err(|_| field_err(&format!("{wat}.total"), "numeric string"))?;
            let truncated = match ws.get("truncated") {
                Some(Json::Bool(b)) => *b,
                _ => return Err(field_err(&format!("{wat}.truncated"), "boolean")),
            };
            let tuples = ws
                .get("tuples")
                .and_then(Json::as_arr)
                .ok_or_else(|| field_err(&format!("{wat}.tuples"), "array"))?
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    t.as_arr()
                        .ok_or_else(|| field_err(&format!("{wat}.tuples[{i}]"), "array"))?
                        .iter()
                        .map(|rv| parse_raw_value(rv, &format!("{wat}.tuples[{i}][]")))
                        .collect::<std::result::Result<Vec<Raw>, AuditError>>()
                })
                .collect::<std::result::Result<Vec<Vec<Raw>>, AuditError>>()?;
            Some(Witnesses {
                vars,
                classes,
                total,
                truncated,
                tuples,
            })
        }
    };
    Ok(Certificate {
        constraint,
        formula,
        constraint_fp,
        schema_fp,
        data_version,
        verdict,
        rung,
        witnesses,
    })
}

/// Parse a certificate bundle: a JSON array of certificates, or a single
/// certificate object.
pub fn parse_bundle(text: &str) -> std::result::Result<Vec<Certificate>, AuditError> {
    let doc = parse_json(text).map_err(AuditError::Json)?;
    match &doc {
        Json::Arr(items) => items
            .iter()
            .enumerate()
            .map(|(i, v)| certificate_from_json(v, &format!("certs[{i}]")))
            .collect(),
        Json::Obj(_) => Ok(vec![certificate_from_json(&doc, "cert")?]),
        _ => Err(AuditError::Json(
            "expected a certificate object or array".to_owned(),
        )),
    }
}

/// Verify a whole bundle, returning each certificate's outcome in order.
pub fn verify_bundle(
    db: &Database,
    constraints: &[(String, Formula)],
    certs: &[Certificate],
) -> Vec<(String, std::result::Result<AuditOutcome, AuditError>)> {
    certs
        .iter()
        .map(|c| (c.constraint.clone(), verify_certificate(db, constraints, c)))
        .collect()
}
