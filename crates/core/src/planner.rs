//! Formula → [`CheckPlan`]: the pure pass manager.
//!
//! This is the front half of the old `compile.rs` monolith, refactored so
//! the paper's §4.4 rewrite pipeline is a sequence of discrete,
//! individually-toggleable passes whose effects are recorded in the plan:
//!
//! 1. `prenex-pullup` (R3): quantifier pull-up into prenex normal form;
//! 2. `strip-leading-block` (R1): leading-quantifier-block elimination,
//!    choosing the validity / satisfiability test;
//! 3. `refutation-nnf` (validity only): negate and renormalize, so the BDD
//!    built is the *violation set* rather than a near-complement;
//! 4. `forall-pushdown` (R4 / Rule 5): distribute universal blocks over
//!    conjunctions — optionally **cost-gated** on `relstore::stats`
//!    cardinalities ([`pushdown_pays_off`]).
//!
//! Nothing here touches a BDD manager: planning is pure and total, which is
//! what makes plans cacheable and `relcheck plan` side-effect free. The
//! back half — [`CheckPlan`] → verdict — lives in [`crate::exec`].

use crate::plan::{
    formula_fingerprint, BddStep, BddTest, CheckPlan, PassRecord, PlanOptions, SqlStep,
};
use crate::sqlgen;
use crate::telemetry::RewriteRule;
use relcheck_logic::transform::{
    push_forall_down_gated, simplify, standardize_apart, strip_leading_block, to_nnf, to_prenex,
    CheckMode, PassEffect, Prenex, Quant,
};
use relcheck_logic::{Formula, Term};
use relcheck_relstore::{stats, Database};
use std::collections::HashSet;

/// Build the complete [`CheckPlan`] for a constraint: run the rewrite
/// passes (recording each one's effect), prepare the BDD execution step —
/// unless a referenced relation is marked SQL-only — and pre-translate the
/// SQL fallback. `schema_fp` is the caller's environment fingerprint
/// ([`crate::checker::Checker::schema_fingerprint`]); the planner stamps it
/// into the plan so the cache can refuse stale entries.
pub fn plan_check(
    db: &Database,
    f: &Formula,
    options: PlanOptions,
    sql_only: &HashSet<String>,
    schema_fp: u64,
) -> CheckPlan {
    let mut passes = Vec::new();
    let mut atoms = Vec::new();
    collect_atoms(f, &mut atoms);
    // The BDD-vs-SQL routing rule is owned by `policy` (one over-budget
    // relation sinks the whole BDD step); the planner only applies it.
    let route_bdd =
        crate::policy::bdd_route_allowed(atoms.iter().map(|(rel, _)| rel.as_str()), sql_only);
    let bdd = route_bdd.then(|| bdd_step(db, f, options, &mut passes));
    let sql = sqlgen::violation_plan(db, f).map(|translated| SqlStep { translated });
    CheckPlan {
        constraint: f.to_string(),
        constraint_fp: formula_fingerprint(f),
        schema_fp,
        options,
        passes,
        bdd,
        sql,
    }
}

/// Run the rewrite passes on one formula and assemble the prepared BDD
/// step. Appends one [`PassRecord`] per pass that ran (even when it fired
/// zero times — the record is the evidence the pass was consulted).
pub(crate) fn bdd_step(
    db: &Database,
    f: &Formula,
    options: PlanOptions,
    passes: &mut Vec<PassRecord>,
) -> BddStep {
    if !options.prenex {
        // The paper's "straight-forward evaluation" baseline: standardize
        // apart and compile literally, leading quantifiers included.
        let g = standardize_apart(f);
        let body = if options.pushdown {
            apply_pushdown_pass(db, &g, options, passes)
        } else {
            g.clone()
        };
        return BddStep {
            alloc: g,
            body,
            stripped: Vec::new(),
            test: BddTest::Satisfiable,
            join_rename: options.join_rename,
            fused_quant: options.fused_quant,
        };
    }
    let p = to_prenex(f);
    let whole = rebuild(&p);
    passes.push(PassRecord {
        pass: "prenex-pullup",
        rule: Some(RewriteRule::R3PrenexPullup),
        fired: p.prefix.len() as u64,
        gated: 0,
        before: f.to_string(),
        after: whole.to_string(),
    });
    let (mode, rest) = if options.strip_leading {
        strip_leading_block(&p)
    } else {
        (CheckMode::Satisfiability, p.clone())
    };
    let stripped: Vec<String> = p.prefix[..p.prefix.len() - rest.prefix.len()]
        .iter()
        .map(|(_, v)| v.clone())
        .collect();
    let remainder = rebuild(&rest);
    if options.strip_leading {
        passes.push(PassRecord {
            pass: "strip-leading-block",
            rule: Some(RewriteRule::R1LeadingBlock),
            fired: stripped.len() as u64,
            gated: 0,
            before: whole.to_string(),
            after: remainder.to_string(),
        });
    }
    let (body, test) = match mode {
        CheckMode::Validity => {
            // Compile the violation set by refutation: ¬body in NNF keeps
            // implication-shaped constraints as small premise ∧ ¬conclusion
            // conjunctions instead of near-complement disjunctions.
            let negated = simplify(&to_nnf(&remainder.clone().not()));
            passes.push(PassRecord {
                pass: "refutation-nnf",
                rule: None,
                fired: 1,
                gated: 0,
                before: remainder.to_string(),
                after: negated.to_string(),
            });
            let body = if options.pushdown {
                apply_pushdown_pass(db, &negated, options, passes)
            } else {
                negated
            };
            (body, BddTest::ViolationsEmpty)
        }
        CheckMode::Satisfiability => {
            let body = if options.pushdown {
                apply_pushdown_pass(db, &remainder, options, passes)
            } else {
                remainder
            };
            (body, BddTest::Satisfiable)
        }
    };
    BddStep {
        alloc: whole,
        body,
        stripped,
        test,
        join_rename: options.join_rename,
        fused_quant: options.fused_quant,
    }
}

/// Run the ∀-push-down pass and record its effect.
fn apply_pushdown_pass(
    db: &Database,
    f: &Formula,
    options: PlanOptions,
    passes: &mut Vec<PassRecord>,
) -> Formula {
    let (out, eff) = apply_pushdown(db, f, options);
    passes.push(PassRecord {
        pass: "forall-pushdown",
        rule: Some(RewriteRule::R4ForallPushdown),
        fired: eff.fired,
        gated: eff.gated,
        before: f.to_string(),
        after: out.to_string(),
    });
    out
}

/// ∀-push-down (Rule 5) under the plan's gating policy, followed by the
/// usual simplification. Returns the rewritten formula and the pass's
/// fired/gated tallies. Shared between the planner and
/// [`crate::exec::violations_bdd`] (which rewrites on the fly).
pub(crate) fn apply_pushdown(
    db: &Database,
    f: &Formula,
    options: PlanOptions,
) -> (Formula, PassEffect) {
    let mut eff = PassEffect::default();
    let out = if options.gate_pushdown {
        push_forall_down_gated(
            f,
            &mut |vs, parts| pushdown_pays_off(db, vs, parts),
            &mut eff,
        )
    } else {
        push_forall_down_gated(f, &mut |_, _| true, &mut eff)
    };
    (simplify(&out), eff)
}

/// The R4 cost gate: distribute `∀x̄ (φ₁ ∧ … ∧ φₙ)` only when the estimated
/// total size of the per-conjunct sub-BDDs is no larger than the estimated
/// size of the undistributed conjunction.
///
/// Estimates come from [`relcheck_relstore::stats`] cardinalities: after
/// quantifying the block's variables out of a conjunct, each atom
/// contributes at most `distinct_count` over its columns *not* bound to a
/// block variable; undistributed, each atom contributes up to its full row
/// count. Products within a conjunct, summed across conjuncts, against the
/// product over all atoms — `Σᵢ Πₐ distinct ≤ Πₐ ‖R‖` fires the rule.
/// Saturating `u128` arithmetic; a conjunct with no relational atoms counts
/// as 1 on both sides. Both outcomes are semantics-preserving, so a bad
/// estimate costs only time, never correctness.
pub(crate) fn pushdown_pays_off(db: &Database, vs: &[String], parts: &[Formula]) -> bool {
    let block: HashSet<&str> = vs.iter().map(String::as_str).collect();
    let mut sum: u128 = 0;
    let mut product: u128 = 1;
    for part in parts {
        let mut atoms = Vec::new();
        collect_atoms(part, &mut atoms);
        let (mut after, mut full) = (1u128, 1u128);
        for (rel_name, args) in &atoms {
            let Ok(rel) = db.relation(rel_name) else {
                continue;
            };
            let kept: Vec<usize> = args
                .iter()
                .enumerate()
                .filter_map(|(i, t)| match t {
                    Term::Var(v) if block.contains(v.as_str()) => None,
                    _ => Some(i),
                })
                .collect();
            after = after.saturating_mul(stats::distinct_count(rel, &kept).max(1) as u128);
            full = full.saturating_mul(rel.len().max(1) as u128);
        }
        sum = sum.saturating_add(after);
        product = product.saturating_mul(full);
    }
    sum <= product
}

/// Reassemble a prenex form into a formula.
pub(crate) fn rebuild(p: &Prenex) -> Formula {
    let mut f = p.matrix.clone();
    for (q, v) in p.prefix.iter().rev() {
        f = match q {
            Quant::Exists => Formula::Exists(vec![v.clone()], Box::new(f)),
            Quant::Forall => Formula::Forall(vec![v.clone()], Box::new(f)),
        };
    }
    f
}

/// Collect every relational atom `(relation, args)` in the formula.
pub(crate) fn collect_atoms(f: &Formula, out: &mut Vec<(String, Vec<Term>)>) {
    match f {
        Formula::Atom { relation, args } => out.push((relation.clone(), args.clone())),
        Formula::Not(g) => collect_atoms(g, out),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|g| collect_atoms(g, out)),
        Formula::Implies(a, b) => {
            collect_atoms(a, out);
            collect_atoms(b, out);
        }
        Formula::Exists(_, g) | Formula::Forall(_, g) => collect_atoms(g, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcheck_relstore::Raw;

    fn customer_db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            "CUST",
            &[
                ("city", "city"),
                ("areacode", "areacode"),
                ("state", "state"),
            ],
            vec![
                vec![Raw::str("Toronto"), Raw::Int(416), Raw::str("ON")],
                vec![Raw::str("Toronto"), Raw::Int(647), Raw::str("ON")],
                vec![Raw::str("Oshawa"), Raw::Int(905), Raw::str("ON")],
                vec![Raw::str("Newark"), Raw::Int(973), Raw::str("NJ")],
                vec![Raw::str("Newark"), Raw::Int(212), Raw::str("NY")],
            ],
        )
        .unwrap();
        db.create_relation(
            "ALLOWED",
            &[("city", "city"), ("areacode", "areacode")],
            vec![
                vec![Raw::str("Toronto"), Raw::Int(416)],
                vec![Raw::str("Toronto"), Raw::Int(647)],
                vec![Raw::str("Oshawa"), Raw::Int(905)],
                vec![Raw::str("Newark"), Raw::Int(973)],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn plan_records_passes_in_pipeline_order() {
        let db = customer_db();
        let f =
            relcheck_logic::parse("forall c, a. ALLOWED(c, a) -> exists s. CUST(c, a, s)").unwrap();
        let plan = plan_check(
            &db,
            &f,
            PlanOptions::default(),
            &HashSet::new(),
            0xfeed_beef,
        );
        let names: Vec<&str> = plan.passes.iter().map(|p| p.pass).collect();
        assert_eq!(
            names,
            [
                "prenex-pullup",
                "strip-leading-block",
                "refutation-nnf",
                "forall-pushdown"
            ]
        );
        assert_eq!(plan.schema_fp, 0xfeed_beef);
        let step = plan.bdd.as_ref().expect("bdd step");
        assert_eq!(step.test, BddTest::ViolationsEmpty);
        assert_eq!(step.stripped, ["c", "a"]);
        assert!(plan.sql.is_some(), "inclusion shape translates to SQL");
    }

    #[test]
    fn cost_gate_fires_when_distribution_is_estimated_smaller() {
        // ∀s over ALLOWED(c,a) ∧ ¬CUST(c,a,s): Σ = 4 + 5 = 9 ≤ Π = 4·5 = 20.
        let db = customer_db();
        let f =
            relcheck_logic::parse("forall c, a. ALLOWED(c, a) -> exists s. CUST(c, a, s)").unwrap();
        let mut passes = Vec::new();
        bdd_step(&db, &f, PlanOptions::default(), &mut passes);
        let push = passes.iter().find(|p| p.pass == "forall-pushdown").unwrap();
        assert_eq!((push.fired, push.gated), (1, 0));
    }

    #[test]
    fn sql_only_relation_suppresses_the_bdd_step() {
        let db = customer_db();
        let f = relcheck_logic::parse("forall c, a, s. CUST(c, a, s) -> ALLOWED(c, a)").unwrap();
        let sql_only: HashSet<String> = ["CUST".to_owned()].into_iter().collect();
        let plan = plan_check(&db, &f, PlanOptions::default(), &sql_only, 0);
        assert!(plan.bdd.is_none());
        assert!(plan.passes.is_empty(), "no passes run when BDD is skipped");
        assert_eq!(plan.ladder(), ["sql", "brute_force"]);
    }

    #[test]
    fn planning_is_deterministic() {
        let db = customer_db();
        let f = relcheck_logic::parse(
            "forall c, a1, s1, a2, s2. CUST(c, a1, s1) & CUST(c, a2, s2) -> s1 = s2",
        )
        .unwrap();
        let a = plan_check(&db, &f, PlanOptions::default(), &HashSet::new(), 7).render();
        let b = plan_check(&db, &f, PlanOptions::default(), &HashSet::new(), 7).render();
        assert_eq!(a, b, "same inputs must render byte-identical plans");
    }
}
