//! The explicit **CheckPlan IR** — the artifact between "formula in" and
//! "verdict out".
//!
//! The paper's Section 4 strategy is a tiny query optimizer: rewrite rules
//! R1–R4 applied in a deliberate order, then execution by BDD operations or
//! a SQL fallback. This module makes that pipeline a first-class value: a
//! [`CheckPlan`] records which rewrite passes ran (with per-pass firing
//! counts and before/after formulas), the prepared BDD execution step, and
//! the pre-translated SQL fallback step. Plans are produced by the pure
//! pass manager in [`crate::planner`], executed by [`crate::exec`], cached
//! by [`crate::registry::ConstraintRegistry`] keyed on
//! ([`CheckPlan::constraint_fp`], [`CheckPlan::schema_fp`]), and
//! pretty-printed by `relcheck plan`.

use crate::sqlgen::Translated;
use crate::telemetry::{RewriteRule, RuleFiring};
use relcheck_logic::Formula;

/// Which rewrite passes the planner runs, individually toggleable — the
/// replacement for the old hard-wired `use_rewrites: bool`. Each flag is
/// one discrete pass (or execution-time strategy) of the paper's §4.4
/// pipeline; [`PlanOptions::from_flags`] reproduces the two legacy
/// configurations exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanOptions {
    /// R3: pull quantifiers up into prenex normal form.
    pub prenex: bool,
    /// R1: eliminate the leading quantifier block (validity /
    /// satisfiability test). Requires `prenex`.
    pub strip_leading: bool,
    /// R4: push universal blocks down across conjunctions (Rule 5).
    pub pushdown: bool,
    /// Cost-gate R4: only distribute a ∀-block when the estimated sum of
    /// the per-conjunct sub-BDD sizes is no larger than their product (the
    /// estimated size of the undistributed conjunction). Ignored when
    /// `pushdown` is off.
    pub gate_pushdown: bool,
    /// R2: compile equi-joins by renaming (§4.2) instead of conjoining
    /// equality BDDs. An execution-time strategy; fires once per atom.
    pub join_rename: bool,
    /// Use the fused `appex`/`appall` operators for residual quantifiers.
    pub fused_quant: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            prenex: true,
            strip_leading: true,
            pushdown: true,
            gate_pushdown: true,
            join_rename: true,
            fused_quant: true,
        }
    }
}

impl PlanOptions {
    /// The legacy two-switch configuration space: `use_rewrites` toggles
    /// every rewrite pass at once (prenex, strip, ungated push-down, fused
    /// quantifiers), `join_rename` stays independent — bit-for-bit the
    /// behaviour of the old `CompileOptions`.
    pub fn from_flags(use_rewrites: bool, join_rename: bool) -> PlanOptions {
        PlanOptions {
            prenex: use_rewrites,
            strip_leading: use_rewrites,
            pushdown: use_rewrites,
            // The legacy pipeline pushed down unconditionally.
            gate_pushdown: false,
            join_rename,
            fused_quant: use_rewrites,
        }
    }

    /// The option flags packed into a bitmask — folded into schema
    /// fingerprints so a cached plan never executes under different
    /// options than it was planned with.
    pub fn bits(&self) -> u64 {
        (self.prenex as u64)
            | (self.strip_leading as u64) << 1
            | (self.pushdown as u64) << 2
            | (self.gate_pushdown as u64) << 3
            | (self.join_rename as u64) << 4
            | (self.fused_quant as u64) << 5
    }

    fn describe(&self) -> String {
        let onoff = |b: bool| if b { "on" } else { "off" };
        format!(
            "prenex={} strip-leading={} forall-pushdown={} gate={} join-rename={} fused-quant={}",
            onoff(self.prenex),
            onoff(self.strip_leading),
            onoff(self.pushdown),
            onoff(self.gate_pushdown),
            onoff(self.join_rename),
            onoff(self.fused_quant),
        )
    }
}

/// One rewrite pass's effect on the formula: what it was called, which
/// paper rule it implements (if any), how often it fired, how often its
/// cost gate declined an applicable site, and the formula before/after.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassRecord {
    /// Stable pass name (e.g. `"prenex-pullup"`).
    pub pass: &'static str,
    /// The paper rule this pass implements, when it maps to one.
    pub rule: Option<RewriteRule>,
    /// Number of sites the pass rewrote.
    pub fired: u64,
    /// Number of applicable sites the cost gate declined.
    pub gated: u64,
    /// The formula text entering the pass.
    pub before: String,
    /// The formula text leaving the pass.
    pub after: String,
}

/// How the compiled BDD decides the sentence (paper R1): as a violation
/// test (leading ∀-block: the violation set must be empty) or as a
/// satisfiability test (everything else: the compiled body must not be
/// `FALSE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BddTest {
    /// Compile the refutation body; the constraint holds iff the violating
    /// set (body ∧ ranges of the stripped ∀ variables) is `FALSE`.
    ViolationsEmpty,
    /// Compile the body directly; the constraint holds iff the result
    /// (∧ ranges of any stripped variables) is not `FALSE`.
    Satisfiable,
}

/// The prepared BDD execution step of a plan: everything
/// [`crate::exec::execute_bdd`] needs, with no BDD manager involved yet.
#[derive(Debug, Clone)]
pub struct BddStep {
    /// The full (prenex) formula domain allocation is computed over —
    /// §4.2's largest-relation-first claiming walks this.
    pub alloc: Formula,
    /// The rewritten body to compile.
    pub body: Formula,
    /// Names of the leading-block variables R1 stripped, in prefix order.
    pub stripped: Vec<String>,
    /// How the compiled BDD decides the sentence.
    pub test: BddTest,
    /// Compile equi-join atoms by renaming (R2).
    pub join_rename: bool,
    /// Use fused `appex`/`appall` for residual quantifiers.
    pub fused_quant: bool,
}

/// The prepared SQL-fallback step: the violation/witness query already
/// translated, so the degradation ladder executes a plan node instead of
/// re-deriving the query.
#[derive(Debug, Clone)]
pub struct SqlStep {
    /// The translated relational query (plan + result shape + columns).
    pub translated: Translated,
}

/// A complete, serializable check plan: the IR the whole compile path now
/// flows through.
#[derive(Debug, Clone)]
pub struct CheckPlan {
    /// The original constraint text (the formula's display form).
    pub constraint: String,
    /// FNV-1a fingerprint of the constraint text — the plan-cache key's
    /// first component.
    pub constraint_fp: u64,
    /// Fingerprint of everything else a plan depends on: data version,
    /// SQL-only set, ordering strategy, option bits, and the checker's
    /// explicit invalidation epoch. A cached plan may only execute while
    /// the checker still reports the same value.
    pub schema_fp: u64,
    /// The pass toggles the plan was built under.
    pub options: PlanOptions,
    /// The rewrite passes that ran, in order, with their effects.
    pub passes: Vec<PassRecord>,
    /// The BDD execution step, or `None` if a referenced relation is
    /// marked SQL-only (the ladder then starts at the SQL rung).
    pub bdd: Option<BddStep>,
    /// The pre-translated SQL fallback, or `None` if the constraint shape
    /// has no SQL translation.
    pub sql: Option<SqlStep>,
}

impl CheckPlan {
    /// The plan-level R1/R3/R4 rule firings in application order, ready to
    /// seed a [`crate::telemetry::CheckTrace`]'s rule list (R2 events are
    /// appended by the executor, once per renamed atom).
    pub fn rule_firings(&self) -> Vec<RuleFiring> {
        pass_rule_firings(&self.passes)
    }

    /// The execution ladder this plan implies, rung names matching the
    /// checker's `CheckTrace::ladder` vocabulary.
    pub fn ladder(&self) -> Vec<&'static str> {
        let mut rungs = Vec::new();
        if self.bdd.is_some() {
            rungs.push("bdd");
        }
        if self.sql.is_some() {
            rungs.push("sql");
        }
        rungs.push("brute_force");
        rungs
    }

    /// Deterministic pretty-printer: same plan → byte-identical text (CI
    /// asserts this across runs). Shown by `relcheck plan`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, s: &str| {
            out.push_str(s);
            out.push('\n');
        };
        push(&mut out, &format!("plan for: {}", self.constraint));
        push(
            &mut out,
            &format!(
                "  fingerprint: constraint={:016x} schema={:016x}",
                self.constraint_fp, self.schema_fp
            ),
        );
        push(&mut out, &format!("  options: {}", self.options.describe()));
        if self.passes.is_empty() {
            push(&mut out, "  passes: (none)");
        } else {
            push(&mut out, "  passes:");
            for (i, p) in self.passes.iter().enumerate() {
                let rule = p.rule.map_or("--", |r| r.name());
                push(
                    &mut out,
                    &format!(
                        "    {}. {} [{}] fired={} gated={}",
                        i + 1,
                        p.pass,
                        rule,
                        p.fired,
                        p.gated
                    ),
                );
                push(&mut out, &format!("       before: {}", p.before));
                push(&mut out, &format!("       after:  {}", p.after));
            }
        }
        match &self.bdd {
            Some(step) => {
                let test = match step.test {
                    BddTest::ViolationsEmpty => "violations-empty",
                    BddTest::Satisfiable => "satisfiable",
                };
                push(
                    &mut out,
                    &format!(
                        "  bdd step: test={} stripped=[{}] join-rename={} fused-quant={}",
                        test,
                        step.stripped.join(", "),
                        if step.join_rename { "on" } else { "off" },
                        if step.fused_quant { "on" } else { "off" }
                    ),
                );
                push(&mut out, &format!("    body: {}", step.body));
            }
            None => push(&mut out, "  bdd step: none (relation marked sql-only)"),
        }
        match &self.sql {
            Some(step) => {
                let shape = format!("{:?}", step.translated.shape).to_lowercase();
                push(
                    &mut out,
                    &format!(
                        "  sql step: shape={} columns=[{}]",
                        shape,
                        step.translated.columns.join(", ")
                    ),
                );
            }
            None => push(&mut out, "  sql step: none (shape not translatable)"),
        }
        push(
            &mut out,
            &format!("  ladder: {}", self.ladder().join(" -> ")),
        );
        out
    }
}

/// Render a set of named plans as a machine-readable JSON document —
/// the `relcheck plan --json` output. Same plans → byte-identical text
/// (same discipline as [`CheckPlan::render`] and the metrics emitter);
/// fingerprints are emitted as 16-digit hex strings because they are
/// full-width u64 values. Validated by
/// [`crate::telemetry::validate_plan_json`].
pub fn plans_to_json(plans: &[(String, CheckPlan)]) -> String {
    use crate::telemetry::JsonWriter;
    let onoff = |w: &mut JsonWriter, b: bool| w.raw(if b { "true" } else { "false" });
    let mut w = JsonWriter::new();
    w.obj_open();
    w.key("schema_version");
    w.raw("1");
    w.key("kind");
    w.string("plan");
    w.key("plans");
    w.arr_open();
    for (name, p) in plans {
        w.obj_open();
        w.key("name");
        w.string(name);
        w.key("constraint");
        w.string(&p.constraint);
        w.key("constraint_fp");
        w.string(&format!("{:016x}", p.constraint_fp));
        w.key("schema_fp");
        w.string(&format!("{:016x}", p.schema_fp));
        w.key("options");
        w.obj_open();
        w.key("prenex");
        onoff(&mut w, p.options.prenex);
        w.key("strip_leading");
        onoff(&mut w, p.options.strip_leading);
        w.key("pushdown");
        onoff(&mut w, p.options.pushdown);
        w.key("gate_pushdown");
        onoff(&mut w, p.options.gate_pushdown);
        w.key("join_rename");
        onoff(&mut w, p.options.join_rename);
        w.key("fused_quant");
        onoff(&mut w, p.options.fused_quant);
        w.obj_close();
        w.key("passes");
        w.arr_open();
        for pass in &p.passes {
            w.obj_open();
            w.key("pass");
            w.string(pass.pass);
            w.key("rule");
            match pass.rule {
                Some(r) => w.string(r.name()),
                None => w.raw("null"),
            }
            w.key("fired");
            w.raw(&pass.fired.to_string());
            w.key("gated");
            w.raw(&pass.gated.to_string());
            w.key("before");
            w.string(&pass.before);
            w.key("after");
            w.string(&pass.after);
            w.obj_close();
        }
        w.arr_close();
        w.key("bdd");
        match &p.bdd {
            Some(step) => {
                w.obj_open();
                w.key("test");
                w.string(match step.test {
                    BddTest::ViolationsEmpty => "violations-empty",
                    BddTest::Satisfiable => "satisfiable",
                });
                w.key("stripped");
                w.arr_open();
                for v in &step.stripped {
                    w.string(v);
                }
                w.arr_close();
                w.key("join_rename");
                onoff(&mut w, step.join_rename);
                w.key("fused_quant");
                onoff(&mut w, step.fused_quant);
                w.obj_close();
            }
            None => w.raw("null"),
        }
        w.key("sql");
        match &p.sql {
            Some(step) => {
                w.obj_open();
                w.key("shape");
                w.string(&format!("{:?}", step.translated.shape).to_lowercase());
                w.key("columns");
                w.arr_open();
                for c in &step.translated.columns {
                    w.string(c);
                }
                w.arr_close();
                w.obj_close();
            }
            None => w.raw("null"),
        }
        w.key("ladder");
        w.arr_open();
        for rung in p.ladder() {
            w.string(rung);
        }
        w.arr_close();
        w.obj_close();
    }
    w.arr_close();
    w.obj_close();
    w.finish()
}

/// The R1/R3/R4 firings a pass list implies, in application order: one
/// [`RuleFiring`] per pass that maps to a paper rule and fired at least
/// once (zero-fire passes are evidence the pass ran, not rule events).
pub fn pass_rule_firings(passes: &[PassRecord]) -> Vec<RuleFiring> {
    passes
        .iter()
        .filter_map(|p| {
            p.rule.filter(|_| p.fired > 0).map(|rule| RuleFiring {
                rule,
                count: p.fired,
            })
        })
        .collect()
}

/// FNV-1a over a byte string — the repo-standard dependency-free stable
/// hash, used for constraint and schema fingerprints.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A formula's stable fingerprint: FNV-1a over its display form (the
/// parser/printer round-trips, so this is canonical enough for cache
/// keying — a false miss merely replans).
pub fn formula_fingerprint(f: &Formula) -> u64 {
    fnv1a(f.to_string().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_flags_reproduces_legacy_configurations() {
        let on = PlanOptions::from_flags(true, true);
        assert!(on.prenex && on.strip_leading && on.pushdown && on.fused_quant && on.join_rename);
        assert!(!on.gate_pushdown, "legacy rewrites pushed down ungated");
        let off = PlanOptions::from_flags(false, true);
        assert!(!off.prenex && !off.strip_leading && !off.pushdown && !off.fused_quant);
        assert!(off.join_rename, "join_rename is independent");
    }

    #[test]
    fn option_bits_are_injective_over_the_flag_space() {
        let mut seen = std::collections::HashSet::new();
        for bits in 0u64..64 {
            let o = PlanOptions {
                prenex: bits & 1 != 0,
                strip_leading: bits & 2 != 0,
                pushdown: bits & 4 != 0,
                gate_pushdown: bits & 8 != 0,
                join_rename: bits & 16 != 0,
                fused_quant: bits & 32 != 0,
            };
            assert!(seen.insert(o.bits()), "collision at {bits}");
        }
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), fnv1a(b"a"));
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
