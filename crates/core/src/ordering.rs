//! Variable-ordering heuristics (paper, Section 3).
//!
//! BDD size is extremely sensitive to the order in which attributes are
//! tested; finding the optimal order is NP-hard (Bollig & Wegener), so the
//! paper proposes two statistics-driven greedy heuristics that order the
//! *attributes* (each attribute is a block of boolean variables):
//!
//! * [`max_inf_gain`] — `MaxInf-Gain` exactly as printed in the paper's
//!   Figure 1: `v*(0) = argmin H(v)`, then `v*(i) = argmin_v I(v; ū)` with
//!   `I(v; ū) = H(v) − H(ū|v)` per Definition 1. Note the **argmin**: taken
//!   literally the algorithm picks the attribute *least* informative about
//!   the prefix. This is what we implement, because it is what reproduces
//!   the paper's own findings (MaxInf-Gain degrading badly — α > 2.5 — on
//!   product-structured relations, Figure 3(a)); the name's charitable
//!   `argmax` reading is provided separately as [`min_cond_entropy`].
//! * [`prob_converge`] — Section 3.2's `Prob-Converge`: greedily drive the
//!   Φ measure (expected residual membership uncertainty, see
//!   [`relcheck_relstore::stats::phi_measure`]) towards zero, i.e. pick
//!   prefixes that resolve tuple membership as early as possible.
//! * [`min_cond_entropy`] — **our extension**: the `argmax I(ū; v)` reading
//!   (equivalently `argmin H(v|ū)`, the straight ID3 adaptation). On
//!   product-structured relations this groups correlated attributes and is
//!   near-optimal; the ablation in `fig3` quantifies the gap.
//!
//! For the evaluation we also provide random orderings and exhaustive
//! optimal search ([`optimal_ordering`], feasible for the paper's 5
//! attributes: 120 permutations).

use crate::error::Result;
use relcheck_bdd::BddManager;
use relcheck_relstore::{stats, Relation};

/// How a relation's attribute ordering is chosen when building its index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingStrategy {
    /// Declaration (schema) order — no reordering.
    Schema,
    /// A seeded random permutation.
    Random(u64),
    /// The `MaxInf-Gain` heuristic (literal Figure 1).
    MaxInfGain,
    /// The `Prob-Converge` heuristic (the paper's recommended choice).
    ProbConverge,
    /// Minimal conditional entropy — our corrected `argmax`-gain variant.
    MinCondEntropy,
    /// Prob-Converge refined by attribute-level sifting (our extension,
    /// after Rudell's dynamic reordering): never worse than
    /// [`OrderingStrategy::ProbConverge`], costs O(arity²) trial rebuilds.
    Sifted,
    /// Workload-adaptive (our extension): score the candidate shapes in
    /// [`relcheck_bdd::order`] against the per-column access weights the
    /// [`crate::index::LogicalDatabase`] records while compiling atoms,
    /// and build under the cheapest. A build with no recorded workload
    /// (e.g. the first, before any check ran) falls back to
    /// [`OrderingStrategy::ProbConverge`]; any static strategy remains the
    /// escape hatch. The ordering-invariance suite pins that the pick can
    /// never change a verdict.
    Adaptive,
}

impl OrderingStrategy {
    /// Stable machine-readable name of the strategy (seed excluded).
    pub fn name(&self) -> &'static str {
        match self {
            OrderingStrategy::Schema => "schema",
            OrderingStrategy::Random(_) => "random",
            OrderingStrategy::MaxInfGain => "max-inf-gain",
            OrderingStrategy::ProbConverge => "prob-converge",
            OrderingStrategy::MinCondEntropy => "min-cond-entropy",
            OrderingStrategy::Sifted => "sifted",
            OrderingStrategy::Adaptive => "adaptive",
        }
    }

    /// A stable fingerprint of the strategy, used in plan-cache keys: two
    /// checkers agree on this value iff they would order indices the same
    /// way (the `Random` seed is folded in).
    pub fn fingerprint(&self) -> u64 {
        match *self {
            OrderingStrategy::Schema => 1,
            OrderingStrategy::Random(seed) => {
                2u64.wrapping_add(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            }
            OrderingStrategy::MaxInfGain => 3,
            OrderingStrategy::ProbConverge => 4,
            OrderingStrategy::MinCondEntropy => 5,
            OrderingStrategy::Sifted => 6,
            OrderingStrategy::Adaptive => 7,
        }
    }

    /// Compute the column order for a relation under this strategy.
    pub fn order(&self, rel: &Relation, dom_sizes: &[u64]) -> Vec<usize> {
        match *self {
            OrderingStrategy::Schema => (0..rel.arity()).collect(),
            OrderingStrategy::Random(seed) => random_order(rel.arity(), seed),
            OrderingStrategy::MaxInfGain => max_inf_gain(rel),
            OrderingStrategy::ProbConverge => prob_converge(rel, dom_sizes),
            OrderingStrategy::MinCondEntropy => min_cond_entropy(rel),
            OrderingStrategy::Sifted => {
                let seed = prob_converge(rel, dom_sizes);
                sift_ordering(rel, dom_sizes, &seed)
                    .map(|(o, _)| o)
                    .unwrap_or(seed)
            }
            // Without workload weights (this signature has none) Adaptive
            // degrades to the paper's recommended static heuristic; the
            // weight-aware path lives in `LogicalDatabase::build_index`,
            // which holds the recorded workload.
            OrderingStrategy::Adaptive => prob_converge(rel, dom_sizes),
        }
    }
}

/// The paper's information gain between a single attribute `v` and the
/// attribute sequence `ū` (Definition 1, arguments as used in Figure 1
/// line 5): `I(v; ū) = H(v) − H(ū|v)`.
fn info_gain_v_prefix(rel: &Relation, v: usize, prefix: &[usize]) -> f64 {
    let h_v = stats::entropy(rel, &[v]);
    let mut all = prefix.to_vec();
    all.push(v);
    let h_joint = stats::entropy(rel, &all);
    // H(ū | v) = H(ū ∪ v) − H(v).
    h_v - (h_joint - h_v)
}

/// The `MaxInf-Gain` ordering, exactly as printed in Figure 1:
/// `v*(0) = argmin H(v)`, then `v*(i) = argmin_v I(v; ū)`. Ties break
/// towards the lower column index, making the result deterministic.
///
/// See the module docs: the literal `argmin` is deliberately kept because
/// it reproduces the paper's reported behaviour; [`min_cond_entropy`] is
/// the `argmax` reading.
pub fn max_inf_gain(rel: &Relation) -> Vec<usize> {
    let n = rel.arity();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    // v*(0) = argmin H(v).
    let first = *remaining
        .iter()
        .min_by(|&&a, &&b| {
            stats::entropy(rel, &[a])
                .partial_cmp(&stats::entropy(rel, &[b]))
                .unwrap()
        })
        .expect("relation has at least one column");
    order.push(first);
    remaining.retain(|&c| c != first);
    // v*(i) = argmin_v I(v; ū).
    while !remaining.is_empty() {
        let next = *remaining
            .iter()
            .min_by(|&&a, &&b| {
                info_gain_v_prefix(rel, a, &order)
                    .partial_cmp(&info_gain_v_prefix(rel, b, &order))
                    .unwrap()
            })
            .unwrap();
        order.push(next);
        remaining.retain(|&c| c != next);
    }
    order
}

/// Our corrected variant: `v*(i) = argmin H(v | prefix)` (equivalently,
/// maximize the information the prefix carries about the next attribute —
/// the straight ID3 adaptation the paper's prose describes). Near-optimal
/// on product-structured relations.
pub fn min_cond_entropy(rel: &Relation) -> Vec<usize> {
    let n = rel.arity();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    let first = *remaining
        .iter()
        .min_by(|&&a, &&b| {
            stats::entropy(rel, &[a])
                .partial_cmp(&stats::entropy(rel, &[b]))
                .unwrap()
        })
        .expect("relation has at least one column");
    order.push(first);
    remaining.retain(|&c| c != first);
    while !remaining.is_empty() {
        let next = *remaining
            .iter()
            .min_by(|&&a, &&b| {
                stats::cond_entropy(rel, &order, a)
                    .partial_cmp(&stats::cond_entropy(rel, &order, b))
                    .unwrap()
            })
            .unwrap();
        order.push(next);
        remaining.retain(|&c| c != next);
    }
    order
}

/// The `Prob-Converge` ordering (Section 3.2): greedily minimize the
/// (non-negative) Φ measure of the growing prefix.
pub fn prob_converge(rel: &Relation, dom_sizes: &[u64]) -> Vec<usize> {
    let n = rel.arity();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    while !remaining.is_empty() {
        let next = *remaining
            .iter()
            .min_by(|&&a, &&b| {
                let mut pa = order.clone();
                pa.push(a);
                let mut pb = order.clone();
                pb.push(b);
                stats::phi_measure(rel, &pa, dom_sizes)
                    .partial_cmp(&stats::phi_measure(rel, &pb, dom_sizes))
                    .unwrap()
            })
            .unwrap();
        order.push(next);
        remaining.retain(|&c| c != next);
    }
    order
}

/// Attribute-level sifting (our extension): Rudell's dynamic-reordering
/// idea [13 in the paper], adapted to this system. The paper rejects
/// node-level dynamic reordering as too expensive and requiring the BDD to
/// exist first; but at the *attribute* granularity with our sorted-tuple
/// constructor, trying a candidate ordering is a fast rebuild — so sifting
/// becomes practical: repeatedly move each attribute to its best position
/// (holding the rest fixed) until no move improves the node count.
///
/// `start` seeds the search (use [`prob_converge`]'s output); the result is
/// never worse than the seed. Cost: O(arity²) rebuilds per round.
pub fn sift_ordering(
    rel: &Relation,
    dom_sizes: &[u64],
    start: &[usize],
) -> Result<(Vec<usize>, usize)> {
    let mut best = start.to_vec();
    let mut best_size = bdd_size_for_ordering(rel, dom_sizes, &best)?;
    loop {
        let mut improved = false;
        for attr in 0..rel.arity() {
            let cur_pos = best.iter().position(|&c| c == attr).expect("permutation");
            for new_pos in 0..best.len() {
                if new_pos == cur_pos {
                    continue;
                }
                let mut cand = best.clone();
                let v = cand.remove(cur_pos);
                cand.insert(new_pos, v);
                let size = bdd_size_for_ordering(rel, dom_sizes, &cand)?;
                if size < best_size {
                    best = cand;
                    best_size = size;
                    improved = true;
                    break; // re-anchor this attribute at its new position
                }
            }
        }
        if !improved {
            return Ok((best, best_size));
        }
    }
}

/// A seeded random permutation of the columns (Fisher–Yates over a
/// SplitMix64 stream; self-contained so this crate stays dependency-free).
pub fn random_order(arity: usize, seed: u64) -> Vec<usize> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut order: Vec<usize> = (0..arity).collect();
    for i in (1..order.len()).rev() {
        // i + 1 ≤ arity, far below 2^32: modulo bias is negligible here and
        // the permutation only feeds the Random(seed) baseline.
        let j = (next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// All permutations of `0..arity` in lexicographic order. Factorial growth —
/// intended for the paper's 5-attribute experiments.
pub fn all_orderings(arity: usize) -> Vec<Vec<usize>> {
    assert!(
        arity <= 8,
        "exhaustive enumeration of {arity}! orderings is not sensible"
    );
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(arity);
    let mut used = vec![false; arity];
    fn rec(
        arity: usize,
        current: &mut Vec<usize>,
        used: &mut Vec<bool>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if current.len() == arity {
            out.push(current.clone());
            return;
        }
        for c in 0..arity {
            if !used[c] {
                used[c] = true;
                current.push(c);
                rec(arity, current, used, out);
                current.pop();
                used[c] = false;
            }
        }
    }
    rec(arity, &mut current, &mut used, &mut out);
    out
}

/// Build the relation's BDD under the given column ordering (in a fresh
/// manager) and report its node count — the quantity Figures 2 and 3 plot.
pub fn bdd_size_for_ordering(rel: &Relation, dom_sizes: &[u64], order: &[usize]) -> Result<usize> {
    let mut m = BddManager::new();
    let mut domains = vec![None; rel.arity()];
    for &col in order {
        domains[col] = Some(m.add_domain(dom_sizes[col])?);
    }
    let domains: Vec<_> = domains.into_iter().map(Option::unwrap).collect();
    let rows: Vec<Vec<u64>> = rel
        .rows()
        .map(|r| r.iter().map(|&v| v as u64).collect())
        .collect();
    let root = m.relation_from_rows(&domains, &rows)?;
    Ok(m.size(root))
}

/// Exhaustively find the optimal ordering (minimum BDD node count). Returns
/// `(ordering, size)`.
pub fn optimal_ordering(rel: &Relation, dom_sizes: &[u64]) -> Result<(Vec<usize>, usize)> {
    let mut best: Option<(Vec<usize>, usize)> = None;
    for order in all_orderings(rel.arity()) {
        let size = bdd_size_for_ordering(rel, dom_sizes, &order)?;
        if best.as_ref().is_none_or(|(_, s)| size < *s) {
            best = Some((order, size));
        }
    }
    Ok(best.expect("at least one ordering"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcheck_datagen::{gen_kprod, gen_random};

    #[test]
    fn all_orderings_counts_factorial() {
        assert_eq!(all_orderings(1).len(), 1);
        assert_eq!(all_orderings(3).len(), 6);
        assert_eq!(all_orderings(5).len(), 120);
        // Distinct.
        let os = all_orderings(4);
        let set: std::collections::HashSet<_> = os.iter().collect();
        assert_eq!(set.len(), 24);
    }

    #[test]
    fn random_order_is_a_permutation() {
        let o = random_order(6, 9);
        let mut sorted = o.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
        assert_eq!(o, random_order(6, 9), "seeded determinism");
    }

    #[test]
    fn heuristics_return_permutations() {
        let g = gen_kprod(5, 16, 1500, 2, 3);
        for order in [
            max_inf_gain(&g.relation),
            prob_converge(&g.relation, &g.dom_sizes),
            min_cond_entropy(&g.relation),
        ] {
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..5).collect::<Vec<_>>());
        }
    }

    #[test]
    fn prob_converge_near_optimal_on_product_structure() {
        // On a 1-PROD relation the heuristic should land within 2x of the
        // exhaustive optimum (the paper reports β < 1.5 typically).
        let g = gen_kprod(4, 12, 600, 1, 7);
        let order = prob_converge(&g.relation, &g.dom_sizes);
        let size = bdd_size_for_ordering(&g.relation, &g.dom_sizes, &order).unwrap();
        let (_, opt) = optimal_ordering(&g.relation, &g.dom_sizes).unwrap();
        assert!(
            size as f64 <= 2.0 * opt as f64,
            "prob_converge size {size} vs optimal {opt}"
        );
    }

    #[test]
    fn paper_finding_mig_degrades_pc_excels_on_products() {
        // The paper's Figure 3 headline: on 1-PROD relations the literal
        // MaxInf-Gain interleaves factors (bad), while Prob-Converge and
        // our corrected variant stay near-optimal.
        let mut mig_ratio = 0.0f64;
        let mut pc_ratio = 0.0f64;
        let mut mce_ratio = 0.0f64;
        let runs = 4;
        for seed in 0..runs {
            let g = gen_kprod(5, 64, 4000, 1, 900 + seed);
            let (_, opt) = optimal_ordering(&g.relation, &g.dom_sizes).unwrap();
            let size = |o: &[usize]| {
                bdd_size_for_ordering(&g.relation, &g.dom_sizes, o).unwrap() as f64 / opt as f64
            };
            mig_ratio += size(&max_inf_gain(&g.relation));
            pc_ratio += size(&prob_converge(&g.relation, &g.dom_sizes));
            mce_ratio += size(&min_cond_entropy(&g.relation));
        }
        let (mig, pc, mce) = (
            mig_ratio / runs as f64,
            pc_ratio / runs as f64,
            mce_ratio / runs as f64,
        );
        assert!(
            pc < 2.0,
            "Prob-Converge should be near-optimal, got {pc:.2}"
        );
        assert!(
            mce < 2.0,
            "MinCondEntropy should be near-optimal, got {mce:.2}"
        );
        assert!(
            mig > pc,
            "literal MaxInf-Gain ({mig:.2}) should trail Prob-Converge ({pc:.2})"
        );
    }

    #[test]
    fn ordering_matters_for_structured_relations() {
        let g = gen_kprod(4, 12, 600, 1, 13);
        let sizes: Vec<usize> = all_orderings(4)
            .iter()
            .map(|o| bdd_size_for_ordering(&g.relation, &g.dom_sizes, o).unwrap())
            .collect();
        let best = *sizes.iter().min().unwrap();
        let worst = *sizes.iter().max().unwrap();
        assert!(
            worst as f64 / best as f64 > 1.5,
            "structured relation must show ordering sensitivity ({best}..{worst})"
        );
    }

    #[test]
    fn ordering_barely_matters_for_random_relations() {
        let g = gen_random(4, 8, 1000, 50);
        let sizes: Vec<usize> = all_orderings(4)
            .iter()
            .map(|o| bdd_size_for_ordering(&g.relation, &g.dom_sizes, o).unwrap())
            .collect();
        let best = *sizes.iter().min().unwrap() as f64;
        let worst = *sizes.iter().max().unwrap() as f64;
        assert!(
            worst / best < 1.3,
            "random relations should be ordering-insensitive ({best}..{worst})"
        );
    }

    #[test]
    fn sifting_never_hurts_and_can_recover_from_bad_seeds() {
        let g = gen_kprod(5, 32, 3000, 1, 21);
        let (_, opt) = optimal_ordering(&g.relation, &g.dom_sizes).unwrap();
        // Seeded from Prob-Converge: at least as good as the seed.
        let pc = prob_converge(&g.relation, &g.dom_sizes);
        let pc_size = bdd_size_for_ordering(&g.relation, &g.dom_sizes, &pc).unwrap();
        let (sifted, sifted_size) = sift_ordering(&g.relation, &g.dom_sizes, &pc).unwrap();
        assert!(sifted_size <= pc_size);
        let mut check = sifted.clone();
        check.sort_unstable();
        assert_eq!(check, (0..5).collect::<Vec<_>>());
        // Seeded from the literal MaxInf-Gain (often terrible on 1-PROD):
        // sifting must close most of the gap to optimal.
        let mig = max_inf_gain(&g.relation);
        let mig_size = bdd_size_for_ordering(&g.relation, &g.dom_sizes, &mig).unwrap();
        let (_, rescued) = sift_ordering(&g.relation, &g.dom_sizes, &mig).unwrap();
        assert!(rescued <= mig_size);
        assert!(
            (rescued as f64) <= 1.5 * opt as f64,
            "sifting from {mig_size} should land near optimal {opt}, got {rescued}"
        );
    }

    #[test]
    fn strategy_dispatch() {
        let g = gen_random(3, 32, 100, 5);
        assert_eq!(
            OrderingStrategy::Schema.order(&g.relation, &g.dom_sizes),
            vec![0, 1, 2]
        );
        for s in [
            OrderingStrategy::Random(4),
            OrderingStrategy::MaxInfGain,
            OrderingStrategy::ProbConverge,
            OrderingStrategy::MinCondEntropy,
            OrderingStrategy::Sifted,
        ] {
            let mut o = s.order(&g.relation, &g.dom_sizes);
            o.sort_unstable();
            assert_eq!(o, vec![0, 1, 2]);
        }
    }
}
