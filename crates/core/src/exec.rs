//! [`CheckPlan`] → verdict: the plan executor.
//!
//! The back half of the old `compile.rs` monolith: given a prepared
//! [`BddStep`] or [`SqlStep`] (built by [`crate::planner`], possibly pulled
//! from the registry's plan cache), run it against the live database. This
//! is the only module on the check path that touches a BDD manager, so the
//! degradation ladder in [`crate::checker`] can treat every rung as "execute
//! a different node of the same plan" rather than re-deriving the query.
//!
//! Domain hygiene (carried over from the monolith): BDD blocks of
//! `⌈log₂ n⌉` bits can encode values ≥ `n`. Relation indices never contain
//! such codes, but complements introduced by negation do, so every
//! quantifier (and the final validity / satisfiability test) confines its
//! variables with the block's range constraint. This keeps BDD answers
//! identical to active-domain semantics (the brute-force oracle in
//! `relcheck-logic`).

use crate::error::{CoreError, Result};
use crate::index::{AtomAction, LogicalDatabase};
use crate::plan::{BddStep, BddTest, PlanOptions, SqlStep};
use crate::planner::{apply_pushdown, collect_atoms, rebuild};
use crate::sqlgen::Shape;
use crate::telemetry::{RewriteRule, RuleFiring};
use relcheck_bdd::{Bdd, DomainId, Op};
use relcheck_logic::transform::{strip_leading_block, to_nnf, to_prenex, CheckMode};
use relcheck_logic::{infer_sorts, Formula, Term};
use relcheck_relstore::plan::execute;
use relcheck_relstore::Database;
use std::collections::HashMap;

/// Execute a plan's BDD step against the live indices: allocate query
/// domains over the step's prenex form, compile the rewritten body, confine
/// the stripped variables to their ranges, and apply the step's O(1) test.
///
/// Every relation mentioned must already have an index built (the
/// [`crate::checker::Checker`] guarantees this). Propagates
/// `BddError::NodeLimit` if the manager's node budget is exhausted — the
/// signal to fall to the next rung. When `rules` is provided, one R2 event
/// is appended per atom compiled with ≥ 1 rename (the plan-level R1/R3/R4
/// firings are already recorded in the plan's passes).
pub fn execute_bdd(
    ldb: &mut LogicalDatabase,
    step: &BddStep,
    rules: Option<&mut Vec<RuleFiring>>,
) -> Result<bool> {
    let sorts = infer_sorts(ldb.db(), &step.alloc)?;
    let var_doms = allocate_query_domains(ldb, &step.alloc, &sorts)?;
    let mut c = Compiler {
        ldb,
        var_doms: &var_doms,
        sorts: &sorts,
        join_rename: step.join_rename,
        fused_quant: step.fused_quant,
        rules,
    };
    let phi = c.compile(&step.body)?;
    let ranges = c.ranges(&step.stripped)?;
    let mgr = ldb.manager_mut();
    let test = mgr.and(ranges, phi)?;
    Ok(match step.test {
        BddTest::ViolationsEmpty => test.is_false(),
        BddTest::Satisfiable => !test.is_false(),
    })
}

/// Execute a plan's pre-translated SQL step: run the relational plan and
/// interpret the result per its shape.
pub fn execute_sql(db: &Database, step: &SqlStep) -> Result<bool> {
    let out = execute(db, &step.translated.plan)?;
    Ok(match step.translated.shape {
        Shape::Violations => out.is_empty(),
        Shape::Witnesses => !out.is_empty(),
    })
}

/// A materialized violation set: the BDD over the constraint's outer ∀
/// variables, plus per-variable metadata for decoding.
pub struct ViolationSet {
    /// Characteristic function of the violating assignments.
    pub bdd: Bdd,
    /// `(variable name, its finite domain, its attribute class)` for every
    /// outer ∀ variable, in prefix order.
    pub vars: Vec<(String, DomainId, String)>,
}

/// Build the violating-assignment BDD of a ∀-prefixed constraint (the BDD
/// counterpart of the SQL violation query). Returns `None` for constraints
/// that do not start with a universal block (existentials have witnesses,
/// not violations). Always prenexes and pushes ∀ down — enumeration needs
/// the violation-set shape regardless of which passes the check plan ran —
/// but honors the options' gating policy and compile strategies.
pub fn violations_bdd(
    ldb: &mut LogicalDatabase,
    f: &Formula,
    options: PlanOptions,
) -> Result<Option<ViolationSet>> {
    let p = to_prenex(f);
    let whole = rebuild(&p);
    let sorts = infer_sorts(ldb.db(), &whole)?;
    let var_doms = allocate_query_domains(ldb, &whole, &sorts)?;
    let (mode, rest) = strip_leading_block(&p);
    if mode != CheckMode::Validity {
        return Ok(None);
    }
    let stripped: Vec<String> = p.prefix[..p.prefix.len() - rest.prefix.len()]
        .iter()
        .map(|(_, v)| v.clone())
        .collect();
    let negated = relcheck_logic::transform::simplify(&to_nnf(&rebuild(&rest).not()));
    let body = {
        let (pushed, _eff) = apply_pushdown(ldb.db(), &negated, options);
        pushed
    };
    let mut c = Compiler {
        ldb,
        var_doms: &var_doms,
        sorts: &sorts,
        join_rename: options.join_rename,
        fused_quant: options.fused_quant,
        rules: None,
    };
    let phi = c.compile(&body)?;
    let ranges = c.ranges(&stripped)?;
    let mgr = ldb.manager_mut();
    let bdd = mgr.and(ranges, phi)?;
    let vars = stripped
        .into_iter()
        .map(|v| {
            let dom = var_doms[&v];
            let class = sorts[&v].clone();
            (v, dom, class)
        })
        .collect();
    Ok(Some(ViolationSet { bdd, vars }))
}

/// Assign every first-order variable a finite domain.
///
/// This is where the paper's rename rule (§4.2) pays off or doesn't: the
/// expensive case is renaming a *large* relation index into fresh query
/// domains. The paper renames R2 into R1's variables — i.e. the big
/// relation keeps its own blocks. We generalize that: walking the
/// formula's atoms **largest relation first** (positions in the relation's
/// own index ordering), each variable *claims the column domain of its
/// first unclaimed occurrence*. The biggest atom then compiles with an
/// identity rename (free), and only smaller atoms are moved. Variables that
/// cannot claim a domain (repeats, conflicts, equality-only variables) draw
/// from per-class query-domain pools in visit order, which keeps those
/// renames order-preserving too.
pub(crate) fn allocate_query_domains(
    ldb: &mut LogicalDatabase,
    f: &Formula,
    sorts: &HashMap<String, String>,
) -> Result<HashMap<String, DomainId>> {
    // Gather atoms, largest relation first.
    let mut atoms: Vec<(String, Vec<Term>)> = Vec::new();
    collect_atoms(f, &mut atoms);
    atoms.sort_by_key(|(rel, _)| std::cmp::Reverse(ldb.db().relation(rel).map_or(0, |r| r.len())));
    let mut out: HashMap<String, DomainId> = HashMap::new();
    let mut claimed: std::collections::HashSet<DomainId> = std::collections::HashSet::new();
    let mut visit_order: Vec<String> = Vec::new();
    for (relation, args) in &atoms {
        let Some(idx) = ldb.index(relation) else {
            continue;
        };
        let positions = idx.ordering.clone();
        let domains = idx.domains.clone();
        for &i in &positions {
            if let Some(Term::Var(v)) = args.get(i) {
                if !visit_order.contains(v) {
                    visit_order.push(v.clone());
                }
                if !out.contains_key(v) && claimed.insert(domains[i]) {
                    out.insert(v.clone(), domains[i]);
                }
            }
        }
    }
    // Remaining variables (couldn't claim, or appear in no atom): pooled
    // query domains, allocated in visit order then by name.
    let mut rest: Vec<&String> = sorts.keys().filter(|v| !visit_order.contains(v)).collect();
    rest.sort_unstable();
    let all: Vec<String> = visit_order
        .iter()
        .cloned()
        .chain(rest.into_iter().cloned())
        .collect();
    let mut slot_of_class: HashMap<&str, usize> = HashMap::new();
    for var in &all {
        if out.contains_key(var) {
            continue;
        }
        let class = sorts[var].as_str();
        let slot = slot_of_class.entry(class).or_insert(0);
        out.insert(var.clone(), ldb.query_domain(class, *slot)?);
        *slot += 1;
    }
    Ok(out)
}

/// The recursive FOL → BDD compiler over a fixed variable→domain map.
struct Compiler<'a> {
    ldb: &'a mut LogicalDatabase,
    var_doms: &'a HashMap<String, DomainId>,
    sorts: &'a HashMap<String, String>,
    /// Compile equi-joins by renaming (R2) instead of equality cubes.
    join_rename: bool,
    /// Use the fused `appex`/`appall` operators for residual quantifiers.
    fused_quant: bool,
    /// R2 firing sink: one event per atom compiled with ≥ 1 rename.
    rules: Option<&'a mut Vec<RuleFiring>>,
}

impl Compiler<'_> {
    fn compile(&mut self, f: &Formula) -> Result<Bdd> {
        match f {
            Formula::True => Ok(Bdd::TRUE),
            Formula::False => Ok(Bdd::FALSE),
            Formula::Atom { relation, args } => self.compile_atom(relation, args),
            Formula::Eq(a, b) => self.compile_eq(a, b),
            Formula::InSet(t, vals) => self.compile_in_set(t, vals),
            Formula::Not(g) => {
                let x = self.compile(g)?;
                Ok(self.ldb.manager_mut().not(x)?)
            }
            Formula::And(fs) => {
                let mut acc = Bdd::TRUE;
                for g in fs {
                    let x = self.compile(g)?;
                    acc = self.ldb.manager_mut().and(acc, x)?;
                    if acc.is_false() {
                        break;
                    }
                }
                Ok(acc)
            }
            Formula::Or(fs) => {
                let mut acc = Bdd::FALSE;
                for g in fs {
                    let x = self.compile(g)?;
                    acc = self.ldb.manager_mut().or(acc, x)?;
                    if acc.is_true() {
                        break;
                    }
                }
                Ok(acc)
            }
            Formula::Implies(a, b) => {
                let fa = self.compile(a)?;
                let fb = self.compile(b)?;
                Ok(self.ldb.manager_mut().imp(fa, fb)?)
            }
            Formula::Exists(vs, g) => self.compile_quant(vs, g, true),
            Formula::Forall(vs, g) => self.compile_quant(vs, g, false),
        }
    }

    /// Conjunction of range constraints for the listed variables' domains.
    fn ranges_doms(&mut self, doms: &[DomainId]) -> Result<Bdd> {
        let mut acc = Bdd::TRUE;
        for &d in doms {
            let mgr = self.ldb.manager_mut();
            let r = mgr.domain_range(d)?;
            acc = mgr.and(acc, r)?;
        }
        Ok(acc)
    }

    fn ranges(&mut self, vars: &[String]) -> Result<Bdd> {
        let doms: Vec<DomainId> = vars.iter().map(|v| self.var_doms[v]).collect();
        self.ranges_doms(&doms)
    }

    fn compile_quant(&mut self, vs: &[String], body: &Formula, is_exists: bool) -> Result<Bdd> {
        let phi = self.compile(body)?;
        let doms: Vec<DomainId> = vs.iter().map(|v| self.var_doms[v]).collect();
        let ranges = self.ranges_doms(&doms)?;
        let mgr = self.ldb.manager_mut();
        let varset = mgr.domain_varset(&doms);
        if self.fused_quant {
            // Fused apply+quantify (BuDDy's bdd_appex / bdd_appall).
            if is_exists {
                Ok(mgr.app_exists(Op::And, phi, ranges, varset)?)
            } else {
                Ok(mgr.app_forall(Op::Imp, ranges, phi, varset)?)
            }
        } else {
            // Unfused: materialize the combined function, then quantify.
            if is_exists {
                let combined = mgr.and(phi, ranges)?;
                Ok(mgr.exists(combined, varset)?)
            } else {
                let combined = mgr.imp(ranges, phi)?;
                Ok(mgr.forall(combined, varset)?)
            }
        }
    }

    fn compile_atom(&mut self, relation: &str, args: &[Term]) -> Result<Bdd> {
        let idx = self
            .ldb
            .index(relation)
            .ok_or_else(|| CoreError::MissingIndex(relation.to_owned()))?
            .clone();
        // Feed the adaptive-ordering workload: constants weigh 1 (one
        // restrict), variables 2 (join/rename traffic dominates descent
        // depth). Recorded whether or not the cache hits below.
        let usage: Vec<u64> = args
            .iter()
            .map(|t| match t {
                Term::Const(_) => 1,
                Term::Var(_) => 2,
            })
            .collect();
        self.ldb.record_column_use(relation, &usage);
        // Resolve argument actions against the database before touching the
        // manager (split borrows). The action list is also the subgraph
        // cache key: the compiled BDD is a pure function of (index root,
        // actions), so equal lists reuse one compilation.
        let mut actions: Vec<AtomAction> = Vec::with_capacity(args.len());
        {
            let db = self.ldb.db();
            let rel = db.relation(relation)?;
            let mut seen: HashMap<&str, ()> = HashMap::new();
            for (i, t) in args.iter().enumerate() {
                let col_dom = idx.domains[i];
                match t {
                    Term::Const(raw) => {
                        let class = rel.schema().class_of(i);
                        match db.code(class, raw) {
                            // A constant outside the active domain: the atom
                            // is unsatisfiable.
                            None => return Ok(Bdd::FALSE),
                            Some(code) => actions.push(AtomAction::Pin(col_dom, code as u64)),
                        }
                    }
                    Term::Var(v) => {
                        let var_dom = self.var_doms[v];
                        let first = seen.insert(v.as_str(), ()).is_none();
                        if first && var_dom == col_dom {
                            // The variable claimed this very column: the
                            // atom already speaks its language.
                        } else if first && self.join_rename {
                            actions.push(AtomAction::Rename(col_dom, var_dom));
                        } else {
                            // Repeated variable, or the naive equality-cube
                            // strategy: conjoin an equality and project the
                            // column block away.
                            actions.push(AtomAction::Equal(col_dom, var_dom));
                        }
                    }
                }
            }
        }
        let renames: Vec<(DomainId, DomainId)> = actions
            .iter()
            .filter_map(|a| match a {
                // Variables that claimed this very column need no move.
                AtomAction::Rename(from, to) if from != to => Some((*from, *to)),
                _ => None,
            })
            .collect();
        if let Some(cached) = self.ldb.atom_cache_get(relation, &actions) {
            // The R2 rewrite conceptually fired even though the rename was
            // served from the cache — telemetry stays identical to a cold
            // compile.
            if !renames.is_empty() {
                if let Some(rs) = self.rules.as_deref_mut() {
                    rs.push(RuleFiring {
                        rule: RewriteRule::R2JoinRename,
                        count: renames.len() as u64,
                    });
                }
            }
            return Ok(cached);
        }
        let mgr = self.ldb.manager_mut();
        let mut cur = idx.root;
        // 1. Pin constants (restrict: removes the block's variables).
        for a in &actions {
            if let AtomAction::Pin(d, code) = a {
                let cube = mgr.value_cube(*d, *code)?;
                cur = mgr.restrict(cur, cube)?;
            }
        }
        // 2. Rename first-occurrence variable columns into query domains —
        //    the §4.2 rewrite: one linear-cost pass instead of equality
        //    conjunctions.
        if !renames.is_empty() {
            cur = mgr.replace_domains(cur, &renames)?;
            if let Some(rs) = self.rules.as_deref_mut() {
                rs.push(RuleFiring {
                    rule: RewriteRule::R2JoinRename,
                    count: renames.len() as u64,
                });
            }
        }
        // 3. Equality constraints for repeated variables (and for every
        //    variable under the naive strategy), then project the column
        //    blocks away.
        let mut quantify_out = Vec::new();
        for a in &actions {
            if let AtomAction::Equal(col_dom, var_dom) = a {
                let eq = mgr.domain_eq(*col_dom, *var_dom)?;
                cur = mgr.and(cur, eq)?;
                quantify_out.push(*col_dom);
            }
        }
        if !quantify_out.is_empty() {
            let vs = mgr.domain_varset(&quantify_out);
            cur = mgr.exists(cur, vs)?;
        }
        self.ldb.atom_cache_put(relation, actions, cur);
        Ok(cur)
    }

    fn compile_eq(&mut self, a: &Term, b: &Term) -> Result<Bdd> {
        match (a, b) {
            (Term::Const(x), Term::Const(y)) => Ok(if x == y { Bdd::TRUE } else { Bdd::FALSE }),
            (Term::Var(v), Term::Var(w)) => {
                let (dv, dw) = (self.var_doms[v], self.var_doms[w]);
                Ok(self.ldb.manager_mut().domain_eq(dv, dw)?)
            }
            (Term::Var(v), Term::Const(raw)) | (Term::Const(raw), Term::Var(v)) => {
                let dv = self.var_doms[v];
                // The variable's class dictates constant resolution.
                let code = {
                    let class = self.class_of_var(v)?;
                    self.ldb.db().code(&class, raw)
                };
                match code {
                    None => Ok(Bdd::FALSE),
                    Some(c) => Ok(self.ldb.manager_mut().value_cube(dv, c as u64)?),
                }
            }
        }
    }

    fn compile_in_set(&mut self, t: &Term, vals: &[relcheck_relstore::Raw]) -> Result<Bdd> {
        match t {
            Term::Const(raw) => Ok(if vals.contains(raw) {
                Bdd::TRUE
            } else {
                Bdd::FALSE
            }),
            Term::Var(v) => {
                let dv = self.var_doms[v];
                let codes: Vec<u64> = {
                    let class = self.class_of_var(v)?;
                    let db = self.ldb.db();
                    vals.iter()
                        .filter_map(|raw| db.code(&class, raw).map(|c| c as u64))
                        .collect()
                };
                Ok(self.ldb.manager_mut().value_set(dv, &codes)?)
            }
        }
    }

    /// A variable's attribute class, from the inferred sorts.
    fn class_of_var(&self, v: &str) -> Result<String> {
        Ok(self.sorts[v].clone())
    }
}
