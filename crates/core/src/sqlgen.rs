//! Formula → relational-plan translation: the "SQL approach".
//!
//! The paper's baseline expresses each constraint as a SQL query returning
//! the violating tuples (the `SELECT … WHERE NOT EXISTS` of Section 1).
//! [`violation_plan`] performs that translation for the broad class the
//! paper's constraints live in — **tuple-generating and denial
//! constraints**:
//!
//! ```text
//! ∀x̄ ( premise  →  conclusion )          premise: ≥1 atoms + comparisons
//! ∀x̄ ¬( conjunction )                    denial
//! ∃x̄  ( conjunction )                    existence
//! ```
//!
//! where `conclusion` is a conjunction of comparisons, of atoms, or an
//! ∃-quantified conjunction of both. The result plan's output is the set of
//! violating premise rows (for the ∃ form: the witnesses — empty means
//! violated, so callers must interpret by [`Shape`]). Constraints outside
//! the class yield `None`; the checker then resorts to brute-force
//! evaluation.

use relcheck_logic::transform::{simplify, standardize_apart};
use relcheck_logic::{Formula, Term};
use relcheck_relstore::plan::Plan;
use relcheck_relstore::{Database, Raw};
use std::collections::HashMap;

/// What the produced plan computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Output rows are violations: constraint holds iff the result is empty.
    Violations,
    /// Output rows are witnesses of an existential: constraint holds iff
    /// the result is **non-empty**.
    Witnesses,
}

/// A translated constraint: plan plus interpretation, plus the premise
/// variable names in output-column order. Except for the FD fast path
/// (whose output is base-relation rows), the plan projects its output onto
/// exactly these variables, one column each.
#[derive(Debug, Clone)]
pub struct Translated {
    /// The executable plan.
    pub plan: Plan,
    /// How to read its output.
    pub shape: Shape,
    /// Variable name of each output column (post-projection).
    pub columns: Vec<String>,
}

/// One comparison literal usable as a selection.
#[derive(Debug, Clone)]
enum Cmp {
    EqConst(String, Raw),
    NeqConst(String, Raw),
    EqVar(String, String),
    NeqVar(String, String),
    In(String, Vec<Raw>),
    NotIn(String, Vec<Raw>),
    /// Constant-only comparison already decided.
    Decided(bool),
}

/// A flattened conjunction: positive atoms, negated atoms, comparisons.
struct Conj {
    atoms: Vec<(String, Vec<Term>)>,
    neg_atoms: Vec<(String, Vec<Term>)>,
    cmps: Vec<Cmp>,
}

fn flatten_conj(f: &Formula) -> Option<Conj> {
    let mut atoms = Vec::new();
    let mut neg_atoms = Vec::new();
    let mut cmps = Vec::new();
    fn go(
        f: &Formula,
        atoms: &mut Vec<(String, Vec<Term>)>,
        neg_atoms: &mut Vec<(String, Vec<Term>)>,
        cmps: &mut Vec<Cmp>,
    ) -> bool {
        match f {
            Formula::True => true,
            Formula::False => {
                cmps.push(Cmp::Decided(false));
                true
            }
            Formula::And(fs) => fs.iter().all(|g| go(g, atoms, neg_atoms, cmps)),
            Formula::Atom { relation, args } => {
                atoms.push((relation.clone(), args.clone()));
                true
            }
            Formula::Eq(a, b) => {
                cmps.push(match (a, b) {
                    (Term::Var(x), Term::Var(y)) => Cmp::EqVar(x.clone(), y.clone()),
                    (Term::Var(x), Term::Const(c)) | (Term::Const(c), Term::Var(x)) => {
                        Cmp::EqConst(x.clone(), c.clone())
                    }
                    (Term::Const(c), Term::Const(d)) => Cmp::Decided(c == d),
                });
                true
            }
            Formula::InSet(Term::Var(x), vals) => {
                cmps.push(Cmp::In(x.clone(), vals.clone()));
                true
            }
            Formula::InSet(Term::Const(c), vals) => {
                cmps.push(Cmp::Decided(vals.contains(c)));
                true
            }
            Formula::Not(g) => match &**g {
                Formula::Atom { relation, args } => {
                    neg_atoms.push((relation.clone(), args.clone()));
                    true
                }
                Formula::Eq(a, b) => {
                    cmps.push(match (a, b) {
                        (Term::Var(x), Term::Var(y)) => Cmp::NeqVar(x.clone(), y.clone()),
                        (Term::Var(x), Term::Const(c)) | (Term::Const(c), Term::Var(x)) => {
                            Cmp::NeqConst(x.clone(), c.clone())
                        }
                        (Term::Const(c), Term::Const(d)) => Cmp::Decided(c != d),
                    });
                    true
                }
                Formula::InSet(Term::Var(x), vals) => {
                    cmps.push(Cmp::NotIn(x.clone(), vals.clone()));
                    true
                }
                Formula::InSet(Term::Const(c), vals) => {
                    cmps.push(Cmp::Decided(!vals.contains(c)));
                    true
                }
                _ => false,
            },
            _ => false,
        }
    }
    if go(f, &mut atoms, &mut neg_atoms, &mut cmps) {
        Some(Conj {
            atoms,
            neg_atoms,
            cmps,
        })
    } else {
        None
    }
}

/// Join the conjunction's atoms left-to-right, apply its comparisons, and
/// return the plan plus the output column of each variable.
fn build_conj_plan(db: &Database, conj: &Conj) -> Option<(Plan, HashMap<String, usize>)> {
    if conj.atoms.is_empty() {
        return None;
    }
    let mut var_cols: HashMap<String, usize> = HashMap::new();
    let mut plan: Option<Plan> = None;
    let mut width = 0usize;
    for (rel_name, args) in &conj.atoms {
        let rel = db.relation(rel_name).ok()?;
        if rel.arity() != args.len() {
            return None;
        }
        let mut atom_plan = Plan::scan(rel_name);
        let mut atom_vars: HashMap<String, usize> = HashMap::new();
        for (i, t) in args.iter().enumerate() {
            match t {
                Term::Const(raw) => {
                    atom_plan = atom_plan.select_eq(i, raw.clone());
                }
                Term::Var(v) => match atom_vars.get(v) {
                    // Repeated variable within the atom: column equality.
                    Some(&j) => {
                        atom_plan = Plan::SelectColEq {
                            input: Box::new(atom_plan),
                            left: j,
                            right: i,
                        };
                    }
                    None => {
                        atom_vars.insert(v.clone(), i);
                    }
                },
            }
        }
        match plan.take() {
            None => {
                plan = Some(atom_plan);
                for (v, i) in atom_vars {
                    var_cols.insert(v, i);
                }
                width = rel.arity();
            }
            Some(left) => {
                // Equi-join on shared variables (empty pairs = product).
                let pairs: Vec<(usize, usize)> = atom_vars
                    .iter()
                    .filter_map(|(v, &i)| var_cols.get(v).map(|&l| (l, i)))
                    .collect();
                plan = Some(left.join(atom_plan, pairs));
                for (v, i) in atom_vars {
                    var_cols.entry(v).or_insert(width + i);
                }
                width += rel.arity();
            }
        }
    }
    let mut plan = plan.expect("at least one atom");
    for cmp in &conj.cmps {
        plan = match cmp {
            Cmp::Decided(true) => plan,
            Cmp::Decided(false) => {
                // Select nothing: empty IN-set.
                Plan::SelectIn {
                    input: Box::new(plan),
                    col: 0,
                    values: vec![],
                }
            }
            Cmp::EqConst(v, raw) => plan.select_eq(*var_cols.get(v)?, raw.clone()),
            Cmp::NeqConst(v, raw) => Plan::SelectNeq {
                input: Box::new(plan),
                col: *var_cols.get(v)?,
                value: raw.clone(),
            },
            Cmp::EqVar(x, y) => Plan::SelectColEq {
                input: Box::new(plan),
                left: *var_cols.get(x)?,
                right: *var_cols.get(y)?,
            },
            Cmp::NeqVar(x, y) => Plan::SelectColNeq {
                input: Box::new(plan),
                left: *var_cols.get(x)?,
                right: *var_cols.get(y)?,
            },
            Cmp::In(v, vals) => plan.select_in(*var_cols.get(v)?, vals.clone()),
            Cmp::NotIn(v, vals) => Plan::SelectNotIn {
                input: Box::new(plan),
                col: *var_cols.get(v)?,
                values: vals.clone(),
            },
        };
    }
    // Negated atoms: anti-join against each, on the shared variables.
    // Every variable of a negated atom must be bound by the positive part
    // (else the negation is not a safe filter), and constant positions are
    // pinned on the filter side.
    for (rel_name, args) in &conj.neg_atoms {
        let rel = db.relation(rel_name).ok()?;
        if rel.arity() != args.len() {
            return None;
        }
        let mut filter = Plan::scan(rel_name);
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        let mut seen: HashMap<&str, usize> = HashMap::new();
        for (i, t) in args.iter().enumerate() {
            match t {
                Term::Const(raw) => {
                    filter = filter.select_eq(i, raw.clone());
                }
                Term::Var(v) => {
                    if let Some(&j) = seen.get(v.as_str()) {
                        filter = Plan::SelectColEq {
                            input: Box::new(filter),
                            left: j,
                            right: i,
                        };
                    } else {
                        seen.insert(v, i);
                        pairs.push((*var_cols.get(v)?, i));
                    }
                }
            }
        }
        if pairs.is_empty() {
            // No shared variables: ¬R(consts) is a constant condition —
            // out of this translator's class.
            return None;
        }
        plan = plan.anti_join(filter, pairs);
    }
    Some((plan, var_cols))
}

/// Translate a constraint sentence into an executable plan, if it falls in
/// the supported class.
pub fn violation_plan(db: &Database, f: &Formula) -> Option<Translated> {
    let f = simplify(&standardize_apart(f));
    // Strip the outer ∀ block (possibly several nested binders).
    let mut body = &f;
    let mut outer_forall = false;
    while let Formula::Forall(_, inner) = body {
        outer_forall = true;
        body = inner;
    }
    if !outer_forall {
        // ∃x̄ conj — existence constraint.
        let mut ex_body = &f;
        let mut saw_exists = false;
        while let Formula::Exists(_, inner) = ex_body {
            saw_exists = true;
            ex_body = inner;
        }
        if !saw_exists {
            return None;
        }
        let conj = flatten_conj(ex_body)?;
        let (plan, var_cols) = build_conj_plan(db, &conj)?;
        let (cols, columns) = projection(&var_cols);
        return Some(Translated {
            plan: plan.project(cols),
            shape: Shape::Witnesses,
            columns,
        });
    }
    // ∀x̄ body: body is an implication, a denial, or bare comparisons.
    let (premise, conclusion): (&Formula, Option<&Formula>) = match body {
        Formula::Implies(p, c) => (p, Some(c)),
        Formula::Not(inner) => (inner, None),
        _ => return None,
    };
    // Functional-dependency pattern: a self-join premise whose conclusion
    // equates the non-key columns compiles to the group-by plan a real SQL
    // optimizer would pick (the paper's Figure 5(b) formulation), instead
    // of materializing the quadratic self-join.
    if let Some(conclusion) = conclusion {
        if let Some(t) = fd_plan(db, premise, conclusion) {
            return Some(t);
        }
    }
    let pconj = flatten_conj(premise)?;
    let (premise_plan, pvars) = build_conj_plan(db, &pconj)?;
    let (proj_cols, columns) = projection(&pvars);

    let Some(conclusion) = conclusion else {
        // Denial: every premise row is a violation.
        return Some(Translated {
            plan: premise_plan.project(proj_cols),
            shape: Shape::Violations,
            columns,
        });
    };

    // Conclusion: ∃ȳ conj, or a bare conj.
    let mut concl_body = conclusion;
    while let Formula::Exists(_, inner) = concl_body {
        concl_body = inner;
    }
    let cconj = flatten_conj(concl_body)?;
    if cconj.atoms.is_empty() {
        // Pure comparisons: violations = premise − σ_conclusion(premise).
        let mut satisfied = premise_plan.clone();
        for cmp in &cconj.cmps {
            satisfied = match cmp {
                Cmp::Decided(true) => satisfied,
                Cmp::Decided(false) => Plan::SelectIn {
                    input: Box::new(satisfied),
                    col: 0,
                    values: vec![],
                },
                Cmp::EqConst(v, raw) => satisfied.select_eq(*pvars.get(v)?, raw.clone()),
                Cmp::NeqConst(v, raw) => Plan::SelectNeq {
                    input: Box::new(satisfied),
                    col: *pvars.get(v)?,
                    value: raw.clone(),
                },
                Cmp::EqVar(x, y) => Plan::SelectColEq {
                    input: Box::new(satisfied),
                    left: *pvars.get(x)?,
                    right: *pvars.get(y)?,
                },
                Cmp::NeqVar(x, y) => Plan::SelectColNeq {
                    input: Box::new(satisfied),
                    left: *pvars.get(x)?,
                    right: *pvars.get(y)?,
                },
                Cmp::In(v, vals) => satisfied.select_in(*pvars.get(v)?, vals.clone()),
                Cmp::NotIn(v, vals) => Plan::SelectNotIn {
                    input: Box::new(satisfied),
                    col: *pvars.get(v)?,
                    values: vals.clone(),
                },
            };
        }
        let plan = Plan::Diff {
            left: Box::new(premise_plan),
            right: Box::new(satisfied),
        }
        .project(proj_cols);
        return Some(Translated {
            plan,
            shape: Shape::Violations,
            columns,
        });
    }
    // Conclusion with atoms: anti-join the premise against the conclusion
    // join on the variables they share.
    let (concl_plan, cvars) = build_conj_plan(db, &cconj)?;
    let pairs: Vec<(usize, usize)> = pvars
        .iter()
        .filter_map(|(v, &l)| cvars.get(v).map(|&r| (l, r)))
        .collect();
    if pairs.is_empty() {
        return None; // decoupled conclusion — out of class
    }
    let plan = premise_plan.anti_join(concl_plan, pairs).project(proj_cols);
    Some(Translated {
        plan,
        shape: Shape::Violations,
        columns,
    })
}

/// Detect `∀… R(l̄, x̄, ō) ∧ R(l̄, ȳ, ō') → x̄ = ȳ` and compile it to a
/// group-by FD check. Returns `None` when the shape doesn't match.
fn fd_plan(db: &Database, premise: &Formula, conclusion: &Formula) -> Option<Translated> {
    let pconj = flatten_conj(premise)?;
    if pconj.atoms.len() != 2 || !pconj.cmps.is_empty() || !pconj.neg_atoms.is_empty() {
        return None;
    }
    let (r1, args1) = &pconj.atoms[0];
    let (r2, args2) = &pconj.atoms[1];
    if r1 != r2 || args1.len() != args2.len() {
        return None;
    }
    let rel = db.relation(r1).ok()?;
    if rel.arity() != args1.len() {
        return None;
    }
    // All arguments must be variables; positions partition into shared
    // (lhs) and differing.
    let mut lhs = Vec::new();
    let mut differing: Vec<(usize, &str, &str)> = Vec::new();
    for (i, (t1, t2)) in args1.iter().zip(args2).enumerate() {
        match (t1, t2) {
            (Term::Var(a), Term::Var(b)) if a == b => lhs.push(i),
            (Term::Var(a), Term::Var(b)) => differing.push((i, a, b)),
            _ => return None,
        }
    }
    if lhs.is_empty() {
        return None;
    }
    // Variables must not repeat across positions (else it's not a plain FD).
    let mut seen = std::collections::HashSet::new();
    for t in args1.iter().chain(args2) {
        if let Term::Var(v) = t {
            if !lhs
                .iter()
                .any(|&i| matches!(&args1[i], Term::Var(x) if x == v))
                && !seen.insert(v)
            {
                return None;
            }
        }
    }
    // Conclusion: conjunction of equalities pairing differing positions.
    let cconj = flatten_conj(conclusion)?;
    if !cconj.atoms.is_empty() || cconj.cmps.is_empty() {
        return None;
    }
    let mut rhs = Vec::new();
    for cmp in &cconj.cmps {
        let Cmp::EqVar(x, y) = cmp else { return None };
        let pos = differing
            .iter()
            .find(|(_, a, b)| (a == x && b == y) || (a == y && b == x))?;
        rhs.push(pos.0);
    }
    let columns = rel
        .schema()
        .columns()
        .iter()
        .map(|c| c.name.clone())
        .collect();
    Some(Translated {
        plan: Plan::FdViolations {
            input: Box::new(Plan::scan(r1)),
            lhs,
            rhs,
        },
        shape: Shape::Violations,
        columns,
    })
}

/// Output projection: one column per variable, ordered by the variable's
/// first column in the join output. Returns `(column indices, names)`.
fn projection(var_cols: &HashMap<String, usize>) -> (Vec<usize>, Vec<String>) {
    let mut cols: Vec<(&String, &usize)> = var_cols.iter().collect();
    cols.sort_by_key(|&(_, &i)| i);
    (
        cols.iter().map(|&(_, &i)| i).collect(),
        cols.into_iter().map(|(v, _)| v.clone()).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcheck_logic::eval::eval_sentence;
    use relcheck_logic::parse;
    use relcheck_relstore::plan::execute;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            "CUST",
            &[
                ("city", "city"),
                ("areacode", "areacode"),
                ("state", "state"),
            ],
            vec![
                vec![Raw::str("Toronto"), Raw::Int(416), Raw::str("ON")],
                vec![Raw::str("Toronto"), Raw::Int(647), Raw::str("ON")],
                vec![Raw::str("Oshawa"), Raw::Int(905), Raw::str("ON")],
                vec![Raw::str("Newark"), Raw::Int(973), Raw::str("NJ")],
                vec![Raw::str("Newark"), Raw::Int(212), Raw::str("NY")],
            ],
        )
        .unwrap();
        db.create_relation(
            "ALLOWED",
            &[("city", "city"), ("areacode", "areacode")],
            vec![
                vec![Raw::str("Toronto"), Raw::Int(416)],
                vec![Raw::str("Toronto"), Raw::Int(647)],
                vec![Raw::str("Oshawa"), Raw::Int(905)],
                vec![Raw::str("Newark"), Raw::Int(973)],
            ],
        )
        .unwrap();
        db
    }

    fn holds_via_plan(db: &Database, src: &str) -> Option<bool> {
        let f = parse(src).unwrap();
        let t = violation_plan(db, &f)?;
        let out = execute(db, &t.plan).unwrap();
        Some(match t.shape {
            Shape::Violations => out.is_empty(),
            Shape::Witnesses => !out.is_empty(),
        })
    }

    #[test]
    fn plan_agrees_with_oracle() {
        let db = db();
        for src in [
            r#"forall c, a, s. CUST(c, a, s) & c = "Toronto" -> a in {416, 647}"#,
            r#"forall c, a, s. CUST(c, a, s) & c = "Toronto" -> a in {416}"#,
            r#"forall c, a, s. CUST(c, a, s) & c = "Newark" -> s = "NJ""#,
            r#"forall c, a, s. CUST(c, a, s) -> ALLOWED(c, a)"#,
            r#"forall c, a. ALLOWED(c, a) -> exists s. CUST(c, a, s)"#,
            r#"forall c1, a, s1, c2, s2. CUST(c1, a, s1) & CUST(c2, a, s2) -> s1 = s2"#,
            r#"forall c, a1, s1, a2, s2. CUST(c, a1, s1) & CUST(c, a2, s2) -> s1 = s2"#,
            r#"exists c, a, s. CUST(c, a, s) & s = "NY""#,
            r#"exists c, a, s. CUST(c, a, s) & s = "QC""#,
            r#"forall c, a, s. !(CUST(c, a, s) & s = "NY")"#,
            r#"forall c, a, s. CUST(c, a, s) & a != 973 -> s != "NJ""#,
        ] {
            let f = parse(src).unwrap();
            let expected = eval_sentence(&db, &f).unwrap();
            let got = holds_via_plan(&db, src).unwrap_or_else(|| panic!("untranslatable: {src}"));
            assert_eq!(got, expected, "{src}");
        }
    }

    #[test]
    fn violating_rows_are_the_right_ones() {
        let db = db();
        let f = parse(r#"forall c, a, s. CUST(c, a, s) -> ALLOWED(c, a)"#).unwrap();
        let t = violation_plan(&db, &f).unwrap();
        assert_eq!(t.shape, Shape::Violations);
        let out = execute(&db, &t.plan).unwrap();
        assert_eq!(out.len(), 1);
        let decoded = db.decode_row(&out, &out.row(0));
        assert_eq!(decoded[0], Raw::str("Newark"));
        assert_eq!(decoded[1], Raw::Int(212));
    }

    #[test]
    fn out_of_class_shapes_return_none() {
        let db = db();
        for src in [
            // Disjunctive premise.
            r#"forall c, a, s. CUST(c, a, s) | ALLOWED(c, a) -> s = "ON""#,
            // Negated atom in premise.
            r#"forall c, a, s. !CUST(c, a, s) -> ALLOWED(c, a)"#,
            // No atoms at all.
            r#"forall c, a, s. CUST(c, a, s) -> exists c2, a2, s2. CUST(c2, a2, s2) & s2 = "QC""#,
        ] {
            let f = parse(src).unwrap();
            // The third has a decoupled conclusion (no shared vars).
            assert!(violation_plan(&db, &f).is_none(), "{src}");
        }
    }

    #[test]
    fn negated_atoms_translate_to_anti_joins() {
        let db = db();
        for src in [
            // Denial with a negated atom: customers outside ALLOWED with
            // state ON... (sanity: some Toronto rows are allowed).
            r#"forall c, a, s. CUST(c, a, s) & !ALLOWED(c, a) -> s = "NY""#,
            // Negated atom inside an existence check.
            r#"exists c, a, s. CUST(c, a, s) & !ALLOWED(c, a)"#,
            // Negated atom with a constant position.
            r#"forall c, a, s. !(CUST(c, a, s) & !ALLOWED("Toronto", a))"#,
        ] {
            let f = parse(src).unwrap();
            let expected = eval_sentence(&db, &f).unwrap();
            let t = violation_plan(&db, &f).unwrap_or_else(|| panic!("untranslatable: {src}"));
            let out = execute(&db, &t.plan).unwrap();
            let got = match t.shape {
                Shape::Violations => out.is_empty(),
                Shape::Witnesses => !out.is_empty(),
            };
            assert_eq!(got, expected, "{src}");
        }
        // A negated atom sharing no variables with the positive part is
        // out of class.
        let f = parse(r#"forall c, a, s. CUST(c, a, s) & !ALLOWED("Toronto", 416) -> s = "ON""#)
            .unwrap();
        assert!(violation_plan(&db, &f).is_none());
    }

    #[test]
    fn fd_pattern_compiles_to_group_by() {
        let db = db();
        let f = parse("forall c1, a, s1, c2, s2. CUST(c1, a, s1) & CUST(c2, a, s2) -> s1 = s2")
            .unwrap();
        let t = violation_plan(&db, &f).unwrap();
        assert!(
            matches!(t.plan, Plan::FdViolations { ref lhs, ref rhs, .. }
                if lhs == &vec![1] && rhs == &vec![2]),
            "expected an FdViolations plan, got {:?}",
            t.plan
        );
        // areacode → state holds in the fixture.
        assert!(execute(&db, &t.plan).unwrap().is_empty());
        // And the violated FD (city → state) produces the Newark rows.
        let g = parse("forall c, a1, s1, a2, s2. CUST(c, a1, s1) & CUST(c, a2, s2) -> s1 = s2")
            .unwrap();
        let t = violation_plan(&db, &g).unwrap();
        assert!(matches!(t.plan, Plan::FdViolations { .. }));
        assert_eq!(execute(&db, &t.plan).unwrap().len(), 2);
    }

    #[test]
    fn fd_pattern_rejects_near_misses() {
        let db = db();
        // Conclusion pairing a variable with itself / constants involved:
        // must fall back to the generic translator, not the FD plan.
        for src in [
            // premise has a constant
            r#"forall a, s1, c2, s2. CUST("Toronto", a, s1) & CUST(c2, a, s2) -> s1 = s2"#,
            // different relations
            r#"forall c, a, s1, a2. CUST(c, a, s1) & ALLOWED(c, a2) -> a = a2"#,
        ] {
            let f = parse(src).unwrap();
            if let Some(t) = violation_plan(&db, &f) {
                assert!(
                    !matches!(t.plan, Plan::FdViolations { .. }),
                    "{src} must not use the FD fast path"
                );
            }
        }
    }

    #[test]
    fn repeated_variable_in_atom_becomes_col_eq() {
        let mut db = Database::new();
        db.create_relation(
            "PAIR",
            &[("a", "k"), ("b", "k")],
            vec![
                vec![Raw::Int(1), Raw::Int(1)],
                vec![Raw::Int(1), Raw::Int(2)],
            ],
        )
        .unwrap();
        let f = parse("exists x. PAIR(x, x)").unwrap();
        let t = violation_plan(&db, &f).unwrap();
        let out = execute(&db, &t.plan).unwrap();
        assert_eq!(t.shape, Shape::Witnesses);
        assert_eq!(out.len(), 1);
    }
}
